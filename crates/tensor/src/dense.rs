//! Dense multi-dimensional arrays with row-major strides.
//!
//! This is the storage substrate the synthesized programs run on.  It is
//! deliberately simple — contiguous `Vec<f64>` plus a shape/stride header —
//! because the framework's interest is in *which* loops run, not in exotic
//! layouts.  Higher-level kernels ([`crate::contract`], [`crate::einsum`])
//! and the loop-IR interpreter in `tce-exec` build on the indexing methods
//! here.

use tce_ir::rng::Rng;

/// A dense row-major tensor of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Tensors at or above this element count permute thread-parallel.
const PAR_PERMUTE_MIN: usize = 1 << 16;

/// Leaf size (elements) for the cache-oblivious permute recursion: small
/// enough that a source tile and a destination tile both sit in L1.
const PERMUTE_LEAF: usize = 4096;

/// Copy the output-coordinate box `[lo, hi)` of a permutation,
/// cache-obliviously: recursively halve the widest dimension until the
/// box fits in cache, then run a strided odometer copy.  `dst` starts at
/// flat output offset `dst_base`; `sstr[d]`/`dstr[d]` are the source and
/// destination strides of output dimension `d`.
fn copy_box(
    src: &[f64],
    dst: &mut [f64],
    sstr: &[usize],
    dstr: &[usize],
    lo: &[usize],
    hi: &[usize],
    dst_base: usize,
) {
    let rank = lo.len();
    if rank == 0 {
        dst[0] = src[0];
        return;
    }
    let elems: usize = lo.iter().zip(hi).map(|(&l, &h)| h - l).product();
    if elems == 0 {
        return;
    }
    if elems > PERMUTE_LEAF {
        let (d, _) = lo
            .iter()
            .zip(hi)
            .map(|(&l, &h)| h - l)
            .enumerate()
            .max_by_key(|&(_, w)| w)
            .expect("non-empty box");
        if hi[d] - lo[d] > 1 {
            let mid = lo[d] + (hi[d] - lo[d]) / 2;
            let mut hi1 = hi.to_vec();
            hi1[d] = mid;
            let mut lo2 = lo.to_vec();
            lo2[d] = mid;
            copy_box(src, dst, sstr, dstr, lo, &hi1, dst_base);
            copy_box(src, dst, sstr, dstr, &lo2, hi, dst_base);
            return;
        }
    }
    // Leaf: odometer over the outer dims, contiguous-ish run over the
    // innermost output dimension.  Two vectorized specializations (both
    // pure copies, so results are bitwise identical to the generic loop):
    // aligned innermost dims become straight vector copies; a
    // transpose-structured leaf (source-contiguous dim ≠ output-innermost
    // dim) runs in-register transpose tiles instead of strided scalar
    // accesses.
    let last = rank - 1;
    let n_last = hi[last] - lo[last];
    let (s_last, d_last) = (sstr[last], dstr[last]);
    let variant = crate::kernels::active();
    // Output dim that is unit-stride in the *source* (if any, with width
    // worth tiling) — the transpose partner of the output-innermost dim.
    let trans_u = if d_last == 1 && s_last != 1 {
        (0..last).find(|&u| sstr[u] == 1 && hi[u] - lo[u] > 1)
    } else {
        None
    };
    let mut idx = lo.to_vec();
    loop {
        let s0: usize = idx.iter().zip(sstr).map(|(&i, &s)| i * s).sum();
        let d0: usize = idx.iter().zip(dstr).map(|(&i, &s)| i * s).sum::<usize>() - dst_base;
        if let Some(u) = trans_u {
            crate::kernels::transpose_tile(
                variant,
                src,
                dst,
                s0,
                d0,
                hi[u] - lo[u],
                n_last,
                s_last,
                dstr[u],
            );
        } else if s_last == 1 && d_last == 1 {
            crate::kernels::copy_f64(variant, &mut dst[d0..d0 + n_last], &src[s0..s0 + n_last]);
        } else {
            for t in 0..n_last {
                dst[d0 + t * d_last] = src[s0 + t * s_last];
            }
        }
        // Advance the outer odometer within the box (the transpose path
        // also skips dim `u`: the tile covered its whole extent).
        let mut d = last;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            if Some(d) == trans_u {
                continue;
            }
            idx[d] += 1;
            if idx[d] < hi[d] {
                break;
            }
            idx[d] = lo[d];
        }
    }
}

impl Tensor {
    /// A tensor of zeros. A rank-0 tensor (empty shape) is a scalar with one
    /// element.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product::<usize>().max(1);
        Self {
            strides: row_major_strides(shape),
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// A zero tensor whose backing buffer is drawn from the process-wide
    /// buffer pool (see [`crate::bufpool`]); semantically identical to
    /// [`Tensor::zeros`].  Pair with [`Tensor::recycle`] so the buffer is
    /// reused instead of round-tripping the allocator.
    pub fn zeros_pooled(shape: &[usize]) -> Self {
        let len = shape.iter().product::<usize>().max(1);
        Self {
            strides: row_major_strides(shape),
            shape: shape.to_vec(),
            data: crate::bufpool::acquire(len),
        }
    }

    /// Return this tensor's backing buffer to the buffer pool.  Safe on
    /// any tensor, pooled origin or not — the pool classifies by the
    /// buffer's actual capacity.
    pub fn recycle(self) {
        crate::bufpool::release(self.data);
    }

    /// A tensor filled with `value`.
    pub fn from_elem(shape: &[usize], value: f64) -> Self {
        let mut t = Self::zeros(shape);
        t.data.fill(value);
        t
    }

    /// Build from a function of the multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut t = Self::zeros(shape);
        let mut idx = vec![0usize; shape.len()];
        for off in 0..t.data.len() {
            t.data[off] = f(&idx);
            Self::advance(&mut idx, shape);
        }
        t
    }

    /// Deterministic pseudo-random tensor in `[-1, 1)` for tests and
    /// benchmarks.
    pub fn random(shape: &[usize], seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let mut t = Self::zeros(shape);
        for x in &mut t.data {
            *x = rng.f64_in(-1.0, 1.0);
        }
        t
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>().max(1),
            "buffer length does not match shape"
        );
        Self {
            strides: row_major_strides(shape),
            shape: shape.to_vec(),
            data,
        }
    }

    /// Shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Row-major strides.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements (1 for a scalar).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false — tensors hold at least one element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    /// Debug-asserts the index is within bounds; the final slice access is
    /// always bounds-checked.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.shape[d], "index {i} out of bounds in dim {d}");
            off += i * self.strides[d];
        }
        off
    }

    /// Element read.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Element accumulate.
    #[inline]
    pub fn add_assign_at(&mut self, idx: &[usize], v: f64) {
        let off = self.offset(idx);
        self.data[off] += v;
    }

    /// Reset all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Return a copy with dimensions permuted: `out[i…] = self[perm(i…)]`,
    /// where output dimension `d` is input dimension `perm[d]`.
    ///
    /// Uses a blocked, cache-oblivious kernel (recursively splitting the
    /// largest extent until a tile fits in cache) and goes thread-parallel
    /// for large tensors.  Parallelism is safe here at any thread count: a
    /// permutation is a pure copy, so the result is bitwise identical
    /// however the work is split.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let threads = if self.data.len() >= PAR_PERMUTE_MIN {
            tce_par::default_threads()
        } else {
            1
        };
        self.permute_with_threads(perm, threads)
    }

    /// [`permute`](Self::permute) with an explicit worker count.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute_with_threads(&self, perm: &[usize], threads: usize) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation length mismatch");
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            assert!(p < self.rank() && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        // Identity permutations and rank ≤ 1 are plain copies.
        if perm.iter().enumerate().all(|(d, &p)| d == p) {
            return self.clone();
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let mut out = Tensor::zeros(&new_shape);
        // One read + one write per element.
        tce_trace::counter(
            "permute.bytes",
            2 * (self.data.len() * std::mem::size_of::<f64>()) as u64,
        );
        // Walk the *output* row-major; source strides for output dim `d`
        // are the input strides of dimension `perm[d]`.
        let sstr: Vec<usize> = perm.iter().map(|&p| self.strides[p]).collect();
        let dstr = out.strides.clone();
        let rank = new_shape.len();

        // Parallelize over output dim-0 slabs: disjoint destination
        // regions, so workers never touch the same bytes.
        let slabs = new_shape[0];
        let threads = threads.max(1).min(slabs.max(1));
        if threads <= 1 || out.data.len() < PAR_PERMUTE_MIN {
            let lo = vec![0usize; rank];
            copy_box(&self.data, &mut out.data, &sstr, &dstr, &lo, &new_shape, 0);
            return out;
        }
        let slab_elems = out.data.len() / slabs;
        // Pre-split the destination into per-slab slices so workers hold
        // provably disjoint regions.
        struct SlabPtr(*mut f64);
        unsafe impl Send for SlabPtr {}
        unsafe impl Sync for SlabPtr {}
        let slab_ptrs: Vec<(SlabPtr, usize)> = out
            .data
            .chunks_mut(slab_elems)
            .map(|c| (SlabPtr(c.as_mut_ptr()), c.len()))
            .collect();
        let src = &self.data[..];
        let shape_ref = &new_shape;
        let sstr_ref = &sstr;
        let dstr_ref = &dstr;
        let slab_ptrs_ref = &slab_ptrs;
        tce_par::parallel_for(slabs, threads, move |range| {
            for s in range {
                let (ptr, len) = &slab_ptrs_ref[s];
                // SAFETY: each slab index appears in exactly one range.
                let dst = unsafe { std::slice::from_raw_parts_mut(ptr.0, *len) };
                let mut lo = vec![0usize; rank];
                let mut hi = shape_ref.clone();
                lo[0] = s;
                hi[0] = s + 1;
                // Offsets inside this slab are relative to its start.
                copy_box(src, dst, sstr_ref, dstr_ref, &lo, &hi, s * slab_elems);
            }
        });
        out
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Approximate equality within `tol` (elementwise absolute).
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// `self += alpha · other` (shapes must match).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Extract the rectangular block `starts[d] .. starts[d] + lens[d]`
    /// into a new tensor of shape `lens` — the read side of shard
    /// scatter/redistribution.  Rows along the innermost dimension are
    /// copied contiguously.
    ///
    /// # Panics
    /// Panics if the box exceeds the tensor bounds.
    pub fn extract_block(&self, starts: &[usize], lens: &[usize]) -> Tensor {
        assert_eq!(starts.len(), self.rank(), "block rank mismatch");
        assert_eq!(lens.len(), self.rank(), "block rank mismatch");
        for (d, (&s, &l)) in starts.iter().zip(lens).enumerate() {
            assert!(s + l <= self.shape[d], "block out of bounds");
        }
        let mut out = Tensor::zeros(lens);
        if self.rank() == 0 {
            out.data[0] = self.data[0];
            return out;
        }
        if lens.contains(&0) {
            return out;
        }
        let last = self.rank() - 1;
        let row = lens[last];
        let outer: usize = lens[..last].iter().product();
        let mut idx = vec![0usize; last];
        let mut dst = 0usize;
        for _ in 0..outer.max(1) {
            let mut src = starts[last] * self.strides[last];
            for d in 0..last {
                src += (starts[d] + idx[d]) * self.strides[d];
            }
            out.data[dst..dst + row].copy_from_slice(&self.data[src..src + row]);
            dst += row;
            Self::advance(&mut idx, &lens[..last]);
        }
        out
    }

    /// Write `block` into the rectangular region starting at `starts` —
    /// the write side of shard gather/redistribution.  Inverse of
    /// [`extract_block`](Self::extract_block) for matching boxes.
    ///
    /// # Panics
    /// Panics if the box exceeds the tensor bounds.
    pub fn paste_block(&mut self, starts: &[usize], block: &Tensor) {
        assert_eq!(starts.len(), self.rank(), "block rank mismatch");
        assert_eq!(block.rank(), self.rank(), "block rank mismatch");
        for (d, (&s, &l)) in starts.iter().zip(&block.shape).enumerate() {
            assert!(s + l <= self.shape[d], "block out of bounds");
        }
        if self.rank() == 0 {
            self.data[0] = block.data[0];
            return;
        }
        if block.shape.contains(&0) {
            return;
        }
        let last = self.rank() - 1;
        let row = block.shape[last];
        let outer: usize = block.shape[..last].iter().product();
        let mut idx = vec![0usize; last];
        let mut src = 0usize;
        for _ in 0..outer.max(1) {
            let mut dst = starts[last] * self.strides[last];
            for d in 0..last {
                dst += (starts[d] + idx[d]) * self.strides[d];
            }
            self.data[dst..dst + row].copy_from_slice(&block.data[src..src + row]);
            src += row;
            Self::advance(&mut idx, &block.shape[..last]);
        }
    }

    /// Accumulate `block` into the rectangular region starting at
    /// `starts` (`self[region] += block`) — the write side of a sliced
    /// contraction whose outer fused loops carry partial sums.
    ///
    /// # Panics
    /// Panics if the box exceeds the tensor bounds.
    pub fn add_block(&mut self, starts: &[usize], block: &Tensor) {
        assert_eq!(starts.len(), self.rank(), "block rank mismatch");
        assert_eq!(block.rank(), self.rank(), "block rank mismatch");
        for (d, (&s, &l)) in starts.iter().zip(&block.shape).enumerate() {
            assert!(s + l <= self.shape[d], "block out of bounds");
        }
        if self.rank() == 0 {
            self.data[0] += block.data[0];
            return;
        }
        if block.shape.contains(&0) {
            return;
        }
        let last = self.rank() - 1;
        let row = block.shape[last];
        let outer: usize = block.shape[..last].iter().product();
        let mut idx = vec![0usize; last];
        let mut src = 0usize;
        for _ in 0..outer.max(1) {
            let mut dst = starts[last] * self.strides[last];
            for d in 0..last {
                dst += (starts[d] + idx[d]) * self.strides[d];
            }
            for (a, b) in self.data[dst..dst + row]
                .iter_mut()
                .zip(&block.data[src..src + row])
            {
                *a += b;
            }
            src += row;
            Self::advance(&mut idx, &block.shape[..last]);
        }
    }

    /// Reinterpret this (contiguous, row-major) tensor under a new shape
    /// with the same element count — used to drop or insert unit
    /// dimensions around sliced kernel calls without copying data.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshaped(mut self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(self.len(), n, "reshape element count mismatch");
        self.shape = shape.to_vec();
        self.strides = row_major_strides(&self.shape);
        self
    }

    /// Advance a row-major odometer; wraps to all-zeros after the last
    /// index. Public so kernels and the interpreter share one implementation.
    #[inline]
    pub fn advance(idx: &mut [usize], shape: &[usize]) {
        for d in (0..shape.len()).rev() {
            idx[d] += 1;
            if idx[d] < shape[d] {
                return;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_scalar() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.strides(), &[3, 1]);
        let s = Tensor::zeros(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[]), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.get(&[1, 2, 3]), 7.5);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
        t.add_assign_at(&[1, 2, 3], 0.5);
        assert_eq!(t.get(&[1, 2, 3]), 8.0);
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f64);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.get(&[1, 2]), 5.0);
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(&[3, 3], 42);
        let b = Tensor::random(&[3, 3], 42);
        let c = Tensor::random(&[3, 3], 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
        assert!(a.data().iter().all(|x| (-1.0..1.0).contains(x)));
    }

    #[test]
    fn permute_transpose() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        let tt = t.permute(&[1, 0]);
        assert_eq!(tt.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get(&[i, j]), tt.get(&[j, i]));
            }
        }
    }

    #[test]
    fn permute_rank3_cycle() {
        let t = Tensor::random(&[2, 3, 4], 7);
        let p = t.permute(&[2, 0, 1]); // out[x,y,z] = in[y,z,x]
        assert_eq!(p.shape(), &[4, 2, 3]);
        for x in 0..4 {
            for y in 0..2 {
                for z in 0..3 {
                    assert_eq!(p.get(&[x, y, z]), t.get(&[y, z, x]));
                }
            }
        }
        // Round-trip through the inverse permutation.
        let back = p.permute(&[1, 2, 0]);
        assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn permute_rejects_duplicates() {
        Tensor::zeros(&[2, 2]).permute(&[0, 0]);
    }

    #[test]
    fn permute_large_crosses_parallel_threshold() {
        // 48·40·36 = 69 120 elements > PAR_PERMUTE_MIN, so permute()
        // takes the blocked parallel path; verify against get().
        let t = Tensor::random(&[48, 40, 36], 11);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[36, 48, 40]);
        for &(x, y, z) in &[(0, 0, 0), (35, 47, 39), (17, 23, 5), (1, 46, 38)] {
            assert_eq!(p.get(&[x, y, z]), t.get(&[y, z, x]));
        }
        let back = p.permute_with_threads(&[1, 2, 0], 3);
        assert_eq!(back, t);
    }

    #[test]
    fn permute_bitwise_identical_across_thread_counts() {
        let t = Tensor::random(&[40, 41, 43], 12);
        let p1 = t.permute_with_threads(&[1, 2, 0], 1);
        for threads in [2, 5, 7, 64] {
            assert_eq!(p1, t.permute_with_threads(&[1, 2, 0], threads));
        }
    }

    #[test]
    fn permute_identity_and_rank0() {
        let t = Tensor::random(&[5, 6], 13);
        assert_eq!(t.permute(&[0, 1]), t);
        let s = Tensor::from_elem(&[], 2.5);
        assert_eq!(s.permute(&[]), s);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = Tensor::from_elem(&[2, 2], 1.0);
        let mut b = a.clone();
        b.set(&[1, 1], 1.1);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-12);
        assert!(a.approx_eq(&b, 0.2));
        assert!(!a.approx_eq(&b, 0.05));
        assert!(!a.approx_eq(&Tensor::zeros(&[2, 3]), 1.0));
    }

    #[test]
    fn advance_odometer() {
        let shape = [2, 2];
        let mut idx = vec![0, 0];
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(idx.clone());
            Tensor::advance(&mut idx, &shape);
        }
        assert_eq!(seen, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(idx, vec![0, 0]); // wrapped
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_elem(&[2, 2], 1.0);
        let b = Tensor::from_fn(&[2, 2], |i| (i[0] * 2 + i[1]) as f64);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn axpy_rejects_shape_mismatch() {
        let mut a = Tensor::zeros(&[2]);
        a.axpy(1.0, &Tensor::zeros(&[3]));
    }

    #[test]
    fn extract_paste_roundtrip() {
        let t = Tensor::from_fn(&[4, 5, 3], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        let b = t.extract_block(&[1, 2, 0], &[2, 3, 3]);
        assert_eq!(b.shape(), &[2, 3, 3]);
        for x in 0..2 {
            for y in 0..3 {
                for z in 0..3 {
                    assert_eq!(b.get(&[x, y, z]), t.get(&[x + 1, y + 2, z]));
                }
            }
        }
        let mut back = Tensor::zeros(&[4, 5, 3]);
        back.paste_block(&[1, 2, 0], &b);
        for x in 0..2 {
            for y in 0..3 {
                for z in 0..3 {
                    assert_eq!(back.get(&[x + 1, y + 2, z]), t.get(&[x + 1, y + 2, z]));
                }
            }
        }
        assert_eq!(back.get(&[0, 0, 0]), 0.0);
        // Whole-tensor block is a copy.
        assert_eq!(t.extract_block(&[0, 0, 0], &[4, 5, 3]), t);
        // Scalars round-trip too.
        let s = Tensor::from_elem(&[], 3.5);
        assert_eq!(s.extract_block(&[], &[]), s);
        let mut s2 = Tensor::zeros(&[]);
        s2.paste_block(&[], &s);
        assert_eq!(s2.get(&[]), 3.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn extract_block_rejects_overflow() {
        Tensor::zeros(&[3, 3]).extract_block(&[2, 0], &[2, 3]);
    }

    #[test]
    fn add_block_accumulates_into_region() {
        let mut t = Tensor::from_elem(&[4, 5, 3], 1.0);
        let b = Tensor::from_fn(&[2, 3, 3], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        t.add_block(&[1, 2, 0], &b);
        t.add_block(&[1, 2, 0], &b);
        for x in 0..4 {
            for y in 0..5 {
                for z in 0..3 {
                    let inside = (1..3).contains(&x) && (2..5).contains(&y);
                    let expect = if inside {
                        1.0 + 2.0 * b.get(&[x - 1, y - 2, z])
                    } else {
                        1.0
                    };
                    assert_eq!(t.get(&[x, y, z]), expect, "at {x},{y},{z}");
                }
            }
        }
        // Scalar accumulation.
        let mut s = Tensor::from_elem(&[], 1.5);
        s.add_block(&[], &Tensor::from_elem(&[], 2.0));
        assert_eq!(s.get(&[]), 3.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_block_rejects_overflow() {
        Tensor::zeros(&[3]).add_block(&[2], &Tensor::zeros(&[2]));
    }

    #[test]
    fn reshaped_preserves_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |i| (i[0] * 3 + i[1]) as f64);
        let r = t.clone().reshaped(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        for k in 0..6 {
            assert_eq!(r.get(&[k / 2, k % 2]), k as f64);
        }
        // Unit dimensions insert/drop freely.
        let u = t.clone().reshaped(&[2, 1, 3, 1]);
        assert_eq!(u.get(&[1, 0, 2, 0]), 5.0);
        assert_eq!(u.reshaped(&[2, 3]), t);
        // Scalar ↔ all-unit shapes.
        let s = Tensor::from_elem(&[], 7.0).reshaped(&[1, 1]);
        assert_eq!(s.get(&[0, 0]), 7.0);
        assert_eq!(s.reshaped(&[]).get(&[]), 7.0);
    }

    #[test]
    #[should_panic(expected = "element count mismatch")]
    fn reshaped_rejects_size_change() {
        let _ = Tensor::zeros(&[2, 3]).reshaped(&[7]);
    }

    #[test]
    fn sum_and_fill() {
        let mut t = Tensor::from_elem(&[3, 3], 2.0);
        assert_eq!(t.sum(), 18.0);
        t.fill_zero();
        assert_eq!(t.sum(), 0.0);
    }
}
