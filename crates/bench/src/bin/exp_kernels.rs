//! `exp_kernels` — GETT contraction engine throughput sweep.
//!
//! Times the packed parallel GETT kernel over a grid of contraction
//! sizes × thread counts, against the scalar blocked-GEMM baseline, and
//! writes the measurements to `BENCH_kernels.json` (machine-readable:
//! seconds, GFLOP/s, speedup vs 1 thread per run).  The headline case is
//! the CCSD-like `X[a,e,c,f] = Σ_ij T[i,j,a,e]·T[i,j,c,f]` contraction
//! at V=48, O=8.
//!
//! ```text
//! cargo run --release --bin exp_kernels [-- --max-threads T] [--out PATH]
//!                                       [--trace TRACE.json]
//!                                       [--kernel scalar|sse2|avx2]
//! ```
//!
//! With `--trace`, one extra (untimed) traced pass of every case runs at
//! the top thread count after the sweep; the chrome://tracing event file
//! and a `ProfileReport` summary come from that pass, so tracing never
//! perturbs the timed numbers.
//!
//! The dispatched SIMD kernel variant (and its cache-derived MC/NC/KC
//! blocks) is recorded per case; `--kernel` (or `TCE_KERNEL`) pins a
//! variant for A/B comparisons.  On a single-hardware-thread host the
//! multi-thread sweep is skipped — scaling numbers there would only
//! measure scheduler noise.

use std::fmt::Write as _;
use std::time::Instant;
use tce_core::ir::{IndexSpace, IndexVar};
use tce_core::tensor::{contract_gemm, contract_gett, kernels, BinaryContraction, Tensor};

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Case {
    name: String,
    spec: BinaryContraction,
    space: IndexSpace,
    a: Tensor,
    b: Tensor,
    flops: u128,
}

/// CCSD-like four-index contraction `X[a,e,c,f] = Σ_ij T[ijae]·T[ijcf]`.
fn ccsd_case(v: usize, o: usize) -> Case {
    let mut sp = IndexSpace::new();
    let rv = sp.add_range("V", v);
    let ro = sp.add_range("O", o);
    let names_v = ["a", "e", "c", "f"];
    let vv: Vec<IndexVar> = names_v.iter().map(|n| sp.add_var(n, rv)).collect();
    let i = sp.add_var("i", ro);
    let j = sp.add_var("j", ro);
    let (a_v, e_v, c_v, f_v) = (vv[0], vv[1], vv[2], vv[3]);
    let spec = BinaryContraction {
        a: vec![i, j, a_v, e_v],
        b: vec![i, j, c_v, f_v],
        out: vec![a_v, e_v, c_v, f_v],
    };
    let flops = spec.flops(&sp);
    let a = Tensor::random(&[o, o, v, v], 1);
    let b = Tensor::random(&[o, o, v, v], 2);
    Case {
        name: format!("ccsd_v{v}_o{o}"),
        spec,
        space: sp,
        a,
        b,
        flops,
    }
}

/// Square matmul `C[i,j] = Σ_k A[i,k]·B[k,j]`.
fn matmul_case(n: usize) -> Case {
    let mut sp = IndexSpace::new();
    let r = sp.add_range("N", n);
    let i = sp.add_var("i", r);
    let j = sp.add_var("j", r);
    let k = sp.add_var("k", r);
    let spec = BinaryContraction {
        a: vec![i, k],
        b: vec![k, j],
        out: vec![i, j],
    };
    let flops = spec.flops(&sp);
    Case {
        name: format!("matmul_{n}"),
        spec,
        space: sp,
        a: Tensor::random(&[n, n], 3),
        b: Tensor::random(&[n, n], 4),
        flops,
    }
}

fn main() {
    let mut max_threads = tce_core::par::default_threads().max(8);
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-threads" => {
                max_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-threads needs a positive integer");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            "--kernel" => {
                let name = args.next().unwrap_or_else(|| {
                    eprintln!("exp_kernels: --kernel needs a variant name");
                    std::process::exit(2);
                });
                let v = kernels::KernelVariant::parse(&name)
                    .and_then(|v| kernels::set_override(Some(v)).map(|()| v))
                    .unwrap_or_else(|e| {
                        eprintln!("exp_kernels: {e}");
                        std::process::exit(2);
                    });
                let _ = v;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    // Validate TCE_KERNEL up front: a clean one-line diagnostic instead
    // of a panic inside the first contraction.
    if let Err(e) = kernels::env_requested() {
        eprintln!("exp_kernels: {e}");
        std::process::exit(2);
    }
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a single-hardware-thread host the scaling sweep only measures
    // scheduler noise; run the 1-thread point and say why.
    let sweep_skipped = hw_threads == 1;
    let mut threads_sweep = vec![1usize];
    if !sweep_skipped {
        let mut t = 2;
        while t <= max_threads {
            threads_sweep.push(t);
            t *= 2;
        }
    }

    let cases = [
        ccsd_case(48, 8),
        ccsd_case(32, 6),
        matmul_case(256),
        matmul_case(384),
    ];

    let variant = kernels::active();
    println!(
        "exp_kernels: GETT throughput sweep (host parallelism {hw_threads}, \
         kernel {variant}, sweep {threads_sweep:?}{})\n",
        if sweep_skipped {
            " — thread sweep skipped: single hardware thread"
        } else {
            ""
        }
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"kernels\",");
    let _ = writeln!(json, "  \"host_parallelism\": {hw_threads},");
    let _ = writeln!(json, "  \"kernel_variant\": \"{variant}\",");
    if sweep_skipped {
        let _ = writeln!(
            json,
            "  \"thread_sweep\": \"skipped (single hardware thread)\","
        );
    }
    let _ = writeln!(json, "  \"cases\": [");
    for (ci, case) in cases.iter().enumerate() {
        let reps = if case.flops > 400_000_000 { 3 } else { 5 };
        let scalar_secs = time_best(reps, || {
            contract_gemm(&case.spec, &case.space, &case.a, &case.b)
        });
        let gflops = |secs: f64| case.flops as f64 / secs / 1e9;
        println!(
            "{:<14} {:>14} flops   scalar gemm: {:>8.4}s ({:6.2} GF/s)",
            case.name,
            case.flops,
            scalar_secs,
            gflops(scalar_secs)
        );
        let mut runs = Vec::new();
        let mut t1_secs = f64::NAN;
        for &threads in &threads_sweep {
            let secs = time_best(reps, || {
                contract_gett(&case.spec, &case.space, &case.a, &case.b, threads)
            });
            if threads == 1 {
                t1_secs = secs;
            }
            let speedup = t1_secs / secs;
            println!(
                "    gett x{threads:<3}  {secs:>8.4}s  {:>7.2} GF/s  speedup {speedup:>5.2}",
                gflops(secs)
            );
            runs.push((threads, secs, gflops(secs), speedup));
        }
        // These specs have no exclusive summation indices, so the plan
        // for `case.spec` is exactly what `contract_gett` executed.
        let cfg = *tce_core::tensor::plan_for(&case.spec, &case.space).kernel_config();
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", case.name);
        let _ = writeln!(json, "      \"flops\": {},", case.flops);
        let _ = writeln!(json, "      \"kernel_variant\": \"{}\",", cfg.variant);
        let _ = writeln!(
            json,
            "      \"blocks\": {{\"mc\": {}, \"nc\": {}, \"kc\": {}}},",
            cfg.blocks.mc, cfg.blocks.nc, cfg.blocks.kc
        );
        let _ = writeln!(json, "      \"scalar_gemm_secs\": {scalar_secs:.6},");
        let _ = writeln!(
            json,
            "      \"scalar_gemm_gflops\": {:.4},",
            gflops(scalar_secs)
        );
        let _ = writeln!(json, "      \"runs\": [");
        for (ri, (threads, secs, gf, speedup)) in runs.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"threads\": {threads}, \"secs\": {secs:.6}, \
                 \"gflops\": {gf:.4}, \"speedup\": {speedup:.4}}}{}",
                if ri + 1 < runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if ci + 1 < cases.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    if let Some(trace_path) = trace_path {
        let threads = *threads_sweep.last().unwrap();
        println!("\ntraced pass (x{threads}, untimed) ...");
        tce_trace::reset();
        tce_trace::set_enabled(true);
        for case in &cases {
            let _s = tce_trace::span("stage.exec");
            std::hint::black_box(contract_gett(
                &case.spec,
                &case.space,
                &case.a,
                &case.b,
                threads,
            ));
        }
        tce_trace::set_enabled(false);
        let trace = tce_trace::take();
        if let Err(e) = std::fs::write(&trace_path, trace.to_chrome_json()) {
            eprintln!("cannot write trace {trace_path}: {e}");
            std::process::exit(1);
        }
        println!("{}", trace.report());
        println!("wrote {trace_path}");
    }
}
