//! Wiring the Fig. 5 pipeline into `tce-serve`.
//!
//! `tce-serve` is core-agnostic — it knows the line protocol and the
//! worker loop, and delegates every `run` request to an injected
//! [`tce_serve::Handler`].  This module provides that handler:
//! [`PipelineHandler`] compiles the request's program through
//! [`synthesize`] (memoized in a sharded [`ShardedLru`] keyed by the
//! program text plus every compilation-affecting option), binds the same
//! deterministic random inputs and integral functions the one-shot `tce
//! --execute` CLI binds, executes, and formats the per-tensor result
//! lines **byte-identically** to the CLI — so a client can diff a served
//! answer against a cold process run.
//!
//! The binding and formatting helpers ([`bind_random_inputs`],
//! [`bind_functions`], [`format_results`]) are shared with the `tce`
//! binary for exactly that reason: one definition, two entry points.

use crate::{synthesize, ExecOptions, Schedule, Synthesis, SynthesisConfig};
use std::collections::HashMap;
use std::sync::Arc;
use tce_ir::TensorId;
use tce_serve::{Handler, ShardedLru};
use tce_tensor::{IntegralFn, Tensor};

/// Execution-affecting request options (compilation options live in
/// [`SynthesisConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Seed for the deterministic random input tensors.
    pub seed: u64,
    /// Worker threads for the contraction kernels (`None`: process
    /// default, i.e. `TCE_THREADS` or the machine's parallelism).
    pub threads: Option<usize>,
    /// Execution schedule (`seq` runs statements and subtrees in source
    /// order; `graph` overlaps independent work — results are bitwise
    /// identical either way).
    pub schedule: Schedule,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            seed: 42,
            threads: None,
            schedule: Schedule::default(),
        }
    }
}

/// Parse the wire `key=value` options of a `run` request into the
/// compilation and execution option bundles.
///
/// # Errors
/// A one-line diagnostic for an unknown key or a malformed value —
/// mirroring the CLI flag audit (`threads=0`, `threads=banana`, … all
/// fail fast).
pub fn parse_run_options(
    opts: &[(String, String)],
) -> Result<(SynthesisConfig, RunOptions), String> {
    let mut cfg = SynthesisConfig::default();
    let mut run = RunOptions::default();
    for (key, value) in opts {
        match key.as_str() {
            "seed" => {
                run.seed = value
                    .parse()
                    .map_err(|e| format!("bad seed `{value}`: {e}"))?;
            }
            "threads" => {
                let t: usize = value
                    .parse()
                    .map_err(|e| format!("bad threads `{value}`: {e}"))?;
                if t == 0 {
                    return Err("bad threads `0`: must be at least 1".to_string());
                }
                run.threads = Some(t);
            }
            "schedule" => {
                run.schedule = value.parse()?;
            }
            "memory-limit" => {
                cfg.memory_limit = value
                    .parse()
                    .map_err(|e| format!("bad memory-limit `{value}`: {e}"))?;
            }
            "cache" => {
                let c: u128 = value
                    .parse()
                    .map_err(|e| format!("bad cache `{value}`: {e}"))?;
                cfg.cache_elements = Some(c);
                cfg.hierarchy = crate::locality::MemoryHierarchy::cache_and_disk(c, 1 << 30);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok((cfg, run))
}

/// Bind a deterministic random tensor to every input that is read before
/// it is written, exactly as `tce --execute` does: shape from the
/// declaration, seed `seed ^ id`.
#[must_use]
pub fn bind_random_inputs(syn: &Synthesis, seed: u64) -> Vec<(TensorId, Tensor)> {
    let mut written: Vec<bool> = vec![false; syn.program.tensors.len()];
    let mut needed: Vec<TensorId> = Vec::new();
    for stmt in &syn.program.stmts {
        for term in &stmt.terms {
            for f in &term.factors {
                if let tce_ir::Factor::Tensor(r) = f {
                    if !written[r.tensor.0 as usize] && !needed.contains(&r.tensor) {
                        needed.push(r.tensor);
                    }
                }
            }
        }
        written[stmt.lhs.tensor.0 as usize] = true;
    }
    needed
        .into_iter()
        .map(|id| {
            let decl = syn.program.tensors.get(id);
            let shape: Vec<usize> = decl
                .dims
                .iter()
                .map(|&r| syn.program.space.range_extent(r))
                .collect();
            (id, Tensor::random(&shape, seed ^ id.0 as u64))
        })
        .collect()
}

/// Bind every declared function leaf to a deterministic [`IntegralFn`],
/// exactly as `tce --execute` does (seed folded from the name).
#[must_use]
pub fn bind_functions(syn: &Synthesis, seed: u64) -> HashMap<String, IntegralFn> {
    let mut funcs: HashMap<String, IntegralFn> = HashMap::new();
    for plan in &syn.plans {
        for node in &plan.tree.nodes {
            if let tce_ir::OpKind::Leaf(tce_ir::Leaf::Func {
                name,
                cost_per_eval,
                ..
            }) = &node.kind
            {
                let fseed = name
                    .bytes()
                    .fold(seed, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
                funcs
                    .entry(name.clone())
                    .or_insert_with(|| IntegralFn::new(*cost_per_eval, fseed));
            }
        }
    }
    funcs
}

/// Format the executed result tensors as the CLI prints them — one
/// `  NAME: shape […], |sum| = …` line per tensor in id order, then `OK`.
#[must_use]
pub fn format_results(syn: &Synthesis, results: &HashMap<TensorId, Tensor>) -> String {
    let mut ordered: Vec<_> = results.iter().collect();
    ordered.sort_by_key(|(id, _)| id.0);
    let mut out = String::new();
    for (id, t) in ordered {
        let name = &syn.program.tensors.get(*id).name;
        out.push_str(&format!(
            "  {name}: shape {:?}, |sum| = {:.6e}\n",
            t.shape(),
            t.sum().abs()
        ));
    }
    out.push_str("OK");
    out
}

/// Key of the compiled-synthesis cache: the program text plus a canonical
/// rendering of every compilation-affecting option.
type SynthKey = (String, String);

/// The `run` handler backing `tce serve`: a sharded cache of compiled
/// [`Synthesis`] objects in front of [`synthesize`], plus the shared
/// deterministic bind/execute/format path.
pub struct PipelineHandler {
    cache: ShardedLru<SynthKey, Result<Synthesis, String>>,
    /// Full-reply memo: the service's inputs are *derived* (deterministic
    /// random tensors from the seed, integrals folded from function
    /// names), so a repeat of the same (program, options) request is
    /// bitwise-guaranteed to produce the same reply — caching it is
    /// semantically invisible and turns a warm repeat into a lookup.
    responses: ShardedLru<SynthKey, Result<String, String>>,
    /// Measured cost rates applied to every request's compilation
    /// (`TCE_CALIBRATION` at service start); `None` keeps the paper's
    /// abstract unit costs.  Part of both cache keys via
    /// [`tce_calib::CostRates::canon`].
    calibration: Option<tce_calib::CostRates>,
}

/// Synthesis-cache sizing defaults: enough distinct (program, options)
/// pairs to keep a benchmark suite warm, sharded like the plan cache.
pub const DEFAULT_SYNTH_CACHE_CAP: usize = 64;
/// Default shard count of the synthesis cache.
pub const DEFAULT_SYNTH_CACHE_SHARDS: usize = 8;

impl Default for PipelineHandler {
    fn default() -> Self {
        Self::new(DEFAULT_SYNTH_CACHE_CAP, DEFAULT_SYNTH_CACHE_SHARDS)
    }
}

impl PipelineHandler {
    /// A handler whose synthesis cache holds `capacity` compiled programs
    /// over `shards` independently locked shards (the response memo gets
    /// four entries per compiled program — seed/thread variants).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self {
            cache: ShardedLru::new(capacity, shards),
            responses: ShardedLru::new(capacity.saturating_mul(4), shards),
            calibration: None,
        }
    }

    /// Apply measured cost rates to every request compiled by this
    /// handler (the served analogue of `tce --calibration FILE`).
    #[must_use]
    pub fn with_calibration(mut self, rates: Option<tce_calib::CostRates>) -> Self {
        self.calibration = rates;
        self
    }

    /// Compile `program` under `cfg`, memoized.  Returns the cached
    /// synthesis (failures are cached too — recompiling a bad program
    /// would deterministically fail again) and whether it was a hit.
    fn synthesis(
        &self,
        program: &str,
        cfg: &SynthesisConfig,
    ) -> (Arc<Result<Synthesis, String>>, bool) {
        let canon = format!(
            "memory-limit={};cache={:?};calib={:?}",
            cfg.memory_limit,
            cfg.cache_elements,
            cfg.calibration.as_ref().map(tce_calib::CostRates::canon)
        );
        let key = (program.to_string(), canon);
        self.cache
            .get_or_insert_with(&key, || synthesize(program, cfg).map_err(|e| e.to_string()))
    }
}

impl Handler for PipelineHandler {
    fn run(&self, program: &str, opts: &[(String, String)]) -> Result<String, String> {
        let _span = tce_trace::span("serve.pipeline");
        let (mut cfg, run) = parse_run_options(opts)?;
        cfg.calibration = self.calibration.clone();
        let canon = format!(
            "memory-limit={};cache={:?};seed={};threads={:?};schedule={};calib={:?}",
            cfg.memory_limit,
            cfg.cache_elements,
            run.seed,
            run.threads,
            run.schedule,
            cfg.calibration.as_ref().map(tce_calib::CostRates::canon)
        );
        let response_key = (program.to_string(), canon);
        let (reply, _hit) = self.responses.get_or_insert_with(&response_key, || {
            let (synth, _hit) = self.synthesis(program, &cfg);
            let syn = match synth.as_ref() {
                Ok(s) => s,
                Err(e) => return Err(e.clone()),
            };
            let owned = bind_random_inputs(syn, run.seed);
            let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
            let funcs = bind_functions(syn, run.seed);
            let exec_opts = match run.threads {
                Some(t) => ExecOptions::with_threads(t),
                None => ExecOptions::default(),
            }
            .with_schedule(run.schedule);
            syn.execute_opts(&inputs, &funcs, &exec_opts)
                .map_err(|e| format!("execution failed: {e}"))
                .map(|results| format_results(syn, &results))
        });
        reply.as_ref().clone()
    }

    fn stats(&self) -> Vec<(String, String)> {
        let synth = self.cache.stats();
        let plan = tce_tensor::plan_cache_stats();
        let resp = self.responses.stats();
        let mut out = vec![
            ("resp_hits".to_string(), resp.hits.to_string()),
            ("resp_misses".to_string(), resp.misses.to_string()),
            ("synth_hits".to_string(), synth.hits.to_string()),
            ("synth_misses".to_string(), synth.misses.to_string()),
            ("synth_evictions".to_string(), synth.evictions.to_string()),
            ("synth_len".to_string(), self.cache.len().to_string()),
            (
                "synth_shards".to_string(),
                self.cache.shard_count().to_string(),
            ),
            ("plan_hits".to_string(), plan.0.to_string()),
            ("plan_misses".to_string(), plan.1.to_string()),
            ("plan_evictions".to_string(), plan.2.to_string()),
            (
                "plan_shards".to_string(),
                tce_tensor::plan_cache_shards().to_string(),
            ),
        ];
        for (i, (h, m, e)) in tce_tensor::plan_cache_shard_stats().iter().enumerate() {
            out.push((format!("plan_shard{i}"), format!("{h}/{m}/{e}")));
        }
        let (bh, bm, be) = tce_tensor::bufpool_stats();
        out.push(("bufpool_hits".to_string(), bh.to_string()));
        out.push(("bufpool_misses".to_string(), bm.to_string()));
        out.push(("bufpool_evictions".to_string(), be.to_string()));
        out.push((
            "bufpool_retained".to_string(),
            tce_tensor::bufpool_retained_elements().to_string(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section2_source;

    #[test]
    fn handler_result_matches_direct_pipeline() {
        let handler = PipelineHandler::default();
        let src = section2_source(4);
        let served = handler
            .run(&src, &[("seed".to_string(), "7".to_string())])
            .unwrap();

        let syn = synthesize(&src, &SynthesisConfig::default()).unwrap();
        let owned = bind_random_inputs(&syn, 7);
        let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
        let funcs = bind_functions(&syn, 7);
        let results = syn
            .execute_opts(&inputs, &funcs, &ExecOptions::default())
            .unwrap();
        assert_eq!(served, format_results(&syn, &results));
        assert!(served.ends_with("OK"));
    }

    #[test]
    fn graph_schedule_reply_is_byte_identical_to_seq() {
        let handler = PipelineHandler::default();
        let src = section2_source(4);
        let seq = handler.run(&src, &[]).unwrap();
        let graph = handler
            .run(&src, &[("schedule".to_string(), "graph".to_string())])
            .unwrap();
        assert_eq!(seq, graph);
        // Distinct schedules are distinct response-memo keys.
        assert_eq!(handler.responses.stats().misses, 2);
    }

    #[test]
    fn repeat_request_hits_the_synthesis_cache() {
        let handler = PipelineHandler::default();
        let src = section2_source(4);
        handler.run(&src, &[]).unwrap();
        // An identical repeat is a response-memo hit: synthesis untouched.
        handler.run(&src, &[]).unwrap();
        // A different seed misses the memo but reuses the compilation.
        handler
            .run(&src, &[("seed".to_string(), "9".to_string())])
            .unwrap();
        let resp = handler.responses.stats();
        assert_eq!((resp.misses, resp.hits), (2, 1));
        let stats = handler.cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        // But a different memory limit is a different compilation.
        handler
            .run(&src, &[("memory-limit".to_string(), "4096".to_string())])
            .unwrap();
        assert_eq!(handler.cache.stats().misses, 2);
    }

    #[test]
    fn bad_options_fail_with_one_line_diagnostics() {
        let handler = PipelineHandler::default();
        let src = "range N = 2; index i : N; tensor A(N); tensor B(N); B[i] = A[i];";
        for (k, v) in [
            ("threads", "0"),
            ("threads", "banana"),
            ("seed", "-1"),
            ("memory-limit", "lots"),
            ("cache", "x"),
            ("schedule", "bogus"),
            ("no-such-option", "1"),
        ] {
            let err = handler
                .run(src, &[(k.to_string(), v.to_string())])
                .unwrap_err();
            assert!(!err.contains('\n'), "{k}={v}: multi-line: {err}");
        }
        // And a program that does not parse is a clean (cached) error.
        let err = handler.run("range N = ;", &[]).unwrap_err();
        let err2 = handler.run("range N = ;", &[]).unwrap_err();
        assert_eq!(err, err2);
    }
}
