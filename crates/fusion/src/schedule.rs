//! Executable schedules for fused trees: the loop/zero/produce skeleton of
//! the fused program, without scalar statements.
//!
//! [`crate::codegen`] lowers a [`FusionConfig`] all the way to a scalar
//! loop program for the interpreter.  The fused *executor*
//! (`tce_exec::fusedexec`) instead wants only the outer fused chain loops —
//! each node's private loops stay inside a single high-performance sliced
//! GETT call (the BLAS-slicing strategy of Peise et al.).  This module
//! compiles a configuration into that skeleton: a [`FusionSchedule`] whose
//! steps are the fused chain loops ([`ScheduleStep::Loop`]), per-iteration
//! re-initializations of accumulating intermediates ([`ScheduleStep::Zero`])
//! and node productions ([`ScheduleStep::Produce`]).
//!
//! The placement rules are identical to codegen (and therefore validated
//! transitively by the interpreter differential tests):
//!
//! * a node's production sits inside every chain whose scope contains the
//!   node — those chain indices are the node's *pinned* set, fixed by the
//!   surrounding loops while the production runs on slices;
//! * the zero-initialization of an accumulating intermediate sits inside
//!   exactly the chains running through the node's parent edge;
//! * within any loop body, components are ordered by the highest
//!   evaluation rank they contain (producers before consumers).

use crate::chains::{chains_of, Chain};
use crate::config::{is_fusable_producer, FusionConfig};
use std::collections::HashMap;
use tce_ir::{IndexSet, IndexVar, NodeId, OpKind, OpTree};

/// One step of a fused execution schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleStep {
    /// A fused chain loop over all values of `index`.
    Loop {
        /// The source index this loop iterates.
        index: IndexVar,
        /// Steps executed once per iteration.
        body: Vec<ScheduleStep>,
    },
    /// Re-zero the (reduced) array of an accumulating contraction node.
    Zero(NodeId),
    /// Run the node's contraction (or function evaluation) for the current
    /// values of its pinned indices, on slices of its operands.
    Produce(NodeId),
}

/// A compiled fused schedule: the step tree plus, per node, the set of
/// indices pinned by enclosing fused loops at its production site.
#[derive(Debug, Clone)]
pub struct FusionSchedule {
    /// Top-level steps, in execution order.
    pub steps: Vec<ScheduleStep>,
    /// `pinned[n]` = indices of the chains whose scope contains node `n`
    /// (empty for nodes that are not fusable producers).  These are
    /// exactly the loop variables in scope at the node's `Produce` step.
    pub pinned: Vec<IndexSet>,
}

/// Compile `config` into an executable fused schedule for `tree`.
///
/// Returns an error if the configuration is illegal for the tree.
pub fn fusion_schedule(tree: &OpTree, config: &FusionConfig) -> Result<FusionSchedule, String> {
    config.check(tree)?;
    let parents = tree.parents();
    let rank: Vec<usize> = {
        let mut r = vec![0usize; tree.len()];
        for (i, id) in tree.postorder().into_iter().enumerate() {
            r[id.0 as usize] = i;
        }
        r
    };

    // Fusion groups: connected components over fused edges.
    let mut group_of: Vec<usize> = (0..tree.len()).collect();
    fn find(uf: &mut [usize], mut i: usize) -> usize {
        while uf[i] != i {
            uf[i] = uf[uf[i]];
            i = uf[i];
        }
        i
    }
    for id in tree.postorder() {
        if id != tree.root && !config.get(id).is_empty() {
            let u = parents[id.0 as usize].unwrap();
            let (a, b) = (
                find(&mut group_of, id.0 as usize),
                find(&mut group_of, u.0 as usize),
            );
            group_of[a] = b;
        }
    }
    let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for id in tree.postorder() {
        if is_fusable_producer(tree, id) {
            let g = find(&mut group_of, id.0 as usize);
            groups.entry(g).or_default().push(id);
        }
    }
    let mut group_list: Vec<Vec<NodeId>> = groups.into_values().collect();
    group_list.sort_by_key(|g| g.iter().map(|n| rank[n.0 as usize]).max().unwrap());

    let chains = chains_of(tree, config);
    let mut pinned = vec![IndexSet::EMPTY; tree.len()];
    for chain in &chains {
        for &n in &chain.scope {
            pinned[n.0 as usize] = pinned[n.0 as usize].union(chain.index.singleton());
        }
    }

    let mut steps = Vec::new();
    for group in group_list {
        schedule_group(tree, &chains, &group, &rank, &parents, &mut steps);
    }
    Ok(FusionSchedule { steps, pinned })
}

/// An emission item: a production or initialization at a laminar position.
struct Item {
    /// (evaluation rank, 0 = init / 1 = production) — ordering by it places
    /// initializations and producers before consumers.
    key: (usize, u8),
    /// Chains that must be open around this item.
    chain_set: Vec<usize>,
    step: ScheduleStep,
}

fn schedule_group(
    tree: &OpTree,
    all_chains: &[Chain],
    group: &[NodeId],
    rank: &[usize],
    parents: &[Option<NodeId>],
    out: &mut Vec<ScheduleStep>,
) {
    let in_group = |n: NodeId| group.contains(&n);
    let chains: Vec<usize> = all_chains
        .iter()
        .enumerate()
        .filter(|(_, c)| c.scope.iter().any(|&n| in_group(n)))
        .map(|(ci, _)| ci)
        .collect();
    let chain_contains = |ci: usize, n: NodeId| all_chains[ci].scope.contains(&n);

    // --- build items ---
    let mut items: Vec<Item> = Vec::new();
    for &v in group {
        let cv: Vec<usize> = chains
            .iter()
            .copied()
            .filter(|&ci| chain_contains(ci, v))
            .collect();
        items.push(Item {
            key: (rank[v.0 as usize], 1),
            chain_set: cv.clone(),
            step: ScheduleStep::Produce(v),
        });
        // Initialization of accumulating intermediates (contractions): the
        // chains through v's parent edge.  Empty (top of a group, or the
        // root) → a single zero-fill before the group.
        if matches!(tree.node(v).kind, OpKind::Contract { .. }) {
            let init_chains: Vec<usize> = match parents[v.0 as usize] {
                Some(u) if v != tree.root => cv
                    .iter()
                    .copied()
                    .filter(|&ci| chain_contains(ci, u))
                    .collect(),
                _ => Vec::new(),
            };
            items.push(Item {
                key: (rank[v.0 as usize], 0),
                chain_set: init_chains,
                step: ScheduleStep::Zero(v),
            });
        }
    }

    // --- laminar forest over the group's chains (same rules as codegen) ---
    let mut order: Vec<usize> = chains.clone();
    order.sort_by_key(|&ci| {
        (
            std::cmp::Reverse(all_chains[ci].scope.len()),
            all_chains[ci].index,
        )
    });
    let mut forest_parent: HashMap<usize, Option<usize>> = HashMap::new();
    for (pos, &ci) in order.iter().enumerate() {
        let mut best: Option<usize> = None;
        for &cj in order[..pos].iter() {
            let scope_i = &all_chains[ci].scope;
            let scope_j = &all_chains[cj].scope;
            if scope_i.iter().all(|n| scope_j.contains(n)) {
                best = Some(match best {
                    None => cj,
                    // Later-placed equal scopes win, so equal scopes form a
                    // path rather than siblings.
                    Some(b) if scope_j.len() <= all_chains[b].scope.len() => cj,
                    Some(b) => b,
                });
            }
        }
        forest_parent.insert(ci, best);
    }
    let mut depth: HashMap<usize, usize> = HashMap::new();
    for &ci in &order {
        let mut d = 0;
        let mut cur = forest_parent[&ci];
        while let Some(c) = cur {
            d += 1;
            cur = forest_parent[&c];
        }
        depth.insert(ci, d);
    }

    // --- attach items and emit recursively ---
    enum Node {
        Chain(usize),
        Item(usize),
    }
    let mut children: HashMap<Option<usize>, Vec<Node>> = HashMap::new();
    for &ci in &order {
        children
            .entry(forest_parent[&ci])
            .or_default()
            .push(Node::Chain(ci));
    }
    for (ii, item) in items.iter().enumerate() {
        let pos = item.chain_set.iter().copied().max_by_key(|ci| depth[ci]);
        children.entry(pos).or_default().push(Node::Item(ii));
    }

    fn max_key(
        pos: Option<usize>,
        children: &HashMap<Option<usize>, Vec<Node>>,
        items: &[Item],
    ) -> (usize, u8) {
        let mut best = (0usize, 0u8);
        if let Some(nodes) = children.get(&pos) {
            for n in nodes {
                let k = match n {
                    Node::Item(ii) => items[*ii].key,
                    Node::Chain(ci) => max_key(Some(*ci), children, items),
                };
                if k > best {
                    best = k;
                }
            }
        }
        best
    }

    fn emit(
        pos: Option<usize>,
        children: &HashMap<Option<usize>, Vec<Node>>,
        items: &[Item],
        all_chains: &[Chain],
    ) -> Vec<ScheduleStep> {
        let mut ordered: Vec<(&Node, (usize, u8))> = children
            .get(&pos)
            .map(|ns| {
                ns.iter()
                    .map(|n| {
                        let k = match n {
                            Node::Item(ii) => items[*ii].key,
                            Node::Chain(ci) => max_key(Some(*ci), children, items),
                        };
                        (n, k)
                    })
                    .collect()
            })
            .unwrap_or_default();
        ordered.sort_by_key(|&(_, k)| k);
        let mut out = Vec::new();
        for (n, _) in ordered {
            match n {
                Node::Item(ii) => out.push(items[*ii].step.clone()),
                Node::Chain(ci) => out.push(ScheduleStep::Loop {
                    index: all_chains[*ci].index,
                    body: emit(Some(*ci), children, items, all_chains),
                }),
            }
        }
        out
    }

    out.extend(emit(None, &children, &items, all_chains));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests::fig1;
    use crate::memmin::memmin_dp;
    use tce_ir::IndexSpace;

    /// Render a schedule compactly for structural assertions.
    fn render(steps: &[ScheduleStep], space: &IndexSpace, out: &mut String) {
        for s in steps {
            match s {
                ScheduleStep::Loop { index, body } => {
                    out.push_str(&format!("for {} {{ ", space.var_name(*index)));
                    render(body, space, out);
                    out.push_str("} ");
                }
                ScheduleStep::Zero(n) => out.push_str(&format!("zero {} ", n.0)),
                ScheduleStep::Produce(n) => out.push_str(&format!("produce {} ", n.0)),
            }
        }
    }

    #[test]
    fn fig1c_schedule_matches_codegen_structure() {
        let (space, tree, t1, t2) = fig1(4);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        cfg.set(t2, space.parse_set("b,c").unwrap());
        let sched = fusion_schedule(&tree, &cfg).unwrap();
        let mut text = String::new();
        render(&sched.steps, &space, &mut text);
        // Mirror of codegen's Fig 1(c) program, private loops elided:
        //   S = 0; for b,c { T2 = 0; for d,f { T1 = 0; T1 += …; T2 += … };
        //   S += … }
        let expect = format!(
            "zero {root} for b {{ for c {{ zero {t2} for d {{ for f {{ \
             zero {t1} produce {t1} produce {t2} }} }} produce {root} }} }} ",
            root = tree.root.0,
            t1 = t1.0,
            t2 = t2.0
        );
        assert_eq!(text, expect);
        assert_eq!(
            sched.pinned[t1.0 as usize],
            space.parse_set("b,c,d,f").unwrap()
        );
        assert_eq!(
            sched.pinned[t2.0 as usize],
            space.parse_set("b,c,d,f").unwrap()
        );
        assert_eq!(
            sched.pinned[tree.root.0 as usize],
            space.parse_set("b,c").unwrap()
        );
    }

    #[test]
    fn unfused_schedule_is_flat_in_rank_order() {
        let (_space, tree, t1, t2) = fig1(3);
        let cfg = FusionConfig::unfused(&tree);
        let sched = fusion_schedule(&tree, &cfg).unwrap();
        let expect = vec![
            ScheduleStep::Zero(t1),
            ScheduleStep::Produce(t1),
            ScheduleStep::Zero(t2),
            ScheduleStep::Produce(t2),
            ScheduleStep::Zero(tree.root),
            ScheduleStep::Produce(tree.root),
        ];
        assert_eq!(sched.steps, expect);
        assert!(sched.pinned.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn memmin_schedule_is_legal_and_pins_fused_indices() {
        let (space, tree, t1, t2) = fig1(5);
        let r = memmin_dp(&tree, &space);
        let sched = fusion_schedule(&tree, &r.config).unwrap();
        // Every fused index of a node must be pinned at its production.
        for id in tree.postorder() {
            if id != tree.root && is_fusable_producer(&tree, id) {
                assert!(
                    r.config.get(id).is_subset(sched.pinned[id.0 as usize]),
                    "node {} fused set not pinned",
                    id.0
                );
            }
        }
        let _ = (t1, t2);
    }

    #[test]
    fn illegal_config_is_rejected() {
        let (space, tree, t1, t2) = fig1(3);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t2, space.parse_set("b,c,j,k").unwrap());
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        assert!(fusion_schedule(&tree, &cfg).is_err());
    }
}
