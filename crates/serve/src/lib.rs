//! # tce-serve — a concurrent compile-and-execute service
//!
//! A dependency-free (std-only) TCP service that keeps one process warm
//! across many tensor-contraction compilations, so the sharded GETT plan
//! cache and the compiled-[`Synthesis`] cache amortize: the second request
//! for the same expression skips the whole Fig. 5 pipeline.
//!
//! The crate is deliberately **core-agnostic**: it knows the line protocol
//! ([`protocol`]), a generic sharded LRU ([`cache`]), and the threaded
//! server loop ([`server`]) — what a `run` request *means* is injected as
//! a [`Handler`].  `tce-core` wires its `synthesize` pipeline in (see
//! `tce_core::serve`), and the `tce serve` subcommand exposes it on the
//! command line.  This direction keeps the dependency graph acyclic:
//! `core → serve`, never back.
//!
//! Protocol: one line per request, one line per response (newlines and
//! spaces inside values are backslash-escaped).  Robustness: a bounded
//! admission queue sheds load with a `busy` reply, every `run` is bounded
//! by a wall-clock timeout and isolated by `catch_unwind`, and `shutdown`
//! (or SIGTERM) drains the queue before the listener exits.
//!
//! [`Synthesis`]: ../tce_core/struct.Synthesis.html
//! [`Handler`]: server::Handler
//!
//! ```
//! use std::sync::Arc;
//! use tce_serve::{Handler, Server, ServeConfig};
//!
//! struct Echo;
//! impl Handler for Echo {
//!     fn run(&self, program: &str, _opts: &[(String, String)]) -> Result<String, String> {
//!         Ok(format!("echo {program}"))
//!     }
//! }
//! let server = Server::bind(&ServeConfig::default(), Arc::new(Echo)).unwrap();
//! let addr = server.local_addr();
//! let handle = server.spawn();
//! let reply = tce_serve::client::request(&addr.to_string(), "ping").unwrap();
//! assert_eq!(reply, "ok pong");
//! handle.shutdown();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, ShardedLru};
pub use protocol::{escape, parse_request, unescape, Request};
pub use server::{Handler, ServeConfig, Server, ServerHandle, ServerStats};
