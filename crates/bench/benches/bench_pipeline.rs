//! Micro-benchmark: the whole synthesis pipeline (supports
//! experiment E11 — the cost of planning itself, which the paper argues
//! replaces weeks-to-months of manual development).

use tce_bench::harness::{black_box, Criterion};
use tce_bench::{criterion_group, criterion_main};
use tce_core::dist::Machine;
use tce_core::locality::MemoryHierarchy;
use tce_core::par::ProcessorGrid;
use tce_core::scenarios::section2_source;
use tce_core::{synthesize, SynthesisConfig};

fn bench(c: &mut Criterion) {
    let src = section2_source(8);
    c.bench_function("synthesize_section2_basic", |b| {
        b.iter(|| synthesize(black_box(&src), &SynthesisConfig::default()).unwrap())
    });

    let full = SynthesisConfig {
        memory_limit: u128::MAX,
        cache_elements: Some(512),
        hierarchy: MemoryHierarchy::cache_and_disk(512, 1 << 24),
        machine: Some(Machine {
            grid: ProcessorGrid::new(vec![2, 2]),
            word_cost: 1,
        }),
        calibration: None,
    };
    c.bench_function("synthesize_section2_all_stages", |b| {
        b.iter(|| synthesize(black_box(&src), &full).unwrap())
    });

    let mm = "
        range N = 32;
        index i, j, k : N;
        tensor A(N, N); tensor B(N, N); tensor S(N, N);
        S[i,j] = sum[k] A[i,k] * B[k,j];
    ";
    c.bench_function("synthesize_matmul", |b| {
        b.iter(|| synthesize(black_box(mm), &SynthesisConfig::default()).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
