//! # tce-core — the synthesis system
//!
//! End-to-end reproduction of Baumgartner et al., *"A Performance
//! Optimization Framework for Compilation of Tensor Contraction
//! Expressions into Parallel Programs"* (IPDPS 2002): compile a high-level
//! tensor-contraction specification and run every optimization stage of
//! the paper's Fig. 5 — operation minimization, fusion-based memory
//! minimization, space-time trade-off, data-locality blocking, and data
//! distribution — producing an executable loop program plus per-stage
//! reports.
//!
//! ```
//! use tce_core::{synthesize, SynthesisConfig};
//! let syn = synthesize("
//!     range N = 4;
//!     index i, j, k : N;
//!     tensor A(N, N); tensor B(N, N); tensor S(N, N);
//!     S[i,j] = sum[k] A[i,k] * B[k,j];
//! ", &SynthesisConfig::default()).unwrap();
//! assert_eq!(syn.plans.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod pipeline;
pub mod scenarios;
pub mod serve;

pub use pipeline::{
    hierarchy_from_rates, record_prediction, synthesize, synthesize_program, CseSummary,
    DistExecSummary, FusedExecSummary, FusedTermReport, Synthesis, SynthesisConfig, SynthesisError,
    TermPlan,
};
pub use tce_exec::{ExecError, ExecOptions, Schedule};

// Re-export the stage crates so downstream users need only one dependency.
pub use tce_calib as calib;
pub use tce_dist as dist;
pub use tce_exec as exec;
pub use tce_fusion as fusion;
pub use tce_ir as ir;
pub use tce_lang as lang;
pub use tce_locality as locality;
pub use tce_loops as loops;
pub use tce_opmin as opmin;
pub use tce_par as par;
pub use tce_serve as serving;
pub use tce_spacetime as spacetime;
pub use tce_tensor as tensor;
