//! exp_fused — the fused-slice executor vs. full materialization.
//!
//! Runs the §2 CCSD term and the A3A energy scenario through
//! `tce_exec::execute_tree_fused` at the unfused (full-materialization)
//! and memmin-optimal fusion configurations, and reports wall time,
//! measured vs. modeled peak intermediate live-set (which must agree
//! **exactly**), sliced-contraction counts and integral evaluations,
//! alongside the operator-tree GETT executor as the correctness oracle.
//! Writes the measurements to `BENCH_fused.json`.
//!
//! ```text
//! exp_fused [--out BENCH_fused.json] [--threads T]
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;
use tce_bench::tables::{fmt_u, Table};
use tce_core::exec::{execute_tree_fused, execute_tree_opts, ExecOptions};
use tce_core::fusion::{memmin_dp, FusionConfig};
use tce_core::ir::{IndexSpace, OpTree, TensorId};
use tce_core::scenarios::{section2_source, A3AScenario};
use tce_core::tensor::{IntegralFn, Tensor};
use tce_core::{synthesize, SynthesisConfig};

struct Case {
    name: &'static str,
    extent: usize,
    space: IndexSpace,
    tree: OpTree,
    inputs: Vec<(TensorId, Tensor)>,
    funcs: HashMap<String, IntegralFn>,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    // The §2 CCSD term at the paper's N = 6 and a larger N = 10.
    for n in [6usize, 10] {
        let syn = synthesize(&section2_source(n), &SynthesisConfig::default()).expect("synthesis");
        let plan = &syn.plans[0];
        let shape = [n; 4];
        let inputs: Vec<(TensorId, Tensor)> = ["A", "B", "C", "D"]
            .iter()
            .enumerate()
            .map(|(q, nm)| {
                (
                    syn.program.tensors.by_name(nm).unwrap(),
                    Tensor::random(&shape, 7 + q as u64),
                )
            })
            .collect();
        out.push(Case {
            name: "ccsd_section2",
            extent: n,
            space: syn.program.space.clone(),
            tree: plan.tree.clone(),
            inputs,
            funcs: HashMap::new(),
        });
    }
    // The A3A energy at the Fig. 4 extents (V = 8, O = 4).
    let sc = A3AScenario::new(8, 4, 100);
    let amps = sc.amplitudes(11);
    out.push(Case {
        name: "a3a_energy",
        extent: 8,
        space: sc.space.clone(),
        tree: sc.tree.clone(),
        inputs: vec![(sc.tensors.by_name("T").unwrap(), amps)],
        funcs: sc.functions(),
    });
    out
}

fn main() {
    let mut out_path = "BENCH_fused.json".to_string();
    let mut threads = tce_core::par::default_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    println!("exp_fused: fused-slice execution vs. full materialization\n");
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fused\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cases\": [");

    let all = cases();
    let n_entries = all.len() * 2;
    let mut entry = 0usize;
    for case in &all {
        let inputs: HashMap<TensorId, &Tensor> =
            case.inputs.iter().map(|(id, t)| (*id, t)).collect();
        let opts = ExecOptions::with_threads(threads);
        // Oracle: the operator-tree executor (every array materialized).
        let oracle = execute_tree_opts(&case.tree, &case.space, &inputs, &case.funcs, &opts)
            .expect("oracle execution");
        let memmin = memmin_dp(&case.tree, &case.space);
        let configs = [
            ("unfused", FusionConfig::unfused(&case.tree)),
            ("memmin", memmin.config.clone()),
        ];
        let mut table = Table::new(&[
            "config",
            "wall (s)",
            "peak live",
            "modeled",
            "sliced GETTs",
            "integral evals",
        ]);
        for (cfg_name, config) in &configs {
            let start = Instant::now();
            let report =
                execute_tree_fused(&case.tree, &case.space, config, &inputs, &case.funcs, &opts)
                    .expect("fused execution");
            let wall = start.elapsed().as_secs_f64();
            assert_eq!(
                report.peak_live_elements, report.modeled_elements,
                "{} [{cfg_name}]: measured peak diverged from the memmin model",
                case.name
            );
            let diff = report.result.max_abs_diff(&oracle);
            let scale = oracle.data().iter().fold(1.0f64, |m, x| m.max(x.abs()));
            assert!(
                diff <= 1e-10 * scale,
                "{} [{cfg_name}]: diverged from oracle by {diff:e}",
                case.name
            );
            table.row(&[
                cfg_name.to_string(),
                format!("{wall:.4}"),
                fmt_u(report.peak_live_elements),
                fmt_u(report.modeled_elements),
                fmt_u(report.sliced_contractions as u128),
                fmt_u(report.func_evals as u128),
            ]);
            entry += 1;
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"case\": \"{}\",", case.name);
            let _ = writeln!(json, "      \"extent\": {},", case.extent);
            let _ = writeln!(json, "      \"config\": \"{cfg_name}\",");
            let _ = writeln!(json, "      \"wall_secs\": {wall:.6},");
            let _ = writeln!(
                json,
                "      \"peak_live_elements\": {},",
                report.peak_live_elements
            );
            let _ = writeln!(
                json,
                "      \"modeled_elements\": {},",
                report.modeled_elements
            );
            let _ = writeln!(
                json,
                "      \"sliced_contractions\": {},",
                report.sliced_contractions
            );
            let _ = writeln!(json, "      \"func_evals\": {}", report.func_evals);
            let _ = writeln!(json, "    }}{}", if entry < n_entries { "," } else { "" });
        }
        let shrink = {
            let full = configs[0].1.temp_memory(&case.tree, &case.space);
            let fused = memmin.memory;
            format!("{full} → {fused} elements")
        };
        println!(
            "{} (extent {}): peak measured == modeled; memmin shrinks {}",
            case.name, case.extent, shrink
        );
        println!("{}", table.render());
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("measurements written to {out_path}");
}
