//! Sparse tensor storage and sparse-dense contraction.
//!
//! The high-level language declares "symmetry and sparsity of matrices"
//! (paper §4) as optimization-relevant facts.  This module provides the
//! storage substrate for sparse operands — sorted-COO over the row-major
//! flat offset — a sparse×dense contraction kernel, and the first-order
//! cost model (operations scale with the sparse operand's density) that
//! the reports use.  Fill-in of *intermediates* is not modeled: a
//! contraction result is materialized dense, which is the conservative
//! choice the paper's framework also makes (sparsity annotations inform
//! costs; storage stays dense).

use crate::contract::BinaryContraction;
use crate::dense::Tensor;
use tce_ir::rng::Rng;
use tce_ir::{IndexSet, IndexSpace, IndexVar};

/// A sparse tensor in coordinate form, sorted by row-major flat offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor {
    shape: Vec<usize>,
    /// `(flat offset, value)`, strictly increasing offsets, no explicit
    /// zeros.
    entries: Vec<(usize, f64)>,
}

impl SparseTensor {
    /// Build from a dense tensor, dropping entries with `|x| ≤ threshold`.
    pub fn from_dense(t: &Tensor, threshold: f64) -> Self {
        let entries = t
            .data()
            .iter()
            .enumerate()
            .filter(|(_, &x)| x.abs() > threshold)
            .map(|(off, &x)| (off, x))
            .collect();
        Self {
            shape: t.shape().to_vec(),
            entries,
        }
    }

    /// A random sparse tensor with approximately the given density.
    pub fn random(shape: &[usize], density: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density in [0, 1]");
        let mut rng = Rng::new(seed);
        let total: usize = shape.iter().product::<usize>().max(1);
        let mut entries = Vec::new();
        for off in 0..total {
            if rng.bool_with(density) {
                entries.push((off, rng.f64_in(-1.0, 1.0)));
            }
        }
        Self {
            shape: shape.to_vec(),
            entries,
        }
    }

    /// Shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of stored entries.
    pub fn density(&self) -> f64 {
        let total: usize = self.shape.iter().product::<usize>().max(1);
        self.nnz() as f64 / total as f64
    }

    /// Densify.
    pub fn to_dense(&self) -> Tensor {
        let mut t = Tensor::zeros(&self.shape);
        for &(off, v) in &self.entries {
            t.data_mut()[off] = v;
        }
        t
    }

    /// Element read (zero when absent).
    pub fn get(&self, idx: &[usize]) -> f64 {
        let off = Tensor::zeros(&self.shape).offset(idx);
        match self.entries.binary_search_by_key(&off, |e| e.0) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Iterate `(multi-index, value)` over stored entries.
    pub fn iter_entries(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        let shape = self.shape.clone();
        self.entries.iter().map(move |&(mut off, v)| {
            let mut idx = vec![0usize; shape.len()];
            for d in (0..shape.len()).rev() {
                idx[d] = off % shape[d];
                off /= shape[d];
            }
            (idx, v)
        })
    }
}

/// Sparse×dense contraction: `out[o…] = Σ a[ia…]·b[ib…]` where `a` is
/// sparse.  Work is `nnz(a) · Π extents(loops ∖ dims(a))` — proportional
/// to the sparse operand's density, which is the point of declaring it.
pub fn contract_sparse_dense(
    spec: &BinaryContraction,
    space: &IndexSpace,
    a: &SparseTensor,
    b: &Tensor,
) -> Tensor {
    spec.validate().expect("invalid contraction");
    let sa = IndexSet::from_vars(spec.a.iter().copied());
    let sb = IndexSet::from_vars(spec.b.iter().copied());
    let so = IndexSet::from_vars(spec.out.iter().copied());
    // Loop indices not bound by a's entry.
    let free: Vec<IndexVar> = sa.union(sb).union(so).minus(sa).iter().collect();
    let free_shape: Vec<usize> = free.iter().map(|&v| space.extent(v)).collect();
    let out_shape: Vec<usize> = spec.out.iter().map(|&v| space.extent(v)).collect();
    let mut out = Tensor::zeros(&out_shape);

    // Position of each var: either in a's dims (bound per entry) or in the
    // free odometer.
    let mut env = vec![0usize; IndexSet::MAX_VARS];
    let total_free: usize = free_shape.iter().product::<usize>().max(1);
    let mut b_idx = vec![0usize; spec.b.len()];
    let mut o_idx = vec![0usize; spec.out.len()];
    for (a_idx, a_val) in a.iter_entries() {
        for (d, &v) in spec.a.iter().enumerate() {
            env[v.0 as usize] = a_idx[d];
        }
        let mut f_idx = vec![0usize; free.len()];
        for _ in 0..total_free {
            for (d, &v) in free.iter().enumerate() {
                env[v.0 as usize] = f_idx[d];
            }
            for (d, &v) in spec.b.iter().enumerate() {
                b_idx[d] = env[v.0 as usize];
            }
            for (d, &v) in spec.out.iter().enumerate() {
                o_idx[d] = env[v.0 as usize];
            }
            out.add_assign_at(&o_idx, a_val * b.get(&b_idx));
            Tensor::advance(&mut f_idx, &free_shape);
        }
    }
    out
}

/// First-order operation estimate for a contraction with a sparse left
/// operand of the given density: `2 · density · Π extents(loop space)`.
pub fn sparse_contraction_ops(spec: &BinaryContraction, space: &IndexSpace, density: f64) -> f64 {
    let sa = IndexSet::from_vars(spec.a.iter().copied());
    let sb = IndexSet::from_vars(spec.b.iter().copied());
    2.0 * density * space.iteration_points(sa.union(sb)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2() -> (IndexSpace, IndexVar, IndexVar, IndexVar) {
        let mut sp = IndexSpace::new();
        let r = sp.add_range("N", 6);
        let i = sp.add_var("i", r);
        let j = sp.add_var("j", r);
        let k = sp.add_var("k", r);
        (sp, i, j, k)
    }

    #[test]
    fn dense_roundtrip() {
        let t = Tensor::random(&[4, 5], 1);
        let s = SparseTensor::from_dense(&t, 0.0);
        assert_eq!(s.nnz(), 20);
        assert!(s.to_dense().approx_eq(&t, 0.0));
        // Thresholding drops small entries.
        let s2 = SparseTensor::from_dense(&t, 0.5);
        assert!(s2.nnz() < 20);
        assert!((s2.density() - s2.nnz() as f64 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn get_and_iter_agree() {
        let s = SparseTensor::random(&[3, 4], 0.4, 7);
        let d = s.to_dense();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(s.get(&[i, j]), d.get(&[i, j]));
            }
        }
        let mut count = 0;
        for (idx, v) in s.iter_entries() {
            assert_eq!(d.get(&idx), v);
            assert_ne!(v, 0.0);
            count += 1;
        }
        assert_eq!(count, s.nnz());
    }

    #[test]
    fn sparse_dense_matmul_matches_dense() {
        let (sp, i, j, k) = space2();
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let a_dense = Tensor::random(&[6, 6], 2);
        let a = SparseTensor::from_dense(&a_dense, 0.6); // ~40% kept
        let b = Tensor::random(&[6, 6], 3);
        let got = contract_sparse_dense(&spec, &sp, &a, &b);
        let expect = crate::contract_naive(&spec, &sp, &a.to_dense(), &b);
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn sparse_with_batch_and_outer_dims() {
        let (sp, i, j, k) = space2();
        // out[i,j,k] = a[i,k]·b[j] (outer product with batch k).
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![j],
            out: vec![i, j, k],
        };
        let a = SparseTensor::random(&[6, 6], 0.3, 4);
        let b = Tensor::random(&[6], 5);
        let got = contract_sparse_dense(&spec, &sp, &a, &b);
        let expect = crate::contract_naive(&spec, &sp, &a.to_dense(), &b);
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn empty_sparse_gives_zero() {
        let (sp, i, j, k) = space2();
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let a = SparseTensor::random(&[6, 6], 0.0, 1);
        assert_eq!(a.nnz(), 0);
        let b = Tensor::random(&[6, 6], 2);
        let got = contract_sparse_dense(&spec, &sp, &a, &b);
        assert_eq!(got.sum(), 0.0);
    }

    #[test]
    fn cost_model_scales_with_density() {
        let (sp, i, j, k) = space2();
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let dense_ops = spec.flops(&sp) as f64;
        assert_eq!(sparse_contraction_ops(&spec, &sp, 1.0), dense_ops);
        assert_eq!(sparse_contraction_ops(&spec, &sp, 0.25), dense_ops / 4.0);
        assert_eq!(sparse_contraction_ops(&spec, &sp, 0.0), 0.0);
    }

    #[test]
    fn density_bounds_checked() {
        let r = std::panic::catch_unwind(|| SparseTensor::random(&[2, 2], 1.5, 1));
        assert!(r.is_err());
    }
}
