//! Symbolic cost polynomials over named index ranges.
//!
//! The paper reports operation counts and array sizes as formulas in the
//! range extents — `4·N¹⁰`, `6·N⁶` (§2), `C_i·V³·O`, `V⁵·O` (Fig. 2) — and
//! the whole point of the framework is to compare such formulas *before*
//! committing to code.  [`CostPoly`] is a sparse multivariate polynomial
//! whose variables are the declared ranges of an [`IndexSpace`], used by the
//! operator-tree cost model, the memory-minimization DP and the experiment
//! harnesses to print paper-style tables next to measured counts.

use crate::index::{IndexSet, IndexSpace, RangeId};
use std::collections::BTreeMap;
use std::fmt;

/// Exponent vector: exponent of each range, indexed by `RangeId.0`.
/// Trailing zeros are trimmed so `V¹` has the same key length regardless of
/// how many ranges are declared after `V`.
type Expo = Vec<u16>;

fn trim(mut e: Expo) -> Expo {
    while e.last() == Some(&0) {
        e.pop();
    }
    e
}

/// A sparse polynomial `Σ coeff · Π rangeᵉ` with `f64` coefficients.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostPoly {
    terms: BTreeMap<Expo, f64>,
}

impl CostPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        let mut p = Self::zero();
        if c != 0.0 {
            p.terms.insert(Vec::new(), c);
        }
        p
    }

    /// The monomial `range¹`.
    pub fn range(r: RangeId) -> Self {
        Self::range_pow(r, 1)
    }

    /// The monomial `rangeᵏ`.
    pub fn range_pow(r: RangeId, k: u16) -> Self {
        let mut p = Self::zero();
        if k == 0 {
            return Self::constant(1.0);
        }
        let mut e = vec![0u16; r.0 as usize + 1];
        e[r.0 as usize] = k;
        p.terms.insert(e, 1.0);
        p
    }

    /// The product of the ranges of every variable in `set` — the symbolic
    /// size of the iteration space spanned by `set` (e.g. `{a,c,i,k}` with
    /// `a,c : V` and `i,k : O` gives `V²·O²`).  The empty set gives `1`.
    pub fn extent_product(set: IndexSet, space: &IndexSpace) -> Self {
        let mut e: Expo = Vec::new();
        for v in set.iter() {
            let r = space.range_of(v).0 as usize;
            if e.len() <= r {
                e.resize(r + 1, 0);
            }
            e[r] += 1;
        }
        let mut p = Self::zero();
        p.terms.insert(trim(e), 1.0);
        p
    }

    /// True if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of monomials.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// `self + other`.
    pub fn add(&self, other: &CostPoly) -> CostPoly {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place addition.
    pub fn add_assign(&mut self, other: &CostPoly) {
        for (e, c) in &other.terms {
            let entry = self.terms.entry(e.clone()).or_insert(0.0);
            *entry += c;
            if *entry == 0.0 {
                self.terms.remove(e);
            }
        }
    }

    /// `self · other`.
    pub fn mul(&self, other: &CostPoly) -> CostPoly {
        let mut out = CostPoly::zero();
        for (e1, c1) in &self.terms {
            for (e2, c2) in &other.terms {
                let n = e1.len().max(e2.len());
                let mut e = vec![0u16; n];
                for (i, slot) in e.iter_mut().enumerate() {
                    *slot = e1.get(i).copied().unwrap_or(0) + e2.get(i).copied().unwrap_or(0);
                }
                *out.terms.entry(trim(e)).or_insert(0.0) += c1 * c2;
            }
        }
        out.terms.retain(|_, c| *c != 0.0);
        out
    }

    /// `self · k`.
    pub fn scale(&self, k: f64) -> CostPoly {
        if k == 0.0 {
            return CostPoly::zero();
        }
        CostPoly {
            terms: self.terms.iter().map(|(e, c)| (e.clone(), c * k)).collect(),
        }
    }

    /// Evaluate at the extents currently set in `space`.
    pub fn eval(&self, space: &IndexSpace) -> f64 {
        self.terms
            .iter()
            .map(|(e, c)| {
                c * e
                    .iter()
                    .enumerate()
                    .map(|(r, &k)| (space.range_extent(RangeId(r as u16)) as f64).powi(k as i32))
                    .product::<f64>()
            })
            .sum()
    }

    /// Total degree of the highest-degree monomial (0 for constants and for
    /// the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|e| e.iter().map(|&k| k as u32).sum())
            .max()
            .unwrap_or(0)
    }

    /// Render using the names in `space`, highest total degree first:
    /// `6·V^4·O^2 + 2·V`.
    pub fn display<'a>(&'a self, space: &'a IndexSpace) -> PolyDisplay<'a> {
        PolyDisplay { poly: self, space }
    }
}

/// Helper returned by [`CostPoly::display`].
pub struct PolyDisplay<'a> {
    poly: &'a CostPoly,
    space: &'a IndexSpace,
}

impl fmt::Display for PolyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.poly.terms.is_empty() {
            return write!(f, "0");
        }
        let mut entries: Vec<(&Expo, &f64)> = self.poly.terms.iter().collect();
        entries.sort_by_key(|(e, _)| std::cmp::Reverse(e.iter().map(|&k| k as u32).sum::<u32>()));
        for (i, (e, c)) in entries.into_iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            let is_const = e.iter().all(|&k| k == 0);
            if *c != 1.0 || is_const {
                if *c == c.trunc() && c.abs() < 1e15 {
                    write!(f, "{}", *c as i64)?;
                } else {
                    write!(f, "{c}")?;
                }
                if !is_const {
                    write!(f, "·")?;
                }
            }
            let mut first = true;
            for (r, &k) in e.iter().enumerate() {
                if k == 0 {
                    continue;
                }
                if !first {
                    write!(f, "·")?;
                }
                first = false;
                write!(f, "{}", self.space.range_name(RangeId(r as u16)))?;
                if k > 1 {
                    write!(f, "^{k}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexSpace;

    fn space() -> (IndexSpace, RangeId, RangeId) {
        let mut sp = IndexSpace::new();
        let v = sp.add_range("V", 3000);
        let o = sp.add_range("O", 100);
        (sp, v, o)
    }

    #[test]
    fn constant_and_zero() {
        let (sp, _, _) = space();
        assert!(CostPoly::zero().is_zero());
        assert!(CostPoly::constant(0.0).is_zero());
        assert_eq!(CostPoly::constant(7.0).eval(&sp), 7.0);
        assert_eq!(CostPoly::zero().eval(&sp), 0.0);
    }

    #[test]
    fn monomials_eval() {
        let (sp, v, o) = space();
        assert_eq!(CostPoly::range(v).eval(&sp), 3000.0);
        assert_eq!(CostPoly::range_pow(o, 2).eval(&sp), 100.0 * 100.0);
        assert_eq!(CostPoly::range_pow(v, 0).eval(&sp), 1.0);
    }

    #[test]
    fn add_and_cancel() {
        let (sp, v, _) = space();
        let p = CostPoly::range(v).add(&CostPoly::range(v).scale(-1.0));
        assert!(p.is_zero());
        let q = CostPoly::range(v).add(&CostPoly::constant(1.0));
        assert_eq!(q.eval(&sp), 3001.0);
        assert_eq!(q.num_terms(), 2);
    }

    #[test]
    fn mul_matches_eval() {
        let (sp, v, o) = space();
        let p = CostPoly::range(v).add(&CostPoly::range(o)); // V + O
        let q = p.mul(&p); // V^2 + 2VO + O^2
        assert_eq!(q.num_terms(), 3);
        let expect = (3000.0f64 + 100.0).powi(2);
        assert_eq!(q.eval(&sp), expect);
        assert_eq!(q.degree(), 2);
    }

    #[test]
    fn extent_product_counts_multiplicity() {
        let (mut sp, v, o) = space();
        let a = sp.add_var("a", v);
        let b = sp.add_var("b", v);
        let i = sp.add_var("i", o);
        let set = IndexSet::from_vars([a, b, i]);
        let p = CostPoly::extent_product(set, &sp);
        assert_eq!(p.eval(&sp), 3000.0 * 3000.0 * 100.0);
        assert_eq!(format!("{}", p.display(&sp)), "V^2·O");
        let empty = CostPoly::extent_product(IndexSet::EMPTY, &sp);
        assert_eq!(empty.eval(&sp), 1.0);
    }

    #[test]
    fn display_formats_like_paper() {
        let (sp, v, o) = space();
        // 6·V^4·O^2 + 2·V
        let p = CostPoly::range_pow(v, 4)
            .mul(&CostPoly::range_pow(o, 2))
            .scale(6.0)
            .add(&CostPoly::range(v).scale(2.0));
        assert_eq!(format!("{}", p.display(&sp)), "6·V^4·O^2 + 2·V");
        assert_eq!(format!("{}", CostPoly::zero().display(&sp)), "0");
        assert_eq!(format!("{}", CostPoly::constant(4.0).display(&sp)), "4");
        assert_eq!(format!("{}", CostPoly::range(v).display(&sp)), "V");
    }

    #[test]
    fn eval_consistency_under_rescale() {
        let (mut sp, v, o) = space();
        let p = CostPoly::range_pow(v, 3)
            .mul(&CostPoly::range(o))
            .scale(2.0);
        assert_eq!(p.eval(&sp), 2.0 * 3000.0f64.powi(3) * 100.0);
        sp.set_extent(v, 10);
        sp.set_extent(o, 2);
        assert_eq!(p.eval(&sp), 2.0 * 1000.0 * 2.0);
    }
}
