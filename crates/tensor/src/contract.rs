//! Binary contraction kernels.
//!
//! A contraction node of an operator tree multiplies two operands and sums
//! over their shared "contracted" indices.  Two implementations are
//! provided:
//!
//! * [`contract_naive`] — direct nested loops over the combined iteration
//!   space (oracle);
//! * [`contract_gemm`] — permute both operands so the contraction becomes a
//!   matrix multiplication `[M×K]·[K×N]`, run a cache-blocked GEMM, and
//!   reshape back.  This is how the synthesized code's innermost
//!   contractions are executed efficiently.
//!
//! Index bookkeeping uses `tce-ir` index variables so kernels plug directly
//! into operator trees.

use crate::dense::Tensor;
use tce_ir::{IndexSet, IndexSpace, IndexVar};

/// Description of one binary contraction: `out[o…] = Σ_{contracted}
/// a[ia…]·b[ib…]`.  Output indices must each appear in at least one
/// operand; contracted indices are those appearing in the operands but not
/// in the output.
#[derive(Debug, Clone)]
pub struct BinaryContraction {
    /// Index variables of operand `a`, dimension order.
    pub a: Vec<IndexVar>,
    /// Index variables of operand `b`, dimension order.
    pub b: Vec<IndexVar>,
    /// Output index variables, dimension order.
    pub out: Vec<IndexVar>,
}

impl BinaryContraction {
    /// The contracted (summation) index set.
    pub fn contracted(&self) -> IndexSet {
        let a = IndexSet::from_vars(self.a.iter().copied());
        let b = IndexSet::from_vars(self.b.iter().copied());
        let out = IndexSet::from_vars(self.out.iter().copied());
        a.union(b).minus(out)
    }

    /// Validate: no repeats within an operand, output ⊆ a ∪ b.
    pub fn validate(&self) -> Result<(), String> {
        let a = IndexSet::from_vars(self.a.iter().copied());
        let b = IndexSet::from_vars(self.b.iter().copied());
        let out = IndexSet::from_vars(self.out.iter().copied());
        if a.len() != self.a.len() || b.len() != self.b.len() || out.len() != self.out.len() {
            return Err("repeated index within one operand".into());
        }
        if !out.is_subset(a.union(b)) {
            return Err("output index missing from both operands".into());
        }
        Ok(())
    }

    /// Flop count (multiply + add per combined iteration point).
    pub fn flops(&self, space: &IndexSpace) -> u128 {
        let a = IndexSet::from_vars(self.a.iter().copied());
        let b = IndexSet::from_vars(self.b.iter().copied());
        space.iteration_points(a.union(b)).saturating_mul(2)
    }
}

/// Naive nested-loop contraction (correctness oracle).
pub fn contract_naive(
    spec: &BinaryContraction,
    space: &IndexSpace,
    a: &Tensor,
    b: &Tensor,
) -> Tensor {
    spec.validate().expect("invalid contraction");
    let all: Vec<IndexVar> = {
        let sa = IndexSet::from_vars(spec.a.iter().copied());
        let sb = IndexSet::from_vars(spec.b.iter().copied());
        sa.union(sb).iter().collect()
    };
    let mut pos = [usize::MAX; IndexSet::MAX_VARS];
    for (p, v) in all.iter().enumerate() {
        pos[v.0 as usize] = p;
    }
    let shape: Vec<usize> = all.iter().map(|&v| space.extent(v)).collect();
    let out_shape: Vec<usize> = spec.out.iter().map(|&v| space.extent(v)).collect();
    let mut out = Tensor::zeros(&out_shape);

    let a_pos: Vec<usize> = spec.a.iter().map(|&v| pos[v.0 as usize]).collect();
    let b_pos: Vec<usize> = spec.b.iter().map(|&v| pos[v.0 as usize]).collect();
    let o_pos: Vec<usize> = spec.out.iter().map(|&v| pos[v.0 as usize]).collect();

    let total: usize = shape.iter().product::<usize>().max(1);
    let mut idx = vec![0usize; all.len()];
    let mut ai = vec![0usize; spec.a.len()];
    let mut bi = vec![0usize; spec.b.len()];
    let mut oi = vec![0usize; spec.out.len()];
    for _ in 0..total {
        for (d, &p) in a_pos.iter().enumerate() {
            ai[d] = idx[p];
        }
        for (d, &p) in b_pos.iter().enumerate() {
            bi[d] = idx[p];
        }
        for (d, &p) in o_pos.iter().enumerate() {
            oi[d] = idx[p];
        }
        out.add_assign_at(&oi, a.get(&ai) * b.get(&bi));
        Tensor::advance(&mut idx, &shape);
    }
    out
}

/// Sum a tensor over the dims of `spec.a` (or `.b`) that appear neither in
/// the other operand nor in the output; returns the reduced tensor and its
/// remaining index list.
pub(crate) fn reduce_exclusive(
    spec: &BinaryContraction,
    space: &IndexSpace,
    t: &Tensor,
    is_a: bool,
) -> (Tensor, Vec<IndexVar>) {
    let (own, other) = if is_a {
        (&spec.a, &spec.b)
    } else {
        (&spec.b, &spec.a)
    };
    let other_set = IndexSet::from_vars(other.iter().copied());
    let out_set = IndexSet::from_vars(spec.out.iter().copied());
    let keep_set = other_set.union(out_set);
    let keep: Vec<IndexVar> = own
        .iter()
        .copied()
        .filter(|v| keep_set.contains(*v))
        .collect();
    if keep.len() == own.len() {
        return (t.clone(), keep);
    }
    let keep_shape: Vec<usize> = keep.iter().map(|&v| space.extent(v)).collect();
    let mut out = Tensor::zeros(&keep_shape);
    let full_shape: Vec<usize> = own.iter().map(|&v| space.extent(v)).collect();
    let keep_pos: Vec<usize> = keep
        .iter()
        .map(|v| own.iter().position(|d| d == v).unwrap())
        .collect();
    let mut idx = vec![0usize; own.len()];
    let mut kidx = vec![0usize; keep.len()];
    for off in 0..t.len() {
        for (d, &p) in keep_pos.iter().enumerate() {
            kidx[d] = idx[p];
        }
        out.add_assign_at(&kidx, t.data()[off]);
        Tensor::advance(&mut idx, &full_shape);
    }
    (out, keep)
}

/// Cache-blocked `C += A·B` on row-major buffers, `A: m×k`, `B: k×n`.
/// Block size chosen so three blocks fit comfortably in a typical L1.
pub fn gemm_blocked(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    const BLK: usize = 48;
    for i0 in (0..m).step_by(BLK) {
        let i1 = (i0 + BLK).min(m);
        for k0 in (0..k).step_by(BLK) {
            let k1 = (k0 + BLK).min(k);
            for j0 in (0..n).step_by(BLK) {
                let j1 = (j0 + BLK).min(n);
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let aik = a[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j1];
                        let crow = &mut c[i * n + j0..i * n + j1];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// GEMM-based contraction: permutes `a` to `[M, K]`, `b` to `[K, N]` where
/// `M` are `a`-only output indices, `N` are `b`-only output indices and `K`
/// the contracted indices; "batch" indices (output indices present in both
/// operands) are looped outermost.
pub fn contract_gemm(
    spec: &BinaryContraction,
    space: &IndexSpace,
    a: &Tensor,
    b: &Tensor,
) -> Tensor {
    spec.validate().expect("invalid contraction");
    // Pre-reduce summation indices that appear in only one operand (they
    // cannot enter the shared K dimension of the GEMM view).
    let (a, spec_a) = reduce_exclusive(spec, space, a, true);
    let (b, spec_b) = reduce_exclusive(spec, space, b, false);
    let spec = &BinaryContraction {
        a: spec_a,
        b: spec_b,
        out: spec.out.clone(),
    };
    let (a, b) = (&a, &b);
    let sa = IndexSet::from_vars(spec.a.iter().copied());
    let sb = IndexSet::from_vars(spec.b.iter().copied());
    let so = IndexSet::from_vars(spec.out.iter().copied());
    let contracted = spec.contracted();
    let batch = so.inter(sa).inter(sb);
    let m_set = so.inter(sa).minus(batch);
    let n_set = so.inter(sb).minus(batch);

    let batch_v: Vec<IndexVar> = batch.iter().collect();
    let m_v: Vec<IndexVar> = m_set.iter().collect();
    let n_v: Vec<IndexVar> = n_set.iter().collect();
    let k_v: Vec<IndexVar> = contracted.iter().collect();

    let perm_for = |dims: &[IndexVar], order: &[IndexVar]| -> Vec<usize> {
        order
            .iter()
            .map(|v| {
                dims.iter()
                    .position(|d| d == v)
                    .expect("index not in operand")
            })
            .collect()
    };

    // Permute a to [batch…, m…, k…] and b to [batch…, k…, n…].
    let a_order: Vec<IndexVar> = batch_v
        .iter()
        .chain(m_v.iter())
        .chain(k_v.iter())
        .copied()
        .collect();
    let b_order: Vec<IndexVar> = batch_v
        .iter()
        .chain(k_v.iter())
        .chain(n_v.iter())
        .copied()
        .collect();
    let ap = a.permute(&perm_for(&spec.a, &a_order));
    let bp = b.permute(&perm_for(&spec.b, &b_order));

    let ext = |vs: &[IndexVar]| -> usize {
        vs.iter()
            .map(|&v| space.extent(v))
            .product::<usize>()
            .max(1)
    };
    let (nb, m, n, k) = (ext(&batch_v), ext(&m_v), ext(&n_v), ext(&k_v));

    // C in [batch…, m…, n…] order.
    let mut c_flat = vec![0.0f64; nb * m * n];
    for bi in 0..nb {
        gemm_blocked(
            &ap.data()[bi * m * k..(bi + 1) * m * k],
            &bp.data()[bi * k * n..(bi + 1) * k * n],
            &mut c_flat[bi * m * n..(bi + 1) * m * n],
            m,
            k,
            n,
        );
    }
    let c_order: Vec<IndexVar> = batch_v
        .iter()
        .chain(m_v.iter())
        .chain(n_v.iter())
        .copied()
        .collect();
    let c_shape: Vec<usize> = c_order.iter().map(|&v| space.extent(v)).collect();
    let c = Tensor::from_vec(&c_shape, c_flat);
    // Permute from [batch,m,n] order to the requested output order.
    let out_perm: Vec<usize> = spec
        .out
        .iter()
        .map(|v| c_order.iter().position(|d| d == v).unwrap())
        .collect();
    c.permute(&out_perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(extents: &[(&str, usize)]) -> IndexSpace {
        let mut sp = IndexSpace::new();
        for (name, e) in extents {
            let r = sp.add_range(&format!("R{name}"), *e);
            sp.add_var(name, r);
        }
        sp
    }

    fn v(sp: &IndexSpace, n: &str) -> IndexVar {
        sp.var_by_name(n).unwrap()
    }

    #[test]
    fn gemm_blocked_matches_naive() {
        let (m, k, n) = (17, 23, 31);
        let a: Vec<f64> = (0..m * k).map(|i| (i % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..k * n).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut c = vec![0.0; m * n];
        gemm_blocked(&a, &b, &mut c, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                assert!((c[i * n + j] - acc).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let mut c = vec![1.0; 4];
        gemm_blocked(
            &[1.0, 0.0, 0.0, 1.0],
            &[2.0, 0.0, 0.0, 2.0],
            &mut c,
            2,
            2,
            2,
        );
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn contract_matmul_both_paths_agree() {
        let sp = space(&[("i", 5), ("j", 6), ("k", 7)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "i"), v(&sp, "k")],
            b: vec![v(&sp, "k"), v(&sp, "j")],
            out: vec![v(&sp, "i"), v(&sp, "j")],
        };
        let a = Tensor::random(&[5, 7], 1);
        let b = Tensor::random(&[7, 6], 2);
        let naive = contract_naive(&spec, &sp, &a, &b);
        let fast = contract_gemm(&spec, &sp, &a, &b);
        assert!(naive.approx_eq(&fast, 1e-10));
    }

    #[test]
    fn contract_with_batch_index() {
        // out[p,i,j] = Σ_k a[p,i,k] b[p,k,j] — batched matmul.
        let sp = space(&[("p", 3), ("i", 4), ("j", 5), ("k", 6)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "p"), v(&sp, "i"), v(&sp, "k")],
            b: vec![v(&sp, "p"), v(&sp, "k"), v(&sp, "j")],
            out: vec![v(&sp, "p"), v(&sp, "i"), v(&sp, "j")],
        };
        let a = Tensor::random(&[3, 4, 6], 3);
        let b = Tensor::random(&[3, 6, 5], 4);
        let naive = contract_naive(&spec, &sp, &a, &b);
        let fast = contract_gemm(&spec, &sp, &a, &b);
        assert!(naive.approx_eq(&fast, 1e-10));
    }

    #[test]
    fn contract_full_reduction_to_scalar() {
        let sp = space(&[("i", 4), ("j", 5)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "i"), v(&sp, "j")],
            b: vec![v(&sp, "i"), v(&sp, "j")],
            out: vec![],
        };
        let a = Tensor::random(&[4, 5], 5);
        let b = Tensor::random(&[4, 5], 6);
        let naive = contract_naive(&spec, &sp, &a, &b);
        let fast = contract_gemm(&spec, &sp, &a, &b);
        assert_eq!(naive.rank(), 0);
        assert!((naive.get(&[]) - fast.get(&[])).abs() < 1e-10);
    }

    #[test]
    fn contract_outer_product() {
        let sp = space(&[("i", 3), ("j", 4)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "i")],
            b: vec![v(&sp, "j")],
            out: vec![v(&sp, "j"), v(&sp, "i")], // transposed output order
        };
        let a = Tensor::random(&[3], 7);
        let b = Tensor::random(&[4], 8);
        let naive = contract_naive(&spec, &sp, &a, &b);
        let fast = contract_gemm(&spec, &sp, &a, &b);
        assert_eq!(naive.shape(), &[4, 3]);
        assert!(naive.approx_eq(&fast, 1e-12));
    }

    #[test]
    fn contract_4d_paper_shape() {
        // T1[b,c,d,f] = Σ_{e,l} B[b,e,f,l]·D[c,d,e,l] — the Fig 1(a) first
        // contraction at small extents.
        let sp = space(&[("b", 3), ("c", 3), ("d", 3), ("e", 3), ("f", 3), ("l", 3)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "b"), v(&sp, "e"), v(&sp, "f"), v(&sp, "l")],
            b: vec![v(&sp, "c"), v(&sp, "d"), v(&sp, "e"), v(&sp, "l")],
            out: vec![v(&sp, "b"), v(&sp, "c"), v(&sp, "d"), v(&sp, "f")],
        };
        let a = Tensor::random(&[3, 3, 3, 3], 9);
        let b = Tensor::random(&[3, 3, 3, 3], 10);
        let naive = contract_naive(&spec, &sp, &a, &b);
        let fast = contract_gemm(&spec, &sp, &a, &b);
        assert!(naive.approx_eq(&fast, 1e-10));
        assert_eq!(spec.flops(&sp), 2 * 3u128.pow(6));
        assert_eq!(spec.contracted().len(), 2);
    }

    #[test]
    fn validation_errors() {
        let sp = space(&[("i", 2), ("j", 2), ("k", 2)]);
        let bad_out = BinaryContraction {
            a: vec![v(&sp, "i")],
            b: vec![v(&sp, "j")],
            out: vec![v(&sp, "k")],
        };
        assert!(bad_out.validate().is_err());
        let repeated = BinaryContraction {
            a: vec![v(&sp, "i"), v(&sp, "i")],
            b: vec![v(&sp, "j")],
            out: vec![v(&sp, "j")],
        };
        assert!(repeated.validate().is_err());
    }
}
