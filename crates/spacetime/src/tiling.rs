//! Tiling of recomputation indices (paper §5, second step; Fig. 4).
//!
//! "Recomputation indices are split into tiling and intra-tile loop pairs.
//! By making intra-tile loops the inner-most loops, any recomputation only
//! needs to be performed once per iteration of the tiling loop in exchange
//! for increasing the storage requirements for temporaries in which the
//! dimension corresponding to the tiled loop had been eliminated."
//!
//! Model: tiling index `x` with block `Bₓ`
//! * divides every redundancy factor involving `x` from `Nₓ` to
//!   `⌈Nₓ/Bₓ⌉` (the child is re-executed once per tile), and
//! * multiplies by `Bₓ` the size of every temporary whose `x` dimension
//!   fusion had eliminated (it must now hold a block).
//!
//! `Bₓ = 1` recovers the fully-fused form (Fig. 3); `Bₓ = Nₓ` recovers the
//! unfused reuse (Fig. 2).  Tile sizes are searched over doubling values,
//! the same logarithmic search-space rule as the §6 locality search.

use crate::dp::{spacetime_dp, SpaceTimeConfig};
use std::collections::HashMap;
use tce_fusion::config::is_fusable_producer;
use tce_ir::{IndexSpace, IndexVar, OpTree};

/// Chosen tile sizes: `IndexVar.0 → B` (indices absent are untiled,
/// i.e. `B = 1`).
pub type Blocks = HashMap<u8, usize>;

/// Block size of `x` under `blocks` (default 1).
pub fn block_of(blocks: &Blocks, x: IndexVar) -> usize {
    blocks.get(&x.0).copied().unwrap_or(1)
}

/// Temporary memory under `cfg` with tile sizes `blocks`.
pub fn tiled_memory(
    tree: &OpTree,
    space: &IndexSpace,
    cfg: &SpaceTimeConfig,
    blocks: &Blocks,
) -> u128 {
    let mut total = 0u128;
    for id in tree.postorder() {
        if id == tree.root || !is_fusable_producer(tree, id) {
            continue;
        }
        let mut size = space.iteration_points(cfg.array_indices(tree, id));
        for x in cfg.fused[id.0 as usize].iter() {
            size = size.saturating_mul(block_of(blocks, x) as u128);
        }
        total = total.saturating_add(size);
    }
    total
}

/// Total operations under `cfg` with tile sizes `blocks`: each redundant
/// index contributes its tile count `⌈Nₓ/Bₓ⌉` instead of `Nₓ`.
pub fn tiled_ops(
    tree: &OpTree,
    space: &IndexSpace,
    cfg: &SpaceTimeConfig,
    blocks: &Blocks,
) -> u128 {
    cfg.total_ops_with(tree, space, &|r| {
        r.iter().fold(1u128, |acc, x| {
            acc.saturating_mul(space.extent(x).div_ceil(block_of(blocks, x)) as u128)
        })
    })
}

/// A tiling outcome.
#[derive(Debug, Clone)]
pub struct TilingResult {
    /// Chosen tile sizes.
    pub blocks: Blocks,
    /// Temporary memory at these tile sizes.
    pub memory: u128,
    /// Total operations at these tile sizes.
    pub ops: u128,
}

/// Doubling tile-size candidates for extent `n`: `1, 2, 4, …` then `n`.
pub fn doubling_candidates(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut b = 1usize;
    while b < n {
        out.push(b);
        b *= 2;
    }
    out.push(n);
    out
}

/// Search tile sizes (doubling per recomputation index) minimizing
/// operations subject to `memory ≤ mem_limit`.  Returns `None` if even the
/// minimum-memory tiling (`B = 1` everywhere) exceeds the limit.
pub fn search_tiles(
    tree: &OpTree,
    space: &IndexSpace,
    cfg: &SpaceTimeConfig,
    mem_limit: u128,
) -> Option<TilingResult> {
    let indices: Vec<IndexVar> = cfg.recomputation_indices().iter().collect();
    let mut best: Option<TilingResult> = None;
    let mut blocks = Blocks::new();

    #[allow(clippy::too_many_arguments)]
    fn rec(
        tree: &OpTree,
        space: &IndexSpace,
        cfg: &SpaceTimeConfig,
        mem_limit: u128,
        indices: &[IndexVar],
        i: usize,
        blocks: &mut Blocks,
        best: &mut Option<TilingResult>,
    ) {
        if i == indices.len() {
            tce_trace::counter("spacetime.tile_candidates", 1);
            let memory = tiled_memory(tree, space, cfg, blocks);
            if memory > mem_limit {
                return;
            }
            let ops = tiled_ops(tree, space, cfg, blocks);
            let better = match best {
                None => true,
                Some(b) => ops < b.ops || (ops == b.ops && memory < b.memory),
            };
            if better {
                *best = Some(TilingResult {
                    blocks: blocks.clone(),
                    memory,
                    ops,
                });
            }
            return;
        }
        let x = indices[i];
        for b in doubling_candidates(space.extent(x)) {
            blocks.insert(x.0, b);
            rec(tree, space, cfg, mem_limit, indices, i + 1, blocks, best);
        }
        blocks.remove(&x.0);
    }

    rec(
        tree,
        space,
        cfg,
        mem_limit,
        &indices,
        0,
        &mut blocks,
        &mut best,
    );
    best
}

/// The complete space-time trade-off (paper §5): run the
/// fusion/recomputation pareto DP, tile every frontier configuration, and
/// return the feasible combination with the fewest operations.
/// `Ok(None)` when no configuration fits in `mem_limit` even fully fused
/// and untiled; `Err` when the DP traceback cannot reconstruct a frontier
/// configuration.
pub fn spacetime_optimize(
    tree: &OpTree,
    space: &IndexSpace,
    mem_limit: u128,
) -> Result<Option<(SpaceTimeConfig, TilingResult)>, String> {
    let front = spacetime_dp(tree, space, usize::MAX)?;
    let mut best: Option<(SpaceTimeConfig, TilingResult)> = None;
    let mut frontier_points = 0u64;
    for point in front.points() {
        frontier_points += 1;
        if let Some(t) = search_tiles(tree, space, &point.tag, mem_limit) {
            let better = match &best {
                None => true,
                Some((_, b)) => t.ops < b.ops || (t.ops == b.ops && t.memory < b.memory),
            };
            if better {
                best = Some((point.tag.clone(), t));
            }
        }
    }
    if tce_trace::enabled() {
        tce_trace::counter("spacetime.frontier_points", frontier_points);
        if let Some((cfg, t)) = &best {
            // Recomputation cost: operations beyond the configuration's
            // recomputation-free baseline (B = N everywhere).
            let base = cfg.total_ops_with(tree, space, &|_| 1);
            tce_trace::counter_u128("spacetime.recomputation_ops", t.ops.saturating_sub(base));
            tce_trace::counter_u128("spacetime.memory", t.memory);
        }
    }
    Ok(best)
}

/// [`spacetime_optimize`] under a calibrated objective: instead of the
/// fewest abstract operations, pick the feasible frontier configuration
/// with the smallest *predicted time* `ops · flop_ns + memory · mem_ns`
/// (nanoseconds) — compute priced at the measured GEMM rate, temporary
/// storage priced at the measured memory bandwidth.  Tie-breaks fall
/// back to fewer ops, then less memory, so the choice is deterministic.
/// With no calibration profile loaded callers must keep using
/// [`spacetime_optimize`]; the unit-cost path stays bit-identical.
pub fn spacetime_optimize_rated(
    tree: &OpTree,
    space: &IndexSpace,
    mem_limit: u128,
    flop_ns: f64,
    mem_ns: f64,
) -> Result<Option<(SpaceTimeConfig, TilingResult)>, String> {
    let front = spacetime_dp(tree, space, usize::MAX)?;
    let mut best: Option<(f64, SpaceTimeConfig, TilingResult)> = None;
    let mut frontier_points = 0u64;
    for point in front.points() {
        frontier_points += 1;
        if let Some(t) = search_tiles(tree, space, &point.tag, mem_limit) {
            let time = t.ops as f64 * flop_ns + t.memory as f64 * mem_ns;
            let better = match &best {
                None => true,
                Some((bt, _, b)) => {
                    time < *bt
                        || (time == *bt
                            && (t.ops < b.ops || (t.ops == b.ops && t.memory < b.memory)))
                }
            };
            if better {
                best = Some((time, point.tag.clone(), t));
            }
        }
    }
    if tce_trace::enabled() {
        tce_trace::counter("spacetime.frontier_points", frontier_points);
        if let Some((time, cfg, t)) = &best {
            let base = cfg.total_ops_with(tree, space, &|_| 1);
            tce_trace::counter_u128("spacetime.recomputation_ops", t.ops.saturating_sub(base));
            tce_trace::counter_u128("spacetime.memory", t.memory);
            tce_trace::counter("spacetime.rated_ns", time.round().max(0.0) as u64);
        }
    }
    Ok(best.map(|(_, cfg, t)| (cfg, t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{IndexSet, NodeId};

    /// The A3A core (paper §3): Y = Σ_{b,k} T1(c,e,b,k)·T2(a,f,b,k) with
    /// T1/T2 integral leaves, X an input-like cheap leaf, E = Σ X·Y.
    fn a3a(v_ext: usize, o_ext: usize, ci: u64) -> (IndexSpace, OpTree, NodeId, NodeId) {
        let mut space = IndexSpace::new();
        let v = space.add_range("V", v_ext);
        let o = space.add_range("O", o_ext);
        let (a, c, e, f, b) = (
            space.add_var("a", v),
            space.add_var("c", v),
            space.add_var("e", v),
            space.add_var("f", v),
            space.add_var("b", v),
        );
        let k = space.add_var("k", o);
        let mut tree = OpTree::new();
        let t1 = tree.leaf_func("f1", vec![c, e, b, k], ci);
        let t2 = tree.leaf_func("f2", vec![a, f, b, k], ci);
        let y = tree.contract(t1, t2, IndexSet::from_vars([c, e, a, f]));
        let x = tree.leaf_func("fx", vec![a, e, c, f], 1);
        tree.contract(y, x, IndexSet::EMPTY);
        (space, tree, t1, t2)
    }

    /// The Fig-3 configuration: everything fully fused, T1/T2 redundant on
    /// their missing indices.
    fn fig3_config(space: &IndexSpace, tree: &OpTree, t1: NodeId, t2: NodeId) -> SpaceTimeConfig {
        let mut cfg = SpaceTimeConfig::unfused(tree);
        let y = match tree.node(tree.root).kind {
            tce_ir::OpKind::Contract { left, .. } => left,
            _ => unreachable!(),
        };
        let x = match tree.node(tree.root).kind {
            tce_ir::OpKind::Contract { right, .. } => right,
            _ => unreachable!(),
        };
        cfg.fused[y.0 as usize] = space.parse_set("c,e,a,f").unwrap();
        cfg.fused[x.0 as usize] = space.parse_set("a,e,c,f").unwrap();
        cfg.fused[t1.0 as usize] = space.parse_set("c,e,b,k").unwrap();
        cfg.redundant[t1.0 as usize] = space.parse_set("a,f").unwrap();
        cfg.fused[t2.0 as usize] = space.parse_set("a,f,b,k").unwrap();
        cfg.redundant[t2.0 as usize] = space.parse_set("c,e").unwrap();
        cfg
    }

    #[test]
    fn fig4_table_formulas() {
        // Paper Fig 4 table: space {X:B⁴, T1:B², T2:B², Y:B⁴}, time
        // {T1,T2: C_i·(V/B)²·V³·O}.
        let (v_ext, o_ext, ci) = (8usize, 2usize, 1000u64);
        let (space, tree, t1, t2) = a3a(v_ext, o_ext, ci);
        let cfg = fig3_config(&space, &tree, t1, t2);
        for b in [1usize, 2, 4, 8] {
            let mut blocks = Blocks::new();
            for x in cfg.recomputation_indices().iter() {
                blocks.insert(x.0, b);
            }
            let (vv, oo, c, bb) = (v_ext as u128, o_ext as u128, ci as u128, b as u128);
            // Memory: T1 = T2 = B² (c,e / a,f tiled), Y = B⁴, X = B⁴.
            assert_eq!(
                tiled_memory(&tree, &space, &cfg, &blocks),
                2 * bb * bb + 2 * bb.pow(4),
                "B = {b}"
            );
            // Ops: T1 = T2 = C_i·(V/B)²·V³·O; Y = 2·V⁵·O; X = V⁴; E = 2·V⁴.
            let expect = 2 * c * (vv / bb).pow(2) * vv.pow(3) * oo
                + 2 * vv.pow(5) * oo
                + vv.pow(4)
                + 2 * vv.pow(4);
            assert_eq!(tiled_ops(&tree, &space, &cfg, &blocks), expect, "B = {b}");
        }
    }

    #[test]
    fn tiling_trades_memory_for_recomputation_monotonically() {
        let (space, tree, t1, t2) = a3a(8, 2, 1000);
        let cfg = fig3_config(&space, &tree, t1, t2);
        let mut last_mem = 0u128;
        let mut last_ops = u128::MAX;
        for b in [1usize, 2, 4, 8] {
            let mut blocks = Blocks::new();
            for x in cfg.recomputation_indices().iter() {
                blocks.insert(x.0, b);
            }
            let mem = tiled_memory(&tree, &space, &cfg, &blocks);
            let ops = tiled_ops(&tree, &space, &cfg, &blocks);
            assert!(mem > last_mem);
            assert!(ops < last_ops);
            last_mem = mem;
            last_ops = ops;
        }
    }

    #[test]
    fn search_respects_memory_limit_and_minimizes_ops() {
        let (space, tree, t1, t2) = a3a(8, 2, 1000);
        let cfg = fig3_config(&space, &tree, t1, t2);
        // Limit that admits B=2 (2·4 + 2·16 = 40) but not B=4 (520).
        let r = search_tiles(&tree, &space, &cfg, 100).unwrap();
        assert!(r.memory <= 100);
        let mut b2 = Blocks::new();
        for x in cfg.recomputation_indices().iter() {
            b2.insert(x.0, 2);
        }
        assert!(r.ops <= tiled_ops(&tree, &space, &cfg, &b2));
        // Unlimited memory: tiles grow to eliminate recomputation.
        let r2 = search_tiles(&tree, &space, &cfg, u128::MAX).unwrap();
        assert!(r2.ops <= r.ops);
        // Impossible limit: even B=1 has 4 scalars.
        assert!(search_tiles(&tree, &space, &cfg, 3).is_none());
    }

    #[test]
    fn doubling_candidates_cover_extent() {
        assert_eq!(doubling_candidates(8), vec![1, 2, 4, 8]);
        assert_eq!(doubling_candidates(10), vec![1, 2, 4, 8, 10]);
        assert_eq!(doubling_candidates(1), vec![1]);
    }

    #[test]
    fn end_to_end_spacetime_optimize() {
        let (space, tree, _, _) = a3a(8, 2, 1000);
        // Generous limit: optimizer should avoid recomputation entirely
        // (ops = base cost).
        let unfused_ops = SpaceTimeConfig::unfused(&tree).total_ops(&tree, &space);
        let (cfg, t) = spacetime_optimize(&tree, &space, u128::MAX)
            .unwrap()
            .unwrap();
        assert_eq!(t.ops, unfused_ops);
        // Tight limit: must pay recomputation, stays within memory.
        let (cfg2, t2) = spacetime_optimize(&tree, &space, 50).unwrap().unwrap();
        assert!(t2.memory <= 50);
        assert!(t2.ops >= t.ops);
        let _ = (cfg, cfg2);
        // Infeasible limit.
        assert!(spacetime_optimize(&tree, &space, 2).unwrap().is_none());
    }
}
