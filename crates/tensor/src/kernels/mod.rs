//! Runtime-dispatched micro-kernels and cache-aware block sizing.
//!
//! The GETT engine's inner loops — the register-blocked GEMM kernel, the
//! panel packing copies, and the blocked permute — come in three
//! implementations selected once per process by CPUID:
//!
//! * [`KernelVariant::Scalar`] — the portable mul+add kernel (8×4
//!   register tile), bit-for-bit identical to the engine before SIMD
//!   dispatch existed.  It is the correctness oracle for the differential
//!   tests and the fallback on non-x86 targets.
//! * [`KernelVariant::Sse2`] — 128-bit SSE2 kernels (4×4 GEMM tile,
//!   2×2 in-register transpose).  Baseline for every x86-64 CPU.
//! * [`KernelVariant::Avx2`] — 256-bit AVX2+FMA kernels (8×6 GEMM tile
//!   holding twelve of sixteen ymm accumulators, 4×4 in-register
//!   transpose tiles composed into 8×8 blocks, vectorized unit-stride
//!   pack copies).
//!
//! Selection order: a programmatic override ([`set_override`], fed by the
//! `--kernel` CLI flag) beats the `TCE_KERNEL` environment variable,
//! which beats [`detect_best`].  Changing the active variant may change
//! floating-point rounding (FMA contracts the multiply-add), so results
//! across variants agree only to ~1e-10 relative; *within* a variant
//! every kernel stays bitwise deterministic at any thread count.
//!
//! On top of dispatch, [`BlockSizes::derive`] picks the GETT macro-tile
//! parameters MC/NC/KC from the detected cache hierarchy
//! ([`CacheInfo::detect`]: sysfs on Linux, fixed defaults elsewhere)
//! following the usual analytical model: the A micro-panel (MR×KC) and B
//! micro-panel (KC×NR) share L1, the packed A panel (MC×KC) sits in half
//! of L2, and the packed B panel (KC×NC) in a slice of L3.  The scalar
//! variant pins the legacy constants (MC=64, NC=64, KC=192) so its
//! results never move a bit.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
pub mod avx2;
pub mod scalar;
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
pub mod sse2;

/// Which micro-kernel implementation the GETT engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelVariant {
    /// Portable mul+add loops; the bitwise-stable oracle.
    Scalar,
    /// 128-bit SSE2 intrinsics.
    Sse2,
    /// 256-bit AVX2 + FMA intrinsics.
    Avx2,
}

/// All variants, weakest first.
pub const ALL_VARIANTS: [KernelVariant; 3] = [
    KernelVariant::Scalar,
    KernelVariant::Sse2,
    KernelVariant::Avx2,
];

impl KernelVariant {
    /// Stable lower-case name (`scalar`, `sse2`, `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Sse2 => "sse2",
            KernelVariant::Avx2 => "avx2",
        }
    }

    /// Parse a variant name as accepted by `TCE_KERNEL` / `--kernel`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(KernelVariant::Scalar),
            "sse2" => Ok(KernelVariant::Sse2),
            "avx2" => Ok(KernelVariant::Avx2),
            other => Err(format!(
                "unknown kernel variant `{other}` (expected scalar, sse2 or avx2)"
            )),
        }
    }

    /// GEMM register-tile rows (packed-A strip width).
    pub fn mr(self) -> usize {
        match self {
            KernelVariant::Scalar => 8,
            KernelVariant::Sse2 => 4,
            KernelVariant::Avx2 => 8,
        }
    }

    /// GEMM register-tile columns (packed-B strip width).
    pub fn nr(self) -> usize {
        match self {
            KernelVariant::Scalar => 4,
            KernelVariant::Sse2 => 4,
            KernelVariant::Avx2 => 6,
        }
    }
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether this host can execute `v`'s instruction set.
pub fn supported(v: KernelVariant) -> bool {
    match v {
        KernelVariant::Scalar => true,
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelVariant::Sse2 => is_x86_feature_detected!("sse2"),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelVariant::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => false,
    }
}

/// The strongest variant this host supports (runtime CPUID).
pub fn detect_best() -> KernelVariant {
    ALL_VARIANTS
        .into_iter()
        .rev()
        .find(|&v| supported(v))
        .unwrap_or(KernelVariant::Scalar)
}

/// Variants supported on this host, weakest first.
pub fn supported_variants() -> Vec<KernelVariant> {
    ALL_VARIANTS.into_iter().filter(|&v| supported(v)).collect()
}

/// Process-wide override: 0 = none, else variant discriminant + 1.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn code(v: KernelVariant) -> u8 {
    match v {
        KernelVariant::Scalar => 1,
        KernelVariant::Sse2 => 2,
        KernelVariant::Avx2 => 3,
    }
}

fn from_code(c: u8) -> Option<KernelVariant> {
    match c {
        1 => Some(KernelVariant::Scalar),
        2 => Some(KernelVariant::Sse2),
        3 => Some(KernelVariant::Avx2),
        _ => None,
    }
}

/// Force (or with `None`, clear) the active kernel variant.
///
/// Fails with a one-line message when the host cannot execute the
/// requested variant.  Used by the `--kernel` CLI flags and the
/// differential tests; takes precedence over `TCE_KERNEL`.
pub fn set_override(v: Option<KernelVariant>) -> Result<(), String> {
    match v {
        None => {
            OVERRIDE.store(0, Ordering::Relaxed);
            Ok(())
        }
        Some(v) => {
            if !supported(v) {
                return Err(unsupported_message(v));
            }
            OVERRIDE.store(code(v), Ordering::Relaxed);
            Ok(())
        }
    }
}

fn unsupported_message(v: KernelVariant) -> String {
    format!(
        "kernel variant `{v}` is not supported on this host (best supported: {})",
        detect_best()
    )
}

/// Parse `TCE_KERNEL` without applying it: `Ok(None)` when unset,
/// `Err` on an unknown name or an unsupported variant.  CLI entry points
/// call this up front so a bad value is a clean one-line diagnostic
/// instead of a mid-execution panic.
pub fn env_requested() -> Result<Option<KernelVariant>, String> {
    match std::env::var("TCE_KERNEL") {
        Err(_) => Ok(None),
        Ok(s) => {
            let v = KernelVariant::parse(&s).map_err(|e| format!("TCE_KERNEL: {e}"))?;
            if !supported(v) {
                return Err(format!("TCE_KERNEL: {}", unsupported_message(v)));
            }
            Ok(Some(v))
        }
    }
}

/// Default variant: `TCE_KERNEL` if set (resolved once), else the best
/// detected.  Panics with the one-line diagnostic on an invalid
/// `TCE_KERNEL`; binaries pre-validate via [`env_requested`].
fn default_variant() -> KernelVariant {
    static DEFAULT: OnceLock<KernelVariant> = OnceLock::new();
    *DEFAULT.get_or_init(|| match env_requested() {
        Ok(Some(v)) => v,
        Ok(None) => detect_best(),
        Err(e) => panic!("{e}"),
    })
}

/// The kernel variant the engine dispatches to right now.
pub fn active() -> KernelVariant {
    from_code(OVERRIDE.load(Ordering::Relaxed)).unwrap_or_else(default_variant)
}

/// Detected (or default) cache capacities in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// L1 data cache per core.
    pub l1d: usize,
    /// L2 cache per core.
    pub l2: usize,
    /// Last-level cache (shared).
    pub l3: usize,
}

/// Conservative defaults when a level cannot be detected.
const DEFAULT_CACHE: CacheInfo = CacheInfo {
    l1d: 32 * 1024,
    l2: 1024 * 1024,
    l3: 8 * 1024 * 1024,
};

/// Parse a sysfs cache size string (`48K`, `2048K`, `36M`, `1G`).
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

/// Plausibility window for a detected cache level, in bytes.  A sysfs
/// entry outside its window (a `0K` size from a stripped-down container,
/// a corrupt string, a hypervisor reporting nonsense) is treated as
/// undetected so the level keeps its [`DEFAULT_CACHE`] value and the
/// derived MC/KC/NC blocks stay sane.
fn plausible_level_size(level: u8, size: usize) -> bool {
    match level {
        1 => (4 << 10..=1 << 20).contains(&size),
        2 => (64 << 10..=64 << 20).contains(&size),
        3 => (256 << 10..=4 << 30).contains(&size),
        _ => false,
    }
}

impl CacheInfo {
    /// Build a hierarchy from raw sysfs-style `(level, type, size)`
    /// string triples, one per `indexN` directory.  Any entry that is
    /// missing, unparsable, an instruction cache, or has an implausible
    /// size (zero, or wildly out of range for its level) is skipped and
    /// that level keeps its [`DEFAULT_CACHE`] value, so the result is
    /// always usable.  Exposed so the fallback path is unit-testable
    /// with injected geometry strings.
    pub fn from_sysfs_entries<'a, I>(entries: I) -> CacheInfo
    where
        I: IntoIterator<Item = (Option<&'a str>, Option<&'a str>, Option<&'a str>)>,
    {
        let mut info = DEFAULT_CACHE;
        for (level, ctype, size) in entries {
            let level = level.and_then(|s| s.trim().parse::<u8>().ok());
            let size = size.and_then(parse_cache_size);
            let (Some(level), Some(ctype), Some(size)) = (level, ctype, size) else {
                continue;
            };
            if ctype.trim() == "Instruction" {
                continue;
            }
            if !plausible_level_size(level, size) {
                continue;
            }
            match level {
                1 => info.l1d = size,
                2 => info.l2 = size,
                3 => info.l3 = size,
                _ => {}
            }
        }
        info
    }

    /// Detect the hierarchy from `/sys/devices/system/cpu/cpu0/cache` on
    /// Linux; when sysfs is absent or malformed every undetectable level
    /// falls back to its [`DEFAULT_CACHE`] value (see
    /// [`CacheInfo::from_sysfs_entries`]), so the result is always
    /// usable.
    pub fn detect() -> CacheInfo {
        #[cfg(target_os = "linux")]
        {
            let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
            let mut raw: Vec<(Option<String>, Option<String>, Option<String>)> = Vec::new();
            if let Ok(entries) = std::fs::read_dir(base) {
                for entry in entries.flatten() {
                    let dir = entry.path();
                    if !dir
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("index"))
                    {
                        continue;
                    }
                    let read = |name: &str| std::fs::read_to_string(dir.join(name)).ok();
                    raw.push((read("level"), read("type"), read("size")));
                }
            }
            CacheInfo::from_sysfs_entries(
                raw.iter()
                    .map(|(l, t, s)| (l.as_deref(), t.as_deref(), s.as_deref())),
            )
        }
        #[cfg(not(target_os = "linux"))]
        DEFAULT_CACHE
    }
}

/// The process-wide detected cache hierarchy (detected once).
pub fn cache_info() -> CacheInfo {
    static INFO: OnceLock<CacheInfo> = OnceLock::new();
    *INFO.get_or_init(CacheInfo::detect)
}

/// GETT macro-tile parameters: the M×N macro-tile is `mc`×`nc` and each
/// packed panel pair covers `kc` summation steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Macro-tile height (multiple of the variant's MR).
    pub mc: usize,
    /// Macro-tile width (multiple of the variant's NR).
    pub nc: usize,
    /// K-block depth per packed panel.
    pub kc: usize,
}

/// Legacy constants the scalar engine shipped with; pinned so
/// `TCE_KERNEL=scalar` reproduces historical results bit for bit (the
/// K-grouping of partial sums affects rounding, so KC must not move).
const SCALAR_BLOCKS: BlockSizes = BlockSizes {
    mc: 64,
    nc: 64,
    kc: 192,
};

fn round_down(x: usize, q: usize) -> usize {
    (x / q * q).max(q)
}

impl BlockSizes {
    /// Derive block sizes for `variant` from `cache`:
    ///
    /// * `KC` keeps one A micro-panel (MR×KC) plus one B micro-panel
    ///   (KC×NR) inside half of L1 (clamped to 64..=384, multiple of 8);
    /// * `MC` keeps the packed A panel (MC×KC) inside half of L2
    ///   (clamped to MR..=512);
    /// * `NC` keeps the packed B panel (KC×NC) inside a 1/16 slice of
    ///   the shared L3 (clamped to NR..=1024).
    pub fn derive(variant: KernelVariant, cache: &CacheInfo) -> BlockSizes {
        if variant == KernelVariant::Scalar {
            return SCALAR_BLOCKS;
        }
        let w = std::mem::size_of::<f64>();
        let (mr, nr) = (variant.mr(), variant.nr());
        let kc = round_down((cache.l1d / 2 / (w * (mr + nr))).clamp(64, 384), 8);
        let mc = round_down((cache.l2 / 2 / (w * kc)).clamp(mr, 512), mr);
        let nc = round_down((cache.l3 / 16 / (w * kc)).clamp(nr, 1024), nr);
        BlockSizes { mc, nc, kc }
    }

    /// Shrink the blocks to a concrete plan geometry (`m`×`n`×`k`,
    /// rounded up to whole register strips) so small contractions do not
    /// allocate full-size pack buffers.  Shrinking MC/NC never changes
    /// results (tiles partition disjoint output); shrinking KC to ≥ k is
    /// also exact because the K loop already stops at `k`.
    pub fn clamp_to(self, variant: KernelVariant, m: usize, n: usize, k: usize) -> BlockSizes {
        let (mr, nr) = (variant.mr(), variant.nr());
        BlockSizes {
            mc: self.mc.min(m.div_ceil(mr).max(1) * mr),
            nc: self.nc.min(n.div_ceil(nr).max(1) * nr),
            kc: self.kc.min(k.max(1).div_ceil(8) * 8),
        }
    }
}

/// The full per-plan kernel configuration the GETT engine caches: which
/// variant, its register tile, and the cache-derived macro blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Dispatched instruction-set variant.
    pub variant: KernelVariant,
    /// Register-tile rows.
    pub mr: usize,
    /// Register-tile columns.
    pub nr: usize,
    /// Macro-tile blocks.
    pub blocks: BlockSizes,
}

impl KernelConfig {
    /// Select the configuration for `variant` on this host, clamped to
    /// plan geometry `m`×`n`×`k`.
    pub fn select(variant: KernelVariant, m: usize, n: usize, k: usize) -> KernelConfig {
        let blocks = BlockSizes::derive(variant, &cache_info()).clamp_to(variant, m, n, k);
        KernelConfig {
            variant,
            mr: variant.mr(),
            nr: variant.nr(),
            blocks,
        }
    }
}

/// `acc[r*nr + c] = Σ_k ap[k*mr + r] · bp[k*nr + c]` for the variant's
/// (MR, NR) register tile: one micro-kernel invocation over a `kb`-deep
/// packed panel pair.  `acc` must hold at least `mr*nr` elements; it is
/// overwritten, not accumulated into.
#[inline]
pub fn microkernel(cfg: &KernelConfig, ap: &[f64], bp: &[f64], kb: usize, acc: &mut [f64]) {
    match cfg.variant {
        KernelVariant::Scalar => scalar::microkernel_8x4(ap, bp, kb, acc),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: the variant was CPUID-checked at selection time.
        KernelVariant::Sse2 => unsafe { sse2::microkernel_4x4(ap, bp, kb, acc) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as above.
        KernelVariant::Avx2 => unsafe { avx2::microkernel_8x6(ap, bp, kb, acc) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => scalar::microkernel_8x4(ap, bp, kb, acc),
    }
}

/// Copy `src` into `dst` (equal lengths) with the variant's widest
/// vector moves — the unit-stride fast path of the pack routines.
#[inline]
pub fn copy_f64(variant: KernelVariant, dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    match variant {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: CPUID-checked at selection time.
        KernelVariant::Avx2 => unsafe { avx2::copy_f64(dst, src) },
        _ => dst.copy_from_slice(src),
    }
}

/// Transpose-structured tile copy used by the blocked permute:
/// `dst[iu*drs + il] = src[iu + il*scs]` for `iu < nu`, `il < nl` —
/// source columns are unit-stride, destination rows are unit-stride.
/// AVX2 runs 4×4 in-register transpose tiles (8×8 blocks two at a time),
/// SSE2 2×2 tiles, scalar a plain loop.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn transpose_tile(
    variant: KernelVariant,
    src: &[f64],
    dst: &mut [f64],
    s0: usize,
    d0: usize,
    nu: usize,
    nl: usize,
    scs: usize,
    drs: usize,
) {
    match variant {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: CPUID-checked at selection time.
        KernelVariant::Avx2 => unsafe { avx2::transpose_tile(src, dst, s0, d0, nu, nl, scs, drs) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as above.
        KernelVariant::Sse2 => unsafe { sse2::transpose_tile(src, dst, s0, d0, nu, nl, scs, drs) },
        _ => scalar::transpose_tile(src, dst, s0, d0, nu, nl, scs, drs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_names_round_trip() {
        for v in ALL_VARIANTS {
            assert_eq!(KernelVariant::parse(v.name()).unwrap(), v);
        }
        assert_eq!(KernelVariant::parse(" AVX2 ").unwrap(), KernelVariant::Avx2);
        assert!(KernelVariant::parse("avx512").is_err());
    }

    #[test]
    fn detect_best_is_supported_and_scalar_always_is() {
        assert!(supported(KernelVariant::Scalar));
        assert!(supported(detect_best()));
        assert!(supported_variants().contains(&KernelVariant::Scalar));
    }

    #[test]
    fn override_round_trip() {
        set_override(Some(KernelVariant::Scalar)).unwrap();
        assert_eq!(active(), KernelVariant::Scalar);
        set_override(None).unwrap();
        assert_eq!(active(), default_variant());
    }

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("48K"), Some(48 * 1024));
        assert_eq!(parse_cache_size("2048K"), Some(2048 * 1024));
        assert_eq!(parse_cache_size("36M\n"), Some(36 << 20));
        assert_eq!(parse_cache_size("1G"), Some(1 << 30));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("x"), None);
    }

    #[test]
    fn sysfs_fallback_on_absent_geometry() {
        // No index directories at all (non-Linux hosts, stripped
        // containers): every level keeps its default.
        assert_eq!(CacheInfo::from_sysfs_entries(Vec::new()), DEFAULT_CACHE);
        // Files missing inside the index directories.
        assert_eq!(
            CacheInfo::from_sysfs_entries([(None, None, None), (Some("1"), Some("Data"), None)]),
            DEFAULT_CACHE
        );
    }

    #[test]
    fn sysfs_fallback_on_malformed_geometry() {
        // Zero sizes ("0K"), garbage strings and absurd values must not
        // reach BlockSizes::derive; each malformed level falls back to
        // its default independently.
        let info = CacheInfo::from_sysfs_entries([
            (Some("1"), Some("Data"), Some("0K")),       // degenerate zero
            (Some("2"), Some("Unified"), Some("lots")),  // unparsable
            (Some("3"), Some("Unified"), Some("4096G")), // implausibly huge
            (Some("x"), Some("Unified"), Some("1M")),    // bad level
            (Some("1"), Some("Instruction"), Some("64K")), // wrong cache kind
        ]);
        assert_eq!(info, DEFAULT_CACHE);
        // And the derived blocks are the same sane ones as the default
        // geometry — no division-by-zero, no degenerate tiles.
        for v in [KernelVariant::Sse2, KernelVariant::Avx2] {
            assert_eq!(
                BlockSizes::derive(v, &info),
                BlockSizes::derive(v, &DEFAULT_CACHE)
            );
        }
    }

    #[test]
    fn sysfs_well_formed_geometry_is_honoured() {
        let info = CacheInfo::from_sysfs_entries([
            (Some("1\n"), Some("Data\n"), Some("48K\n")),
            (Some("1"), Some("Instruction"), Some("32K")),
            (Some("2"), Some("Unified"), Some("2048K")),
            (Some("3"), Some("Unified"), Some("36M")),
        ]);
        assert_eq!(
            info,
            CacheInfo {
                l1d: 48 << 10,
                l2: 2048 << 10,
                l3: 36 << 20,
            }
        );
        // A partially valid report only overrides the valid levels.
        let partial = CacheInfo::from_sysfs_entries([
            (Some("1"), Some("Data"), Some("64K")),
            (Some("2"), Some("Unified"), Some("0K")),
        ]);
        assert_eq!(partial.l1d, 64 << 10);
        assert_eq!(partial.l2, DEFAULT_CACHE.l2);
        assert_eq!(partial.l3, DEFAULT_CACHE.l3);
    }

    #[test]
    fn scalar_blocks_are_pinned_to_legacy_constants() {
        let huge = CacheInfo {
            l1d: 1 << 20,
            l2: 1 << 24,
            l3: 1 << 28,
        };
        assert_eq!(
            BlockSizes::derive(KernelVariant::Scalar, &huge),
            SCALAR_BLOCKS
        );
    }

    #[test]
    fn derived_blocks_respect_cache_budgets_and_tile_multiples() {
        for cache in [
            DEFAULT_CACHE,
            CacheInfo {
                l1d: 48 * 1024,
                l2: 2 << 20,
                l3: 256 << 20,
            },
            CacheInfo {
                l1d: 16 * 1024,
                l2: 256 * 1024,
                l3: 1 << 20,
            },
        ] {
            for v in [KernelVariant::Sse2, KernelVariant::Avx2] {
                let b = BlockSizes::derive(v, &cache);
                assert_eq!(b.mc % v.mr(), 0, "{v}: mc {} not a multiple of MR", b.mc);
                assert_eq!(b.nc % v.nr(), 0, "{v}: nc {} not a multiple of NR", b.nc);
                assert!((64..=384).contains(&b.kc));
                assert!((v.mr()..=512).contains(&b.mc));
                assert!((v.nr()..=1024).contains(&b.nc));
            }
        }
    }

    #[test]
    fn clamp_to_shrinks_to_geometry_only() {
        let b = BlockSizes {
            mc: 512,
            nc: 1020,
            kc: 216,
        };
        let c = b.clamp_to(KernelVariant::Avx2, 10, 7, 20);
        assert_eq!(c.mc, 16); // two 8-row strips
        assert_eq!(c.nc, 12); // two 6-column strips
        assert_eq!(c.kc, 24); // 20 rounded up to a multiple of 8
        let full = b.clamp_to(KernelVariant::Avx2, 10_000, 10_000, 10_000);
        assert_eq!(full, b);
    }
}
