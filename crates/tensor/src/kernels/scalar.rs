//! Portable scalar kernels — the dispatch fallback and the bitwise
//! oracle the SIMD variants are differentially tested against.
//!
//! The GEMM micro-kernel is the exact loop nest the engine shipped with
//! before runtime dispatch existed (plain mul+add, no FMA), so running
//! under `TCE_KERNEL=scalar` reproduces historical results bit for bit.

/// 8×4 register-blocked inner kernel: `acc[r*4+c] = Σ_k ap·bp` over `kb`
/// steps.  Plain mul+add so the compiler auto-vectorizes without relying
/// on a fused-multiply-add target feature (keeping results identical
/// across builds).
#[inline]
pub fn microkernel_8x4(ap: &[f64], bp: &[f64], kb: usize, acc: &mut [f64]) {
    const MR: usize = 8;
    const NR: usize = 4;
    let mut local = [[0.0f64; NR]; MR];
    for kk in 0..kb {
        let a_col: &[f64; MR] = ap[kk * MR..(kk + 1) * MR].try_into().expect("MR chunk");
        let b_row: &[f64; NR] = bp[kk * NR..(kk + 1) * NR].try_into().expect("NR chunk");
        for r in 0..MR {
            let av = a_col[r];
            for c in 0..NR {
                local[r][c] += av * b_row[c];
            }
        }
    }
    for (r, row) in local.iter().enumerate() {
        acc[r * NR..(r + 1) * NR].copy_from_slice(row);
    }
}

/// Scalar transpose-structured copy: `dst[d0 + iu*drs + il] =
/// src[s0 + iu + il*scs]`.  Walks destination rows so writes are
/// contiguous.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn transpose_tile(
    src: &[f64],
    dst: &mut [f64],
    s0: usize,
    d0: usize,
    nu: usize,
    nl: usize,
    scs: usize,
    drs: usize,
) {
    for iu in 0..nu {
        let drow = &mut dst[d0 + iu * drs..d0 + iu * drs + nl];
        let sbase = s0 + iu;
        for (il, out) in drow.iter_mut().enumerate() {
            *out = src[sbase + il * scs];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microkernel_matches_reference() {
        let kb = 5;
        let ap: Vec<f64> = (0..kb * 8).map(|x| (x as f64).sin()).collect();
        let bp: Vec<f64> = (0..kb * 4).map(|x| (x as f64).cos()).collect();
        let mut acc = [1.0f64; 32]; // overwritten, not accumulated
        microkernel_8x4(&ap, &bp, kb, &mut acc);
        for r in 0..8 {
            for c in 0..4 {
                let mut want = 0.0;
                for kk in 0..kb {
                    want += ap[kk * 8 + r] * bp[kk * 4 + c];
                }
                assert!((acc[r * 4 + c] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_tile_reference() {
        let (nu, nl, scs, drs) = (3, 5, 7, 9);
        let src: Vec<f64> = (0..64).map(|x| x as f64).collect();
        let mut dst = vec![0.0f64; 64];
        transpose_tile(&src, &mut dst, 2, 1, nu, nl, scs, drs);
        for iu in 0..nu {
            for il in 0..nl {
                assert_eq!(dst[1 + iu * drs + il], src[2 + iu + il * scs]);
            }
        }
    }
}
