//! A generic sharded LRU cache.
//!
//! The same layout as the GETT plan cache in `tce-tensor`: the key hashes
//! to one of `S` shards, each shard is an independently locked LRU of
//! capacity `total/S` (the remainder spread one-per-shard from shard 0),
//! so concurrent requests for *different* expressions never contend on
//! one mutex.  The shard lock is held across the miss closure on purpose:
//! two threads racing on the *same* key run the (expensive) fill once,
//! while fills for other keys proceed on other shards.
//!
//! Values are handed out as `Arc<V>` so a hit never clones the payload
//! and eviction never invalidates an in-flight user.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters for one shard (or the whole cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the fill closure.
    pub misses: u64,
    /// Entries displaced to respect the capacity bound.
    pub evictions: u64,
}

struct LruStore<K, V> {
    map: HashMap<K, (Arc<V>, u64)>,
    stamp: u64,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> LruStore<K, V> {
    fn evict_oldest(&mut self) {
        if let Some(victim) = self
            .map
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&victim);
        }
    }
}

struct Shard<K, V> {
    store: Mutex<LruStore<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A sharded LRU mapping `K` to `Arc<V>`.
pub struct ShardedLru<K, V> {
    shards: Vec<Shard<K, V>>,
}

impl<K: Hash + Eq + Clone, V> ShardedLru<K, V> {
    /// Build a cache holding at most `capacity` entries total, split over
    /// `shards` independently locked shards (both clamped to at least 1).
    /// Shards whose share of the capacity rounds to zero reject inserts,
    /// counting them as evictions, so the global bound is strict.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let built = (0..shards)
            .map(|i| Shard {
                store: Mutex::new(LruStore {
                    map: HashMap::new(),
                    stamp: 0,
                    capacity: capacity / shards + usize::from(i < capacity % shards),
                }),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            })
            .collect();
        Self { shards: built }
    }

    fn shard_for(&self, key: &K) -> &Shard<K, V> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Look `key` up; on a miss, run `fill` under the shard lock and cache
    /// the result.  Returns the value and whether it was a hit.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: &K, fill: F) -> (Arc<V>, bool) {
        let shard = self.shard_for(key);
        let mut store = shard.store.lock().unwrap_or_else(|e| e.into_inner());
        store.stamp += 1;
        let stamp = store.stamp;
        if let Some((value, last)) = store.map.get_mut(key) {
            *last = stamp;
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(value), true);
        }
        // Count the miss only once `fill` has produced a value: a
        // panicking fill must leave the counters consistent
        // (`len == misses - evictions`), not record a miss that never
        // inserted.  The poisoned shard lock is recovered on the next
        // access (`unwrap_or_else(into_inner)` above) and the store itself
        // was not modified, so the shard keeps serving.
        let value = Arc::new(fill());
        shard.misses.fetch_add(1, Ordering::Relaxed);
        if store.capacity == 0 {
            // This shard got no share of the capacity: the fresh value is
            // handed to the caller but not retained, which counts as an
            // eviction so `len == misses - evictions` stays an invariant.
            shard.evictions.fetch_add(1, Ordering::Relaxed);
            return (value, false);
        }
        if store.map.len() >= store.capacity {
            store.evict_oldest();
            shard.evictions.fetch_add(1, Ordering::Relaxed);
        }
        store.map.insert(key.clone(), (Arc::clone(&value), stamp));
        (value, false)
    }

    /// Current number of cached entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.store.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Aggregated counters over all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .into_iter()
            .fold(CacheStats::default(), |a, s| CacheStats {
                hits: a.hits + s.hits,
                misses: a.misses + s.misses,
                evictions: a.evictions + s.evictions,
            })
    }

    /// Per-shard counters, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| CacheStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hit_returns_same_arc_without_refill() {
        let cache: ShardedLru<String, usize> = ShardedLru::new(8, 4);
        let fills = AtomicUsize::new(0);
        let fill = || {
            fills.fetch_add(1, Ordering::Relaxed);
            7usize
        };
        let (a, hit_a) = cache.get_or_insert_with(&"k".to_string(), fill);
        let (b, hit_b) = cache.get_or_insert_with(&"k".to_string(), fill);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(fills.load(Ordering::Relaxed), 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn capacity_bound_is_global_and_strict() {
        for shards in [1, 3, 8, 64] {
            let cache: ShardedLru<u64, u64> = ShardedLru::new(4, shards);
            for k in 0..100u64 {
                cache.get_or_insert_with(&k, || k);
            }
            assert!(cache.len() <= 4, "{shards} shards: len {} > 4", cache.len());
            let s = cache.stats();
            assert_eq!(s.misses - s.evictions, cache.len() as u64);
        }
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(0, 4);
        for k in 0..10u64 {
            let (v, hit) = cache.get_or_insert_with(&k, || k * 2);
            assert_eq!(*v, k * 2);
            assert!(!hit);
        }
        assert!(cache.is_empty());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 10, 10));
    }

    #[test]
    fn lru_keeps_the_recently_used_entry() {
        // One shard so the recency order is deterministic.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(2, 1);
        cache.get_or_insert_with(&1, || 1);
        cache.get_or_insert_with(&2, || 2);
        cache.get_or_insert_with(&1, || 1); // refresh 1 → 2 is oldest
        cache.get_or_insert_with(&3, || 3); // evicts 2
        let (_, hit1) = cache.get_or_insert_with(&1, || 10);
        assert!(hit1, "recently used entry was evicted");
        let (_, hit2) = cache.get_or_insert_with(&2, || 20);
        assert!(!hit2, "LRU victim survived");
    }

    #[test]
    fn panicking_fill_leaves_shard_serving_with_exact_counters() {
        // Several threads race misses on the SAME key while the fill
        // panics for some of them: the shard lock gets poisoned and
        // recovered, no phantom miss is counted, and the shard keeps
        // serving hits and misses afterwards.
        let cache: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(8, 2));
        let panics = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                let panics = Arc::clone(&panics);
                s.spawn(move || {
                    for i in 0..50u64 {
                        let k = i % 4;
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            cache.get_or_insert_with(&k, || {
                                if t % 2 == 0 && i < 8 {
                                    panic!("injected fill failure");
                                }
                                k * 3
                            })
                        }));
                        match r {
                            Ok((v, _)) => assert_eq!(*v, k * 3),
                            Err(_) => {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        assert!(panics.load(Ordering::Relaxed) > 0, "no fill ever panicked");
        let s = cache.stats();
        // Every successful lookup is exactly one hit or one miss; panicked
        // fills count as neither.
        assert_eq!(
            s.hits + s.misses + panics.load(Ordering::Relaxed) as u64,
            8 * 50
        );
        // The counter identity survives the poisoned/recovered lock.
        assert_eq!(s.misses - s.evictions, cache.len() as u64);
        // And the shard still serves: a fresh key misses, a repeat hits.
        let (_, hit) = cache.get_or_insert_with(&99, || 7);
        assert!(!hit);
        let (v, hit) = cache.get_or_insert_with(&99, || 7);
        assert!(hit);
        assert_eq!(*v, 7);
    }

    #[test]
    fn concurrent_mixed_keys_stay_consistent() {
        let cache: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(16, 8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = (t * 7 + i) % 32;
                        let (v, _) = cache.get_or_insert_with(&k, || k * 3);
                        assert_eq!(*v, k * 3);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 200);
        assert_eq!(s.misses - s.evictions, cache.len() as u64);
        assert!(cache.len() <= 16);
    }
}
