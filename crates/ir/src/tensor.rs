//! Tensor declarations: names, dimension signatures, symmetry and sparsity.
//!
//! The high-level language of the synthesis system (paper §4) declares each
//! tensor with its index ranges plus optional *symmetry* (groups of
//! interchangeable dimension positions, e.g. the antisymmetrized two-electron
//! integrals `⟨pq‖rs⟩`) and *sparsity* annotations.  The optimization
//! passes only consume the structural information collected here.

use crate::index::{IndexSpace, RangeId};

/// Identifier of a declared tensor within a [`TensorTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TensorId(pub u32);

/// A symmetry group: a set of dimension *positions* (0-based) of a tensor
/// that may be permuted freely (possibly with a sign change).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryGroup {
    /// Dimension positions that are mutually symmetric.
    pub positions: Vec<usize>,
    /// `true` for antisymmetric groups (odd permutations flip the sign).
    pub antisymmetric: bool,
}

/// Declaration of one tensor.
#[derive(Debug, Clone)]
pub struct TensorDecl {
    /// Source-level name (`A`, `T1`, …).
    pub name: String,
    /// Range of each dimension, in order.
    pub dims: Vec<RangeId>,
    /// Symmetry groups over dimension positions (disjoint).
    pub symmetry: Vec<SymmetryGroup>,
    /// Whether the tensor is declared sparse.  Sparsity is carried through
    /// to reports; the dense cost models here treat sparse tensors as dense
    /// with a density factor supplied at analysis time.
    pub sparse: bool,
}

impl TensorDecl {
    /// A dense declaration without symmetry.
    pub fn dense(name: &str, dims: Vec<RangeId>) -> Self {
        Self {
            name: name.to_string(),
            dims,
            symmetry: Vec::new(),
            sparse: false,
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Number of elements when stored densely.
    pub fn dense_elements(&self, space: &IndexSpace) -> u128 {
        self.dims.iter().fold(1u128, |acc, &r| {
            acc.saturating_mul(space.range_extent(r) as u128)
        })
    }

    /// Validate symmetry groups: positions in range, disjoint across groups,
    /// each group ≥ 2 positions, and all positions of a group over the same
    /// range (symmetric dimensions must be interchangeable).
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.dims.len()];
        for g in &self.symmetry {
            if g.positions.len() < 2 {
                return Err(format!(
                    "tensor `{}`: symmetry group needs ≥2 positions",
                    self.name
                ));
            }
            let r0 = match g.positions.first() {
                Some(&p) if p < self.dims.len() => self.dims[p],
                _ => {
                    return Err(format!(
                        "tensor `{}`: symmetry position out of range",
                        self.name
                    ))
                }
            };
            for &p in &g.positions {
                if p >= self.dims.len() {
                    return Err(format!(
                        "tensor `{}`: symmetry position {p} out of range",
                        self.name
                    ));
                }
                if seen[p] {
                    return Err(format!(
                        "tensor `{}`: dimension {p} in two symmetry groups",
                        self.name
                    ));
                }
                seen[p] = true;
                if self.dims[p] != r0 {
                    return Err(format!(
                        "tensor `{}`: symmetric dims {p} have different ranges",
                        self.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Unique elements when symmetry is exploited: each symmetric group of
    /// `k` positions over a range of extent `n` stores `C(n+k-1, k)` (for
    /// symmetric) or `C(n, k)` (for antisymmetric) combinations instead of
    /// `n^k`.
    pub fn unique_elements(&self, space: &IndexSpace) -> u128 {
        let mut grouped = vec![false; self.dims.len()];
        let mut total = 1u128;
        for g in &self.symmetry {
            let n = space.range_extent(self.dims[g.positions[0]]) as u128;
            let k = g.positions.len() as u128;
            for &p in &g.positions {
                grouped[p] = true;
            }
            let combos = if g.antisymmetric {
                binomial(n, k)
            } else {
                binomial(n + k - 1, k)
            };
            total = total.saturating_mul(combos);
        }
        for (p, &r) in self.dims.iter().enumerate() {
            if !grouped[p] {
                total = total.saturating_mul(space.range_extent(r) as u128);
            }
        }
        total
    }
}

/// `C(n, k)` with saturation.
fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut out = 1u128;
    for i in 0..k {
        out = out.saturating_mul(n - i) / (i + 1);
    }
    out
}

/// The collection of tensors declared in a program.
#[derive(Debug, Clone, Default)]
pub struct TensorTable {
    decls: Vec<TensorDecl>,
}

impl TensorTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a declaration, returning its id.
    ///
    /// # Panics
    /// Panics if the name is already declared.
    pub fn add(&mut self, decl: TensorDecl) -> TensorId {
        assert!(
            self.by_name(&decl.name).is_none(),
            "tensor `{}` already declared",
            decl.name
        );
        let id = TensorId(self.decls.len() as u32);
        self.decls.push(decl);
        id
    }

    /// Declaration lookup.
    pub fn get(&self, id: TensorId) -> &TensorDecl {
        &self.decls[id.0 as usize]
    }

    /// Lookup by name.
    pub fn by_name(&self, name: &str) -> Option<TensorId> {
        self.decls
            .iter()
            .position(|d| d.name == name)
            .map(|i| TensorId(i as u32))
    }

    /// Number of declared tensors.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True if no tensors are declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Iterate over (id, declaration) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TensorId, &TensorDecl)> {
        self.decls
            .iter()
            .enumerate()
            .map(|(i, d)| (TensorId(i as u32), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexSpace;

    fn space() -> (IndexSpace, RangeId, RangeId) {
        let mut sp = IndexSpace::new();
        let v = sp.add_range("V", 10);
        let o = sp.add_range("O", 4);
        (sp, v, o)
    }

    #[test]
    fn dense_elements() {
        let (sp, v, o) = space();
        let t = TensorDecl::dense("A", vec![v, o, v, o]);
        assert_eq!(t.rank(), 4);
        assert_eq!(t.dense_elements(&sp), 10 * 4 * 10 * 4);
    }

    #[test]
    fn table_add_lookup() {
        let (_, v, o) = space();
        let mut tab = TensorTable::new();
        let a = tab.add(TensorDecl::dense("A", vec![v, o]));
        let b = tab.add(TensorDecl::dense("B", vec![o]));
        assert_eq!(tab.len(), 2);
        assert_eq!(tab.by_name("A"), Some(a));
        assert_eq!(tab.by_name("B"), Some(b));
        assert_eq!(tab.by_name("C"), None);
        assert_eq!(tab.get(a).name, "A");
        let names: Vec<_> = tab.iter().map(|(_, d)| d.name.clone()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn duplicate_tensor_panics() {
        let (_, v, _) = space();
        let mut tab = TensorTable::new();
        tab.add(TensorDecl::dense("A", vec![v]));
        tab.add(TensorDecl::dense("A", vec![v]));
    }

    #[test]
    fn symmetry_validation() {
        let (_, v, o) = space();
        let mut t = TensorDecl::dense("X", vec![v, v, o, o]);
        t.symmetry.push(SymmetryGroup {
            positions: vec![0, 1],
            antisymmetric: false,
        });
        assert!(t.validate().is_ok());
        // overlapping groups rejected
        t.symmetry.push(SymmetryGroup {
            positions: vec![1, 2],
            antisymmetric: false,
        });
        assert!(t.validate().is_err());
        // mismatched ranges rejected
        let mut t2 = TensorDecl::dense("Y", vec![v, o]);
        t2.symmetry.push(SymmetryGroup {
            positions: vec![0, 1],
            antisymmetric: false,
        });
        assert!(t2.validate().is_err());
        // out-of-range position rejected
        let mut t3 = TensorDecl::dense("Z", vec![v, v]);
        t3.symmetry.push(SymmetryGroup {
            positions: vec![0, 5],
            antisymmetric: false,
        });
        assert!(t3.validate().is_err());
        // single-position group rejected
        let mut t4 = TensorDecl::dense("W", vec![v]);
        t4.symmetry.push(SymmetryGroup {
            positions: vec![0],
            antisymmetric: false,
        });
        assert!(t4.validate().is_err());
    }

    #[test]
    fn unique_elements_symmetric_pair() {
        let (sp, v, _) = space();
        let mut t = TensorDecl::dense("X", vec![v, v]);
        t.symmetry.push(SymmetryGroup {
            positions: vec![0, 1],
            antisymmetric: false,
        });
        // C(10+1, 2) = 55 for symmetric pair over extent 10
        assert_eq!(t.unique_elements(&sp), 55);
        t.symmetry[0].antisymmetric = true;
        // C(10, 2) = 45
        assert_eq!(t.unique_elements(&sp), 45);
    }

    #[test]
    fn unique_elements_mixed() {
        let (sp, v, o) = space();
        let mut t = TensorDecl::dense("X", vec![v, v, o]);
        t.symmetry.push(SymmetryGroup {
            positions: vec![0, 1],
            antisymmetric: false,
        });
        assert_eq!(t.unique_elements(&sp), 55 * 4);
        // no symmetry: full product
        let plain = TensorDecl::dense("Y", vec![v, v, o]);
        assert_eq!(plain.unique_elements(&sp), 400);
    }

    #[test]
    fn binomial_saturates_and_edges() {
        assert_eq!(super::binomial(5, 0), 1);
        assert_eq!(super::binomial(5, 6), 0);
        assert_eq!(super::binomial(6, 3), 20);
    }
}
