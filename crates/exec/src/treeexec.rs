//! Direct (array-at-a-time) execution of operator trees.
//!
//! Evaluates a formula sequence bottom-up, materializing every
//! intermediate at full size — the execution model of the *unfused*
//! operation-minimal form, but using the blocked GEMM contraction kernel
//! and (optionally) the crossbeam thread pool, which is how the
//! synthesized code's contractions actually run fast.  Serves both as a
//! second semantic oracle for the loop-program interpreter and as the
//! baseline executor for the benchmark harnesses.

use std::collections::HashMap;
use tce_ir::{IndexSpace, IndexVar, Leaf, NodeId, OpKind, OpTree, TensorId};
use tce_par::{parallel_chunks_mut, parallel_for};
use tce_tensor::{BinaryContraction, IntegralFn, Tensor};

/// Evaluate `tree` bottom-up; returns the root value.
///
/// `threads = 1` runs sequentially; larger values parallelize function
/// materialization and the batched GEMM row loop.
pub fn execute_tree(
    tree: &OpTree,
    space: &IndexSpace,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    threads: usize,
) -> Tensor {
    let mut values: Vec<Option<Tensor>> = vec![None; tree.len()];
    for id in tree.postorder() {
        let value = match &tree.node(id).kind {
            OpKind::Leaf(Leaf::Input { tensor, indices }) => {
                let t = inputs
                    .get(tensor)
                    .unwrap_or_else(|| panic!("no binding for input tensor {tensor:?}"));
                let expect: Vec<usize> = indices.iter().map(|&v| space.extent(v)).collect();
                assert_eq!(t.shape(), &expect[..], "input shape mismatch");
                (*t).clone()
            }
            OpKind::Leaf(Leaf::One) => Tensor::from_elem(&[], 1.0),
            OpKind::Leaf(Leaf::Func { name, indices, .. }) => {
                let f = funcs
                    .get(name)
                    .unwrap_or_else(|| panic!("no binding for function `{name}`"));
                materialize_func(f, indices, space, threads)
            }
            OpKind::Contract { left, right } => {
                let lv = values[left.0 as usize].as_ref().expect("postorder");
                let rv = values[right.0 as usize].as_ref().expect("postorder");
                contract_node(tree, space, id, *left, *right, lv, rv, threads)
            }
        };
        values[id.0 as usize] = Some(value);
    }
    values[tree.root.0 as usize].take().expect("root value")
}

/// Materialize a function leaf over its full index space, in parallel over
/// the leading dimension blocks.
fn materialize_func(
    f: &IntegralFn,
    indices: &[IndexVar],
    space: &IndexSpace,
    threads: usize,
) -> Tensor {
    let shape: Vec<usize> = indices.iter().map(|&v| space.extent(v)).collect();
    let mut out = Tensor::zeros(&shape);
    let total = out.len();
    let rank = shape.len();
    let shape_ref = &shape;
    parallel_chunks_mut(out.data_mut(), threads, |start, chunk| {
        let mut idx = vec![0usize; rank];
        // Decode the starting flat offset.
        let mut rem = start;
        for d in (0..rank).rev() {
            idx[d] = rem % shape_ref[d];
            rem /= shape_ref[d];
        }
        for x in chunk.iter_mut() {
            *x = f.eval(&idx);
            Tensor::advance(&mut idx, shape_ref);
        }
        let _ = total;
    });
    out
}

/// Contract two materialized child values into the node's result, using
/// the permute+GEMM path with the batch/M loop parallelized.
#[allow(clippy::too_many_arguments)]
fn contract_node(
    tree: &OpTree,
    space: &IndexSpace,
    id: NodeId,
    left: NodeId,
    right: NodeId,
    lv: &Tensor,
    rv: &Tensor,
    threads: usize,
) -> Tensor {
    let dims_of = |n: NodeId| -> Vec<IndexVar> {
        match &tree.node(n).kind {
            OpKind::Leaf(Leaf::Input { indices, .. }) | OpKind::Leaf(Leaf::Func { indices, .. }) => {
                indices.clone()
            }
            _ => tree.node(n).indices.iter().collect(),
        }
    };
    let spec = BinaryContraction {
        a: dims_of(left),
        b: dims_of(right),
        out: tree.node(id).indices.iter().collect(),
    };
    if threads <= 1 {
        return tce_tensor::contract_gemm(&spec, space, lv, rv);
    }
    // Parallel path: same layout preparation as contract_gemm but with the
    // output rows distributed over the pool.
    parallel_contract(&spec, space, lv, rv, threads)
}

/// Parallel permute+GEMM contraction: permutes to `[batch, M, K] ×
/// [batch, K, N]`, then parallelizes over `batch × M` row blocks.
pub fn parallel_contract(
    spec: &BinaryContraction,
    space: &IndexSpace,
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Tensor {
    use tce_ir::IndexSet;
    spec.validate().expect("invalid contraction");
    let sa = IndexSet::from_vars(spec.a.iter().copied());
    let sb = IndexSet::from_vars(spec.b.iter().copied());
    let so = IndexSet::from_vars(spec.out.iter().copied());
    // Summation indices exclusive to one operand cannot enter the shared K
    // dimension; that case is rare (pure reductions) — delegate to the
    // sequential kernel, which pre-reduces them.
    if !sa.union(sb).minus(so).is_subset(sa.inter(sb)) {
        return tce_tensor::contract_gemm(spec, space, a, b);
    }
    let contracted = spec.contracted();
    let batch = so.inter(sa).inter(sb);
    let m_set = so.inter(sa).minus(batch);
    let n_set = so.inter(sb).minus(batch);
    let batch_v: Vec<IndexVar> = batch.iter().collect();
    let m_v: Vec<IndexVar> = m_set.iter().collect();
    let n_v: Vec<IndexVar> = n_set.iter().collect();
    let k_v: Vec<IndexVar> = contracted.iter().collect();
    let perm_for = |dims: &[IndexVar], order: &[IndexVar]| -> Vec<usize> {
        order
            .iter()
            .map(|v| dims.iter().position(|d| d == v).expect("index in operand"))
            .collect()
    };
    let a_order: Vec<IndexVar> = batch_v.iter().chain(&m_v).chain(&k_v).copied().collect();
    let b_order: Vec<IndexVar> = batch_v.iter().chain(&k_v).chain(&n_v).copied().collect();
    let ap = a.permute(&perm_for(&spec.a, &a_order));
    let bp = b.permute(&perm_for(&spec.b, &b_order));
    let ext = |vs: &[IndexVar]| -> usize {
        vs.iter().map(|&v| space.extent(v)).product::<usize>().max(1)
    };
    let (nb, m, n, k) = (ext(&batch_v), ext(&m_v), ext(&n_v), ext(&k_v));

    let mut c_flat = vec![0.0f64; nb * m * n];
    {
        let ap_data = ap.data();
        let bp_data = bp.data();
        // One task per (batch, row-block): distribute the nb*m rows.
        let rows = nb * m;
        let c_cell = &parking_lot::Mutex::new(());
        let _ = c_cell;
        let c_ptr = SendPtr(c_flat.as_mut_ptr());
        parallel_for(rows, threads, |range| {
            for row in range {
                let (bi, i) = (row / m, row % m);
                let a_row = &ap_data[bi * m * k + i * k..bi * m * k + (i + 1) * k];
                // SAFETY: each `row` writes a disjoint slice of C.
                let c_row: &mut [f64] = unsafe {
                    std::slice::from_raw_parts_mut(c_ptr.get().add(bi * m * n + i * n), n)
                };
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &bp_data[bi * k * n + kk * n..bi * k * n + (kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        });
    }
    let c_order: Vec<IndexVar> = batch_v.iter().chain(&m_v).chain(&n_v).copied().collect();
    let c_shape: Vec<usize> = c_order.iter().map(|&v| space.extent(v)).collect();
    let c = Tensor::from_vec(&c_shape, c_flat);
    let out_perm: Vec<usize> = spec
        .out
        .iter()
        .map(|v| c_order.iter().position(|d| d == v).unwrap())
        .collect();
    c.permute(&out_perm)
}

/// Raw pointer wrapper that is `Send`/`Sync`; used only with provably
/// disjoint row writes.
struct SendPtr(*mut f64);

impl SendPtr {
    /// Accessor (also forces the closure to capture the whole wrapper
    /// rather than the raw field under edition-2021 disjoint capture).
    fn get(&self) -> *mut f64 {
        self.0
    }
}

unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{IndexSet, TensorDecl, TensorTable};

    #[test]
    fn tree_execution_matches_interpreter_path() {
        // Same Fig 1 example as interp tests: execute_tree vs einsum.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 3);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));

        let shape = [3usize; 4];
        let va = Tensor::random(&shape, 11);
        let vb = Tensor::random(&shape, 12);
        let vc = Tensor::random(&shape, 13);
        let vd = Tensor::random(&shape, 14);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        inputs.insert(tb, &vb);
        inputs.insert(tc, &vc);
        inputs.insert(td, &vd);

        let seq = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1);
        let par = execute_tree(&tree, &space, &inputs, &HashMap::new(), 4);
        assert!(seq.approx_eq(&par, 1e-9));

        // Reference via einsum.
        let spec = tce_tensor::EinsumSpec::new(
            vec![a, b, i, j],
            vec![
                vec![a, c, i, k],
                vec![b, e, f, l],
                vec![d, f, j, k],
                vec![c, d, e, l],
            ],
            IndexSet::from_vars([c, d, e, f, k, l]),
        )
        .unwrap();
        let expect = spec.eval(&space, &[&va, &vb, &vc, &vd]);
        assert!(seq.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn parallel_contract_matches_sequential() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 9);
        let i = space.add_var("i", r);
        let j = space.add_var("j", r);
        let k = space.add_var("k", r);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let a = Tensor::random(&[9, 9], 21);
        let b = Tensor::random(&[9, 9], 22);
        let seq = tce_tensor::contract_gemm(&spec, &space, &a, &b);
        let par = parallel_contract(&spec, &space, &a, &b, 4);
        assert!(seq.approx_eq(&par, 1e-10));
    }

    #[test]
    fn func_materialization_parallel_matches_sequential() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 7);
        let c = space.add_var("c", r);
        let e = space.add_var("e", r);
        let f = IntegralFn::new(50, 5);
        let seq = materialize_func(&f, &[c, e], &space, 1);
        let par = materialize_func(&f, &[c, e], &space, 4);
        assert!(seq.approx_eq(&par, 0.0));
        assert_eq!(seq.get(&[2, 3]), f.eval(&[2, 3]));
    }

    #[test]
    fn one_leaf_reduction() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 5);
        let i = space.add_var("i", r);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![r]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![i]);
        let one = tree.leaf_one();
        tree.contract(la, one, IndexSet::EMPTY);
        let va = Tensor::random(&[5], 31);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        let out = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1);
        assert!((out.get(&[]) - va.sum()).abs() < 1e-12);
    }
}
