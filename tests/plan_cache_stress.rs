//! Multi-threaded stress of the sharded GETT plan cache: N threads
//! hammering contractions with mixed signatures against a capacity-2
//! sharded LRU must not deadlock, must keep the eviction counters
//! consistent with the entry count, and must produce bitwise-identical
//! results to a single-threaded run.
//!
//! The plan cache is process-global, so this file holds exactly one
//! test — parallel tests in the same binary would race on the capacity.

use tce_core::ir::IndexSpace;
use tce_core::tensor::{
    contract_gett, plan_cache_len, plan_cache_shard_stats, plan_cache_stats,
    set_plan_cache_capacity, BinaryContraction, Tensor,
};

/// A family of distinct plan signatures: matmul at several extents plus a
/// transpose-flavored contraction, each a distinct `PlanKey`.
fn cases() -> Vec<(BinaryContraction, IndexSpace, Tensor, Tensor)> {
    let mut out = Vec::new();
    for (ni, nj, nk) in [
        (4, 4, 4),
        (5, 4, 3),
        (8, 2, 6),
        (3, 7, 5),
        (6, 6, 2),
        (2, 9, 4),
        (7, 3, 8),
        (4, 8, 8),
    ] {
        let mut sp = IndexSpace::new();
        let ri = sp.add_range("I", ni);
        let rj = sp.add_range("J", nj);
        let rk = sp.add_range("K", nk);
        let i = sp.add_var("i", ri);
        let j = sp.add_var("j", rj);
        let k = sp.add_var("k", rk);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let a = Tensor::random(&[ni, nk], (ni * 31 + nk) as u64);
        let b = Tensor::random(&[nk, nj], (nk * 57 + nj) as u64);
        out.push((spec, sp, a, b));
    }
    out
}

#[test]
fn capacity_two_sharded_cache_under_contention() {
    let old_cap = set_plan_cache_capacity(2);
    let work = cases();

    // Single-threaded reference results (also warms nothing: capacity 2
    // over 8 signatures keeps evicting).
    let reference: Vec<Tensor> = work
        .iter()
        .map(|(spec, sp, a, b)| contract_gett(spec, sp, a, b, 1))
        .collect();

    let before = plan_cache_stats();
    let rounds = 30;
    let threads = 8;
    let all_match = std::sync::atomic::AtomicBool::new(true);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (work, reference, all_match) = (&work, &reference, &all_match);
            s.spawn(move || {
                for r in 0..rounds {
                    // Every thread walks the signatures in a different
                    // order so shard locks interleave.
                    let idx = (t + r) % work.len();
                    let (spec, sp, a, b) = &work[idx];
                    let got = contract_gett(spec, sp, a, b, 1);
                    if got != reference[idx] {
                        all_match.store(false, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            });
        }
    });
    assert!(
        all_match.load(std::sync::atomic::Ordering::SeqCst),
        "concurrent cached contractions diverged from the single-threaded run"
    );

    // Counter consistency: every lookup was a hit or a miss, and the
    // entries that survived are exactly the misses minus the evictions.
    let after = plan_cache_stats();
    let (d_hits, d_misses) = (after.0 - before.0, after.1 - before.1);
    assert_eq!(
        d_hits + d_misses,
        (threads * rounds) as u64,
        "every concurrent lookup must be counted exactly once"
    );
    assert_eq!(
        after.1 - after.2,
        plan_cache_len() as u64,
        "misses - evictions must equal the live entry count"
    );
    assert!(
        plan_cache_len() <= 2,
        "capacity-2 cache holds {} entries",
        plan_cache_len()
    );
    // Per-shard counters sum to the globals.
    let per_shard = plan_cache_shard_stats();
    let sums = per_shard
        .iter()
        .fold((0, 0, 0), |a, s| (a.0 + s.0, a.1 + s.1, a.2 + s.2));
    assert_eq!(sums, after, "shard counters disagree with the global sums");

    set_plan_cache_capacity(old_cap);
}
