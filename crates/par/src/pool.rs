//! Data-parallel execution primitives on a persistent worker pool.
//!
//! The paper assumes a data-parallel model in which "each operation in the
//! operation sequence is distributed across the entire parallel machine"
//! (§7).  This module supplies the shared-memory realization used by the
//! executor: block-partitioned parallel-for and parallel-reduce over
//! slices, with a configurable thread count.  No work stealing — tensor
//! contraction iterations are uniform, so static block partitioning is the
//! right schedule and keeps the substrate small and auditable.
//!
//! Work runs on a process-wide [`Pool`] of parked worker threads, so a
//! synthesized program that executes thousands of small contractions pays
//! the thread-spawn cost once, not per kernel call.  The partitioning is
//! purely static: callers receive disjoint index ranges, which is what the
//! GETT contraction engine relies on for bitwise-deterministic output.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of worker threads to use: the `TCE_THREADS` environment variable
/// if set, otherwise the machine's available parallelism (at least 1).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TCE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Validate the `TCE_THREADS` environment variable without applying it:
/// `Ok(None)` when unset, `Ok(Some(n))` for a positive count, `Err` with
/// a one-line diagnostic for anything else (`banana`, `0`, …).  The CLI
/// calls this up front so a bad value fails fast instead of being
/// silently clamped by [`default_threads`].
pub fn threads_env_requested() -> Result<Option<usize>, String> {
    match std::env::var("TCE_THREADS") {
        Err(_) => Ok(None),
        Ok(v) => match v.parse::<usize>() {
            Ok(0) => Err("bad TCE_THREADS `0`: must be at least 1".to_string()),
            Ok(n) => Ok(Some(n)),
            Err(e) => Err(format!("bad TCE_THREADS `{v}`: {e}")),
        },
    }
}

/// Split `n` items into at most `parts` contiguous ranges of near-equal
/// length (the paper's `myrange(z, N, p)` block partitioning, 0-based).
/// `parts` is capped by `n`, so no returned range is empty (except the
/// single `0..0` range when `n == 0`).
pub fn block_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// One parallel job: an erased task closure plus its task count.  The
/// pointer is only dereferenced while [`Pool::run`] is blocked waiting for
/// completion, which keeps the borrow alive.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    tasks: usize,
}

// SAFETY: the closure behind `f` is `Sync`, and `Pool::run` does not
// return until every dereference has finished.
unsafe impl Send for Job {}

/// State guarded by the pool mutex.
struct Gate {
    /// Bumped once per submitted job so sleeping workers can tell a new
    /// job from the one they already finished.
    epoch: u64,
    /// The current job, if one is in flight.
    job: Option<Job>,
    /// Workers currently inside a claim loop for the live epoch.
    active: usize,
    /// Set on drop; workers exit.
    shutdown: bool,
}

struct Shared {
    gate: Mutex<Gate>,
    /// Signals workers: new job or shutdown.
    work: Condvar,
    /// Signals the submitter: tasks or workers drained.
    done: Condvar,
    /// Next unclaimed task index of the current job.
    next: AtomicUsize,
    /// Tasks not yet completed.
    pending: AtomicUsize,
    /// A task panicked; `run` re-panics after the job drains.
    panicked: AtomicBool,
}

/// A persistent pool of parked worker threads.
///
/// Jobs are submitted as `(task_count, Fn(task_index))`; workers and the
/// submitting thread claim task indices from a shared counter.  Which
/// thread runs which task is scheduling-dependent, so tasks must write
/// disjoint state — the same contract as scoped-thread partitioning, but
/// without a per-call spawn.  Nested or concurrent submissions are safe:
/// they detect the busy pool and execute inline on the caller.
///
/// Lock poisoning is recovered everywhere (`unwrap_or_else(into_inner)`):
/// the pool's own mutexes guard scheduling bookkeeping whose invariants
/// are restored by the next submission, and task panics are already
/// caught, recorded, and re-raised once per job by [`Pool::run`] — turning
/// a poisoned lock into a second, process-wide panic cascade would only
/// mask the original failure.
pub struct Pool {
    shared: Arc<Shared>,
    /// Serializes submissions; `try_lock` failure = nested call → inline.
    submit: Mutex<()>,
    /// Worker handles, joined on drop.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Pool {
    /// A pool with `workers` worker threads (the submitting thread also
    /// executes tasks, so total concurrency is `workers + 1`).
    pub fn new(workers: usize) -> Self {
        let pool = Self {
            shared: Arc::new(Shared {
                gate: Mutex::new(Gate {
                    epoch: 0,
                    job: None,
                    active: 0,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                next: AtomicUsize::new(0),
                pending: AtomicUsize::new(0),
                panicked: AtomicBool::new(false),
            }),
            submit: Mutex::new(()),
            handles: Mutex::new(Vec::new()),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// The process-wide pool.  Created on first use with
    /// `default_threads() - 1` workers; grows on demand when a caller
    /// requests more concurrency.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads().saturating_sub(1)))
    }

    /// Run `f` with the process-wide pool — the amortized replacement for
    /// spawning a scope per kernel call.
    pub fn with<R>(f: impl FnOnce(&Pool) -> R) -> R {
        f(Self::global())
    }

    /// Current worker count.
    pub fn workers(&self) -> usize {
        self.handles.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Grow the pool to at least `target` workers (capped at 256).
    pub fn ensure_workers(&self, target: usize) {
        let target = target.min(256);
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        while handles.len() < target {
            let shared = Arc::clone(&self.shared);
            handles.push(std::thread::spawn(move || worker_loop(&shared)));
        }
    }

    /// Execute `f(0), …, f(tasks - 1)` across the pool, returning when all
    /// have finished.  The caller participates, so the pool works (slowly)
    /// even with zero workers.  Panics in tasks are re-raised here after
    /// the job drains.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        // Nested (a task submitting a sub-job) or concurrent submission:
        // run inline rather than corrupting the in-flight job.
        let Ok(_submit) = self.submit.try_lock() else {
            for i in 0..tasks {
                f(i);
            }
            return;
        };
        if tasks == 1 || self.workers() == 0 {
            drop(_submit);
            for i in 0..tasks {
                f(i);
            }
            return;
        }

        // SAFETY: erase the borrow's lifetime so the job can be stored in
        // the shared gate; `run` does not return until every worker has
        // left the claim loop, so no dereference outlives the borrow.
        let f_erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let shared = &self.shared;
        shared.next.store(0, Ordering::SeqCst);
        shared.pending.store(tasks, Ordering::SeqCst);
        shared.panicked.store(false, Ordering::SeqCst);
        {
            let mut g = shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            g.epoch += 1;
            g.job = Some(Job { f: f_erased, tasks });
            shared.work.notify_all();
        }

        // The submitting thread claims tasks too.
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
            }
            shared.pending.fetch_sub(1, Ordering::AcqRel);
        }

        // Retract the job, then wait for stragglers.  Workers register in
        // `active` under the gate before claiming, so once `job` is cleared
        // and `active == 0`, no thread can touch `f` again.
        let mut g = shared.gate.lock().unwrap_or_else(|e| e.into_inner());
        g.job = None;
        while g.active > 0 || shared.pending.load(Ordering::Acquire) > 0 {
            g = shared.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        drop(g);
        if shared.panicked.load(Ordering::SeqCst) {
            panic!("worker task panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            g.shutdown = true;
            self.shared.work.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// RAII registration in the gate's `active` count: deregisters and
/// notifies the submitter even if the claim loop unwinds, so a panic that
/// escapes a worker can never strand [`Pool::run`] in its drain wait.
struct ActiveGuard<'a> {
    shared: &'a Shared,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
        g.active -= 1;
        self.shared.done.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        // Per-worker busy/idle attribution: one clock read on each side of
        // the park and the claim loop, only while tracing is enabled.  The
        // counters land in this worker's thread-local trace buffer.
        let t_park = tce_trace::enabled().then(tce_trace::now_ns);
        let job = {
            let mut g = shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if g.shutdown {
                    return;
                }
                if g.job.is_some() && g.epoch != seen {
                    break;
                }
                g = shared.work.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            seen = g.epoch;
            g.active += 1;
            g.job.expect("checked above")
        };
        let _active = ActiveGuard { shared };
        let t_claim = if tce_trace::enabled() {
            let now = tce_trace::now_ns();
            if let Some(t0) = t_park {
                tce_trace::counter("pool.idle_ns", now - t0);
            }
            Some(now)
        } else {
            None
        };
        // SAFETY: `run` blocks until `active` drops to zero, so the
        // closure reference outlives this claim loop.
        let f = unsafe { &*job.f };
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.tasks {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
            }
            shared.pending.fetch_sub(1, Ordering::AcqRel);
        }
        if let Some(t0) = t_claim {
            if tce_trace::enabled() {
                tce_trace::counter("pool.busy_ns", tce_trace::now_ns() - t0);
            }
        }
        // `_active` drops here: deregister from the gate and wake the
        // submitter (also on the unwind path, via the guard's Drop).
        drop(_active);
    }
}

/// Run `f(range)` in parallel over a block partition of `0..n` with
/// `threads` workers.  `f` must be `Sync` (it receives disjoint ranges).
pub fn parallel_for<F>(n: usize, threads: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        f(0..n);
        return;
    }
    let ranges = block_ranges(n, threads);
    let pool = Pool::global();
    pool.ensure_workers(threads - 1);
    pool.run(ranges.len(), &|i| f(ranges[i].clone()));
}

/// Parallel map-reduce over a block partition of `0..n`: each worker folds
/// its range with `fold`, partial results are combined with `combine` in
/// ascending range order (so the combination order — and any floating-point
/// result — does not depend on thread scheduling).
pub fn parallel_reduce<T, F, C>(n: usize, threads: usize, identity: T, fold: F, combine: C) -> T
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return combine(identity, fold(0..n));
    }
    let ranges = block_ranges(n, threads);
    let slots: Vec<Mutex<Option<T>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
    let pool = Pool::global();
    pool.ensure_workers(threads - 1);
    pool.run(ranges.len(), &|i| {
        let v = fold(ranges[i].clone());
        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
    });
    slots.into_iter().fold(identity, |acc, s| {
        let v = s
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every range folded");
        combine(acc, v)
    })
}

/// Apply `f` to disjoint mutable chunks of `data` in parallel — the
/// write-side primitive for partitioned output arrays.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        f(0, data);
        return;
    }
    let ranges = block_ranges(n, threads);
    // Pre-split into raw chunk descriptors so the shared `Fn(usize)` task
    // can hand each claimant its own disjoint slice.
    struct Chunk<T> {
        start: usize,
        ptr: *mut T,
        len: usize,
    }
    // SAFETY: chunks reference disjoint regions of `data`; each task index
    // is claimed exactly once.
    unsafe impl<T: Send> Sync for Chunk<T> {}
    let mut chunks: Vec<Chunk<T>> = Vec::with_capacity(ranges.len());
    {
        let mut rest = &mut *data;
        let mut offset = 0usize;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            rest = tail;
            chunks.push(Chunk {
                start: offset,
                ptr: head.as_mut_ptr(),
                len: head.len(),
            });
            offset += r.len();
        }
    }
    let pool = Pool::global();
    pool.ensure_workers(threads - 1);
    pool.run(chunks.len(), &|i| {
        let c = &chunks[i];
        // SAFETY: disjoint chunk, claimed once; lives for the whole run.
        let slice = unsafe { std::slice::from_raw_parts_mut(c.ptr, c.len) };
        f(c.start, slice);
    });
}

/// Parallel map over `0..n`: returns `vec![f(0), …, f(n-1)]`, computed on
/// the shared pool with up to `threads` workers.  Slot `i` is written by
/// exactly one worker, so the output is identical at every thread count.
/// Used by the sharded distributed executor to run per-rank work
/// concurrently while collecting per-rank results.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    parallel_chunks_mut(&mut out, threads, |start, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(start + i));
        }
    });
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

/// A monotone counter shared across workers (used by the executor to count
/// operations without locks on the hot path — each worker batches locally
/// and flushes once).
#[derive(Debug, Default)]
pub struct SharedCounter(AtomicUsize);

impl SharedCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for p in [1usize, 2, 3, 8, 150] {
                let rs = block_ranges(n, p);
                assert_eq!(rs.len(), p.max(1).min(n.max(1)));
                assert_eq!(rs.first().unwrap().start, 0);
                assert_eq!(rs.last().unwrap().end, n);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                // Balanced: lengths differ by at most one.
                let lens: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(mx - mn <= 1);
                // No empty ranges once there is work.
                if n > 0 {
                    assert!(lens.iter().all(|&l| l > 0));
                }
            }
        }
    }

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 4, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_reduce_sums() {
        let n = 10_000usize;
        let total = parallel_reduce(
            n,
            8,
            0u64,
            |r| r.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        // Single-threaded path agrees.
        let t1 = parallel_reduce(
            n,
            1,
            0u64,
            |r| r.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(t1, total);
    }

    #[test]
    fn parallel_reduce_caps_parts_by_n() {
        // More threads than items: every range still folds exactly once.
        let total = parallel_reduce(3, 64, 0u64, |r| r.map(|i| i as u64 + 1).sum(), |a, b| a + b);
        assert_eq!(total, 6);
    }

    #[test]
    fn parallel_chunks_mut_writes_disjointly() {
        let mut data = vec![0usize; 997];
        parallel_chunks_mut(&mut data, 5, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn zero_length_work_is_safe() {
        parallel_for(0, 4, |r| assert!(r.is_empty()));
        let mut empty: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut empty, 4, |_, _| {});
        let s = parallel_reduce(0, 4, 0u32, |_| 1u32, |a, b| a + b);
        // fold runs once over the empty range on the 1-thread path.
        assert!(s <= 1);
    }

    #[test]
    fn shared_counter_accumulates_across_threads() {
        let c = SharedCounter::new();
        parallel_for(100, 4, |r| c.add(r.len()));
        assert_eq!(c.get(), 100);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn pool_reuses_workers_across_jobs() {
        let pool = Pool::new(3);
        assert_eq!(pool.workers(), 3);
        let c = SharedCounter::new();
        for _ in 0..50 {
            pool.run(16, &|_| c.add(1));
        }
        assert_eq!(c.get(), 50 * 16);
        assert_eq!(pool.workers(), 3); // no respawn per job
    }

    #[test]
    fn pool_nested_submission_runs_inline() {
        let pool = Pool::new(2);
        let c = SharedCounter::new();
        pool.run(4, &|_| {
            // A task submitting to the same pool must not deadlock.
            pool.run(4, &|_| c.add(1));
        });
        assert_eq!(c.get(), 16);
    }

    #[test]
    fn pool_with_zero_workers_runs_on_caller() {
        let pool = Pool::new(0);
        let c = SharedCounter::new();
        pool.run(10, &|_| c.add(1));
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn pool_task_panic_propagates() {
        let pool = Pool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // Pool is still usable after a panicked job.
        let c = SharedCounter::new();
        pool.run(8, &|_| c.add(1));
        assert_eq!(c.get(), 8);
    }

    /// Tiny xorshift for property tests (no external deps; tce-ir's Rng
    /// would create a dependency cycle from here).
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    #[test]
    fn block_ranges_properties_randomized() {
        // Partition invariants hold for random (n, parts), including the
        // degenerate corners n == 0, parts == 0, parts > n.
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        for trial in 0..500 {
            let (n, parts) = match trial {
                0 => (0, 0),
                1 => (0, 7),
                2 => (5, 0),
                3 => (3, 64),
                4 => (1, 1),
                _ => (rng.below(2000) as usize, rng.below(70) as usize),
            };
            let rs = block_ranges(n, parts);
            // Cardinality: parts clamped to [1, max(n,1)].
            assert_eq!(rs.len(), parts.max(1).min(n.max(1)), "n={n} parts={parts}");
            // Exact contiguous cover of 0..n.
            assert_eq!(rs.first().unwrap().start, 0);
            assert_eq!(rs.last().unwrap().end, n);
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // Balance and non-emptiness.
            let lens: Vec<usize> = rs.iter().map(|r| r.len()).collect();
            assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
            if n > 0 {
                assert!(lens.iter().all(|&l| l > 0));
            }
        }
    }

    #[test]
    fn parallel_reduce_edge_cases_match_serial() {
        // n == 0, parts > n, single thread: every configuration agrees
        // with the 1-thread result (ascending combine order).
        let mut rng = XorShift(0xabcdef12345);
        for trial in 0..200 {
            let n = match trial {
                0 => 0usize,
                1 => 1,
                2 => 2,
                _ => rng.below(300) as usize,
            };
            let threads = match trial % 4 {
                0 => 1usize,
                1 => n + 5, // parts > n
                2 => 64,
                _ => 1 + rng.below(8) as usize,
            };
            // Wrapping integer sums are associative, so chunking must be
            // invisible: exact equality regardless of the split.
            let ifold = |r: std::ops::Range<usize>| {
                r.fold(0u64, |acc, i| {
                    acc.wrapping_add((i as u64).wrapping_mul(0x9e37))
                })
            };
            let serial = parallel_reduce(n, 1, 0u64, ifold, |a, b| a.wrapping_add(b));
            let par = parallel_reduce(n, threads, 0u64, ifold, |a, b| a.wrapping_add(b));
            assert_eq!(serial, par, "n={n} threads={threads}");
            // Float sums regroup across chunk boundaries; agreement is
            // approximate only.
            let ffold = |r: std::ops::Range<usize>| r.map(|i| (i as f64).sin()).sum::<f64>();
            let fserial = parallel_reduce(n, 1, 0.0f64, ffold, |a, b| a + b);
            let fpar = parallel_reduce(n, threads, 0.0f64, ffold, |a, b| a + b);
            assert!(
                (fserial - fpar).abs() <= 1e-9 * (1.0 + fserial.abs()),
                "n={n} threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_map_matches_serial_and_handles_edges() {
        for (n, threads) in [(0usize, 4usize), (1, 1), (7, 64), (1000, 4)] {
            let got = parallel_map(n, threads, |i| i * i);
            let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
            assert_eq!(got, expect, "n={n} threads={threads}");
        }
    }

    #[test]
    fn pool_survives_poisoned_bookkeeping_locks() {
        // A panicking task used to poison the pool/slot mutexes and turn
        // every later caller into a panic cascade; locks now recover.
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_reduce(
                64,
                4,
                0u64,
                |r| {
                    if r.contains(&17) {
                        panic!("task boom");
                    }
                    r.len() as u64
                },
                |a, b| a + b,
            );
        }));
        assert!(r.is_err(), "panic must still propagate to the submitter");
        // The global pool keeps working afterwards.
        let total = parallel_reduce(100, 4, 0u64, |r| r.len() as u64, |a, b| a + b);
        assert_eq!(total, 100);
        let mapped = parallel_map(10, 4, |i| i + 1);
        assert_eq!(mapped.iter().sum::<usize>(), 55);
    }

    #[test]
    fn pool_worker_panic_injection_no_deadlock_no_poison() {
        // Panic-injection sweep: enough tasks that pool workers (not just
        // the submitting thread) claim panicking indices, repeated across
        // jobs.  Every submission must re-raise exactly once, the pool
        // must never deadlock in the drain wait, and later parallel_map
        // calls must see a fully functional pool.
        let pool = Pool::new(4);
        for round in 0..20u64 {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(64, &|i| {
                    if i as u64 % 7 == round % 7 {
                        panic!("injected panic in task {i}");
                    }
                });
            }));
            assert!(r.is_err(), "round {round}: panic must propagate");
            // The very next job runs to completion.
            let c = SharedCounter::new();
            pool.run(32, &|_| c.add(1));
            assert_eq!(c.get(), 32, "round {round}: pool degraded after panic");
        }
        // parallel_map on the global pool also survives injected panics.
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(50, 4, |i| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(r.is_err());
        let mapped = parallel_map(50, 4, |i| i * 2);
        assert_eq!(mapped, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        // Dropping the pool joins all workers even after panicked jobs —
        // a hang here fails the test by timeout.
        drop(pool);
    }

    #[test]
    fn pool_drop_joins_all_workers() {
        let pool = Pool::new(3);
        let c = SharedCounter::new();
        pool.run(8, &|_| c.add(1));
        assert_eq!(pool.workers(), 3);
        drop(pool); // must join all three without hanging
    }

    #[test]
    fn global_pool_with_entry() {
        let total = Pool::with(|p| {
            let c = SharedCounter::new();
            p.run(32, &|_| c.add(2));
            c.get()
        });
        assert_eq!(total, 64);
    }
}
