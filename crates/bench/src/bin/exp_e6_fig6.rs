//! E6 — paper Fig. 6: the fusion graph of the unfused A3A form and its
//! legality claims.
//!
//! Claims reproduced on the five-nest structure (X producer, T1/T2
//! integral producers, Y producer, E consumer):
//! * the X–E edges `(a,e,c,f)` can all become fusion edges (X → scalar);
//! * the Y–E edges `(c,e,a,f)` likewise (Y → scalar);
//! * T1 can be fully fused with the Y loop on `(c,e)` (its common result
//!   indices) — but then T2 cannot be fused: any fusion edge for T2 gives
//!   partially overlapping chains.

use tce_core::fusion::{chains_of, FusionConfig, FusionGraph};
use tce_core::scenarios::A3AScenario;

fn main() {
    println!("E6: Fig. 6 — fusion graph of the unfused A3A form\n");
    let sc = A3AScenario::new(4, 2, 100);
    let tree = &sc.tree;
    let names = |n: tce_core::ir::NodeId| -> String {
        if n == sc.x_node {
            "X".into()
        } else if n == sc.t1_node {
            "T1".into()
        } else if n == sc.t2_node {
            "T2".into()
        } else if n == sc.y_node {
            "Y".into()
        } else if n == tree.root {
            "E".into()
        } else {
            format!("leaf{}", n.0)
        }
    };

    let g = FusionGraph::from_tree(tree);
    println!("{}", g.render(tree, &sc.space, &names));

    // Claim 1: X fully fusable with E.
    let mut cfg = FusionConfig::unfused(tree);
    cfg.set(sc.x_node, sc.space.parse_set("a,e,c,f").unwrap());
    cfg.check(tree).unwrap();
    println!("X fused to a scalar on (a,e,c,f): LEGAL");

    // Claim 2: Y too, simultaneously.
    cfg.set(sc.y_node, sc.space.parse_set("c,e,a,f").unwrap());
    cfg.check(tree).unwrap();
    println!("X and Y both scalars: LEGAL");

    // Claim 3: T1 fusable with Y on (c,e) (standalone).
    let mut cfg2 = FusionConfig::unfused(tree);
    cfg2.set(sc.t1_node, sc.space.parse_set("c,e").unwrap());
    cfg2.check(tree).unwrap();
    println!("T1 fused with Y on (c,e): LEGAL");

    // Claim 4: then T2 cannot also fuse — every nonempty choice fails.
    let t2_fusable = tce_core::fusion::fusable_set(tree, sc.t2_node, sc.y_node);
    let mut all_rejected = true;
    for sub in t2_fusable.subsets() {
        if sub.is_empty() {
            continue;
        }
        cfg2.set(sc.t2_node, sub);
        if cfg2.check(tree).is_ok() {
            all_rejected = false;
            println!(
                "  unexpected: T2 fusable on {}",
                sc.space.set_to_string(sub)
            );
        }
    }
    cfg2.set(sc.t2_node, tce_core::ir::IndexSet::EMPTY);
    assert!(all_rejected, "paper: T2 producer cannot be fused after T1");
    println!("after fusing T1 on (c,e), every nonempty T2 fusion is ILLEGAL");
    println!("  (e.g. adding an edge for `a` creates partially overlapping chains for");
    println!("   `a` and `(c,e)`, exactly as §5 describes)");

    // Show the chains of the T1-fused configuration.
    println!("\nchains of the X+Y+T1 configuration:");
    cfg.set(sc.t1_node, sc.space.parse_set("c,e").unwrap());
    if cfg.check(tree).is_err() {
        // T1 joining (c,e) while Y is enclosed by all four chains is
        // itself illegal (T1's chains would have to nest inside a,f as
        // well); report the legal variant instead.
        println!("  (T1 cannot join while Y is fully fused — shown standalone)");
        cfg = cfg2.clone();
    }
    for ch in chains_of(tree, &cfg) {
        let scope: Vec<String> = ch.scope.iter().map(|&n| names(n)).collect();
        println!(
            "  chain {}: scope {{{}}}",
            sc.space.var_name(ch.index),
            scope.join(", ")
        );
    }
    println!("E6 OK");
}
