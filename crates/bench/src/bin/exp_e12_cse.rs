//! E12 — §3/§4: multi-term expressions and common-subexpression
//! factorization.
//!
//! The paper's `A3A` energy is a *sum of six* `X·Y` contributions over
//! spin cases, and §4 notes the Algebraic Transformations module exploits
//! distributivity across the whole input.  This harness builds a six-term
//! statement in which spin symmetry makes several `X` blocks coincide, and
//! shows the CSE stage charging each distinct intermediate once — then
//! verifies the executed multi-term program against a direct evaluation.

use std::collections::HashMap;
use tce_bench::tables::{fmt_u, Table};
use tce_core::tensor::Tensor;
use tce_core::{synthesize, SynthesisConfig};

fn main() {
    println!("E12: multi-term statements and common-subexpression factorization\n");
    // Six terms à la A3A's spin cases; with closed-shell symmetry the
    // first and fourth (and second/fifth, third/sixth) X·Y pairs coincide.
    let src = "
        range V = 6; range O = 3;
        index a, c, e, f : V; index i1, j1 : O;
        tensor T(O, O, V, V);
        tensor U(O, O, V, V);
        tensor E();
        E = sum[a,c,e,f,i1,j1]
              T[i1,j1,a,e] * T[i1,j1,c,f]
            + T[i1,j1,a,e] * U[i1,j1,c,f]
            + U[i1,j1,a,e] * U[i1,j1,c,f]
            + T[i1,j1,a,e] * T[i1,j1,c,f]
            + T[i1,j1,a,e] * U[i1,j1,c,f]
            + U[i1,j1,a,e] * U[i1,j1,c,f];
    ";
    let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
    assert_eq!(syn.plans.len(), 6);
    assert_eq!(syn.cse.len(), 1);
    let c = &syn.cse[0];

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["terms".into(), "6".into()]);
    t.row(&[
        "intermediates before sharing".into(),
        c.total_intermediates.to_string(),
    ]);
    t.row(&[
        "distinct after sharing".into(),
        c.unique_intermediates.to_string(),
    ]);
    t.row(&["flops, independent".into(), fmt_u(c.ops_independent)]);
    t.row(&["flops, with CSE".into(), fmt_u(c.ops_with_cse)]);
    t.row(&[
        "saving".into(),
        format!(
            "{:.0}%",
            100.0 * (1.0 - c.ops_with_cse as f64 / c.ops_independent as f64)
        ),
    ]);
    println!("{}", t.render());
    // Each term's optimal tree pre-reduces both factors over their
    // private indices before a cheap {i1,j1} dot product (3 contractions
    // per term → 18 total); sharing collapses them to 7 distinct:
    // reduce(T,ae), reduce(T,cf), reduce(U,ae), reduce(U,cf) and the
    // three distinct dot products.
    assert_eq!(c.total_intermediates, 18);
    assert_eq!(c.unique_intermediates, 7);
    // Every distinct intermediate appears at least twice → >2× saving.
    assert!(c.ops_with_cse * 2 < c.ops_independent);

    // Execute and verify the summed statement.
    let tt = Tensor::random(&[3, 3, 6, 6], 1);
    let uu = Tensor::random(&[3, 3, 6, 6], 2);
    let mut ext = HashMap::new();
    ext.insert(syn.program.tensors.by_name("T").unwrap(), &tt);
    ext.insert(syn.program.tensors.by_name("U").unwrap(), &uu);
    let out = syn.execute(&ext, &HashMap::new()).unwrap();
    let e = out[&syn.program.tensors.by_name("E").unwrap()].get(&[]);

    // Direct evaluation.
    let mut expect = 0.0;
    for a in 0..6 {
        for cc in 0..6 {
            for ee in 0..6 {
                for ff in 0..6 {
                    for i in 0..3 {
                        for j in 0..3 {
                            let t1 = tt.get(&[i, j, a, ee]);
                            let t2 = tt.get(&[i, j, cc, ff]);
                            let u1 = uu.get(&[i, j, a, ee]);
                            let u2 = uu.get(&[i, j, cc, ff]);
                            expect += 2.0 * (t1 * t2 + t1 * u2 + u1 * u2);
                        }
                    }
                }
            }
        }
    }
    println!("E = {e:.6} (direct {expect:.6})");
    assert!((e - expect).abs() < 1e-8 * expect.abs().max(1.0));
    println!("E12 OK");
}
