//! Recursive-descent parser for the specification language.

use crate::ast::*;
use crate::token::{lex, LangError, Token, TokenKind};

/// Parse a complete source file.
pub fn parse(src: &str) -> Result<SourceFile, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.source_file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LangError> {
        let t = self.peek();
        Err(LangError::at(t.line, t.col, msg))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, LangError> {
        if &self.peek().kind == kind {
            Ok(self.next())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn ident(&mut self) -> Result<(String, u32), LangError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.next();
                let line = t.line;
                if let TokenKind::Ident(s) = t.kind {
                    Ok((s, line))
                } else {
                    unreachable!()
                }
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn int(&mut self) -> Result<u64, LangError> {
        match self.peek().kind {
            TokenKind::Int(n) => {
                self.next();
                Ok(n)
            }
            ref other => self.err(format!("expected integer, found {other}")),
        }
    }

    fn comma_idents(&mut self, close: &TokenKind) -> Result<Vec<String>, LangError> {
        let mut names = Vec::new();
        if &self.peek().kind == close {
            return Ok(names);
        }
        loop {
            names.push(self.ident()?.0);
            if self.peek().kind == TokenKind::Comma {
                self.next();
            } else {
                break;
            }
        }
        Ok(names)
    }

    fn source_file(&mut self) -> Result<SourceFile, LangError> {
        let mut items = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(SourceFile { items })
    }

    fn item(&mut self) -> Result<Item, LangError> {
        match &self.peek().kind {
            TokenKind::Ident(kw) if kw == "range" => self.range_decl(),
            TokenKind::Ident(kw) if kw == "index" => self.index_decl(),
            TokenKind::Ident(kw) if kw == "tensor" => self.tensor_decl(),
            TokenKind::Ident(kw) if kw == "function" => self.func_decl(),
            TokenKind::Ident(_) => self.stmt().map(Item::Stmt),
            other => self.err(format!("expected declaration or statement, found {other}")),
        }
    }

    fn range_decl(&mut self) -> Result<Item, LangError> {
        let (_, line) = self.ident()?; // `range`
        let (name, _) = self.ident()?;
        self.expect(&TokenKind::Assign)?;
        let extent = self.int()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Item::Range(RangeDecl { name, extent, line }))
    }

    fn index_decl(&mut self) -> Result<Item, LangError> {
        let (_, line) = self.ident()?; // `index`
        let mut names = vec![self.ident()?.0];
        while self.peek().kind == TokenKind::Comma {
            self.next();
            names.push(self.ident()?.0);
        }
        self.expect(&TokenKind::Colon)?;
        let (range, _) = self.ident()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Item::Index(IndexDecl { names, range, line }))
    }

    fn tensor_decl(&mut self) -> Result<Item, LangError> {
        let (_, line) = self.ident()?; // `tensor`
        let (name, _) = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let dims = self.comma_idents(&TokenKind::RParen)?;
        self.expect(&TokenKind::RParen)?;
        let mut symmetry = Vec::new();
        let mut sparse = false;
        loop {
            match &self.peek().kind {
                TokenKind::Ident(kw) if kw == "symmetric" || kw == "antisymmetric" => {
                    let anti = kw == "antisymmetric";
                    self.next();
                    self.expect(&TokenKind::LParen)?;
                    let mut positions = vec![self.int()? as usize];
                    while self.peek().kind == TokenKind::Comma {
                        self.next();
                        positions.push(self.int()? as usize);
                    }
                    self.expect(&TokenKind::RParen)?;
                    symmetry.push(SymmetryAst {
                        positions,
                        antisymmetric: anti,
                    });
                }
                TokenKind::Ident(kw) if kw == "sparse" => {
                    self.next();
                    sparse = true;
                }
                _ => break,
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Item::Tensor(TensorDeclAst {
            name,
            dims,
            symmetry,
            sparse,
            line,
        }))
    }

    fn func_decl(&mut self) -> Result<Item, LangError> {
        let (_, line) = self.ident()?; // `function`
        let (name, _) = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let args = self.comma_idents(&TokenKind::RParen)?;
        self.expect(&TokenKind::RParen)?;
        match &self.peek().kind {
            TokenKind::Ident(kw) if kw == "cost" => {
                self.next();
            }
            other => return self.err(format!("expected `cost`, found {other}")),
        }
        let cost = self.int()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Item::Function(FuncDecl {
            name,
            args,
            cost,
            line,
        }))
    }

    fn stmt(&mut self) -> Result<StmtAst, LangError> {
        let (lhs, line) = self.ident()?;
        let lhs_indices = if self.peek().kind == TokenKind::LBracket {
            self.next();
            let names = self.comma_idents(&TokenKind::RBracket)?;
            self.expect(&TokenKind::RBracket)?;
            names
        } else {
            Vec::new()
        };
        let accumulate = match self.peek().kind {
            TokenKind::Assign => {
                self.next();
                false
            }
            TokenKind::PlusAssign => {
                self.next();
                true
            }
            ref other => return self.err(format!("expected `=` or `+=`, found {other}")),
        };
        let sum_indices = match &self.peek().kind {
            TokenKind::Ident(kw) if kw == "sum" => {
                self.next();
                self.expect(&TokenKind::LBracket)?;
                let names = self.comma_idents(&TokenKind::RBracket)?;
                self.expect(&TokenKind::RBracket)?;
                names
            }
            _ => Vec::new(),
        };
        let mut terms = vec![self.term(1.0)?];
        loop {
            match self.peek().kind {
                TokenKind::Plus => {
                    self.next();
                    terms.push(self.term(1.0)?);
                }
                TokenKind::Minus => {
                    self.next();
                    terms.push(self.term(-1.0)?);
                }
                _ => break,
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(StmtAst {
            lhs,
            lhs_indices,
            accumulate,
            sum_indices,
            terms,
            line,
        })
    }

    /// Parse one product term; `sign` folds a leading statement-level `-`.
    fn term(&mut self, sign: f64) -> Result<TermAst, LangError> {
        let mut coeff = sign;
        // Optional leading numeric coefficient (with optional sign).
        if self.peek().kind == TokenKind::Minus {
            self.next();
            coeff = -coeff;
        }
        match self.peek().kind {
            TokenKind::Int(n) => {
                self.next();
                coeff *= n as f64;
                self.expect(&TokenKind::Star)?;
            }
            TokenKind::Float(x) => {
                self.next();
                coeff *= x;
                self.expect(&TokenKind::Star)?;
            }
            _ => {}
        }
        let mut factors = vec![self.factor()?];
        while self.peek().kind == TokenKind::Star {
            self.next();
            factors.push(self.factor()?);
        }
        Ok(TermAst { coeff, factors })
    }

    fn factor(&mut self) -> Result<FactorAst, LangError> {
        let (name, _) = self.ident()?;
        match self.peek().kind {
            TokenKind::LBracket => {
                self.next();
                let indices = self.comma_idents(&TokenKind::RBracket)?;
                self.expect(&TokenKind::RBracket)?;
                Ok(FactorAst::Tensor { name, indices })
            }
            TokenKind::LParen => {
                self.next();
                let indices = self.comma_idents(&TokenKind::RParen)?;
                self.expect(&TokenKind::RParen)?;
                Ok(FactorAst::Func { name, indices })
            }
            ref other => self.err(format!(
                "expected `[` or `(` after factor name, found {other}"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECTION2: &str = "
        range N = 10;
        index a, b, c, d, e, f, i, j, k, l : N;
        tensor A(N, N, N, N);
        tensor B(N, N, N, N);
        tensor C(N, N, N, N);
        tensor D(N, N, N, N);
        tensor S(N, N, N, N);
        S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * C[d,f,j,k] * D[c,d,e,l];
    ";

    #[test]
    fn parses_section2() {
        let file = parse(SECTION2).unwrap();
        assert_eq!(file.items.len(), 8);
        match &file.items[7] {
            Item::Stmt(s) => {
                assert_eq!(s.lhs, "S");
                assert_eq!(s.lhs_indices, vec!["a", "b", "i", "j"]);
                assert_eq!(s.sum_indices.len(), 6);
                assert_eq!(s.terms.len(), 1);
                assert_eq!(s.terms[0].factors.len(), 4);
                assert!(!s.accumulate);
            }
            other => panic!("expected statement, got {other:?}"),
        }
    }

    #[test]
    fn parses_function_and_call() {
        let src = "
            range V = 8; range O = 4;
            index c, e : V; index b1 : V; index k : O;
            function f1(V, V, V, O) cost 1000;
            tensor Y(V, V);
            Y[c,e] += sum[b1,k] f1(c, e, b1, k) * f1(c, e, b1, k);
        ";
        let file = parse(src).unwrap();
        let stmt = file
            .items
            .iter()
            .find_map(|i| match i {
                Item::Stmt(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert!(stmt.accumulate);
        assert!(matches!(stmt.terms[0].factors[0], FactorAst::Func { .. }));
        let func = file
            .items
            .iter()
            .find_map(|i| match i {
                Item::Function(f) => Some(f),
                _ => None,
            })
            .unwrap();
        assert_eq!(func.cost, 1000);
        assert_eq!(func.args.len(), 4);
    }

    #[test]
    fn parses_symmetry_and_sparse() {
        let src = "
            range V = 8;
            tensor X(V, V, V, V) symmetric(0,1) antisymmetric(2,3) sparse;
        ";
        let file = parse(src).unwrap();
        match &file.items[1] {
            Item::Tensor(t) => {
                assert_eq!(t.symmetry.len(), 2);
                assert!(!t.symmetry[0].antisymmetric);
                assert!(t.symmetry[1].antisymmetric);
                assert_eq!(t.symmetry[1].positions, vec![2, 3]);
                assert!(t.sparse);
            }
            other => panic!("expected tensor, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_term_with_signs_and_coeffs() {
        let src = "
            range N = 4;
            index i, j, k : N;
            tensor A(N, N); tensor B(N, N); tensor S(N, N);
            S[i,j] = sum[k] 2 * A[i,k] * B[k,j] - 0.5 * A[i,k] * A[k,j] + B[i,k] * B[k,j];
        ";
        let file = parse(src).unwrap();
        let stmt = file
            .items
            .iter()
            .find_map(|i| match i {
                Item::Stmt(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(stmt.terms.len(), 3);
        assert_eq!(stmt.terms[0].coeff, 2.0);
        assert_eq!(stmt.terms[1].coeff, -0.5);
        assert_eq!(stmt.terms[2].coeff, 1.0);
    }

    #[test]
    fn parses_scalar_lhs() {
        let src = "
            range N = 4;
            index i : N;
            tensor A(N);
            E = sum[i] A[i] * A[i];
            E2[] += sum[i] A[i] * A[i];
        ";
        let file = parse(src).unwrap();
        let stmts: Vec<_> = file
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Stmt(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(stmts[0].lhs_indices.is_empty());
        assert!(stmts[1].lhs_indices.is_empty());
        assert!(stmts[1].accumulate);
    }

    #[test]
    fn error_reports_position() {
        let err = parse("range V 3000;").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("expected `=`"));
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("range V = 10").unwrap_err();
        assert!(err.msg.contains("expected `;`"));
    }

    #[test]
    fn error_on_bare_factor_name() {
        let err = parse("range N = 2; index i : N; tensor A(N); A[i] = A;").unwrap_err();
        assert!(err.msg.contains("after factor name"));
    }
}
