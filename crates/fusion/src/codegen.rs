//! Generation of fused loop programs from a fusion configuration.
//!
//! The legal configurations form laminar families of fusion-chain scopes
//! (see [`crate::chains`]), which translate directly into a loop structure:
//! every chain becomes one loop whose body contains the material of the
//! nodes in its scope, nested according to scope inclusion (paper
//! Fig. 1(c)).  Unfused producers become separate top-level nests emitted
//! in evaluation order.
//!
//! Placement rules (derived in the module tests and verified end-to-end by
//! the `tce-exec` interpreter against the reference einsum):
//!
//! * a node's statement sits inside every chain whose scope contains the
//!   node, plus its own *private* loops (its loop indices not covered by
//!   those chains);
//! * the zero-initialization of a fused intermediate sits inside exactly
//!   the chains running through the node's parent edge — i.e. it re-zeroes
//!   once per iteration of the fused loops, just before the producer's
//!   material;
//! * within any loop body, components are ordered by the highest
//!   evaluation rank they contain, which places every producer (and every
//!   initialization) before its consumers.

use crate::chains::{chains_of, Chain};
use crate::config::{is_fusable_producer, FusionConfig};
use std::collections::HashMap;
use tce_ir::{IndexSet, IndexSpace, IndexVar, Leaf, NodeId, OpKind, OpTree, TensorTable};
use tce_loops::{
    ARef, ArrayId, ArrayKind, BuiltProgram, LoopProgram, LoopVarId, Stmt, Sub, VarRange,
};

/// Build the fused loop program for `tree` under `config`.
///
/// # Panics
/// Panics if `config` is illegal for `tree` (check it first).
pub fn fused_program(
    tree: &OpTree,
    space: &IndexSpace,
    tensors: &TensorTable,
    config: &FusionConfig,
    result_name: &str,
) -> BuiltProgram {
    config
        .check(tree)
        .expect("fused_program requires a legal configuration");
    fused_program_with_labels(tree, space, tensors, config, config, result_name)
}

/// Generalized emission: `chain_labels` defines the loop structure (its
/// per-edge sets may include *redundant* indices that are not indices of
/// the child — their chains wrap the child's nest and re-execute it, the
/// space-time transformation of paper Fig. 3), while `array_config`
/// defines the array dimensions (only genuinely fused dimensions are
/// eliminated).  For plain fusion both are the same configuration.
///
/// The caller is responsible for legality: the chain scopes of
/// `chain_labels` must be nested or disjoint
/// ([`crate::chains::check_scopes`]).
pub fn fused_program_with_labels(
    tree: &OpTree,
    space: &IndexSpace,
    tensors: &TensorTable,
    chain_labels: &FusionConfig,
    array_config: &FusionConfig,
    result_name: &str,
) -> BuiltProgram {
    let config = chain_labels;
    let mut p = LoopProgram::new();
    let mut index_var: HashMap<u8, LoopVarId> = HashMap::new();
    let mut node_array: Vec<ArrayId> = vec![ArrayId(u32::MAX); tree.len()];
    let parents = tree.parents();
    let rank: Vec<usize> = {
        let mut r = vec![0usize; tree.len()];
        for (i, id) in tree.postorder().into_iter().enumerate() {
            r[id.0 as usize] = i;
        }
        r
    };

    // --- declare loop variables (one per source index in use) ---
    let mut all_indices = IndexSet::EMPTY;
    for id in tree.postorder() {
        all_indices = all_indices.union(tree.loop_indices(id));
    }
    for v in all_indices.iter() {
        let lv = p.add_var(space.var_name(v), VarRange::Full(v));
        index_var.insert(v.0, lv);
    }

    // --- declare arrays (dims reduced by each node's parent-edge fusion) ---
    let mut temp_counter = 0usize;
    let mut func_of: HashMap<u32, tce_loops::FuncId> = HashMap::new();
    for id in tree.postorder() {
        match &tree.node(id).kind {
            OpKind::Leaf(Leaf::Input { tensor, indices }) => {
                let dims = indices.iter().map(|&v| VarRange::Full(v)).collect();
                node_array[id.0 as usize] =
                    p.add_array(&tensors.get(*tensor).name, dims, ArrayKind::Input(*tensor));
            }
            OpKind::Leaf(Leaf::One) => {
                node_array[id.0 as usize] = p.add_array("one", Vec::new(), ArrayKind::One);
            }
            OpKind::Leaf(Leaf::Func {
                name,
                cost_per_eval,
                ..
            }) => {
                let f = p.add_func(name, *cost_per_eval);
                func_of.insert(id.0, f);
                temp_counter += 1;
                let dims = remaining_dims(tree, array_config, id);
                node_array[id.0 as usize] =
                    p.add_array(&format!("T{temp_counter}"), dims, ArrayKind::Intermediate);
            }
            OpKind::Contract { .. } => {
                let (name, kind) = if id == tree.root {
                    (result_name.to_string(), ArrayKind::Output)
                } else {
                    temp_counter += 1;
                    (format!("T{temp_counter}"), ArrayKind::Intermediate)
                };
                let dims = remaining_dims(tree, array_config, id);
                node_array[id.0 as usize] = p.add_array(&name, dims, kind);
            }
        }
    }

    // --- fusion groups: connected components over fused edges ---
    let mut group_of: Vec<usize> = (0..tree.len()).collect();
    fn find(uf: &mut [usize], mut i: usize) -> usize {
        while uf[i] != i {
            uf[i] = uf[uf[i]];
            i = uf[i];
        }
        i
    }
    for id in tree.postorder() {
        if id != tree.root && !config.get(id).is_empty() {
            let u = parents[id.0 as usize].unwrap();
            let (a, b) = (
                find(&mut group_of, id.0 as usize),
                find(&mut group_of, u.0 as usize),
            );
            group_of[a] = b;
        }
    }

    // Producers (nodes that emit code) grouped; group key = representative.
    let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for id in tree.postorder() {
        if is_fusable_producer(tree, id) {
            let g = find(&mut group_of, id.0 as usize);
            groups.entry(g).or_default().push(id);
        }
    }
    // Emit groups in order of their highest-rank member (the group's
    // consumer-most node), which respects producer→consumer dependencies
    // between groups.
    let mut group_list: Vec<Vec<NodeId>> = groups.into_values().collect();
    group_list.sort_by_key(|g| g.iter().map(|n| rank[n.0 as usize]).max().unwrap());

    let chains = chains_of(tree, config);
    for group in group_list {
        emit_group(
            tree,
            space,
            array_config,
            &chains,
            &group,
            &rank,
            &parents,
            &index_var,
            &node_array,
            &func_of,
            &mut p,
        );
    }

    let built = BuiltProgram {
        program: p,
        node_array,
        index_var,
    };
    debug_assert!(built.program.validate().is_ok());
    built
}

/// Remaining dimensions (canonical ascending order) of the array produced
/// by `id` under `config`.
fn remaining_dims(tree: &OpTree, config: &FusionConfig, id: NodeId) -> Vec<VarRange> {
    config
        .array_indices(tree, id)
        .iter()
        .map(VarRange::Full)
        .collect()
}

/// An emission item: a statement (with private loops) or an array
/// initialization, placed at a laminar position.
struct Item {
    /// (evaluation rank, 0 = init / 1 = statement) — unique, and ordering
    /// by it places initializations and producers before consumers.
    key: (usize, u8),
    /// Chains that must be open around this item (indices).
    chain_set: Vec<usize>,
    /// Statement to emit (already including private loops).
    stmt: Stmt,
}

#[allow(clippy::too_many_arguments)]
fn emit_group(
    tree: &OpTree,
    space: &IndexSpace,
    config: &FusionConfig,
    all_chains: &[Chain],
    group: &[NodeId],
    rank: &[usize],
    parents: &[Option<NodeId>],
    index_var: &HashMap<u8, LoopVarId>,
    node_array: &[ArrayId],
    func_of: &HashMap<u32, tce_loops::FuncId>,
    p: &mut LoopProgram,
) {
    let in_group = |n: NodeId| group.contains(&n);
    // Chains relevant to this group (scope within the group's node set —
    // chains never straddle groups because fused edges define both).
    let chains: Vec<(usize, &Chain)> = all_chains
        .iter()
        .enumerate()
        .filter(|(_, c)| c.scope.iter().any(|&n| in_group(n)))
        .collect();

    let chain_contains = |ci: usize, n: NodeId| all_chains[ci].scope.contains(&n);

    // --- build items ---
    let mut items: Vec<Item> = Vec::new();
    for &v in group {
        let cv: Vec<usize> = chains
            .iter()
            .filter(|(ci, _)| chain_contains(*ci, v))
            .map(|(ci, _)| *ci)
            .collect();
        let chain_indices: IndexSet =
            IndexSet::from_vars(cv.iter().map(|&ci| all_chains[ci].index));
        let private: Vec<IndexVar> = tree.loop_indices(v).minus(chain_indices).iter().collect();

        // Statement.
        let stmt = match &tree.node(v).kind {
            OpKind::Contract { left, right } => Stmt::Accum {
                lhs: ref_for(tree, config, v, node_array, index_var),
                rhs: vec![
                    ref_for(tree, config, *left, node_array, index_var),
                    ref_for(tree, config, *right, node_array, index_var),
                ],
                coeff: 1.0,
            },
            OpKind::Leaf(Leaf::Func { indices, .. }) => Stmt::Eval {
                lhs: ref_for(tree, config, v, node_array, index_var),
                func: func_of[&v.0],
                args: indices
                    .iter()
                    .map(|iv| Sub::Var(index_var[&iv.0]))
                    .collect(),
            },
            OpKind::Leaf(_) => unreachable!("only producers are group members"),
        };
        let nested = if private.is_empty() {
            stmt
        } else {
            tce_loops::nest(
                private.iter().map(|iv| index_var[&iv.0]).collect(),
                vec![stmt],
            )
        };
        items.push(Item {
            key: (rank[v.0 as usize], 1),
            chain_set: cv.clone(),
            stmt: nested,
        });

        // Initialization for accumulating intermediates (contractions).
        if matches!(tree.node(v).kind, OpKind::Contract { .. }) {
            // The chains through v's parent edge (those containing both
            // endpoints) — the array is re-zeroed once per their
            // iteration.  Empty (top of a group, or the root) → a single
            // zero-fill before the group.
            let init_chains: Vec<usize> = match parents[v.0 as usize] {
                Some(u) if v != tree.root => cv
                    .iter()
                    .copied()
                    .filter(|&ci| chain_contains(ci, u))
                    .collect(),
                _ => Vec::new(),
            };
            items.push(Item {
                key: (rank[v.0 as usize], 0),
                chain_set: init_chains,
                stmt: Stmt::Init {
                    array: node_array[v.0 as usize],
                },
            });
        }
    }
    let _ = space;

    // --- laminar forest over the group's chains ---
    // Sort by descending scope size, then index id; each chain's parent is
    // the smallest already-placed chain whose scope contains it.
    let mut order: Vec<usize> = chains.iter().map(|(ci, _)| *ci).collect();
    order.sort_by_key(|&ci| {
        (
            std::cmp::Reverse(all_chains[ci].scope.len()),
            all_chains[ci].index,
        )
    });
    // forest_parent[ci] = Some(parent chain) or None (root level).
    let mut forest_parent: HashMap<usize, Option<usize>> = HashMap::new();
    for (pos, &ci) in order.iter().enumerate() {
        let mut best: Option<usize> = None;
        for &cj in order[..pos].iter() {
            let scope_i = &all_chains[ci].scope;
            let scope_j = &all_chains[cj].scope;
            if scope_i.iter().all(|n| scope_j.contains(n)) {
                // cj contains ci; prefer the smallest container, breaking
                // equal-scope ties toward the most recently placed (so
                // equal scopes form a path, not siblings).
                best = Some(match best {
                    None => cj,
                    // Later-placed equal scopes win, so equal scopes form a
                    // path rather than siblings.
                    Some(b) if scope_j.len() <= all_chains[b].scope.len() => cj,
                    Some(b) => b,
                });
            }
        }
        forest_parent.insert(ci, best);
    }

    // Depth of each chain in the forest (for picking an item's innermost
    // position).
    let mut depth: HashMap<usize, usize> = HashMap::new();
    for &ci in &order {
        let mut d = 0;
        let mut cur = forest_parent[&ci];
        while let Some(c) = cur {
            d += 1;
            cur = forest_parent[&c];
        }
        depth.insert(ci, d);
    }

    // --- attach items and emit recursively ---
    enum Node {
        Chain(usize),
        Item(usize),
    }
    // children of laminar position: key None = group root, Some(ci) = chain.
    let mut children: HashMap<Option<usize>, Vec<Node>> = HashMap::new();
    for &ci in &order {
        children
            .entry(forest_parent[&ci])
            .or_default()
            .push(Node::Chain(ci));
    }
    for (ii, item) in items.iter().enumerate() {
        let pos = item.chain_set.iter().copied().max_by_key(|ci| depth[ci]);
        children.entry(pos).or_default().push(Node::Item(ii));
    }

    // Max item key under each laminar position, for ordering.
    fn max_key(
        pos: Option<usize>,
        children: &HashMap<Option<usize>, Vec<Node>>,
        items: &[Item],
    ) -> (usize, u8) {
        let mut best = (0usize, 0u8);
        if let Some(nodes) = children.get(&pos) {
            for n in nodes {
                let k = match n {
                    Node::Item(ii) => items[*ii].key,
                    Node::Chain(ci) => max_key(Some(*ci), children, items),
                };
                if k > best {
                    best = k;
                }
            }
        }
        best
    }

    fn emit(
        pos: Option<usize>,
        children: &HashMap<Option<usize>, Vec<Node>>,
        items: &[Item],
        all_chains: &[Chain],
        index_var: &HashMap<u8, LoopVarId>,
    ) -> Vec<Stmt> {
        let mut ordered: Vec<(&Node, (usize, u8))> = children
            .get(&pos)
            .map(|ns| {
                ns.iter()
                    .map(|n| {
                        let k = match n {
                            Node::Item(ii) => items[*ii].key,
                            Node::Chain(ci) => max_key(Some(*ci), children, items),
                        };
                        (n, k)
                    })
                    .collect()
            })
            .unwrap_or_default();
        ordered.sort_by_key(|&(_, k)| k);
        let mut out = Vec::new();
        for (n, _) in ordered {
            match n {
                Node::Item(ii) => out.push(items[*ii].stmt.clone()),
                Node::Chain(ci) => {
                    let var = index_var[&all_chains[*ci].index.0];
                    let body = emit(Some(*ci), children, items, all_chains, index_var);
                    out.push(Stmt::Loop { var, body });
                }
            }
        }
        out
    }

    let stmts = emit(None, &children, &items, all_chains, index_var);
    p.body.extend(stmts);
}

/// Reference to the (possibly dimension-reduced) array of `id`, subscripted
/// by the loop variables of its remaining indices (inputs keep their
/// declared dimension order).
fn ref_for(
    tree: &OpTree,
    config: &FusionConfig,
    id: NodeId,
    node_array: &[ArrayId],
    index_var: &HashMap<u8, LoopVarId>,
) -> ARef {
    let subs: Vec<Sub> = match &tree.node(id).kind {
        OpKind::Leaf(Leaf::Input { indices, .. }) => {
            indices.iter().map(|v| Sub::Var(index_var[&v.0])).collect()
        }
        OpKind::Leaf(Leaf::One) => Vec::new(),
        _ => config
            .array_indices(tree, id)
            .iter()
            .map(|v| Sub::Var(index_var[&v.0]))
            .collect(),
    };
    ARef {
        array: node_array[id.0 as usize],
        subs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmin::memmin_dp;
    use tce_ir::TensorDecl;
    use tce_loops::{memory_report, op_counts, pretty, unfused_program};

    fn fig1(n_ext: usize) -> (IndexSpace, TensorTable, OpTree, NodeId, NodeId) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", n_ext);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tensors, tree, t1, t2)
    }

    #[test]
    fn fig1c_structure_matches_paper() {
        let (space, tensors, tree, t1, t2) = fig1(4);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        cfg.set(t2, space.parse_set("b,c").unwrap());
        let built = fused_program(&tree, &space, &tensors, &cfg, "S");
        built.program.validate().unwrap();
        let text = pretty(&built.program);
        // Paper Fig 1(c): S init at top; outer loops b, c; T1 a scalar
        // re-initialized per (d,f) iteration; T2 a 2-D array per (b,c).
        let expect = "\
S = 0
for b, c
  T2 = 0
  for d, f
    T1 = 0
    for e, l
      T1 += B[b,e,f,l] * D[c,d,e,l]
    for j, k
      T2[j,k] += T1 * C[d,f,j,k]
  for a, i, j, k
    S[a,b,i,j] += T2[j,k] * A[a,c,i,k]
";
        assert_eq!(text, expect);
    }

    #[test]
    fn unfused_config_matches_unfused_builder_semantics() {
        // With the empty configuration, the fused builder must produce a
        // program with the same ops and memory as the direct builder.
        let (space, tensors, tree, _, _) = fig1(3);
        let cfg = FusionConfig::unfused(&tree);
        let fused = fused_program(&tree, &space, &tensors, &cfg, "S");
        let direct = unfused_program(&tree, &space, &tensors, "S");
        assert_eq!(
            op_counts(&fused.program, &space),
            op_counts(&direct.program, &space)
        );
        assert_eq!(
            memory_report(&fused.program, &space).temp_elements,
            memory_report(&direct.program, &space).temp_elements
        );
    }

    #[test]
    fn memmin_config_emits_with_reduced_memory_and_same_ops() {
        let (space, tensors, tree, _, _) = fig1(5);
        let r = memmin_dp(&tree, &space);
        let built = fused_program(&tree, &space, &tensors, &r.config, "S");
        built.program.validate().unwrap();
        let mem = memory_report(&built.program, &space);
        // temp = T1 + T2 + S(output, N^4).
        assert_eq!(mem.temp_elements, r.memory + 5u128.pow(4));
        let ops = op_counts(&built.program, &space);
        assert_eq!(ops.contraction_flops, tree.total_ops(&space));
    }

    #[test]
    fn func_leaf_fusion_emits_eval_inside_chain() {
        // E = Σ_ce f1(c,e)·f2(c,e), fully fused: everything scalar.
        let mut space = IndexSpace::new();
        let n = space.add_range("V", 4);
        let c = space.add_var("c", n);
        let e = space.add_var("e", n);
        let tensors = TensorTable::new();
        let mut tree = OpTree::new();
        let f1 = tree.leaf_func("f1", vec![c, e], 1000);
        let f2 = tree.leaf_func("f2", vec![c, e], 1000);
        tree.contract(f1, f2, IndexSet::EMPTY);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(f1, IndexSet::from_vars([c, e]));
        cfg.set(f2, IndexSet::from_vars([c, e]));
        let built = fused_program(&tree, &space, &tensors, &cfg, "E");
        built.program.validate().unwrap();
        let text = pretty(&built.program);
        let expect = "\
E = 0
for c, e
  T1 = f1(c, e)
  T2 = f2(c, e)
  E += T1 * T2
";
        assert_eq!(text, expect);
        let mem = memory_report(&built.program, &space);
        assert_eq!(mem.temp_elements, 3); // two scalars + scalar output
    }

    #[test]
    fn split_emission_child_subset_of_parent() {
        // R = Σ_xy (Σ_z A[x,z]B[z]) · C[x,y]: mid fused to root on {x};
        // then a deeper producer fused on a subset is emitted between the
        // openings of the root's fused loops.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 3);
        let x = space.add_var("x", n);
        let y = space.add_var("y", n);
        let z = space.add_var("z", n);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n, n]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n, n]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![x, z]);
        let lb = tree.leaf_input(tb, vec![z]);
        let mid = tree.contract(la, lb, x.singleton()); // mid[x] = Σ_z A·B
        let lc = tree.leaf_input(tc, vec![x, y]);
        tree.contract(mid, lc, IndexSet::EMPTY); // R = Σ_xy mid·C
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(mid, x.singleton());
        cfg.check(&tree).unwrap();
        let built = fused_program(&tree, &space, &tensors, &cfg, "R");
        built.program.validate().unwrap();
        let text = pretty(&built.program);
        let expect = "\
R = 0
for x
  T1 = 0
  for z
    T1 += A[x,z] * B[z]
  for y
    R += T1 * C[x,y]
";
        assert_eq!(text, expect);
    }
}
