//! Distribution n-tuples over a logical processor grid (paper §7).
//!
//! "We use an n-tuple to denote the partitioning or distribution of the
//! elements of a data array on an n-dimensional processor array. … Each
//! position may be one of the following: an index variable distributed
//! along that processor dimension, a '*' denoting replication of data
//! along that processor dimension, or a '1' denoting that only the first
//! processor along that processor dimension is assigned any data.  If an
//! index variable appears as an array subscript but not in the n-tuple,
//! then the corresponding dimension of the array is not distributed.
//! Conversely, if an index variable appears in the n-tuple but not in the
//! array, then the data is replicated along the corresponding processor
//! dimension, which is the same as replacing that index variable with a
//! '*'."

use tce_ir::{IndexSet, IndexSpace, IndexVar};
use tce_par::{myrange, ProcessorGrid};

/// One position of a distribution tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistEntry {
    /// Distribute this index variable along the processor dimension.
    Idx(IndexVar),
    /// `*` — replicate along the processor dimension.
    Replicate,
    /// `1` — only the first processor along the dimension holds data.
    One,
}

/// A distribution n-tuple (one entry per grid dimension).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DistTuple(pub Vec<DistEntry>);

impl DistTuple {
    /// Tuple with every position `1` (everything on the first processor).
    pub fn all_one(rank: usize) -> Self {
        Self(vec![DistEntry::One; rank])
    }

    /// Tuple with every position `*`.
    pub fn all_replicate(rank: usize) -> Self {
        Self(vec![DistEntry::Replicate; rank])
    }

    /// Grid rank this tuple is for.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Normalize with respect to an array's index set: an `Idx(v)` whose
    /// variable the array does not use is the same as `*`.
    pub fn normalize(&self, array_indices: IndexSet) -> DistTuple {
        DistTuple(
            self.0
                .iter()
                .map(|e| match *e {
                    DistEntry::Idx(v) if !array_indices.contains(v) => DistEntry::Replicate,
                    other => other,
                })
                .collect(),
        )
    }

    /// Project onto an operand's index set (used to derive the operand
    /// distribution implied by a loop-space distribution γ).
    pub fn project(&self, operand_indices: IndexSet) -> DistTuple {
        self.normalize(operand_indices)
    }

    /// True if the tuple involves no replication relative to the array
    /// (the paper's `NoReplicate(α)` predicate).
    pub fn no_replicate(&self, array_indices: IndexSet) -> bool {
        self.normalize(array_indices)
            .0
            .iter()
            .all(|e| !matches!(e, DistEntry::Replicate))
    }

    /// The set of index variables appearing in the tuple.
    pub fn vars(&self) -> IndexSet {
        IndexSet::from_vars(self.0.iter().filter_map(|e| match e {
            DistEntry::Idx(v) => Some(*v),
            _ => None,
        }))
    }

    /// Does processor `coords` hold any data of an array with
    /// `array_indices` under this tuple?
    pub fn holds(&self, array_indices: IndexSet, coords: &[usize]) -> bool {
        self.0.iter().zip(coords).all(|(e, &z)| match *e {
            DistEntry::One => z == 0,
            DistEntry::Idx(v) if array_indices.contains(v) => true,
            // Replication (explicit or via an unused index): all hold.
            _ => true,
        })
    }

    /// The sub-range of array dimension `v` owned by processor `coords`
    /// (the paper's `myrange`); the full range when `v` is not distributed.
    pub fn owned_range(
        &self,
        v: IndexVar,
        space: &IndexSpace,
        grid: &ProcessorGrid,
        coords: &[usize],
    ) -> std::ops::Range<usize> {
        let n = space.extent(v);
        for (d, e) in self.0.iter().enumerate() {
            if *e == DistEntry::Idx(v) {
                return myrange(coords[d], n, grid.dims()[d]);
            }
        }
        0..n
    }

    /// Number of elements of an array (dims `array_dims`, in order) held
    /// locally by `coords`.
    pub fn local_elements(
        &self,
        array_dims: &[IndexVar],
        space: &IndexSpace,
        grid: &ProcessorGrid,
        coords: &[usize],
    ) -> u128 {
        let set = IndexSet::from_vars(array_dims.iter().copied());
        if !self.holds(set, coords) {
            return 0;
        }
        array_dims.iter().fold(1u128, |acc, &v| {
            acc.saturating_mul(self.owned_range(v, space, grid, coords).len() as u128)
        })
    }

    /// Render like the paper: `⟨k,*,1⟩`.
    pub fn display(&self, space: &IndexSpace) -> String {
        let inner: Vec<String> = self
            .0
            .iter()
            .map(|e| match e {
                DistEntry::Idx(v) => space.var_name(*v).to_string(),
                DistEntry::Replicate => "*".to_string(),
                DistEntry::One => "1".to_string(),
            })
            .collect();
        format!("<{}>", inner.join(","))
    }
}

/// Enumerate all distribution tuples over `vars` for a grid of `rank`
/// dimensions: every position takes `1`, `*`, or one of the variables,
/// with no variable used twice.  `q = O(mⁿ)` tuples (paper §7).
pub fn enumerate_tuples(vars: IndexSet, rank: usize) -> Vec<DistTuple> {
    let var_list: Vec<IndexVar> = vars.iter().collect();
    let mut out = Vec::new();
    let mut current = vec![DistEntry::One; rank];
    fn rec(
        var_list: &[IndexVar],
        rank: usize,
        d: usize,
        used: &mut IndexSet,
        current: &mut Vec<DistEntry>,
        out: &mut Vec<DistTuple>,
    ) {
        if d == rank {
            out.push(DistTuple(current.clone()));
            return;
        }
        for e in [DistEntry::One, DistEntry::Replicate] {
            current[d] = e;
            rec(var_list, rank, d + 1, used, current, out);
        }
        for &v in var_list {
            if used.contains(v) {
                continue;
            }
            used.insert(v);
            current[d] = DistEntry::Idx(v);
            rec(var_list, rank, d + 1, used, current, out);
            used.remove(v);
        }
    }
    let mut used = IndexSet::EMPTY;
    rec(&var_list, rank, 0, &mut used, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (IndexSpace, ProcessorGrid, IndexVar, IndexVar, IndexVar) {
        let mut sp = IndexSpace::new();
        let rn = sp.add_range("N", 16);
        let j = sp.add_var("j", rn);
        let k = sp.add_var("k", rn);
        let t = sp.add_var("t", rn);
        let grid = ProcessorGrid::new(vec![2, 4, 8]);
        (sp, grid, j, k, t)
    }

    #[test]
    fn paper_example_b_jkt() {
        // B[j,k,t] with tuple ⟨k,*,1⟩ on a 2×4×8 grid: second dim of B
        // distributed along grid dim 1; data replicated along grid dim 2;
        // only processors with third coordinate 0 hold data.
        let (sp, grid, j, k, t) = setup();
        let alpha = DistTuple(vec![
            DistEntry::Idx(k),
            DistEntry::Replicate,
            DistEntry::One,
        ]);
        assert_eq!(alpha.display(&sp), "<k,*,1>");
        let dims = [j, k, t];
        let set = IndexSet::from_vars(dims);
        // A processor with z3 = 0 holds B[0..16, myrange(z1,16,2), 0..16].
        let held = alpha.local_elements(&dims, &sp, &grid, &[1, 2, 0]);
        assert_eq!(held, 16 * 8 * 16);
        assert_eq!(alpha.owned_range(k, &sp, &grid, &[1, 2, 0]), 8..16);
        assert_eq!(alpha.owned_range(j, &sp, &grid, &[1, 2, 0]), 0..16);
        // z3 ≠ 0 holds nothing.
        assert_eq!(alpha.local_elements(&dims, &sp, &grid, &[1, 2, 3]), 0);
        assert!(!alpha.holds(set, &[0, 0, 1]));
        assert!(alpha.holds(set, &[0, 3, 0]));
    }

    #[test]
    fn normalize_unused_var_becomes_star() {
        let (_, _, j, k, t) = setup();
        // Array T1[j,t] with tuple ⟨1,t,j⟩ keeps all entries; with tuple
        // ⟨j,k,1⟩ the k entry (not an array index) is replication.
        let tup = DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(k), DistEntry::One]);
        let arr = IndexSet::from_vars([j, t]);
        let norm = tup.normalize(arr);
        assert_eq!(norm.0[1], DistEntry::Replicate);
        assert!(!tup.no_replicate(arr));
        let solid = DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(t), DistEntry::One]);
        assert!(solid.no_replicate(arr));
    }

    #[test]
    fn total_replicas_count() {
        // Full replication stores the array on every processor.
        let (sp, grid, j, k, t) = setup();
        let dims = [j, k, t];
        let rep = DistTuple::all_replicate(3);
        let total: u128 = grid
            .processors()
            .map(|id| rep.local_elements(&dims, &sp, &grid, &grid.coords(id)))
            .sum();
        assert_eq!(total, 64 * 16u128.pow(3));
        // Block distribution over k stores each element exactly... along
        // distributed dim split, replicated elsewhere.
        let alpha = DistTuple(vec![DistEntry::Idx(k), DistEntry::One, DistEntry::One]);
        let total2: u128 = grid
            .processors()
            .map(|id| alpha.local_elements(&dims, &sp, &grid, &grid.coords(id)))
            .sum();
        assert_eq!(total2, 16u128.pow(3)); // exactly one copy
    }

    #[test]
    fn enumerate_counts_match_formula() {
        // Positions take 1, *, or a distinct variable: for m vars and
        // n dims, q = Σ over injections; for m=2, n=2: (2+2)·(2+1)+... just
        // verify by explicit count.
        let (_, _, j, k, _) = setup();
        let tuples = enumerate_tuples(IndexSet::from_vars([j, k]), 2);
        // Per position 4 choices (1, *, j, k) minus var reuse: 4·4 − 2
        // (jj, kk) = 14.
        assert_eq!(tuples.len(), 14);
        let mut dedup = tuples.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), tuples.len());
    }

    #[test]
    fn enumerate_no_vars() {
        let tuples = enumerate_tuples(IndexSet::EMPTY, 2);
        assert_eq!(tuples.len(), 4); // {1,*}²
    }
}
