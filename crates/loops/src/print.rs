//! Paper-style pseudocode pretty-printer for loop programs.
//!
//! Produces output in the notation of paper Figs. 1–4:
//!
//! ```text
//! S = 0
//! for b, c
//!   T1f = 0
//!   for d, f
//!     for e, l
//!       T1f[d,f] += B[b,e,f,l] * D[c,d,e,l]
//! ```
//!
//! Chains of directly-nested loops whose bodies contain nothing else are
//! collapsed onto one `for` line, as the paper does.

use crate::ir::{ARef, LoopProgram, Stmt, Sub};
use std::fmt::Write;

/// Render `program` as indented pseudocode.
pub fn pretty(program: &LoopProgram) -> String {
    let mut out = String::new();
    render_stmts(program, &program.body, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_stmts(p: &LoopProgram, stmts: &[Stmt], depth: usize, out: &mut String) {
    for s in stmts {
        render_stmt(p, s, depth, out);
    }
}

fn render_stmt(p: &LoopProgram, s: &Stmt, depth: usize, out: &mut String) {
    match s {
        Stmt::Loop { var, body } => {
            // Collapse `for a { for b { … } }` chains where each level has
            // a single Loop child.
            let mut vars = vec![*var];
            let mut cur = body;
            loop {
                if cur.len() == 1 {
                    if let Stmt::Loop { var, body } = &cur[0] {
                        vars.push(*var);
                        cur = body;
                        continue;
                    }
                }
                break;
            }
            indent(out, depth);
            out.push_str("for ");
            for (i, v) in vars.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&p.var(*v).name);
            }
            out.push('\n');
            render_stmts(p, cur, depth + 1, out);
        }
        Stmt::Init { array } => {
            indent(out, depth);
            let _ = writeln!(out, "{} = 0", p.array(*array).name);
        }
        Stmt::Accum { lhs, rhs, coeff } => {
            indent(out, depth);
            out.push_str(&render_ref(p, lhs));
            out.push_str(" += ");
            if *coeff != 1.0 {
                let _ = write!(out, "{coeff} * ");
            }
            for (i, r) in rhs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" * ");
                }
                out.push_str(&render_ref(p, r));
            }
            out.push('\n');
        }
        Stmt::Eval { lhs, func, args } => {
            indent(out, depth);
            let _ = write!(out, "{} = {}(", render_ref(p, lhs), p.func(*func).name);
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&render_sub(p, a));
            }
            out.push_str(")\n");
        }
    }
}

fn render_sub(p: &LoopProgram, s: &Sub) -> String {
    match *s {
        Sub::Var(v) => p.var(v).name.clone(),
        Sub::Tiled { tile, intra, block } => {
            format!("{}*{}+{}", p.var(tile).name, block, p.var(intra).name)
        }
    }
}

fn render_ref(p: &LoopProgram, r: &ARef) -> String {
    let name = &p.array(r.array).name;
    if r.subs.is_empty() {
        return name.clone();
    }
    let subs: Vec<String> = r.subs.iter().map(|s| render_sub(p, s)).collect();
    format!("{}[{}]", name, subs.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::unfused_program;
    use tce_ir::{IndexSet, IndexSpace, OpTree, TensorDecl, TensorTable};

    #[test]
    fn prints_fig1b_shape() {
        // Build the Fig 1(a) tree and check the unfused pseudocode shows
        // three collapsed nests.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 4);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));

        let built = unfused_program(&tree, &space, &tensors, "S");
        let text = pretty(&built.program);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "T1 = 0");
        assert_eq!(lines[1], "for b, c, d, e, f, l");
        assert_eq!(lines[2], "  T1[b,c,d,f] += B[b,e,f,l] * D[c,d,e,l]");
        assert_eq!(lines[3], "T2 = 0");
        assert_eq!(lines[4], "for b, c, d, f, j, k");
        assert_eq!(lines[5], "  T2[b,c,j,k] += T1[b,c,d,f] * C[d,f,j,k]");
        assert_eq!(lines[6], "S = 0");
        assert_eq!(lines[7], "for a, b, c, i, j, k");
        assert_eq!(lines[8], "  S[a,b,i,j] += T2[b,c,j,k] * A[a,c,i,k]");
    }

    #[test]
    fn prints_tiled_subscripts() {
        use crate::ir::*;
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 8);
        let a = space.add_var("a", n);
        let mut p = LoopProgram::new();
        let at = p.add_var("a_t", VarRange::Tile { index: a, block: 4 });
        let ai = p.add_var("a_i", VarRange::Intra { index: a, block: 4 });
        let arr = p.add_array("X", vec![VarRange::Full(a)], ArrayKind::Intermediate);
        let f = p.add_func("f1", 100);
        p.body.push(Stmt::Loop {
            var: at,
            body: vec![Stmt::Loop {
                var: ai,
                body: vec![Stmt::Eval {
                    lhs: ARef {
                        array: arr,
                        subs: vec![Sub::Tiled {
                            tile: at,
                            intra: ai,
                            block: 4,
                        }],
                    },
                    func: f,
                    args: vec![Sub::Tiled {
                        tile: at,
                        intra: ai,
                        block: 4,
                    }],
                }],
            }],
        });
        p.validate().unwrap();
        let text = pretty(&p);
        assert!(text.contains("for a_t, a_i"));
        assert!(text.contains("X[a_t*4+a_i] = f1(a_t*4+a_i)"));
    }
}
