//! Cost-model conformance: the observability layer (`tce-trace`) measures
//! what the analytic models predict, *exactly*.
//!
//! * executed-FLOP counters (`gett.flops`, `exec.interp.flops`) equal the
//!   `tce_opmin` operation count `OpTree::total_ops` on the §2 running
//!   example and the A3A (Fig. 2/Fig. 4) scenario;
//! * interpreter load/store counters (`exec.interp.reads`/`.writes`)
//!   equal the `tce_locality` access model `access_cost(p, space, 0)` on
//!   untiled programs — with a zero-capacity cache every loop level
//!   spills, so the model degenerates to an exact memory-reference count;
//! * a `tce --trace`-equivalent run produces spans for all six pipeline
//!   stages plus the GETT pack/kernel sub-spans.
//!
//! Trace state is process-global, so every test serializes on
//! [`TRACE_LOCK`] and brackets its workload with `reset`/`take`.

use std::collections::HashMap;
use std::sync::Mutex;

use tce_core::exec::{Interpreter, NoSink};
use tce_core::ir::TensorId;
use tce_core::locality::access_cost;
use tce_core::scenarios::{section2_source, A3AScenario};
use tce_core::tensor::{IntegralFn, Tensor};
use tce_core::{synthesize, ExecOptions, SynthesisConfig};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with tracing enabled on an empty buffer; return its result and
/// the captured trace.  Serialized across the whole test binary.
fn traced<R>(f: impl FnOnce() -> R) -> (R, tce_trace::Trace) {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tce_trace::reset();
    tce_trace::set_enabled(true);
    let out = f();
    tce_trace::set_enabled(false);
    (out, tce_trace::take())
}

/// Deterministic random bindings for every input tensor of the §2 program.
fn section2_inputs(syn: &tce_core::Synthesis, n: usize) -> Vec<(TensorId, Tensor)> {
    ["A", "B", "C", "D"]
        .iter()
        .map(|name| {
            let id = syn.program.tensors.by_name(name).unwrap();
            (id, Tensor::random(&[n, n, n, n], 0xC0 ^ id.0 as u64))
        })
        .collect()
}

#[test]
fn gett_flops_counter_equals_opmin_prediction_on_section2() {
    let n = 6;
    let syn = synthesize(&section2_source(n), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    // The opmin prediction for §2 is the paper's 6·N^6.
    let predicted = plan.tree_ops;
    assert_eq!(predicted, 6 * (n as u128).pow(6));

    let owned = section2_inputs(&syn, n);
    let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
    let funcs = HashMap::new();
    // Two threads: per-worker counters must merge to the same exact total.
    let (results, trace) = traced(|| {
        syn.execute_opts(&inputs, &funcs, &ExecOptions::with_threads(2))
            .unwrap()
    });
    assert_eq!(results.len(), 1);
    assert_eq!(trace.counter_total("gett.flops") as u128, predicted);
}

#[test]
fn interpreter_flops_counter_equals_opmin_prediction_on_section2() {
    let n = 6;
    let syn = synthesize(&section2_source(n), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let predicted = plan.tree_ops;

    let owned = section2_inputs(&syn, n);
    let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
    let funcs = HashMap::new();
    let (_out, trace) = traced(|| {
        plan.execute_interpreted(&syn.program.space, &inputs, &funcs)
            .unwrap()
    });
    assert_eq!(trace.counter_total("exec.interp.flops") as u128, predicted);
}

#[test]
fn interpreter_flops_match_fig4_analytic_tables() {
    let sc = A3AScenario::new(4, 2, 50);
    let amps = sc.amplitudes(7);
    let mut inputs = HashMap::new();
    inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
    let funcs = sc.functions();
    for bb in [1usize, 2, 4] {
        let p = sc.fig4_program(bb);
        let ((), trace) = traced(|| {
            let mut interp = Interpreter::new(&p, &sc.space, &inputs, &funcs).unwrap();
            interp.run(&mut NoSink);
        });
        // Fig. 4 table rows: X/Y/E are contraction iteration spaces (×2
        // for multiply+add), T1/T2 are integral flops.
        let t = sc.fig4_table(bb);
        let predicted = 2 * (t[0].2 + t[3].2 + t[4].2) + t[1].2 + t[2].2;
        assert_eq!(
            trace.counter_total("exec.interp.flops") as u128,
            predicted,
            "B = {bb}"
        );
        // At B = V there is no recomputation, so the executed count also
        // equals the opmin tree prediction.
        if bb == sc.v() {
            assert_eq!(predicted, sc.tree.total_ops(&sc.space));
        }
    }
}

#[test]
fn interpreter_accesses_match_locality_model_on_untiled_fig2() {
    let sc = A3AScenario::new(4, 2, 50);
    let built = sc.fig2_program();
    let amps = sc.amplitudes(9);
    let mut inputs = HashMap::new();
    inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
    let funcs = sc.functions();
    let ((), trace) = traced(|| {
        let mut interp = Interpreter::new(&built.program, &sc.space, &inputs, &funcs).unwrap();
        interp.run(&mut NoSink);
    });
    // With zero cache capacity every loop spills and the model counts one
    // access per reference — exactly the interpreter's loads + stores.
    let predicted = access_cost(&built.program, &sc.space, 0);
    let measured = (trace.counter_total("exec.interp.reads")
        + trace.counter_total("exec.interp.writes")) as u128;
    assert_eq!(measured, predicted);
}

#[test]
fn interpreter_accesses_match_locality_model_on_untiled_section2() {
    let n = 4;
    let syn = synthesize(&section2_source(n), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let owned = section2_inputs(&syn, n);
    let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
    let funcs: HashMap<String, IntegralFn> = HashMap::new();
    let ((), trace) = traced(|| {
        plan.execute_interpreted(&syn.program.space, &inputs, &funcs)
            .unwrap();
    });
    let predicted = access_cost(&plan.built.program, &syn.program.space, 0);
    let measured = (trace.counter_total("exec.interp.reads")
        + trace.counter_total("exec.interp.writes")) as u128;
    assert_eq!(measured, predicted);
}

#[test]
fn full_pipeline_trace_has_all_stage_and_kernel_spans() {
    let n = 6;
    let cfg = SynthesisConfig {
        cache_elements: Some(4096),
        ..SynthesisConfig::default()
    };
    let ((), trace) = traced(|| {
        let syn = synthesize(&section2_source(n), &cfg).unwrap();
        let owned = section2_inputs(&syn, n);
        let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
        syn.execute_opts(&inputs, &HashMap::new(), &ExecOptions::with_threads(2))
            .unwrap();
    });
    for stage in [
        "stage.opmin",
        "stage.fusion",
        "stage.spacetime",
        "stage.locality",
        "stage.distribution",
        "stage.exec",
    ] {
        assert!(trace.span_count(stage) >= 1, "missing span {stage}");
    }
    assert!(trace.span_count("gett.pack") >= 1);
    assert!(trace.span_count("gett.kernel") >= 1);
    // Counters that must accompany a traced pipeline run.
    assert!(trace.counter_total("opmin.pareto_points") >= 1);
    assert!(trace.counter_total("fusion.memmin_states") >= 1);
    // The fused §2 program has no perfect nest to tile, but the hierarchy
    // access model always runs under the locality stage when tracing.
    assert!(trace
        .names()
        .iter()
        .any(|n| n.starts_with("locality.accesses.")));
    assert!(trace.counter_total("gett.flops") > 0);
    assert!(trace.mem_peak_bytes > 0);

    let json = trace.to_chrome_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    let report = trace.report().to_string();
    assert!(report.contains("profile report"));
    assert!(report.contains("opmin"));
    assert!(report.contains("exec"));
}

#[test]
fn tracing_disabled_records_nothing() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tce_trace::reset();
    assert!(!tce_trace::enabled());
    let n = 4;
    let syn = synthesize(&section2_source(n), &SynthesisConfig::default()).unwrap();
    let owned = section2_inputs(&syn, n);
    let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
    syn.execute_opts(&inputs, &HashMap::new(), &ExecOptions::with_threads(1))
        .unwrap();
    let trace = tce_trace::take();
    assert_eq!(trace.events.len(), 0);
    assert_eq!(trace.mem_peak_bytes, 0);
}
