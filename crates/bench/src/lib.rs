//! # tce-bench — experiment harnesses and benchmarks
//!
//! One binary per paper artifact (`exp_e1_opmin` … `exp_e11_pipeline`;
//! see DESIGN.md's experiment index and EXPERIMENTS.md for recorded
//! outcomes) plus micro-benchmarks of the optimizers and kernels, run on
//! the in-tree [`harness`] (the workspace builds without external crates).

pub mod harness;
pub mod tables;
