//! The fusion graph (paper §5, Figs. 6–7).
//!
//! "Corresponding to each node in a computation tree, the fusion graph has
//! a set of vertices corresponding to the loop indices of the node …  The
//! potential for fusion of a common loop among a producer-consumer pair of
//! loop nests is indicated … through a dashed potential fusion edge
//! connecting the corresponding vertices."
//!
//! This module materializes that structure for inspection and for the
//! Fig. 6/7 experiments: vertices per (node, index), potential-fusion
//! edges per tree edge and common index, optional *redundant vertices*
//! (the Fig. 3/7 device enabling full fusion), and a text rendering.

use crate::config::{fusable_set, is_fusable_producer, FusionConfig};
use tce_ir::{IndexSet, IndexSpace, IndexVar, NodeId, OpKind, OpTree};

/// A potential or actual fusion edge between the `index` vertices of
/// `child` and `parent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionEdge {
    /// Producer-side node.
    pub child: NodeId,
    /// Consumer-side node.
    pub parent: NodeId,
    /// The shared loop index.
    pub index: IndexVar,
    /// Whether the child-side vertex is *redundant* (added by the
    /// space-time transformation; not a real loop index of the child).
    pub redundant: bool,
}

/// The fusion graph of an operator tree.
#[derive(Debug, Clone)]
pub struct FusionGraph {
    /// Loop-index vertex sets per node (`NodeId.0`-indexed), including any
    /// redundant vertices added.
    pub vertices: Vec<IndexSet>,
    /// All potential fusion edges.
    pub edges: Vec<FusionEdge>,
}

impl FusionGraph {
    /// Build the graph of `tree` without redundant vertices: each
    /// producer node contributes its loop indices; every producer-consumer
    /// tree edge contributes one potential edge per common index.
    pub fn from_tree(tree: &OpTree) -> Self {
        let parents = tree.parents();
        let mut vertices = vec![IndexSet::EMPTY; tree.len()];
        for id in tree.postorder() {
            if is_fusable_producer(tree, id)
                || matches!(tree.node(id).kind, OpKind::Contract { .. })
            {
                vertices[id.0 as usize] = tree.loop_indices(id);
            }
        }
        let mut edges = Vec::new();
        for id in tree.postorder() {
            if id == tree.root || !is_fusable_producer(tree, id) {
                continue;
            }
            let u = parents[id.0 as usize].unwrap();
            for x in fusable_set(tree, id, u).iter() {
                edges.push(FusionEdge {
                    child: id,
                    parent: u,
                    index: x,
                    redundant: false,
                });
            }
        }
        Self { vertices, edges }
    }

    /// Add redundant vertices for `indices` at `node` (paper Fig. 7): the
    /// node gains vertices for parent loops it lacks, and potential edges
    /// to its parent for them.
    pub fn add_redundant_vertices(&mut self, tree: &OpTree, node: NodeId, indices: IndexSet) {
        let parents = tree.parents();
        let u = parents[node.0 as usize].expect("node has a parent");
        let candidates = tree.loop_indices(u).minus(tree.loop_indices(node));
        assert!(
            indices.is_subset(candidates),
            "redundant vertices must be parent loops the node lacks"
        );
        self.vertices[node.0 as usize] = self.vertices[node.0 as usize].union(indices);
        for x in indices.iter() {
            self.edges.push(FusionEdge {
                child: node,
                parent: u,
                index: x,
                redundant: true,
            });
        }
    }

    /// The potential edges on one tree edge.
    pub fn edges_between(&self, child: NodeId, parent: NodeId) -> Vec<FusionEdge> {
        self.edges
            .iter()
            .copied()
            .filter(|e| e.child == child && e.parent == parent)
            .collect()
    }

    /// Can `config` be realized on this graph — i.e. is every fused index
    /// backed by a (possibly redundant) potential edge, and are the chain
    /// scopes nested?  This extends `FusionConfig::check` with redundant
    /// vertices: the fused set on an edge may include redundant indices
    /// previously added at the child.
    pub fn supports(&self, tree: &OpTree, config: &FusionConfig) -> Result<(), String> {
        let parents = tree.parents();
        for id in tree.postorder() {
            if id == tree.root {
                continue;
            }
            let u = match parents[id.0 as usize] {
                Some(u) => u,
                None => continue,
            };
            for x in config.get(id).iter() {
                if !self
                    .edges
                    .iter()
                    .any(|e| e.child == id && e.parent == u && e.index == x)
                {
                    return Err(format!(
                        "no potential fusion edge for index {} on edge {}→{}",
                        x.0, id.0, u.0
                    ));
                }
            }
        }
        // Scope nesting on the extended graph = the ordinary chain
        // condition (redundant vertices make the fused sets legal
        // subsets).
        crate::chains::check_scopes(tree, config)
    }

    /// Text rendering: one line per producer node with its vertices
    /// (redundant ones bracketed), then the potential edges.
    pub fn render(
        &self,
        tree: &OpTree,
        space: &IndexSpace,
        name_of: &dyn Fn(NodeId) -> String,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for id in tree.postorder() {
            let vs = self.vertices[id.0 as usize];
            if vs.is_empty() {
                continue;
            }
            let real = tree.loop_indices(id);
            let mut parts = Vec::new();
            for x in vs.iter() {
                if real.contains(x) {
                    parts.push(space.var_name(x).to_string());
                } else {
                    parts.push(format!("[{}]", space.var_name(x)));
                }
            }
            let _ = writeln!(out, "{:<12} vertices: {}", name_of(id), parts.join(" "));
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  edge {} --{}-- {}{}",
                name_of(e.child),
                space.var_name(e.index),
                name_of(e.parent),
                if e.redundant { "  (redundant)" } else { "" }
            );
        }
        out
    }
}

impl FusionGraph {
    /// Graphviz DOT rendering: one cluster per producer nest with its
    /// index vertices (dashed for redundant), dashed edges for potential
    /// fusion edges.
    pub fn to_dot(
        &self,
        tree: &OpTree,
        space: &IndexSpace,
        name_of: &dyn Fn(NodeId) -> String,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::from("graph fusion {\n  rankdir=TB;\n");
        for id in tree.postorder() {
            let vs = self.vertices[id.0 as usize];
            if vs.is_empty() {
                continue;
            }
            let real = tree.loop_indices(id);
            let _ = writeln!(out, "  subgraph cluster_{} {{", id.0);
            let _ = writeln!(out, "    label=\"{}\";", name_of(id));
            for x in vs.iter() {
                let style = if real.contains(x) { "solid" } else { "dashed" };
                let _ = writeln!(
                    out,
                    "    v{}_{} [label=\"{}\", style={style}];",
                    id.0,
                    x.0,
                    space.var_name(x)
                );
            }
            let _ = writeln!(out, "  }}");
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  v{}_{} -- v{}_{} [style=dashed{}];",
                e.child.0,
                e.index.0,
                e.parent.0,
                e.index.0,
                if e.redundant { ", color=red" } else { "" }
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A3A-like five-nest structure (Fig. 6): X = T·T, Y = f1·f2, E = X·Y.
    fn a3a() -> (IndexSpace, OpTree, NodeId, NodeId, NodeId, NodeId) {
        let mut space = IndexSpace::new();
        let v = space.add_range("V", 4);
        let o = space.add_range("O", 2);
        let (a, c, e, f) = (
            space.add_var("a", v),
            space.add_var("c", v),
            space.add_var("e", v),
            space.add_var("f", v),
        );
        let b = space.add_var("b", v);
        let (i, j, k) = (
            space.add_var("i", o),
            space.add_var("j", o),
            space.add_var("k", o),
        );
        let mut tensors = tce_ir::TensorTable::new();
        let t_amp = tensors.add(tce_ir::TensorDecl::dense("T", vec![o, o, v, v]));
        let mut tree = OpTree::new();
        let l1 = tree.leaf_input(t_amp, vec![i, j, a, e]);
        let l2 = tree.leaf_input(t_amp, vec![i, j, c, f]);
        let x = tree.contract(l1, l2, IndexSet::from_vars([a, e, c, f]));
        let t1 = tree.leaf_func("f1", vec![c, e, b, k], 100);
        let t2 = tree.leaf_func("f2", vec![a, f, b, k], 100);
        let y = tree.contract(t1, t2, IndexSet::from_vars([c, e, a, f]));
        tree.contract(x, y, IndexSet::EMPTY);
        (space, tree, x, t1, t2, y)
    }

    #[test]
    fn fig6_graph_structure() {
        let (space, tree, x, t1, t2, y) = a3a();
        let g = FusionGraph::from_tree(&tree);
        // X–E potential edges on a,e,c,f (4); Y–E on c,e,a,f (4);
        // T1–Y on c,e,b,k (4); T2–Y on a,f,b,k (4).
        assert_eq!(g.edges_between(x, tree.root).len(), 4);
        assert_eq!(g.edges_between(y, tree.root).len(), 4);
        assert_eq!(g.edges_between(t1, y).len(), 4);
        assert_eq!(g.edges_between(t2, y).len(), 4);
        let text = g.render(&tree, &space, &|n| format!("n{}", n.0));
        assert!(text.contains("edge"));
    }

    #[test]
    fn fig6_claims_hold() {
        // Paper: X and Y fusable to scalars; then T1 fusable on (c,e);
        // then fusing T2 at all creates partially overlapping chains.
        let (space, tree, x, t1, t2, y) = a3a();
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(x, space.parse_set("a,e,c,f").unwrap());
        cfg.set(y, space.parse_set("c,e,a,f").unwrap());
        cfg.check(&tree).unwrap();
        cfg.set(t1, space.parse_set("c,e").unwrap());
        // c,e chains now span T1–Y while a,f span X–E–Y: c,e ⊂ scope of
        // a/e? — the paper says this is still consistent... but T1's
        // fusion with a fully-fused Y violates nesting (Y is enclosed by
        // the full a,e,c,f chains while T1 only joins c,e).
        let t1_with_full_y = cfg.check(&tree);
        // Dropping the X/Y full fusion, T1–Y alone on (c,e) is fine.
        let mut cfg2 = FusionConfig::unfused(&tree);
        cfg2.set(t1, space.parse_set("c,e").unwrap());
        cfg2.check(&tree).unwrap();
        // …and then T2 cannot fuse without creating partial overlap.
        cfg2.set(t2, space.parse_set("a,f").unwrap());
        assert!(cfg2.check(&tree).is_err(), "paper: T2 cannot also fuse");
        let _ = t1_with_full_y;
    }

    #[test]
    fn fig7_redundant_vertices_enable_full_fusion() {
        let (space, tree, x, t1, t2, y) = a3a();
        let mut g = FusionGraph::from_tree(&tree);
        // Fig 7(a): add (a,f) at T1 and (c,e) at T2.
        g.add_redundant_vertices(&tree, t1, space.parse_set("a,f").unwrap());
        g.add_redundant_vertices(&tree, t2, space.parse_set("c,e").unwrap());
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(x, space.parse_set("a,e,c,f").unwrap());
        cfg.set(y, space.parse_set("c,e,a,f").unwrap());
        cfg.set(t1, space.parse_set("c,e,a,f").unwrap());
        cfg.set(t2, space.parse_set("c,e,a,f").unwrap());
        // Without redundant vertices the plain graph cannot support this.
        let plain = FusionGraph::from_tree(&tree);
        assert!(plain.supports(&tree, &cfg).is_err());
        // With them, full fusion is realizable.
        g.supports(&tree, &cfg).unwrap();
    }

    #[test]
    fn fig7_redundancy_on_one_side_suffices() {
        // Paper: "removing the additional vertices for (a,f) at T2 does
        // not violate the non-partial-overlap condition" — i.e. redundancy
        // at only one of T1/T2 still allows fusing the other fully where
        // its own indices permit.
        let (space, tree, x, t1, t2, y) = a3a();
        let mut g = FusionGraph::from_tree(&tree);
        g.add_redundant_vertices(&tree, t1, space.parse_set("a,f").unwrap());
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(x, space.parse_set("a,e,c,f").unwrap());
        cfg.set(y, space.parse_set("c,e,a,f").unwrap());
        // T1 fully fused (scalar) — its b,k chains stay within {T1, Y}.
        cfg.set(t1, space.parse_set("c,e,b,k,a,f").unwrap());
        // T2 fused only on its a,f indices: computed once per (a,f) as a
        // (b,k)-shaped block, no recomputation.
        cfg.set(t2, space.parse_set("a,f").unwrap());
        g.supports(&tree, &cfg).unwrap();
    }

    #[test]
    fn redundant_vertices_must_be_parent_loops() {
        let (space, tree, _, t1, _, _) = a3a();
        let mut g = FusionGraph::from_tree(&tree);
        // `i` is not a loop of Y: cannot be a redundant vertex at T1.
        let i = space.var_by_name("i").unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.add_redundant_vertices(&tree, t1, i.singleton());
        }));
        assert!(result.is_err());
    }

    #[test]
    fn dot_output_well_formed() {
        let (space, tree, _, t1, _, _) = a3a();
        let mut g = FusionGraph::from_tree(&tree);
        g.add_redundant_vertices(&tree, t1, space.parse_set("a,f").unwrap());
        let dot = g.to_dot(&tree, &space, &|n| format!("n{}", n.0));
        assert!(dot.starts_with("graph fusion {"));
        assert!(dot.trim_end().ends_with("}"));
        assert!(
            dot.contains("style=dashed, color=red"),
            "redundant edge styled"
        );
        assert!(dot.matches("subgraph").count() >= 4);
    }
}
