//! Fusion configurations over operator trees.
//!
//! A *fusion configuration* assigns to every tree edge (child → parent) the
//! set of common loop indices fused along that edge.  Fusing an index
//! eliminates that dimension of the child's intermediate array (paper §2,
//! §5).  This module defines configurations, the *recursive set-based
//! legality conditions* equivalent to the paper's fusion-graph condition
//! ("the scope of any two fusion chains must either be disjoint or a
//! subset/superset of each other"), and the memory metric the
//! memory-minimization DP optimizes.
//!
//! Legality (no-recomputation fusion) at a node `u` with parent-edge fused
//! set `p` and child-edge fused sets `c₁, c₂`:
//!
//! 1. `cᵢ ⊆ I(childᵢ) ∩ loops(u)` — only common loops can fuse;
//! 2. **pattern comparability** — for every index `x ∈ p ∪ c₁ ∪ c₂`, form
//!    its membership pattern over the three incident edges,
//!    `pat(x) ⊆ {P, L, R}`; all patterns must be pairwise
//!    subset-comparable.  A fused index corresponds to a loop whose scope
//!    spans the nodes its chain of fused edges connects; two indices whose
//!    patterns are incomparable at `u` would need loops whose scopes
//!    partially overlap — exactly what the paper's fusion-graph condition
//!    ("the scope of any two fusion chains must either be disjoint or a
//!    subset/superset of each other", §5) forbids.  Note this *permits*
//!    `c ⊂ p` and `p ⊂ c` cases, realized by interleaving a child's
//!    emission with the opening of the parent's fused loops.
//!
//! Children without a producer nest (stored inputs, the constant 1) are
//! read in place: their edge is always `∅` and imposes no constraint.
//!
//! The equivalence of these local conditions with the paper's global
//! chain-scope condition is verified on randomized trees in `chains.rs`.

use tce_ir::{IndexSet, IndexSpace, NodeId, OpKind, OpTree};

/// Which nodes own a producer loop nest (and an intermediate array) that
/// fusion can shrink.
pub fn is_fusable_producer(tree: &OpTree, id: NodeId) -> bool {
    matches!(
        tree.node(id).kind,
        OpKind::Contract { .. } | OpKind::Leaf(tce_ir::Leaf::Func { .. })
    )
}

/// The largest index set that may be fused on the edge `child → parent`:
/// the child's result indices that are loop indices of the parent.
pub fn fusable_set(tree: &OpTree, child: NodeId, parent: NodeId) -> IndexSet {
    if !is_fusable_producer(tree, child) {
        return IndexSet::EMPTY;
    }
    tree.node(child).indices.inter(tree.loop_indices(parent))
}

/// A fusion configuration: `fused[n]` is the set fused on the edge from
/// node `n` to its parent (`∅` for the root and for never-fused edges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionConfig {
    /// Per-node parent-edge fused sets, indexed by `NodeId.0`.
    pub fused: Vec<IndexSet>,
}

impl FusionConfig {
    /// The all-unfused configuration.
    pub fn unfused(tree: &OpTree) -> Self {
        Self {
            fused: vec![IndexSet::EMPTY; tree.len()],
        }
    }

    /// Fused set on a node's parent edge.
    pub fn get(&self, id: NodeId) -> IndexSet {
        self.fused[id.0 as usize]
    }

    /// Set the fused set on a node's parent edge.
    pub fn set(&mut self, id: NodeId, s: IndexSet) {
        self.fused[id.0 as usize] = s;
    }

    /// Check legality: basic well-formedness plus the paper's global
    /// chain-scope condition ("the scope of any two fusion chains must
    /// either be disjoint or a subset/superset of each other").  The local
    /// pattern test below is a fast necessary pre-filter; the chain
    /// condition is authoritative — nesting orders established at one node
    /// must stay consistent along whole chains, which no single-node test
    /// captures (see the ordered-state DP in [`crate::memmin`]).
    pub fn check(&self, tree: &OpTree) -> Result<(), String> {
        self.check_local(tree)?;
        crate::chains::check_scopes(tree, self)
    }

    /// The local (per-node) pattern-comparability conditions — necessary
    /// but not sufficient; see [`FusionConfig::check`].
    pub fn check_local(&self, tree: &OpTree) -> Result<(), String> {
        if self.fused.len() != tree.len() {
            return Err("configuration size mismatch".into());
        }
        if !self.get(tree.root).is_empty() {
            return Err("root has no parent edge to fuse".into());
        }
        for id in tree.postorder() {
            let p = self.get(id);
            match tree.node(id).kind {
                OpKind::Leaf(_) => {
                    if !p.is_subset(tree.node(id).indices) {
                        return Err(format!("node {}: fused set exceeds leaf indices", id.0));
                    }
                    if !p.is_empty() && !is_fusable_producer(tree, id) {
                        return Err(format!(
                            "node {}: stored inputs cannot be fused (they are read in place)",
                            id.0
                        ));
                    }
                }
                OpKind::Contract { left, right } => {
                    let c1 = self.get(left);
                    let c2 = self.get(right);
                    for (child, c) in [(left, c1), (right, c2)] {
                        if !c.is_subset(fusable_set(tree, child, id)) {
                            return Err(format!(
                                "edge {}→{}: fused set {:?} not within the fusable set",
                                child.0, id.0, c
                            ));
                        }
                    }
                    // Pattern comparability: pat(x) over incident edges
                    // (bit 0 = parent, 1 = left child, 2 = right child).
                    let all = p.union(c1).union(c2);
                    let mut patterns: Vec<u8> = Vec::new();
                    for x in all.iter() {
                        let pat = (p.contains(x) as u8)
                            | ((c1.contains(x) as u8) << 1)
                            | ((c2.contains(x) as u8) << 2);
                        patterns.push(pat);
                    }
                    for (i, &a) in patterns.iter().enumerate() {
                        for &b in &patterns[i + 1..] {
                            if a & b != a && a & b != b {
                                return Err(format!(
                                    "node {}: incomparable fusion patterns — the fused loops' \
                                     scopes would partially overlap (chains cannot nest)",
                                    id.0
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Remaining dimensions of the array produced by `id` under this
    /// configuration.
    pub fn array_indices(&self, tree: &OpTree, id: NodeId) -> IndexSet {
        tree.node(id).indices.minus(self.get(id))
    }

    /// The paper's memory metric: total elements of all temporary arrays —
    /// function-leaf materializations and non-root intermediates — after
    /// fusion.  Stored inputs and the root result are excluded (their sizes
    /// are fixed by the problem).
    pub fn temp_memory(&self, tree: &OpTree, space: &IndexSpace) -> u128 {
        let mut total = 0u128;
        for id in tree.postorder() {
            if id == tree.root || !is_fusable_producer(tree, id) {
                continue;
            }
            total = total.saturating_add(space.iteration_points(self.array_indices(tree, id)));
        }
        total
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use tce_ir::{IndexSpace, TensorDecl, TensorTable};

    /// Fig 1(a) tree at extent `n`; returns (space, tree, [t1, t2] node ids).
    pub(crate) fn fig1(n_ext: usize) -> (IndexSpace, OpTree, NodeId, NodeId) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", n_ext);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tree, t1, t2)
    }

    #[test]
    fn unfused_is_legal_with_full_memory() {
        let (space, tree, _, _) = fig1(10);
        let cfg = FusionConfig::unfused(&tree);
        cfg.check(&tree).unwrap();
        // T1 and T2 at N^4 each.
        assert_eq!(cfg.temp_memory(&tree, &space), 2 * 10u128.pow(4));
    }

    #[test]
    fn fig1c_configuration_is_legal() {
        // Paper Fig 1(c): T1 fused on {b,c,d,f} (scalar), T2 on {b,c} (2-D).
        let (space, tree, t1, t2) = fig1(10);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        cfg.set(t2, space.parse_set("b,c").unwrap());
        cfg.check(&tree).unwrap();
        assert_eq!(cfg.temp_memory(&tree, &space), 1 + 100);
        assert_eq!(cfg.array_indices(&tree, t1), IndexSet::EMPTY);
        assert_eq!(
            cfg.array_indices(&tree, t2),
            space.parse_set("j,k").unwrap()
        );
    }

    #[test]
    fn parent_fusion_must_be_contained_in_child_fusion() {
        // Fuse T2 into S on {b,c,j,k} (legal alone) — then T1 cannot fuse on
        // {b,c,d,f} because j,k ∉ I(T1).
        let (space, tree, t1, t2) = fig1(10);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t2, space.parse_set("b,c,j,k").unwrap());
        cfg.check(&tree).unwrap(); // T1 unfused: fine
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        let err = cfg.check(&tree).unwrap_err();
        assert!(err.contains("incomparable"), "{err}");
    }

    #[test]
    fn fused_set_limited_to_common_indices() {
        let (space, tree, t1, _) = fig1(10);
        let mut cfg = FusionConfig::unfused(&tree);
        // `a` is not an index of T1.
        cfg.set(t1, space.parse_set("a").unwrap());
        assert!(cfg.check(&tree).is_err());
    }

    #[test]
    fn root_must_be_unfused() {
        let (space, tree, _, _) = fig1(10);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(tree.root, space.parse_set("a").unwrap());
        assert!(cfg.check(&tree).is_err());
    }

    #[test]
    fn input_leaves_cannot_fuse() {
        let (space, tree, _, _) = fig1(10);
        let mut cfg = FusionConfig::unfused(&tree);
        // Node 0 is the B input leaf.
        cfg.set(NodeId(0), space.parse_set("b").unwrap());
        let err = cfg.check(&tree).unwrap_err();
        assert!(err.contains("read in place"), "{err}");
    }

    #[test]
    fn sibling_fusions_must_nest() {
        // Tree: R = (X·Y) where X = A·B over {i}, Y = C·D over {j}; R
        // output {}; loops(R) = {i, j}. Fusing X on {i} and Y on {j} gives
        // incomparable sibling sets — illegal (partially-overlapping
        // chains in the paper's fusion graph).
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 4);
        let i = space.add_var("i", n);
        let j = space.add_var("j", n);
        let mut tensors = TensorTable::new();
        let t = |tab: &mut TensorTable, nm: &str| tab.add(TensorDecl::dense(nm, vec![n]));
        let (ta, tb, tc, td) = (
            t(&mut tensors, "A"),
            t(&mut tensors, "B"),
            t(&mut tensors, "C"),
            t(&mut tensors, "D"),
        );
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![i]);
        let lb = tree.leaf_input(tb, vec![i]);
        let x = tree.contract(la, lb, i.singleton());
        let lc = tree.leaf_input(tc, vec![j]);
        let ld = tree.leaf_input(td, vec![j]);
        let y = tree.contract(lc, ld, j.singleton());
        tree.contract(x, y, IndexSet::EMPTY);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(x, i.singleton());
        cfg.check(&tree).unwrap(); // one side alone is fine
        cfg.set(y, j.singleton());
        let err = cfg.check(&tree).unwrap_err();
        assert!(err.contains("cannot nest"), "{err}");
        // Equal sibling sets on a shared index are fine.
        cfg.set(x, i.singleton());
        cfg.set(y, i.singleton());
        assert!(cfg.check(&tree).is_err()); // i not an index of Y
        let _ = &space;
        // Fusing Y on a subset of X's set is fine (∅ ⊆ {i}).
        cfg.set(y, IndexSet::EMPTY);
        cfg.check(&tree).unwrap();
    }

    #[test]
    fn func_leaf_edges_can_fuse() {
        // E = Σ_ce f1(c,e)·f2(c,e): both function leaves fused to scalars.
        let mut space = IndexSpace::new();
        let n = space.add_range("V", 5);
        let c = space.add_var("c", n);
        let e = space.add_var("e", n);
        let mut tree = OpTree::new();
        let f1 = tree.leaf_func("f1", vec![c, e], 1000);
        let f2 = tree.leaf_func("f2", vec![c, e], 1000);
        tree.contract(f1, f2, IndexSet::EMPTY);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(f1, IndexSet::from_vars([c, e]));
        cfg.set(f2, IndexSet::from_vars([c, e]));
        cfg.check(&tree).unwrap();
        assert_eq!(cfg.temp_memory(&tree, &space), 2); // two scalars
                                                       // Unfused: two 5×5 arrays.
        let unf = FusionConfig::unfused(&tree);
        assert_eq!(unf.temp_memory(&tree, &space), 50);
    }
}
