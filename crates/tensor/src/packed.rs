//! Packed storage for (anti)symmetric dimension pairs.
//!
//! The language's symmetry declarations (paper §4) promise storage and
//! work savings: a symmetric pair of dimensions over extent `n` has only
//! `n(n+1)/2` unique elements (`n(n−1)/2` antisymmetric).  This module
//! provides the packed-triangle storage realizing that saving for one
//! declared pair, with pack/unpack round-trips against dense tensors —
//! the executable counterpart of
//! [`tce_ir::TensorDecl::unique_elements`].

use crate::dense::Tensor;

/// A tensor with one (anti)symmetric dimension pair stored packed.
///
/// Layout: the two symmetric dimensions `(p, q)` (with `p < q` after
/// normalization) collapse into a single packed axis of length
/// `n(n+1)/2` (symmetric) or `n(n−1)/2` (antisymmetric); other dimensions
/// keep their order around it.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedSymmetric {
    /// Full (unpacked) shape.
    shape: Vec<usize>,
    /// The two symmetric dimension positions, `pair.0 < pair.1`.
    pair: (usize, usize),
    /// Antisymmetric pairs negate under swap and have zero diagonal.
    antisymmetric: bool,
    /// Packed data: outer dims (all except the pair, original order) ×
    /// packed axis (innermost).
    data: Vec<f64>,
    /// Shape of the outer (unpacked) dims in order.
    outer_shape: Vec<usize>,
    /// Length of the packed axis.
    packed_len: usize,
}

/// Position of `(i, j)` with `i ≤ j` in a row-major upper triangle of an
/// `n × n` symmetric matrix.
fn tri_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i <= j && j < n);
    // Rows 0..i contribute n, n−1, …, n−i+1 entries: i·n − i(i−1)/2.
    i * n - i * i.saturating_sub(1) / 2 + (j - i)
}

/// Strictly-upper-triangle position of `(i, j)` with `i < j`.
fn strict_tri_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

impl PackedSymmetric {
    /// Pack a dense tensor whose dims `pair` are (anti)symmetric.
    ///
    /// # Panics
    /// Panics if the pair is invalid, the two dims have different extents,
    /// or the tensor violates the claimed symmetry beyond `tol`.
    #[allow(clippy::needless_range_loop)]
    pub fn pack(t: &Tensor, pair: (usize, usize), antisymmetric: bool, tol: f64) -> Self {
        let (p, q) = if pair.0 < pair.1 {
            pair
        } else {
            (pair.1, pair.0)
        };
        assert!(q < t.rank() && p != q, "invalid symmetric pair");
        let n = t.shape()[p];
        assert_eq!(n, t.shape()[q], "symmetric dims must have equal extents");

        let outer_shape: Vec<usize> = t
            .shape()
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != p && *d != q)
            .map(|(_, &e)| e)
            .collect();
        let packed_len = if antisymmetric {
            n * (n - 1) / 2
        } else {
            n * (n + 1) / 2
        };
        let outer_total: usize = outer_shape.iter().product::<usize>().max(1);
        let mut data = vec![0.0f64; outer_total * packed_len];

        let mut full_idx = vec![0usize; t.rank()];
        let mut outer_idx = vec![0usize; outer_shape.len()];
        for outer_off in 0..outer_total {
            // Decode outer index.
            let mut rem = outer_off;
            for d in (0..outer_shape.len()).rev() {
                outer_idx[d] = rem % outer_shape[d];
                rem /= outer_shape[d];
            }
            // Scatter outer into full (skipping p, q).
            let mut od = 0;
            for d in 0..t.rank() {
                if d != p && d != q {
                    full_idx[d] = outer_idx[od];
                    od += 1;
                }
            }
            for i in 0..n {
                for j in i..n {
                    full_idx[p] = i;
                    full_idx[q] = j;
                    let upper = t.get(&full_idx);
                    full_idx[p] = j;
                    full_idx[q] = i;
                    let lower = t.get(&full_idx);
                    if antisymmetric {
                        assert!(
                            (upper + lower).abs() <= tol,
                            "tensor is not antisymmetric at ({i},{j})"
                        );
                        if i == j {
                            assert!(upper.abs() <= tol, "antisymmetric diagonal must vanish");
                            continue;
                        }
                        data[outer_off * packed_len + strict_tri_index(i, j, n)] = upper;
                    } else {
                        assert!(
                            (upper - lower).abs() <= tol,
                            "tensor is not symmetric at ({i},{j})"
                        );
                        data[outer_off * packed_len + tri_index(i, j, n)] = upper;
                    }
                }
            }
        }
        Self {
            shape: t.shape().to_vec(),
            pair: (p, q),
            antisymmetric,
            data,
            outer_shape,
            packed_len,
        }
    }

    /// Stored elements (the unique count).
    pub fn stored_elements(&self) -> usize {
        self.data.len()
    }

    /// Full dense element count.
    pub fn dense_elements(&self) -> usize {
        self.shape.iter().product::<usize>().max(1)
    }

    /// Element read with symmetry applied (sign under swap for
    /// antisymmetric pairs; zero diagonal).
    pub fn get(&self, idx: &[usize]) -> f64 {
        assert_eq!(idx.len(), self.shape.len());
        let (p, q) = self.pair;
        let n = self.shape[p];
        let (i, j) = (idx[p], idx[q]);
        let mut outer_off = 0usize;
        for (d, &x) in idx.iter().enumerate() {
            if d != p && d != q {
                outer_off = outer_off * self.shape[d] + x;
            }
        }
        if self.antisymmetric {
            if i == j {
                return 0.0;
            }
            let (a, b, sign) = if i < j { (i, j, 1.0) } else { (j, i, -1.0) };
            sign * self.data[outer_off * self.packed_len + strict_tri_index(a, b, n)]
        } else {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            self.data[outer_off * self.packed_len + tri_index(a, b, n)]
        }
    }

    /// Reconstruct the dense tensor.
    pub fn unpack(&self) -> Tensor {
        Tensor::from_fn(&self.shape, |idx| self.get(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric_tensor(n: usize, outer: usize, seed: u64) -> Tensor {
        let raw = Tensor::random(&[outer, n, n], seed);
        Tensor::from_fn(&[outer, n, n], |idx| {
            let (o, i, j) = (idx[0], idx[1], idx[2]);
            raw.get(&[o, i, j]) + raw.get(&[o, j, i])
        })
    }

    fn antisymmetric_tensor(n: usize, outer: usize, seed: u64) -> Tensor {
        let raw = Tensor::random(&[outer, n, n], seed);
        Tensor::from_fn(&[outer, n, n], |idx| {
            let (o, i, j) = (idx[0], idx[1], idx[2]);
            raw.get(&[o, i, j]) - raw.get(&[o, j, i])
        })
    }

    #[test]
    fn symmetric_roundtrip_and_size() {
        let n = 6;
        let t = symmetric_tensor(n, 3, 1);
        let p = PackedSymmetric::pack(&t, (1, 2), false, 1e-12);
        assert_eq!(p.stored_elements(), 3 * n * (n + 1) / 2);
        assert_eq!(p.dense_elements(), 3 * n * n);
        assert!(p.unpack().approx_eq(&t, 0.0));
    }

    #[test]
    fn antisymmetric_roundtrip_and_size() {
        let n = 5;
        let t = antisymmetric_tensor(n, 2, 2);
        let p = PackedSymmetric::pack(&t, (2, 1), true, 1e-12);
        assert_eq!(p.stored_elements(), 2 * n * (n - 1) / 2);
        assert!(p.unpack().approx_eq(&t, 0.0));
        // Swap sign.
        assert_eq!(p.get(&[0, 2, 4]), -p.get(&[0, 4, 2]));
        assert_eq!(p.get(&[1, 3, 3]), 0.0);
    }

    #[test]
    fn matches_ir_unique_elements() {
        use tce_ir::{IndexSpace, SymmetryGroup, TensorDecl};
        let mut sp = IndexSpace::new();
        let v = sp.add_range("V", 6);
        let o = sp.add_range("O", 3);
        let mut decl = TensorDecl::dense("X", vec![o, v, v]);
        decl.symmetry.push(SymmetryGroup {
            positions: vec![1, 2],
            antisymmetric: false,
        });
        let t = symmetric_tensor(6, 3, 3);
        let p = PackedSymmetric::pack(&t, (1, 2), false, 1e-12);
        assert_eq!(p.stored_elements() as u128, decl.unique_elements(&sp));
        decl.symmetry[0].antisymmetric = true;
        let ta = antisymmetric_tensor(6, 3, 4);
        let pa = PackedSymmetric::pack(&ta, (1, 2), true, 1e-12);
        assert_eq!(pa.stored_elements() as u128, decl.unique_elements(&sp));
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn pack_rejects_asymmetric_data() {
        let t = Tensor::random(&[4, 4], 5);
        PackedSymmetric::pack(&t, (0, 1), false, 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal extents")]
    fn pack_rejects_ragged_pair() {
        let t = Tensor::zeros(&[3, 4]);
        PackedSymmetric::pack(&t, (0, 1), false, 1e-12);
    }

    #[test]
    fn pair_dims_anywhere() {
        // Pair in positions (0, 2) with a middle dim.
        let n = 4;
        let raw = Tensor::random(&[n, 3, n], 6);
        let t = Tensor::from_fn(&[n, 3, n], |idx| {
            raw.get(&[idx[0], idx[1], idx[2]]) + raw.get(&[idx[2], idx[1], idx[0]])
        });
        let p = PackedSymmetric::pack(&t, (0, 2), false, 1e-12);
        assert_eq!(p.stored_elements(), 3 * n * (n + 1) / 2);
        assert!(p.unpack().approx_eq(&t, 0.0));
    }
}
