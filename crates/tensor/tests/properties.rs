//! Property tests for the tensor substrate: kernel agreement, einsum
//! algebra, and permutation invariances.

use proptest::prelude::*;
use tce_ir::{IndexSet, IndexSpace, IndexVar};
use tce_tensor::{contract_gemm, contract_naive, BinaryContraction, EinsumSpec, Tensor};

/// Random binary-contraction instances over up to 4 shared index
/// variables with small extents.
#[derive(Debug, Clone)]
struct Instance {
    space: IndexSpace,
    spec: BinaryContraction,
    a: Tensor,
    b: Tensor,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec(2usize..4, 4),            // extents
        proptest::collection::vec(0usize..4, 1..4),         // a dims
        proptest::collection::vec(0usize..4, 1..4),         // b dims
        proptest::collection::vec(any::<bool>(), 4),        // keep in out?
        0u64..1000,
    )
        .prop_map(|(extents, da, db, keep, seed)| {
            let mut space = IndexSpace::new();
            let vars: Vec<IndexVar> = extents
                .iter()
                .enumerate()
                .map(|(q, &e)| {
                    let r = space.add_range(&format!("R{q}"), e);
                    space.add_var(&format!("x{q}"), r)
                })
                .collect();
            let dedup = |picks: &[usize]| -> Vec<IndexVar> {
                let mut seen = IndexSet::EMPTY;
                let mut out = Vec::new();
                for &q in picks {
                    if !seen.contains(vars[q]) {
                        seen.insert(vars[q]);
                        out.push(vars[q]);
                    }
                }
                out
            };
            let a_dims = dedup(&da);
            let b_dims = dedup(&db);
            let union: IndexSet = IndexSet::from_vars(a_dims.iter().copied())
                .union(IndexSet::from_vars(b_dims.iter().copied()));
            let out: Vec<IndexVar> = union
                .iter()
                .enumerate()
                .filter(|(i, _)| keep[*i % keep.len()])
                .map(|(_, v)| v)
                .collect();
            let shape = |dims: &[IndexVar]| -> Vec<usize> {
                dims.iter().map(|&v| space.extent(v)).collect()
            };
            let a = Tensor::random(&shape(&a_dims), seed);
            let b = Tensor::random(&shape(&b_dims), seed + 1);
            Instance {
                space,
                spec: BinaryContraction {
                    a: a_dims,
                    b: b_dims,
                    out,
                },
                a,
                b,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The blocked-GEMM path agrees with the naive kernel on arbitrary
    /// contractions (including exclusive summation indices and batch
    /// dims).
    #[test]
    fn gemm_equals_naive(inst in arb_instance()) {
        let naive = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let fast = contract_gemm(&inst.spec, &inst.space, &inst.a, &inst.b);
        prop_assert!(naive.approx_eq(&fast, 1e-9),
            "diff {:e}", naive.max_abs_diff(&fast));
    }

    /// Contraction is bilinear: scaling an operand scales the result.
    #[test]
    fn contraction_is_bilinear(inst in arb_instance(), alpha in -3.0f64..3.0) {
        let base = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let mut a2 = Tensor::zeros(inst.a.shape());
        a2.axpy(alpha, &inst.a);
        let scaled = contract_naive(&inst.spec, &inst.space, &a2, &inst.b);
        let mut expect = Tensor::zeros(base.shape());
        expect.axpy(alpha, &base);
        prop_assert!(scaled.approx_eq(&expect, 1e-9));
    }

    /// Swapping the operands (and their index lists) leaves the result
    /// unchanged — commutativity of the elementwise product.
    #[test]
    fn contraction_commutes(inst in arb_instance()) {
        let forward = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let swapped = BinaryContraction {
            a: inst.spec.b.clone(),
            b: inst.spec.a.clone(),
            out: inst.spec.out.clone(),
        };
        let backward = contract_naive(&swapped, &inst.space, &inst.b, &inst.a);
        prop_assert!(forward.approx_eq(&backward, 1e-12));
    }

    /// Permuting an operand's dimensions together with its index list is
    /// a no-op.
    #[test]
    fn operand_layout_invariance(inst in arb_instance(), rot in 0usize..3) {
        if inst.spec.a.len() < 2 {
            return Ok(());
        }
        let k = inst.spec.a.len();
        let perm: Vec<usize> = (0..k).map(|i| (i + rot) % k).collect();
        let a_rot = inst.a.permute(&perm);
        let dims_rot: Vec<IndexVar> = perm.iter().map(|&p| inst.spec.a[p]).collect();
        let spec2 = BinaryContraction {
            a: dims_rot,
            b: inst.spec.b.clone(),
            out: inst.spec.out.clone(),
        };
        let base = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let rotated = contract_naive(&spec2, &inst.space, &a_rot, &inst.b);
        prop_assert!(base.approx_eq(&rotated, 1e-12));
    }

    /// The einsum over two operands equals the binary contraction.
    #[test]
    fn einsum_agrees_with_contraction(inst in arb_instance()) {
        let sa = IndexSet::from_vars(inst.spec.a.iter().copied());
        let sb = IndexSet::from_vars(inst.spec.b.iter().copied());
        let so = IndexSet::from_vars(inst.spec.out.iter().copied());
        let sum = sa.union(sb).minus(so);
        let spec = EinsumSpec::new(
            inst.spec.out.clone(),
            vec![inst.spec.a.clone(), inst.spec.b.clone()],
            sum,
        )
        .unwrap();
        let e = spec.eval(&inst.space, &[&inst.a, &inst.b]);
        let k = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        prop_assert!(e.approx_eq(&k, 1e-9));
    }

    /// Tensor permutation round-trips through its inverse.
    #[test]
    fn permutation_roundtrip(seed in 0u64..500, rot in 1usize..4) {
        let t = Tensor::random(&[2, 3, 4, 2], seed);
        let k = 4usize;
        let perm: Vec<usize> = (0..k).map(|i| (i + rot) % k).collect();
        let mut inv = vec![0usize; k];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        let back = t.permute(&perm).permute(&inv);
        prop_assert!(back.approx_eq(&t, 0.0));
    }
}
