//! Micro-benchmark: operation-minimization search procedures
//! (supports experiment E1 — the cost of the "Algebraic Transformations"
//! stage itself).

use tce_bench::harness::{black_box, Criterion};
use tce_bench::{criterion_group, criterion_main};
use tce_core::ir::{IndexSet, IndexSpace, Leaf, TensorDecl, TensorTable};
use tce_core::opmin::{
    optimize_branch_bound, optimize_exhaustive, optimize_subset_dp, OpMinProblem,
};
use tce_core::scenarios::section2_source;

/// The §2 four-factor problem.
fn section2_problem() -> (IndexSpace, OpMinProblem) {
    let prog = tce_core::lang::compile(&section2_source(10)).unwrap();
    let stmt = &prog.stmts[0];
    let p = OpMinProblem::from_term(stmt.lhs.index_set(), &stmt.terms[0]).unwrap();
    (prog.space, p)
}

/// A dense chain of `n` matrices (worst-case-ish fully-connected chain).
fn chain_problem(n: usize) -> (IndexSpace, OpMinProblem) {
    let mut space = IndexSpace::new();
    let r = space.add_range("N", 16);
    let vars: Vec<_> = (0..=n)
        .map(|q| space.add_var(&format!("x{q}"), r))
        .collect();
    let mut tensors = TensorTable::new();
    let factors = (0..n)
        .map(|q| {
            let t = tensors.add(TensorDecl::dense(&format!("M{q}"), vec![r, r]));
            Leaf::Input {
                tensor: t,
                indices: vec![vars[q], vars[q + 1]],
            }
        })
        .collect();
    let output = IndexSet::from_vars([vars[0], vars[n]]);
    (space, OpMinProblem { output, factors })
}

fn bench(c: &mut Criterion) {
    let (space, p) = section2_problem();
    let mut g = c.benchmark_group("opmin_section2");
    g.bench_function("subset_dp", |b| {
        b.iter(|| optimize_subset_dp(black_box(&p), &space))
    });
    g.bench_function("branch_bound", |b| {
        b.iter(|| optimize_branch_bound(black_box(&p), &space))
    });
    g.bench_function("exhaustive", |b| {
        b.iter(|| optimize_exhaustive(black_box(&p), &space))
    });
    g.finish();

    let mut g2 = c.benchmark_group("opmin_chain_scaling");
    for n in [4usize, 6, 8] {
        let (space, p) = chain_problem(n);
        g2.bench_function(format!("subset_dp_n{n}"), |b| {
            b.iter(|| optimize_subset_dp(black_box(&p), &space))
        });
        g2.bench_function(format!("branch_bound_n{n}"), |b| {
            b.iter(|| optimize_branch_bound(black_box(&p), &space))
        });
    }
    g2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
