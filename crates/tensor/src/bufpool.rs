//! Size-class keyed buffer pool for tensor backing storage.
//!
//! The executors allocate (and drop) a fresh `Vec<f64>` for every
//! intermediate tensor and every GETT pack panel, so a `tce serve` process
//! fielding repeated requests round-trips the allocator thousands of times
//! for the same handful of sizes.  This module keeps released buffers in a
//! process-wide arena keyed by power-of-two *size class*, sharded like the
//! GETT plan cache so concurrent workers contend on 1/S of a mutex.
//!
//! * [`acquire(len)`](acquire) pops a buffer whose capacity covers `len`'s
//!   size class (a **hit**) or allocates one at the class capacity (a
//!   **miss**), and returns it zero-filled — callers see exactly what
//!   `vec![0.0; len]` would have given them.
//! * [`release`] files a buffer back under the largest power-of-two class
//!   its capacity covers, so buffers that were never pooled (or grew) are
//!   classified safely.  When accepting a buffer would push the retained
//!   element total over the cap, it is dropped instead (an **eviction**).
//!
//! The retained total is bounded by `TCE_BUFPOOL_CAP` (elements; default
//! [`DEFAULT_BUFPOOL_CAP`]).  A cap of **0 disables pooling**: every
//! acquire is a plain allocation (counted as a miss) and every release a
//! drop (not counted as an eviction — nothing was ever retained).
//! Hit/miss/evict counters mirror the plan cache's, both as process
//! globals (for `tce serve` stats) and as `bufpool.*` trace counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default retained-element bound: 1<<22 elements = 32 MiB of `f64`,
/// enough to recycle every intermediate of the benchmark scenarios while
/// bounding a long-running serve process.  Override with `TCE_BUFPOOL_CAP`
/// or [`set_bufpool_capacity`]; 0 disables pooling.
pub const DEFAULT_BUFPOOL_CAP: u64 = 1 << 22;

/// Shard count (fixed; the pool's keys are size classes, of which a
/// program uses only a handful, so configurability buys nothing).
const BUFPOOL_SHARDS: usize = 8;

/// One independently locked slice of the pool: size class → free buffers.
struct Shard {
    classes: Mutex<HashMap<u64, Vec<Vec<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct BufPool {
    shards: Vec<Shard>,
    /// Retained-element bound (0 = pooling disabled).
    cap: AtomicU64,
    /// Elements currently retained across all shards.
    retained: AtomicU64,
}

static BUFPOOL: OnceLock<BufPool> = OnceLock::new();

fn pool() -> &'static BufPool {
    BUFPOOL.get_or_init(|| {
        let cap = std::env::var("TCE_BUFPOOL_CAP")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(DEFAULT_BUFPOOL_CAP);
        BufPool {
            shards: (0..BUFPOOL_SHARDS)
                .map(|_| Shard {
                    classes: Mutex::new(HashMap::new()),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    evictions: AtomicU64::new(0),
                })
                .collect(),
            cap: AtomicU64::new(cap),
            retained: AtomicU64::new(0),
        }
    })
}

/// Validate `TCE_BUFPOOL_CAP` without applying it: `Ok(None)` when unset,
/// `Ok(Some(cap))` for a parseable element count (0 = disabled), `Err`
/// with a one-line diagnostic otherwise.  The CLI calls this up front so
/// a malformed value fails fast instead of being silently ignored.
pub fn bufpool_env_requested() -> Result<Option<u64>, String> {
    match std::env::var("TCE_BUFPOOL_CAP") {
        Err(_) => Ok(None),
        Ok(v) => match v.parse::<u64>() {
            Ok(c) => Ok(Some(c)),
            Err(e) => Err(format!("bad TCE_BUFPOOL_CAP `{v}`: {e}")),
        },
    }
}

/// The size class covering `len`: the next power of two (≥ 1).  Classing
/// by powers of two keeps the key space tiny (≤ 64 classes) and lets one
/// retained buffer serve every request within a 2× band.
fn class_of(len: usize) -> u64 {
    (len.max(1) as u64).next_power_of_two()
}

/// The class a buffer with `capacity` can be *filed under*: the largest
/// power of two it covers.  Using the floor (not the rounded-up class of
/// some original length) means any buffer — pooled origin or not — is
/// guaranteed to satisfy an acquire of its filed class.
fn file_class(capacity: usize) -> u64 {
    let c = capacity as u64;
    if c == 0 {
        0
    } else {
        1u64 << (63 - c.leading_zeros() as u64)
    }
}

fn shard_for(class: u64) -> &'static Shard {
    let p = pool();
    // Classes are powers of two; spread consecutive classes across shards.
    &p.shards[(class.trailing_zeros() as usize) % p.shards.len()]
}

/// A zero-filled buffer of exactly `len` elements, recycled from the pool
/// when a buffer of `len`'s size class is available.
pub fn acquire(len: usize) -> Vec<f64> {
    let p = pool();
    if p.cap.load(Ordering::Relaxed) == 0 {
        // Pooling disabled: plain allocation, counted as a miss so the
        // hit-rate denominator stays meaningful.
        let shard = shard_for(class_of(len));
        shard.misses.fetch_add(1, Ordering::Relaxed);
        tce_trace::counter("bufpool.misses", 1);
        return vec![0.0; len];
    }
    let class = class_of(len);
    let shard = shard_for(class);
    let recycled = {
        let mut classes = shard.classes.lock().unwrap_or_else(|e| e.into_inner());
        classes.get_mut(&class).and_then(Vec::pop)
    };
    match recycled {
        Some(mut buf) => {
            p.retained.fetch_sub(class, Ordering::Relaxed);
            shard.hits.fetch_add(1, Ordering::Relaxed);
            tce_trace::counter("bufpool.hits", 1);
            debug_assert!(buf.capacity() as u64 >= class.min(usize::MAX as u64));
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => {
            shard.misses.fetch_add(1, Ordering::Relaxed);
            tce_trace::counter("bufpool.misses", 1);
            let mut buf = Vec::with_capacity(class as usize);
            buf.resize(len, 0.0);
            buf
        }
    }
}

/// Return a buffer to the pool (dropping it when pooling is disabled, the
/// buffer is too small to file, or retaining it would exceed the cap).
pub fn release(buf: Vec<f64>) {
    let p = pool();
    let cap = p.cap.load(Ordering::Relaxed);
    if cap == 0 {
        return; // pooling disabled: plain drop, nothing was retained
    }
    let class = file_class(buf.capacity());
    if class == 0 {
        return; // zero-capacity vec: nothing worth filing
    }
    // Reserve the retained budget optimistically; roll back on overflow.
    let prev = p.retained.fetch_add(class, Ordering::Relaxed);
    if prev + class > cap {
        p.retained.fetch_sub(class, Ordering::Relaxed);
        let shard = shard_for(class);
        shard.evictions.fetch_add(1, Ordering::Relaxed);
        tce_trace::counter("bufpool.evictions", 1);
        return;
    }
    let shard = shard_for(class);
    let mut classes = shard.classes.lock().unwrap_or_else(|e| e.into_inner());
    classes.entry(class).or_default().push(buf);
}

/// `(hits, misses, evictions)` summed over all shards.
pub fn bufpool_stats() -> (u64, u64, u64) {
    pool().shards.iter().fold((0, 0, 0), |acc, s| {
        (
            acc.0 + s.hits.load(Ordering::Relaxed),
            acc.1 + s.misses.load(Ordering::Relaxed),
            acc.2 + s.evictions.load(Ordering::Relaxed),
        )
    })
}

/// Per-shard `(hits, misses, evictions)`.
pub fn bufpool_shard_stats() -> Vec<(u64, u64, u64)> {
    pool()
        .shards
        .iter()
        .map(|s| {
            (
                s.hits.load(Ordering::Relaxed),
                s.misses.load(Ordering::Relaxed),
                s.evictions.load(Ordering::Relaxed),
            )
        })
        .collect()
}

/// Buffers currently retained across all shards.
pub fn bufpool_len() -> usize {
    pool()
        .shards
        .iter()
        .map(|s| {
            s.classes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
                .map(Vec::len)
                .sum::<usize>()
        })
        .sum()
}

/// Elements currently retained (each buffer accounted at its size class).
pub fn bufpool_retained_elements() -> u64 {
    pool().retained.load(Ordering::Relaxed)
}

/// Set the retained-element cap (0 disables pooling), dropping retained
/// buffers immediately if over the new bound; returns the previous cap.
pub fn set_bufpool_capacity(cap: u64) -> u64 {
    let p = pool();
    let old = p.cap.swap(cap, Ordering::Relaxed);
    for shard in &p.shards {
        let mut classes = shard.classes.lock().unwrap_or_else(|e| e.into_inner());
        // Drop largest-first until the retained total fits.
        let mut order: Vec<u64> = classes.keys().copied().collect();
        order.sort_unstable_by(|a, b| b.cmp(a));
        for class in order {
            while p.retained.load(Ordering::Relaxed) > cap {
                let Some(bufs) = classes.get_mut(&class) else {
                    break;
                };
                if bufs.pop().is_none() {
                    break;
                }
                p.retained.fetch_sub(class, Ordering::Relaxed);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
                tce_trace::counter("bufpool.evictions", 1);
            }
        }
        classes.retain(|_, bufs| !bufs.is_empty());
    }
    old
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_trip() {
        assert_eq!(class_of(0), 1);
        assert_eq!(class_of(1), 1);
        assert_eq!(class_of(5), 8);
        assert_eq!(class_of(8), 8);
        assert_eq!(file_class(8), 8);
        assert_eq!(file_class(9), 8);
        assert_eq!(file_class(15), 8);
        assert_eq!(file_class(0), 0);
        // Invariant: an acquire of class c is satisfied by any buffer
        // filed under c (its capacity is ≥ c by floor classification).
        for capacity in 1..200usize {
            let fc = file_class(capacity);
            assert!(capacity as u64 >= fc);
        }
    }

    /// Only race-safe assertions live here: the pool is process-global
    /// and other tensor unit tests use it concurrently through the GETT
    /// engine, so exact length/counter checks belong to the isolated
    /// integration stress test (tests/bufpool_stress.rs).
    #[test]
    fn acquire_always_returns_zero_filled_buffers() {
        let mut a = acquire(100);
        a.iter_mut().for_each(|x| *x = 7.5);
        release(a);
        for len in [1usize, 100, 1000] {
            let b = acquire(len);
            assert_eq!(b.len(), len);
            assert!(b.iter().all(|&x| x == 0.0), "buffer not zeroed");
            release(b);
        }
    }
}
