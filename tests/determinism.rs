//! Thread-count determinism: every executed scenario — raw GETT
//! contractions, operator trees, the A3A §3 scenario, and whole
//! synthesized statement sequences — produces bitwise-identical output
//! at every thread count.  This is the contract that makes `--threads`
//! purely a performance knob: the parallel kernels partition *output*
//! elements disjointly and keep every per-element accumulation order
//! fixed, so not a single ulp may move.

use std::collections::HashMap;
use tce_core::exec::{execute_tree, execute_tree_graph, ExecOptions, Schedule};
use tce_core::ir::rng::Rng;
use tce_core::scenarios::{section2_source, A3AScenario};
use tce_core::tensor::{contract_gett, BinaryContraction, Tensor};
use tce_core::{synthesize, SynthesisConfig};

const THREADS: [usize; 3] = [2, 3, 7];

/// Worker counts for the task-graph schedule sweep (1 exercises the
/// inline fallback, the rest the concurrent ready-queue).
const GRAPH_WORKERS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn a3a_scenario_tree_is_bitwise_deterministic() {
    let sc = A3AScenario::new(10, 4, 25);
    let amp = sc.amplitudes(77);
    let funcs = sc.functions();
    let t_id = sc.tensors.by_name("T").unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(t_id, &amp);
    let base = execute_tree(&sc.tree, &sc.space, &inputs, &funcs, 1).unwrap();
    for threads in THREADS {
        let got = execute_tree(&sc.tree, &sc.space, &inputs, &funcs, threads).unwrap();
        assert_eq!(base, got, "A3A energy changed bits at {threads} threads");
    }
}

#[test]
fn section2_pipeline_is_bitwise_deterministic() {
    let syn = synthesize(&section2_source(5), &SynthesisConfig::default()).unwrap();
    let shape = [5usize; 4];
    let ta = Tensor::random(&shape, 1);
    let tb = Tensor::random(&shape, 2);
    let tc = Tensor::random(&shape, 3);
    let td = Tensor::random(&shape, 4);
    let mut ext = HashMap::new();
    for (nm, t) in [("A", &ta), ("B", &tb), ("C", &tc), ("D", &td)] {
        ext.insert(syn.program.tensors.by_name(nm).unwrap(), t);
    }
    let base = syn
        .execute_opts(&ext, &HashMap::new(), &ExecOptions::serial())
        .unwrap();
    for threads in THREADS {
        let got = syn
            .execute_opts(&ext, &HashMap::new(), &ExecOptions::with_threads(threads))
            .unwrap();
        assert_eq!(base.len(), got.len());
        for (id, t) in &base {
            assert_eq!(
                t,
                &got[id],
                "tensor {:?} changed bits at {threads} threads",
                syn.program.tensors.get(*id).name
            );
        }
    }
}

#[test]
fn a3a_graph_schedule_is_bitwise_deterministic() {
    // The dependency-aware task graph over the A3A operator tree must
    // reproduce the sequential walk bit for bit at every worker count:
    // scheduling reorders WHEN nodes contract, never the arithmetic
    // inside a node.
    let sc = A3AScenario::new(10, 4, 25);
    let amp = sc.amplitudes(77);
    let funcs = sc.functions();
    let t_id = sc.tensors.by_name("T").unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(t_id, &amp);
    let seq = execute_tree(&sc.tree, &sc.space, &inputs, &funcs, 1).unwrap();
    for workers in GRAPH_WORKERS {
        let got = execute_tree_graph(&sc.tree, &sc.space, &inputs, &funcs, workers).unwrap();
        assert_eq!(seq, got, "graph schedule changed bits at {workers} workers");
    }
}

#[test]
fn multi_statement_graph_schedule_is_bitwise_deterministic() {
    // A statement sequence with independent chains and a diamond join:
    // T and U depend only on inputs (run concurrently under the graph
    // schedule), S joins them, and the accumulate extends S's chain.
    let src = "
        range N = 6;
        index i, j, k, l : N;
        tensor A(N, N); tensor B(N, N);
        tensor T(N, N); tensor U(N, N); tensor S(N, N);
        T[i,j] = sum[k] A[i,k] * B[k,j];
        U[i,j] = sum[k] B[i,k] * B[k,j];
        S[i,j] = sum[k] T[i,k] * U[k,j];
        S[i,j] += sum[k,l] U[i,k] * A[k,l] * T[l,j];
    ";
    let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
    let ta = Tensor::random(&[6, 6], 11);
    let tb = Tensor::random(&[6, 6], 12);
    let mut ext = HashMap::new();
    ext.insert(syn.program.tensors.by_name("A").unwrap(), &ta);
    ext.insert(syn.program.tensors.by_name("B").unwrap(), &tb);
    let funcs = HashMap::new();
    let seq = syn
        .execute_opts(&ext, &funcs, &ExecOptions::serial())
        .unwrap();
    for workers in GRAPH_WORKERS {
        let opts = ExecOptions::with_threads(workers).with_schedule(Schedule::Graph);
        let got = syn.execute_opts(&ext, &funcs, &opts).unwrap();
        assert_eq!(seq.len(), got.len());
        for (id, t) in &seq {
            assert_eq!(
                t,
                &got[id],
                "tensor {:?} changed bits under the graph schedule at {workers} workers",
                syn.program.tensors.get(*id).name
            );
        }
    }
}

#[test]
fn section2_graph_schedule_is_bitwise_deterministic() {
    let syn = synthesize(&section2_source(5), &SynthesisConfig::default()).unwrap();
    let shape = [5usize; 4];
    let ta = Tensor::random(&shape, 1);
    let tb = Tensor::random(&shape, 2);
    let tc = Tensor::random(&shape, 3);
    let td = Tensor::random(&shape, 4);
    let mut ext = HashMap::new();
    for (nm, t) in [("A", &ta), ("B", &tb), ("C", &tc), ("D", &td)] {
        ext.insert(syn.program.tensors.by_name(nm).unwrap(), t);
    }
    let funcs = HashMap::new();
    let seq = syn
        .execute_opts(&ext, &funcs, &ExecOptions::serial())
        .unwrap();
    for workers in GRAPH_WORKERS {
        let opts = ExecOptions::with_threads(workers).with_schedule(Schedule::Graph);
        let got = syn.execute_opts(&ext, &funcs, &opts).unwrap();
        for (id, t) in &seq {
            assert_eq!(
                t,
                &got[id],
                "tensor {:?} changed bits under the graph schedule at {workers} workers",
                syn.program.tensors.get(*id).name
            );
        }
    }
}

#[test]
fn random_contractions_are_bitwise_deterministic() {
    // Random shapes around the tile boundaries, including CCSD-like
    // four-index contractions.
    let mut rng = Rng::new(0xe001);
    for _ in 0..8 {
        let v = rng.usize_in(6..14);
        let o = rng.usize_in(2..5);
        let mut sp = tce_core::ir::IndexSpace::new();
        let rv = sp.add_range("V", v);
        let ro = sp.add_range("O", o);
        let a = sp.add_var("a", rv);
        let e = sp.add_var("e", rv);
        let c = sp.add_var("c", rv);
        let f = sp.add_var("f", rv);
        let i = sp.add_var("i", ro);
        let j = sp.add_var("j", ro);
        let spec = BinaryContraction {
            a: vec![i, j, a, e],
            b: vec![i, j, c, f],
            out: vec![a, e, c, f],
        };
        let ta = Tensor::random(&[o, o, v, v], rng.u64_in(0..1000));
        let tb = Tensor::random(&[o, o, v, v], rng.u64_in(0..1000));
        let base = contract_gett(&spec, &sp, &ta, &tb, 1);
        for threads in THREADS {
            assert_eq!(base, contract_gett(&spec, &sp, &ta, &tb, threads));
        }
    }
}
