//! E3 — paper Fig. 2: the unfused operation-minimal form of the A3A
//! component, with its space/time table.
//!
//! Claims reproduced (symbolically at paper scale, measured at reduced
//! scale): space `{X: V⁴, T1: V³O, T2: V³O, Y: V⁴, E: 1}` and time
//! `{X: V⁴O², T1/T2: C_i·V³O, Y: V⁵O, E: V⁴}`.

use std::collections::HashMap;
use tce_bench::tables::{fmt_u, Table};
use tce_core::exec::{Interpreter, NoSink};
use tce_core::loops::{memory_report, pretty};
use tce_core::scenarios::A3AScenario;

fn main() {
    println!("E3: Fig. 2 — unfused operation-minimal A3A component\n");

    // Paper scale, analytic.
    let paper = A3AScenario::new(5000, 100, 1000);
    println!("analytic table at paper scale (V = 5000, O = 100, C_i = 1000):");
    let mut t = Table::new(&["array", "space", "time"]);
    for (name, space, time) in paper.fig2_table() {
        t.row(&[name.to_string(), fmt_u(space), fmt_u(time)]);
    }
    println!("{}", t.render());
    // The paper: "With O=100 and V=5000, the size of T1, T2 is O(10^14)
    // bytes and the size of X, Y is O(10^15) bytes."
    let t1_bytes = 8.0 * paper.fig2_table()[1].1 as f64;
    let x_bytes = 8.0 * paper.fig2_table()[0].1 as f64;
    println!("T1/T2 ≈ {t1_bytes:.1e} bytes (paper: O(10^14)); X/Y ≈ {x_bytes:.1e} bytes (paper: O(10^15))\n");
    assert!((1e13..1e15).contains(&t1_bytes));
    assert!((1e14..1e16).contains(&x_bytes));

    // Reduced scale, measured.
    let sc = A3AScenario::new(6, 3, 200);
    let built = sc.fig2_program();
    println!("unfused pseudocode at V = 6, O = 3:");
    print!("{}", pretty(&built.program));

    let amps = sc.amplitudes(1);
    let mut inputs = HashMap::new();
    inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
    let funcs = sc.functions();
    let mut interp = Interpreter::new(&built.program, &sc.space, &inputs, &funcs).unwrap();
    interp.run(&mut NoSink);

    let table = sc.fig2_table();
    let mem = memory_report(&built.program, &sc.space);
    let mut m = Table::new(&["array", "space (model)", "space (measured)", "time (model)"]);
    // Array names in the built program: X is T1..? — report by formula rows
    // and totals.
    let expect_mem: u128 = table[..4].iter().map(|r| r.1).sum::<u128>() + 1;
    for (name, space, time) in &table {
        m.row(&[name.to_string(), fmt_u(*space), "-".into(), fmt_u(*time)]);
    }
    println!("\n{}", m.render());
    println!(
        "measured temp elements: {} (model {})",
        fmt_u(mem.temp_elements),
        fmt_u(expect_mem)
    );
    assert_eq!(mem.temp_elements, expect_mem);
    println!(
        "measured integral flops: {} (model T1+T2 = {})",
        fmt_u(interp.stats.func_flops),
        fmt_u(table[1].2 + table[2].2)
    );
    assert_eq!(interp.stats.func_flops, table[1].2 + table[2].2);
    println!(
        "measured contraction flops: {} (model 2·(X+Y+E) = {})",
        fmt_u(interp.stats.contraction_flops),
        fmt_u(2 * (table[0].2 + table[3].2 + table[4].2))
    );
    assert_eq!(
        interp.stats.contraction_flops,
        2 * (table[0].2 + table[3].2 + table[4].2)
    );

    // Numerical ground truth.
    let expect = sc.reference_energy(&amps);
    let got = interp.output().get(&[]);
    println!("energy: {got:.6} (reference {expect:.6})");
    assert!((got - expect).abs() < 1e-9 * expect.abs().max(1.0));
    println!("E3 OK");
}
