//! Property-based tests: every transformation in the framework is
//! semantics-preserving and every optimizer matches its oracle, on
//! randomized instances drawn from the workspace's seeded [`Rng`].
//!
//! Set `TCE_TEST_SEED` (decimal or `0x` hex) to replay every property
//! test under a different campaign seed; the active seed is printed when
//! a test fails.

use std::collections::HashMap;
use tce_core::exec::{Interpreter, NoSink};
use tce_core::fusion::{
    check_chainwise, enumerate_legal_configs, fusable_set, fused_program, memmin_bruteforce,
    memmin_dp, FusionConfig,
};
use tce_core::ir::rng::Rng;
use tce_core::ir::rng::{seed_from_env, SeedGuard};
use tce_core::ir::{
    IndexSet, IndexSpace, IndexVar, Leaf, NodeId, OpTree, TensorDecl, TensorId, TensorTable,
};
use tce_core::opmin::{optimize_branch_bound, optimize_subset_dp, OpMinProblem};
use tce_core::tensor::{EinsumSpec, Tensor};

/// A randomly generated single-term contraction problem plus data.
#[derive(Debug, Clone)]
struct RandomProblem {
    space: IndexSpace,
    tensors: TensorTable,
    /// (tensor, ordered indices) per factor.
    factors: Vec<(TensorId, Vec<IndexVar>)>,
    output: IndexSet,
}

fn arb_problem(rng: &mut Rng) -> RandomProblem {
    // 2-4 factors over up to 5 index variables with extents 2..5.
    let extents: Vec<usize> = (0..5).map(|_| rng.usize_in(2..5)).collect();
    let factor_vars: Vec<Vec<usize>> = (0..rng.usize_in(2..5))
        .map(|_| {
            (0..rng.usize_in(1..4))
                .map(|_| rng.usize_in(0..5))
                .collect()
        })
        .collect();
    let out_flags: Vec<bool> = (0..5).map(|_| rng.bool_with(0.5)).collect();

    let mut space = IndexSpace::new();
    let ranges: Vec<_> = extents
        .iter()
        .enumerate()
        .map(|(q, &e)| space.add_range(&format!("R{q}"), e))
        .collect();
    let vars: Vec<_> = (0..5)
        .map(|q| space.add_var(&format!("x{q}"), ranges[q]))
        .collect();
    let mut tensors = TensorTable::new();
    let mut factors = Vec::new();
    let mut used = IndexSet::EMPTY;
    for (fi, pick) in factor_vars.iter().enumerate() {
        let mut set = IndexSet::EMPTY;
        let mut idxs = Vec::new();
        for &q in pick {
            let v = vars[q];
            if !set.contains(v) {
                set.insert(v);
                idxs.push(v);
                used.insert(v);
            }
        }
        let dims = idxs.iter().map(|&v| space.range_of(v)).collect();
        let id = tensors.add(TensorDecl::dense(&format!("F{fi}"), dims));
        factors.push((id, idxs));
    }
    let mut output = IndexSet::EMPTY;
    for (q, &flag) in out_flags.iter().enumerate() {
        if flag && used.contains(vars[q]) {
            output.insert(vars[q]);
        }
    }
    RandomProblem {
        space,
        tensors,
        factors,
        output,
    }
}

fn problem_to_opmin(p: &RandomProblem) -> OpMinProblem {
    OpMinProblem {
        output: p.output,
        factors: p
            .factors
            .iter()
            .map(|(t, idxs)| Leaf::Input {
                tensor: *t,
                indices: idxs.clone(),
            })
            .collect(),
    }
}

fn reference(p: &RandomProblem, data: &[Tensor]) -> Tensor {
    let all = p.factors.iter().fold(IndexSet::EMPTY, |s, (_, idxs)| {
        s.union(IndexSet::from_vars(idxs.iter().copied()))
    });
    let spec = EinsumSpec::new(
        p.output.iter().collect(),
        p.factors.iter().map(|(_, idxs)| idxs.clone()).collect(),
        all.minus(p.output),
    )
    .unwrap();
    let refs: Vec<&Tensor> = data.iter().collect();
    spec.eval(&p.space, &refs)
}

fn make_data(p: &RandomProblem, seed: u64) -> Vec<Tensor> {
    p.factors
        .iter()
        .enumerate()
        .map(|(i, (_, idxs))| {
            let shape: Vec<usize> = idxs.iter().map(|&v| p.space.extent(v)).collect();
            Tensor::random(&shape, seed + i as u64)
        })
        .collect()
}

/// Operation minimization: the DP optimum equals branch-and-bound, and
/// the optimized tree evaluates to the same values as the reference.
#[test]
fn opmin_is_exact_and_semantics_preserving() {
    let seed = seed_from_env(0xb001);
    let _guard = SeedGuard::new("opmin_is_exact_and_semantics_preserving", seed);
    let mut rng = Rng::new(seed);
    for _ in 0..48 {
        let p = arb_problem(&mut rng);
        let seed = rng.u64_in(0..1000);
        let problem = problem_to_opmin(&p);
        let dp = optimize_subset_dp(&problem, &p.space);
        let bb = optimize_branch_bound(&problem, &p.space);
        assert_eq!(dp.contraction_ops, bb.contraction_ops);
        dp.tree.validate().unwrap();

        let data = make_data(&p, seed);
        let inputs: HashMap<TensorId, &Tensor> = p
            .factors
            .iter()
            .zip(&data)
            .map(|((t, _), d)| (*t, d))
            .collect();
        let got =
            tce_core::exec::execute_tree(&dp.tree, &p.space, &inputs, &HashMap::new(), 1).unwrap();
        let expect = reference(&p, &data);
        // Result dims: canonical ascending order — same as the reference.
        assert!(
            got.approx_eq(&expect, 1e-8),
            "diff {:e}",
            got.max_abs_diff(&expect)
        );
    }
}

/// Memory minimization matches brute force, and the fused program
/// computes the same values while allocating exactly the predicted
/// temporaries.
#[test]
fn memmin_is_exact_and_fused_code_is_correct() {
    let seed = seed_from_env(0xb002);
    let _guard = SeedGuard::new("memmin_is_exact_and_fused_code_is_correct", seed);
    let mut rng = Rng::new(seed);
    for _ in 0..48 {
        let p = arb_problem(&mut rng);
        let seed = rng.u64_in(0..1000);
        let problem = problem_to_opmin(&p);
        let tree = optimize_subset_dp(&problem, &p.space).tree;
        let dp = memmin_dp(&tree, &p.space);
        let bf = memmin_bruteforce(&tree, &p.space);
        assert_eq!(dp.memory, bf.memory);

        let built = fused_program(&tree, &p.space, &p.tensors, &dp.config, "OUT");
        built.program.validate().unwrap();
        let data = make_data(&p, seed);
        let inputs: HashMap<TensorId, &Tensor> = p
            .factors
            .iter()
            .zip(&data)
            .map(|((t, _), d)| (*t, d))
            .collect();
        let mut interp =
            Interpreter::new(&built.program, &p.space, &inputs, &HashMap::new()).unwrap();
        interp.run(&mut NoSink);
        let expect = reference(&p, &data);
        assert!(interp.output().approx_eq(&expect, 1e-8));
        // Allocated temps = DP memory + output array.
        let out_elems = p.space.iteration_points(p.output);
        assert_eq!(interp.allocated_temp_elements(), dp.memory + out_elems);
    }
}

/// Every legal fusion configuration (not just the optimum) produces a
/// semantics-preserving program, and the local legality check agrees
/// with the paper's global chain-scope condition.
#[test]
fn every_legal_config_is_executable() {
    let seed = seed_from_env(0xb003);
    let _guard = SeedGuard::new("every_legal_config_is_executable", seed);
    let mut rng = Rng::new(seed);
    for _ in 0..48 {
        let p = arb_problem(&mut rng);
        let seed = rng.u64_in(0..1000);
        let problem = problem_to_opmin(&p);
        let tree = optimize_subset_dp(&problem, &p.space).tree;
        let configs = enumerate_legal_configs(&tree, &p.space);
        assert!(!configs.is_empty());
        let data = make_data(&p, seed);
        let inputs: HashMap<TensorId, &Tensor> = p
            .factors
            .iter()
            .zip(&data)
            .map(|((t, _), d)| (*t, d))
            .collect();
        let expect = reference(&p, &data);
        // Cap the per-case work: check up to 12 configurations.
        for (config, mem) in configs.iter().take(12) {
            assert!(check_chainwise(&tree, config).is_ok());
            let built = fused_program(&tree, &p.space, &p.tensors, config, "OUT");
            let mut interp =
                Interpreter::new(&built.program, &p.space, &inputs, &HashMap::new()).unwrap();
            interp.run(&mut NoSink);
            assert!(
                interp.output().approx_eq(&expect, 1e-8),
                "config {:?} diverges",
                config.fused
            );
            let out_elems = p.space.iteration_points(p.output);
            assert_eq!(interp.allocated_temp_elements(), mem + out_elems);
        }
    }
}

/// Illegal configurations (random fused sets that fail the local check)
/// also fail the global chain condition.
#[test]
fn illegal_configs_rejected_by_both_checks() {
    let seed = seed_from_env(0xb004);
    let _guard = SeedGuard::new("illegal_configs_rejected_by_both_checks", seed);
    let mut rng = Rng::new(seed);
    for _ in 0..48 {
        let p = arb_problem(&mut rng);
        let picks: Vec<u64> = (0..8).map(|_| rng.u64_in(0..64)).collect();
        let problem = problem_to_opmin(&p);
        let tree = optimize_subset_dp(&problem, &p.space).tree;
        let parents = tree.parents();
        let mut config = FusionConfig::unfused(&tree);
        let mut pi = 0;
        for id in tree.postorder() {
            if id == tree.root {
                continue;
            }
            let u = parents[id.0 as usize].unwrap();
            let fs = fusable_set(&tree, id, u);
            if fs.is_empty() || pi >= picks.len() {
                continue;
            }
            // Random subset of the fusable set.
            let members: Vec<IndexVar> = fs.iter().collect();
            let mut sub = IndexSet::EMPTY;
            for (bit, v) in members.iter().enumerate() {
                if picks[pi] & (1 << bit) != 0 {
                    sub.insert(*v);
                }
            }
            pi += 1;
            config.set(id, sub);
        }
        let local = config.check(&tree).is_ok();
        let global = check_chainwise(&tree, &config).is_ok();
        assert_eq!(local, global);
    }
}

/// Problems containing expensive-function leaves: every legal fusion
/// configuration (sampled) executes to the same values as a reference
/// built by materializing the functions into dense arrays first.
#[test]
fn func_leaf_problems_are_semantics_preserving() {
    use tce_core::tensor::IntegralFn;
    let seed = seed_from_env(0xb005);
    let _guard = SeedGuard::new("func_leaf_problems_are_semantics_preserving", seed);
    let mut rng = Rng::new(seed);
    for _ in 0..32 {
        let p = arb_problem(&mut rng);
        let fn_mask = rng.u64_in(1..8) as u8;
        let seed = rng.u64_in(0..500);
        // Convert a subset of factors into function leaves.
        let mut problem = problem_to_opmin(&p);
        let mut funcs: HashMap<String, IntegralFn> = HashMap::new();
        for (fi, leaf) in problem.factors.iter_mut().enumerate() {
            if fn_mask & (1 << (fi % 3)) == 0 {
                continue;
            }
            if let Leaf::Input { indices, .. } = leaf.clone() {
                let name = format!("g{fi}");
                funcs.insert(name.clone(), IntegralFn::new(10, seed + fi as u64));
                *leaf = Leaf::Func {
                    name,
                    indices,
                    cost_per_eval: 10,
                };
            }
        }
        let tree = optimize_subset_dp(&problem, &p.space).tree;

        // Reference: materialize every factor (tensor or function) into a
        // dense array and run the einsum.
        let mut materialized: Vec<Tensor> = Vec::new();
        for (fi, leaf) in problem.factors.iter().enumerate() {
            let value: Tensor = match leaf {
                Leaf::Input { indices, .. } => {
                    let shape: Vec<usize> = indices.iter().map(|&v| p.space.extent(v)).collect();
                    Tensor::random(&shape, seed + 1000 + fi as u64)
                }
                Leaf::Func { name, indices, .. } => {
                    let f = &funcs[name];
                    let shape: Vec<usize> = indices.iter().map(|&v| p.space.extent(v)).collect();
                    Tensor::from_fn(&shape, |idx| f.eval(idx))
                }
                Leaf::One => unreachable!(),
            };
            materialized.push(value);
        }
        let all = problem.factors.iter().fold(IndexSet::EMPTY, |s, l| {
            s.union(tce_core::opmin::leaf_indices(l))
        });
        let spec = EinsumSpec::new(
            problem.output.iter().collect(),
            problem
                .factors
                .iter()
                .map(|l| match l {
                    Leaf::Input { indices, .. } | Leaf::Func { indices, .. } => indices.clone(),
                    Leaf::One => unreachable!(),
                })
                .collect(),
            all.minus(problem.output),
        )
        .unwrap();
        let refs: Vec<&Tensor> = materialized.iter().collect();
        let expect = spec.eval(&p.space, &refs);

        // Inputs binding: only the Input leaves.
        let inputs: HashMap<TensorId, &Tensor> = problem
            .factors
            .iter()
            .zip(&materialized)
            .filter_map(|(l, t)| match l {
                Leaf::Input { tensor, .. } => Some((*tensor, t)),
                _ => None,
            })
            .collect();

        // Sample several legal configurations, including the memory-min.
        let configs = enumerate_legal_configs(&tree, &p.space);
        let dp = memmin_dp(&tree, &p.space);
        let mut picked: Vec<&FusionConfig> = configs
            .iter()
            .map(|(c, _)| c)
            .step_by((configs.len() / 6).max(1))
            .collect();
        picked.push(&dp.config);
        for config in picked {
            let built = fused_program(&tree, &p.space, &p.tensors, config, "OUT");
            let mut interp = Interpreter::new(&built.program, &p.space, &inputs, &funcs).unwrap();
            interp.run(&mut NoSink);
            assert!(
                interp.output().approx_eq(&expect, 1e-8),
                "config {:?} diverges by {:e}",
                config.fused,
                interp.output().max_abs_diff(&expect)
            );
        }
    }
}

/// Non-proptest regression: a deep chain where fusion must cascade.
#[test]
fn deep_chain_fusion_cascades() {
    let mut space = IndexSpace::new();
    let n = space.add_range("N", 4);
    let vars: Vec<_> = (0..6).map(|q| space.add_var(&format!("x{q}"), n)).collect();
    let mut tensors = TensorTable::new();
    let mut tree = OpTree::new();
    // (((A·B)·C)·D) chain sharing one index at each step.
    let mut prev: Option<NodeId> = None;
    for s in 0..4 {
        let dims = vec![n, n];
        let t = tensors.add(TensorDecl::dense(&format!("M{s}"), dims));
        let leaf = tree.leaf_input(t, vec![vars[s], vars[s + 1]]);
        prev = Some(match prev {
            None => leaf,
            Some(p) => {
                let keep = IndexSet::from_vars([vars[0], vars[s + 1]]);
                tree.contract(p, leaf, keep)
            }
        });
    }
    let r = memmin_dp(&tree, &space);
    let bf = memmin_bruteforce(&tree, &space);
    assert_eq!(r.memory, bf.memory);
    // Execute the fused result.
    let built = fused_program(&tree, &space, &tensors, &r.config, "OUT");
    let data: Vec<Tensor> = (0..4).map(|s| Tensor::random(&[4, 4], s as u64)).collect();
    let inputs: HashMap<TensorId, &Tensor> = (0..4)
        .map(|s| (tensors.by_name(&format!("M{s}")).unwrap(), &data[s]))
        .collect();
    let mut interp = Interpreter::new(&built.program, &space, &inputs, &HashMap::new()).unwrap();
    interp.run(&mut NoSink);
    let expect = tce_core::exec::execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap();
    assert!(interp.output().approx_eq(&expect, 1e-9));
}
