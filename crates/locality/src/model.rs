//! The data-locality memory access cost model (paper §6).
//!
//! "We introduce a memory access cost model (Cost), an estimate on the
//! number of cache misses, as a function of tile sizes and loop bounds.
//! In a bottom-up traversal of the abstract syntax tree, we count for each
//! loop the number (Accesses) of distinct array elements accessed in its
//! scope.  If this number is smaller than the number of elements that fit
//! into the cache, then Cost = Accesses.  Otherwise, it means that the
//! elements in the cache are not reused from one loop iteration to the
//! next, and the cost is obtained by multiplying the loop range by the
//! cost of its inner loop(s)."
//!
//! The same model applies at every level of the hierarchy — "for the disk
//! access minimization problem, the same approach is used, replacing the
//! cache size by the physical memory size" — captured here by
//! [`MemoryHierarchy`].

use tce_ir::IndexSpace;
use tce_loops::{distinct_accesses, LoopProgram, Stmt};

/// Number of distinct elements accessed by one execution of a statement
/// (leaf case of the model).
fn stmt_accesses(s: &Stmt, p: &LoopProgram, space: &IndexSpace) -> u128 {
    match s {
        Stmt::Loop { .. } => unreachable!("handled by cost_stmt"),
        // An Init streams over the whole array once.
        Stmt::Init { array } => p.array(*array).elements(space),
        Stmt::Accum { rhs, .. } => rhs.len() as u128 + 1,
        Stmt::Eval { .. } => 1,
    }
}

/// The paper's `Cost` for one statement (loop or leaf) with all enclosing
/// loops fixed.
fn cost_stmt(s: &Stmt, p: &LoopProgram, space: &IndexSpace, cache: u128) -> u128 {
    match s {
        Stmt::Loop { var, body } => {
            let mut varying = vec![false; p.vars.len()];
            varying[var.0 as usize] = true;
            let accesses = distinct_accesses(p, space, body, &mut varying);
            if accesses <= cache {
                accesses
            } else {
                let range = p.var(*var).extent(space) as u128;
                let inner: u128 = body
                    .iter()
                    .map(|b| cost_stmt(b, p, space, cache))
                    .fold(0, |a, b| a.saturating_add(b));
                range.saturating_mul(inner)
            }
        }
        other => stmt_accesses(other, p, space),
    }
}

/// Estimated cache misses of the whole program for a cache of
/// `cache_elements` elements.
pub fn access_cost(p: &LoopProgram, space: &IndexSpace, cache_elements: u128) -> u128 {
    p.body
        .iter()
        .map(|s| cost_stmt(s, p, space, cache_elements))
        .fold(0, |a, b| a.saturating_add(b))
}

/// One level of the memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryLevel {
    /// Name for reports ("L2 cache", "memory", "disk").
    pub name: String,
    /// Capacity in elements.
    pub capacity_elements: u128,
    /// Cost of one miss at this level (arbitrary latency units).
    pub miss_cost: f64,
}

/// A hierarchy of levels, fastest/smallest first.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryHierarchy {
    /// Levels, smallest capacity first.
    pub levels: Vec<MemoryLevel>,
}

impl MemoryHierarchy {
    /// A conventional two-level (cache + memory-over-disk) hierarchy.
    pub fn cache_and_disk(cache_elements: u128, memory_elements: u128) -> Self {
        Self {
            levels: vec![
                MemoryLevel {
                    name: "cache".into(),
                    capacity_elements: cache_elements,
                    miss_cost: 1.0,
                },
                MemoryLevel {
                    name: "memory".into(),
                    capacity_elements: memory_elements,
                    miss_cost: 1000.0,
                },
            ],
        }
    }

    /// Weighted access cost: `Σ_level miss_cost · Cost(level capacity)` —
    /// applying the paper's model per level, disk misses dominating when a
    /// working set exceeds physical memory.
    pub fn cost(&self, p: &LoopProgram, space: &IndexSpace) -> f64 {
        self.levels
            .iter()
            .map(|l| {
                let accesses = access_cost(p, space, l.capacity_elements);
                if tce_trace::enabled() {
                    tce_trace::counter_u128(format!("locality.accesses.{}", l.name), accesses);
                }
                l.miss_cost * accesses as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_loops::{ARef, ArrayKind, LoopVarId, Sub, VarRange};

    /// Build C[i,j] += A[i,k]·B[k,j] as a perfect i,j,k nest.
    fn matmul(n: usize) -> (IndexSpace, LoopProgram, [LoopVarId; 3]) {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", n);
        let (i, j, k) = (
            space.add_var("i", r),
            space.add_var("j", r),
            space.add_var("k", r),
        );
        let mut p = LoopProgram::new();
        let vi = p.add_var("i", VarRange::Full(i));
        let vj = p.add_var("j", VarRange::Full(j));
        let vk = p.add_var("k", VarRange::Full(k));
        let a = p.add_array(
            "A",
            vec![VarRange::Full(i), VarRange::Full(k)],
            ArrayKind::Intermediate,
        );
        let b = p.add_array(
            "B",
            vec![VarRange::Full(k), VarRange::Full(j)],
            ArrayKind::Intermediate,
        );
        let c = p.add_array(
            "C",
            vec![VarRange::Full(i), VarRange::Full(j)],
            ArrayKind::Output,
        );
        let stmt = Stmt::Accum {
            lhs: ARef {
                array: c,
                subs: vec![Sub::Var(vi), Sub::Var(vj)],
            },
            rhs: vec![
                ARef {
                    array: a,
                    subs: vec![Sub::Var(vi), Sub::Var(vk)],
                },
                ARef {
                    array: b,
                    subs: vec![Sub::Var(vk), Sub::Var(vj)],
                },
            ],
            coeff: 1.0,
        };
        p.body.push(tce_loops::nest(vec![vi, vj, vk], vec![stmt]));
        p.validate().unwrap();
        (space, p, [vi, vj, vk])
    }

    #[test]
    fn cost_equals_accesses_when_everything_fits() {
        let (space, p, _) = matmul(8);
        // Whole footprint = 3·64 = 192 elements.
        assert_eq!(access_cost(&p, &space, 1_000), 192);
    }

    #[test]
    fn cost_multiplies_when_cache_too_small() {
        let (space, p, _) = matmul(8);
        let n = 8u128;
        // With a cache of 100: outer scope (192) spills; inner scope of j,k
        // for fixed i: A-row (8) + B (64) + C-row (8) = 80 ≤ 100 → cost =
        // N · 80.
        assert_eq!(access_cost(&p, &space, 100), n * 80);
        // With a cache of 20: j-scope spills too; k-scope for fixed i,j:
        // A-row 8 + B-col 8 + C elt 1 = 17 ≤ 20 → N·N·17.
        assert_eq!(access_cost(&p, &space, 20), n * n * 17);
        // Tiny cache: innermost statement costs 3 per iteration.
        assert_eq!(access_cost(&p, &space, 4), n * n * n * 3);
    }

    #[test]
    fn cost_is_monotone_in_cache_size() {
        let (space, p, _) = matmul(12);
        let mut last = u128::MAX;
        for c in [4u128, 16, 64, 256, 1024, 100_000] {
            let cost = access_cost(&p, &space, c);
            assert!(cost <= last, "cache {c}");
            last = cost;
        }
    }

    #[test]
    fn hierarchy_penalizes_memory_overflow() {
        let (space, p, _) = matmul(8);
        let small = MemoryHierarchy::cache_and_disk(20, 100);
        let large = MemoryHierarchy::cache_and_disk(20, 100_000);
        // Same cache level; the small hierarchy pays 1000× for memory
        // misses.
        assert!(small.cost(&p, &space) > large.cost(&p, &space));
    }

    #[test]
    fn init_streams_whole_array() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 10);
        let i = space.add_var("i", r);
        let mut p = LoopProgram::new();
        let _vi = p.add_var("i", VarRange::Full(i));
        let arr = p.add_array("X", vec![VarRange::Full(i)], ArrayKind::Output);
        p.body.push(Stmt::Init { array: arr });
        assert_eq!(access_cost(&p, &space, 1_000), 10);
    }
}
