//! # tce-ir — shared intermediate representation
//!
//! Core data model for the tensor-contraction optimization framework of
//! Baumgartner et al., *"A Performance Optimization Framework for
//! Compilation of Tensor Contraction Expressions into Parallel Programs"*
//! (IPDPS 2002):
//!
//! * [`index`] — index variables, ranges and interned index sets;
//! * [`poly`] — symbolic cost polynomials over range extents;
//! * [`tensor`] — tensor declarations with symmetry/sparsity annotations;
//! * [`expr`] — sum-of-products input expressions (the high-level language
//!   AST after semantic analysis);
//! * [`optree`] — operator trees (formula sequences of binary
//!   contractions), the representation every optimization stage consumes;
//! * [`rng`] — the deterministic pseudo-random generator used by tests and
//!   benchmark inputs (the workspace builds hermetically, without `rand`).

#![warn(missing_docs)]

pub mod expr;
pub mod index;
pub mod optree;
pub mod poly;
pub mod rng;
pub mod tensor;

pub use expr::{Assignment, Factor, FuncEval, Product, Program, TensorRef};
pub use index::{IndexSet, IndexSpace, IndexVar, RangeId};
pub use optree::{Leaf, NodeId, OpKind, OpNode, OpTree};
pub use poly::CostPoly;
pub use tensor::{SymmetryGroup, TensorDecl, TensorId, TensorTable};
