//! Fused-slice execution of operator trees: memory minimization made real.
//!
//! [`execute_tree_fused`] compiles a [`FusionConfig`] + [`OpTree`] into a
//! [`tce_fusion::FusionSchedule`] — the fused chain loops of the
//! configuration's laminar scopes — and executes it on real tensors.
//! Each fused intermediate is allocated **once** at its *reduced*
//! (fusion-shrunk) shape, so the measured peak intermediate storage equals
//! the memory-minimization DP's predicted element count exactly; inside
//! the chain loops, every node's contraction runs per outer-iteration on
//! tensor *slices* through the packed GETT micro-kernel (the BLAS-slicing
//! strategy of Peise et al.: loop over fused outer indices, call a
//! high-performance kernel on the slices, rather than scalar loops).
//!
//! The chain loops themselves run sequentially: parallelizing them would
//! require one private copy of each fused intermediate per worker, which
//! would break the measured-peak == model identity that is the point of
//! memory minimization.  Parallelism instead lives *inside* each sliced
//! kernel call (disjoint output tiles) and in function-slice
//! materialization (disjoint element chunks), both of which are bitwise
//! deterministic for every thread count.
//!
//! Slicing rules, per production of node `v` with the enclosing chain
//! loops pinning the index set `P`:
//!
//! * operand dimensions in `P` are sliced to length 1 at the pinned
//!   position and dropped (a free reshape — block extraction yields a
//!   fresh contiguous tensor);
//! * output dimensions of `v`'s reduced array in `P` address the slice
//!   the kernel result is accumulated into ([`Tensor::add_block`]);
//! * summation indices of `v` in `P` disappear from the kernel spec
//!   entirely: each outer iteration contributes one partial product,
//!   accumulated across iterations into `v`'s array — which is re-zeroed
//!   by the schedule exactly once per iteration of the chains through
//!   `v`'s parent edge, so consumers always see a complete sum.

use crate::error::ExecError;
use crate::treeexec::{ExecOptions, Schedule};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use tce_fusion::{fusion_schedule, is_fusable_producer, FusionConfig, ScheduleStep};
use tce_ir::{IndexSet, IndexSpace, IndexVar, Leaf, NodeId, OpKind, OpTree, TensorId};
use tce_par::{parallel_chunks_mut, TaskGraph};
use tce_tensor::{BinaryContraction, IntegralFn, Tensor};

/// The fused intermediate arrays, shared across schedule steps.
///
/// In sequential execution one [`FusedCtx`] owns all access.  Under graph
/// scheduling, top-level steps run concurrently but the task graph carries
/// a *hazard edge* between any two steps whose read/write node-sets
/// conflict, so for every array cell all writes are totally ordered with
/// each other and with every read (dependency completion happens-before a
/// dependent starts).  That discipline is exactly the exclusivity
/// `UnsafeCell` access requires.
struct SharedArrays(Vec<UnsafeCell<Option<Tensor>>>);

// SAFETY: concurrent access to distinct cells is safe; same-cell access is
// serialized by the task graph's hazard edges (see type docs).
unsafe impl Sync for SharedArrays {}

impl SharedArrays {
    fn new(arrays: Vec<Option<Tensor>>) -> Self {
        Self(arrays.into_iter().map(UnsafeCell::new).collect())
    }

    fn into_inner(self) -> Vec<Option<Tensor>> {
        self.0.into_iter().map(UnsafeCell::into_inner).collect()
    }

    /// SAFETY: caller must hold step-level exclusivity for cell `i` (the
    /// sequential walk trivially does; graph tasks do via hazard edges).
    #[allow(clippy::mut_from_ref)]
    unsafe fn cell_mut(&self, i: usize) -> &mut Option<Tensor> {
        unsafe { &mut *self.0[i].get() }
    }

    /// SAFETY: no concurrent writer for cell `i` (see [`Self::cell_mut`]).
    unsafe fn cell(&self, i: usize) -> &Option<Tensor> {
        unsafe { &*self.0[i].get() }
    }
}

/// Result of a fused-slice execution, with the measured-vs-modeled
/// live-set accounting (the same discipline the distributed executor
/// applies to communication volume).
#[derive(Debug)]
pub struct FusedExecReport {
    /// The root value (dimensions in canonical ascending index order, the
    /// same layout [`crate::execute_tree`] produces).
    pub result: Tensor,
    /// Measured peak intermediate storage: total elements of all fused
    /// intermediate arrays, which live for the whole execution.
    pub peak_live_elements: u128,
    /// The memmin model's prediction for the same quantity
    /// ([`FusionConfig::temp_memory`]).
    pub modeled_elements: u128,
    /// Sliced GETT kernel invocations.
    pub sliced_contractions: u64,
    /// Primitive-function element evaluations.
    pub func_evals: u64,
}

impl FusedExecReport {
    /// Whether the measured peak live-set matches the model exactly.
    pub fn peak_matches_model(&self) -> bool {
        self.peak_live_elements == self.modeled_elements
    }
}

/// Evaluate `tree` under the fusion configuration `config`, allocating
/// every fused intermediate once at its reduced shape and contracting on
/// slices (see the module docs).  Results are bitwise identical for every
/// `opts.threads` value.
pub fn execute_tree_fused(
    tree: &OpTree,
    space: &IndexSpace,
    config: &FusionConfig,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    opts: &ExecOptions,
) -> Result<FusedExecReport, ExecError> {
    let _span = tce_trace::span("exec.fused");
    let traced = tce_trace::enabled();

    // --- validate bindings up front (typed errors, not panics) ---
    for id in tree.postorder() {
        match &tree.node(id).kind {
            OpKind::Leaf(Leaf::Input { tensor, indices }) => {
                let t = inputs.get(tensor).ok_or_else(|| ExecError::MissingInput {
                    name: format!("#{}", tensor.0),
                })?;
                let expect: Vec<usize> = indices.iter().map(|&v| space.extent(v)).collect();
                if t.shape() != &expect[..] {
                    return Err(ExecError::InputShapeMismatch {
                        name: format!("#{}", tensor.0),
                        expect,
                        got: t.shape().to_vec(),
                    });
                }
            }
            OpKind::Leaf(Leaf::Func { name, .. }) if !funcs.contains_key(name) => {
                return Err(ExecError::MissingFunction { name: name.clone() });
            }
            _ => {}
        }
    }

    // A bare stored-input (or One) root has no producer nest to fuse.
    if !is_fusable_producer(tree, tree.root) {
        let result = match &tree.node(tree.root).kind {
            OpKind::Leaf(Leaf::Input { tensor, .. }) => {
                (*inputs.get(tensor).expect("validated above")).clone()
            }
            OpKind::Leaf(Leaf::One) => Tensor::from_elem(&[], 1.0),
            _ => unreachable!("non-producer roots are leaves"),
        };
        return Ok(FusedExecReport {
            result,
            peak_live_elements: 0,
            modeled_elements: config.temp_memory(tree, space),
            sliced_contractions: 0,
            func_evals: 0,
        });
    }

    let schedule =
        fusion_schedule(tree, config).map_err(|e| ExecError::InvalidProgram { reason: e })?;

    // --- allocate every fused intermediate once, at its reduced shape ---
    let bytes_of = |t: &Tensor| (t.len() * std::mem::size_of::<f64>()) as u64;
    let mut arrays: Vec<Option<Tensor>> = vec![None; tree.len()];
    let mut peak_live_elements = 0u128;
    for id in tree.postorder() {
        if !is_fusable_producer(tree, id) {
            continue;
        }
        let shape: Vec<usize> = config
            .array_indices(tree, id)
            .iter()
            .map(|v| space.extent(v))
            .collect();
        let t = Tensor::zeros(&shape);
        if id != tree.root {
            peak_live_elements += t.len() as u128;
        }
        if traced {
            tce_trace::mem_alloc(bytes_of(&t));
        }
        arrays[id.0 as usize] = Some(t);
    }
    let modeled_elements = config.temp_memory(tree, space);
    debug_assert_eq!(
        peak_live_elements, modeled_elements,
        "fused allocation diverged from the memmin model"
    );

    // --- interpret the schedule ---
    let shared = SharedArrays::new(arrays);
    let threads = opts.threads.max(1);
    let (sliced_contractions, func_evals) = match opts.schedule {
        Schedule::Seq => {
            let mut ctx = FusedCtx {
                tree,
                space,
                config,
                inputs,
                funcs,
                arrays: &shared,
                env: vec![0usize; 128],
                scope: IndexSet::EMPTY,
                threads,
                sliced_contractions: 0,
                func_evals: 0,
                pinned: &schedule.pinned,
            };
            // SAFETY (SharedArrays): one context, sequential steps —
            // trivially exclusive.
            ctx.run(&schedule.steps);
            (ctx.sliced_contractions, ctx.func_evals)
        }
        Schedule::Graph => run_steps_graph(
            tree, space, config, inputs, funcs, &shared, &schedule, threads,
        ),
    };

    let mut arrays = shared.into_inner();
    let result = arrays[tree.root.0 as usize].take().expect("root value");
    if traced {
        tce_trace::counter_u128("fused.live_elements", peak_live_elements);
        tce_trace::counter_u128("fused.sliced_contractions", sliced_contractions as u128);
        tce_trace::mem_free(bytes_of(&result));
        for t in arrays.iter().flatten() {
            tce_trace::mem_free(bytes_of(t));
        }
    }
    Ok(FusedExecReport {
        result,
        peak_live_elements,
        modeled_elements,
        sliced_contractions,
        func_evals,
    })
}

/// An operand slice for a sliced GETT call: the tensor (borrowed when no
/// slicing is needed) and its remaining dimension variables.
enum Operand<'t> {
    Borrowed(&'t Tensor, Vec<IndexVar>),
    Owned(Tensor, Vec<IndexVar>),
}

impl<'t> Operand<'t> {
    fn tensor(&self) -> &Tensor {
        match self {
            Operand::Borrowed(t, _) => t,
            Operand::Owned(t, _) => t,
        }
    }
    fn dims(&self) -> &[IndexVar] {
        match self {
            Operand::Borrowed(_, d) => d,
            Operand::Owned(_, d) => d,
        }
    }
}

/// The nodes a schedule step reads and writes, as node-id masks over the
/// tree — the hazard information graph scheduling serializes on.
#[derive(Clone)]
struct StepRw {
    reads: Vec<bool>,
    writes: Vec<bool>,
}

impl StepRw {
    fn conflicts_with(&self, later: &StepRw) -> bool {
        self.writes
            .iter()
            .zip(later.reads.iter().zip(&later.writes))
            .any(|(&w_i, (&r_j, &w_j))| w_i && (r_j || w_j))
            || self
                .reads
                .iter()
                .zip(&later.writes)
                .any(|(&r_i, &w_j)| r_i && w_j)
    }
}

/// Accumulate the read/write node-sets of `step` (recursing through chain
/// loops).  Reads cover producer operands only — stored inputs are
/// immutable and never hazard.
fn step_rw(tree: &OpTree, step: &ScheduleStep, rw: &mut StepRw) {
    match step {
        ScheduleStep::Loop { body, .. } => {
            for s in body {
                step_rw(tree, s, rw);
            }
        }
        ScheduleStep::Zero(v) => rw.writes[v.0 as usize] = true,
        ScheduleStep::Produce(v) => {
            rw.writes[v.0 as usize] = true;
            if let OpKind::Contract { left, right } = &tree.node(*v).kind {
                for c in [*left, *right] {
                    if is_fusable_producer(tree, c) {
                        rw.reads[c.0 as usize] = true;
                    }
                }
            }
        }
    }
}

/// Execute the schedule's top-level steps on a [`TaskGraph`] with hazard
/// edges: steps whose read/write sets conflict are ordered (so every
/// array cell sees a serialized access history, upholding the
/// [`SharedArrays`] contract); independent steps run concurrently.
/// Interior chain loops stay sequential inside their step's task.  All
/// arrays are preallocated before any step runs, so graph scheduling
/// cannot change the measured peak live-set.  Returns
/// `(sliced_contractions, func_evals)`.
#[allow(clippy::too_many_arguments)]
fn run_steps_graph(
    tree: &OpTree,
    space: &IndexSpace,
    config: &FusionConfig,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    shared: &SharedArrays,
    schedule: &tce_fusion::FusionSchedule,
    threads: usize,
) -> (u64, u64) {
    let rws: Vec<StepRw> = schedule
        .steps
        .iter()
        .map(|step| {
            let mut rw = StepRw {
                reads: vec![false; tree.len()],
                writes: vec![false; tree.len()],
            };
            step_rw(tree, step, &mut rw);
            rw
        })
        .collect();
    let mut graph = TaskGraph::new();
    for (j, rw_j) in rws.iter().enumerate() {
        let deps: Vec<usize> = (0..j).filter(|&i| rws[i].conflicts_with(rw_j)).collect();
        // Weight 0: every array is already allocated, so steps add no live
        // storage — the cap is irrelevant here by construction.
        graph.add_task(&deps, 0);
    }
    let sliced = AtomicU64::new(0);
    let evals = AtomicU64::new(0);
    graph.run(threads, None, &|t| {
        let mut ctx = FusedCtx {
            tree,
            space,
            config,
            inputs,
            funcs,
            arrays: shared,
            env: vec![0usize; 128],
            scope: IndexSet::EMPTY,
            threads,
            sliced_contractions: 0,
            func_evals: 0,
            pinned: &schedule.pinned,
        };
        ctx.run(std::slice::from_ref(&schedule.steps[t]));
        sliced.fetch_add(ctx.sliced_contractions, Ordering::Relaxed);
        evals.fetch_add(ctx.func_evals, Ordering::Relaxed);
    });
    (
        sliced.load(Ordering::Relaxed),
        evals.load(Ordering::Relaxed),
    )
}

struct FusedCtx<'a> {
    tree: &'a OpTree,
    space: &'a IndexSpace,
    config: &'a FusionConfig,
    inputs: &'a HashMap<TensorId, &'a Tensor>,
    funcs: &'a HashMap<String, IntegralFn>,
    arrays: &'a SharedArrays,
    /// Current value of each pinned index, by `IndexVar.0`.
    env: Vec<usize>,
    /// Indices pinned by the enclosing chain loops.
    scope: IndexSet,
    threads: usize,
    sliced_contractions: u64,
    func_evals: u64,
    pinned: &'a [IndexSet],
}

impl FusedCtx<'_> {
    fn run(&mut self, steps: &[ScheduleStep]) {
        for step in steps {
            match step {
                ScheduleStep::Loop { index, body } => {
                    let outer_scope = self.scope;
                    self.scope = self.scope.union(index.singleton());
                    for i in 0..self.space.extent(*index) {
                        self.env[index.0 as usize] = i;
                        self.run(body);
                    }
                    self.scope = outer_scope;
                }
                ScheduleStep::Zero(v) => {
                    // SAFETY: this step writes `v` — exclusivity per the
                    // SharedArrays contract (sequential walk or hazard
                    // edges).
                    unsafe { self.arrays.cell_mut(v.0 as usize) }
                        .as_mut()
                        .expect("allocated")
                        .fill_zero();
                }
                ScheduleStep::Produce(v) => self.produce(*v),
            }
        }
    }

    fn produce(&mut self, v: NodeId) {
        debug_assert_eq!(
            self.scope, self.pinned[v.0 as usize],
            "schedule scope disagrees with pinned set at node {}",
            v.0
        );
        match &self.tree.node(v).kind {
            OpKind::Contract { left, right } => self.produce_contract(v, *left, *right),
            OpKind::Leaf(Leaf::Func { name, indices, .. }) => {
                self.produce_func_slice(v, name, indices)
            }
            OpKind::Leaf(_) => unreachable!("only producers are scheduled"),
        }
    }

    /// Run `v`'s contraction for the current pinned-index values on
    /// operand slices, accumulating the kernel result into `v`'s slice.
    fn produce_contract(&mut self, v: NodeId, left: NodeId, right: NodeId) {
        let out_set = self.config.array_indices(self.tree, v);
        let res = {
            let a = self.operand_slice(left);
            let b = self.operand_slice(right);
            let spec = BinaryContraction {
                a: a.dims().to_vec(),
                b: b.dims().to_vec(),
                out: out_set.minus(self.scope).iter().collect(),
            };
            tce_tensor::contract_gett(&spec, self.space, a.tensor(), b.tensor(), self.threads)
        };
        self.sliced_contractions += 1;

        // Accumulate into the (possibly pinned-addressed) output slice.
        // Pinned *summation* indices of `v` are absent from both the spec
        // and the output address: each outer iteration adds one partial
        // product, summed across iterations by `add_block`.
        let full_dims: Vec<IndexVar> = out_set.iter().collect();
        let starts: Vec<usize> = full_dims
            .iter()
            .map(|d| {
                if self.scope.contains(*d) {
                    self.env[d.0 as usize]
                } else {
                    0
                }
            })
            .collect();
        let block_shape: Vec<usize> = full_dims
            .iter()
            .map(|d| {
                if self.scope.contains(*d) {
                    1
                } else {
                    self.space.extent(*d)
                }
            })
            .collect();
        let block = res.reshaped(&block_shape);
        // SAFETY: this step writes `v`; no concurrent reader or writer per
        // the SharedArrays contract.
        unsafe { self.arrays.cell_mut(v.0 as usize) }
            .as_mut()
            .expect("allocated")
            .add_block(&starts, &block);
    }

    /// The slice of child `c`'s value visible at the current pinned-index
    /// values: pinned dimensions are extracted at length 1 and dropped.
    /// Borrows the full tensor when nothing is pinned.
    fn operand_slice(&self, c: NodeId) -> Operand<'_> {
        let (src, dims): (&Tensor, Vec<IndexVar>) = match &self.tree.node(c).kind {
            OpKind::Leaf(Leaf::Input { tensor, indices }) => (self.inputs[tensor], indices.clone()),
            OpKind::Leaf(Leaf::One) => {
                return Operand::Owned(Tensor::from_elem(&[], 1.0), Vec::new())
            }
            // SAFETY: this step reads producer operand `c`; writers of `c`
            // are ordered before it per the SharedArrays contract.
            _ => (
                unsafe { self.arrays.cell(c.0 as usize) }
                    .as_ref()
                    .expect("allocated"),
                self.config.array_indices(self.tree, c).iter().collect(),
            ),
        };
        if !dims.iter().any(|d| self.scope.contains(*d)) {
            return Operand::Borrowed(src, dims);
        }
        let starts: Vec<usize> = dims
            .iter()
            .map(|d| {
                if self.scope.contains(*d) {
                    self.env[d.0 as usize]
                } else {
                    0
                }
            })
            .collect();
        let lens: Vec<usize> = dims
            .iter()
            .map(|d| {
                if self.scope.contains(*d) {
                    1
                } else {
                    self.space.extent(*d)
                }
            })
            .collect();
        let kept: Vec<IndexVar> = dims
            .iter()
            .copied()
            .filter(|d| !self.scope.contains(*d))
            .collect();
        let kept_shape: Vec<usize> = kept.iter().map(|&d| self.space.extent(d)).collect();
        let slice = src.extract_block(&starts, &lens).reshaped(&kept_shape);
        Operand::Owned(slice, kept)
    }

    /// Materialize a function leaf's reduced array for the current pinned
    /// argument values, parallel over element chunks (disjoint, so the
    /// result is identical for every thread count).
    fn produce_func_slice(&mut self, v: NodeId, name: &str, indices: &[IndexVar]) {
        enum Arg {
            Fixed(usize),
            Dim(usize),
        }
        let arr_dims: Vec<IndexVar> = self.config.array_indices(self.tree, v).iter().collect();
        let args: Vec<Arg> = indices
            .iter()
            .map(|iv| {
                if self.scope.contains(*iv) {
                    Arg::Fixed(self.env[iv.0 as usize])
                } else {
                    Arg::Dim(arr_dims.iter().position(|d| d == iv).expect("free arg"))
                }
            })
            .collect();
        let shape: Vec<usize> = arr_dims.iter().map(|&d| self.space.extent(d)).collect();
        let f = &self.funcs[name];
        // SAFETY: this step writes `v`; exclusivity per the SharedArrays
        // contract.
        let out = unsafe { self.arrays.cell_mut(v.0 as usize) }
            .as_mut()
            .expect("allocated");
        self.func_evals += out.len() as u64;
        let rank = shape.len();
        let shape_ref = &shape;
        let args_ref = &args;
        parallel_chunks_mut(out.data_mut(), self.threads, |start, chunk| {
            let mut idx = vec![0usize; rank];
            let mut rem = start;
            for d in (0..rank).rev() {
                idx[d] = rem % shape_ref[d];
                rem /= shape_ref[d];
            }
            let mut argv = vec![0usize; args_ref.len()];
            for x in chunk.iter_mut() {
                for (ai, a) in args_ref.iter().enumerate() {
                    argv[ai] = match *a {
                        Arg::Fixed(val) => val,
                        Arg::Dim(d) => idx[d],
                    };
                }
                *x = f.eval(&argv);
                Tensor::advance(&mut idx, shape_ref);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute_tree;
    use tce_fusion::memmin_dp;
    use tce_ir::{IndexSet, TensorDecl, TensorTable};

    fn fig1(n_ext: usize) -> (IndexSpace, TensorTable, OpTree, NodeId, NodeId) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", n_ext);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tensors, tree, t1, t2)
    }

    fn bind(tensors: &TensorTable, n: usize) -> (Vec<Tensor>, Vec<TensorId>) {
        let mut vals = Vec::new();
        let mut ids = Vec::new();
        for (i, nm) in ["A", "B", "C", "D"].iter().enumerate() {
            vals.push(Tensor::random(&[n; 4], 40 + i as u64));
            ids.push(tensors.by_name(nm).unwrap());
        }
        (vals, ids)
    }

    fn rel_close(a: &Tensor, b: &Tensor, tol: f64) -> bool {
        let scale = b.data().iter().fold(0.0f64, |m, x| m.max(x.abs())).max(1.0);
        a.max_abs_diff(b) <= tol * scale
    }

    #[test]
    fn fig1c_fused_matches_treeexec_with_model_peak() {
        let (space, tensors, tree, t1, t2) = fig1(4);
        let (vals, ids) = bind(&tensors, 4);
        let mut inputs = HashMap::new();
        for (id, v) in ids.iter().zip(&vals) {
            inputs.insert(*id, v);
        }
        let expect = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap();

        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        cfg.set(t2, space.parse_set("b,c").unwrap());
        for threads in [1, 2, 4] {
            let rep = execute_tree_fused(
                &tree,
                &space,
                &cfg,
                &inputs,
                &HashMap::new(),
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            assert!(rel_close(&rep.result, &expect, 1e-12));
            // T1 scalar + T2 at N².
            assert_eq!(rep.peak_live_elements, 1 + 16);
            assert!(rep.peak_matches_model());
        }
    }

    #[test]
    fn graph_schedule_is_bitwise_identical_and_keeps_model_peak() {
        let (space, tensors, tree, t1, t2) = fig1(4);
        let (vals, ids) = bind(&tensors, 4);
        let mut inputs = HashMap::new();
        for (id, v) in ids.iter().zip(&vals) {
            inputs.insert(*id, v);
        }
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        cfg.set(t2, space.parse_set("b,c").unwrap());
        let seq = execute_tree_fused(
            &tree,
            &space,
            &cfg,
            &inputs,
            &HashMap::new(),
            &ExecOptions::serial(),
        )
        .unwrap();
        for threads in [1, 2, 4, 8] {
            let opts = ExecOptions::with_threads(threads).with_schedule(Schedule::Graph);
            let rep =
                execute_tree_fused(&tree, &space, &cfg, &inputs, &HashMap::new(), &opts).unwrap();
            assert_eq!(
                rep.result, seq.result,
                "graph schedule diverged at {threads} threads"
            );
            // All intermediates are still preallocated up front, so the
            // measured peak equals the model regardless of scheduling.
            assert_eq!(rep.peak_live_elements, seq.peak_live_elements);
            assert!(rep.peak_matches_model());
            assert_eq!(rep.sliced_contractions, seq.sliced_contractions);
            assert_eq!(rep.func_evals, seq.func_evals);
        }
    }

    #[test]
    fn memmin_and_unfused_configs_agree_with_oracle() {
        let (space, tensors, tree, _, _) = fig1(3);
        let (vals, ids) = bind(&tensors, 3);
        let mut inputs = HashMap::new();
        for (id, v) in ids.iter().zip(&vals) {
            inputs.insert(*id, v);
        }
        let expect = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap();

        let r = memmin_dp(&tree, &space);
        for cfg in [FusionConfig::unfused(&tree), r.config.clone()] {
            let rep = execute_tree_fused(
                &tree,
                &space,
                &cfg,
                &inputs,
                &HashMap::new(),
                &ExecOptions::serial(),
            )
            .unwrap();
            assert!(rel_close(&rep.result, &expect, 1e-12));
            assert_eq!(rep.peak_live_elements, cfg.temp_memory(&tree, &space));
        }
    }

    #[test]
    fn func_leaves_fuse_to_scalars() {
        // E = Σ_ce f1(c,e)·f2(c,e), fully fused: all intermediates scalar.
        let mut space = IndexSpace::new();
        let n = space.add_range("V", 5);
        let c = space.add_var("c", n);
        let e = space.add_var("e", n);
        let mut tree = OpTree::new();
        let f1 = tree.leaf_func("f1", vec![c, e], 100);
        let f2 = tree.leaf_func("f2", vec![c, e], 100);
        tree.contract(f1, f2, IndexSet::EMPTY);
        let mut funcs = HashMap::new();
        funcs.insert("f1".to_string(), IntegralFn::new(100, 0xF1));
        funcs.insert("f2".to_string(), IntegralFn::new(100, 0xF2));
        let expect = execute_tree(&tree, &space, &HashMap::new(), &funcs, 1).unwrap();

        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(f1, IndexSet::from_vars([c, e]));
        cfg.set(f2, IndexSet::from_vars([c, e]));
        let rep = execute_tree_fused(
            &tree,
            &space,
            &cfg,
            &HashMap::new(),
            &funcs,
            &ExecOptions::with_threads(3),
        )
        .unwrap();
        assert!(rel_close(&rep.result, &expect, 1e-12));
        assert_eq!(rep.peak_live_elements, 2); // two scalars
        assert_eq!(rep.func_evals, 2 * 25);
    }

    #[test]
    fn missing_bindings_are_typed_errors() {
        let (space, tensors, tree, _, _) = fig1(2);
        let _ = tensors;
        let cfg = FusionConfig::unfused(&tree);
        let err = execute_tree_fused(
            &tree,
            &space,
            &cfg,
            &HashMap::new(),
            &HashMap::new(),
            &ExecOptions::serial(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::MissingInput { .. }), "{err}");
    }

    #[test]
    fn illegal_config_is_an_invalid_program_error() {
        let (space, tensors, tree, t1, t2) = fig1(2);
        let (vals, ids) = bind(&tensors, 2);
        let mut inputs = HashMap::new();
        for (id, v) in ids.iter().zip(&vals) {
            inputs.insert(*id, v);
        }
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t2, space.parse_set("b,c,j,k").unwrap());
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        let err = execute_tree_fused(
            &tree,
            &space,
            &cfg,
            &inputs,
            &HashMap::new(),
            &ExecOptions::serial(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::InvalidProgram { .. }), "{err}");
    }
}
