//! Differential tests: the sparse contraction path against the dense
//! oracles (`contract_naive`, `contract_gett`) on randomized small
//! contractions, plus sparse⇄dense conversion round-trips.

use tce_ir::rng::Rng;
use tce_ir::{IndexSpace, IndexVar};
use tce_tensor::{
    contract_gett, contract_naive, sparse_contraction_ops, BinaryContraction, SparseTensor, Tensor,
};

fn shape_of(space: &IndexSpace, vars: &[IndexVar]) -> Vec<usize> {
    vars.iter().map(|&v| space.extent(v)).collect()
}

/// Random contraction spec over 2–4 indices of extent 2–4.  Every index
/// lands in operand `a`, operand `b`, or both; output membership is a
/// coin flip, with at least one operand index guaranteed per side.
fn random_case(seed: u64) -> (BinaryContraction, IndexSpace) {
    let mut rng = Rng::new(seed);
    let mut space = IndexSpace::new();
    let nv = rng.usize_in(2..5);
    let vars: Vec<IndexVar> = (0..nv)
        .map(|k| {
            let r = space.add_range(&format!("R{k}"), rng.usize_in(2..5));
            space.add_var(&format!("v{k}"), r)
        })
        .collect();
    loop {
        let (mut a, mut b, mut out) = (Vec::new(), Vec::new(), Vec::new());
        for &v in &vars {
            let side = rng.usize_in(0..3);
            let in_a = side != 1;
            let in_b = side != 0;
            if in_a {
                a.push(v);
            }
            if in_b {
                b.push(v);
            }
            if rng.bool_with(0.5) {
                out.push(v);
            }
        }
        let spec = BinaryContraction { a, b, out };
        if !spec.a.is_empty() && !spec.b.is_empty() && spec.validate().is_ok() {
            return (spec, space);
        }
    }
}

fn assert_close(x: &Tensor, y: &Tensor, what: &str) {
    assert_eq!(x.shape(), y.shape(), "{what}: shape mismatch");
    let scale = y.data().iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (i, (&xv, &yv)) in x.data().iter().zip(y.data()).enumerate() {
        assert!(
            (xv - yv).abs() <= 1e-12 * scale,
            "{what}: element {i}: {xv} vs {yv}"
        );
    }
}

#[test]
fn sparse_contraction_matches_dense_oracles() {
    for seed in 0..60u64 {
        let (spec, space) = random_case(seed);
        let density = [0.0, 0.1, 0.5, 1.0][(seed % 4) as usize];
        let a_sparse = SparseTensor::random(&shape_of(&space, &spec.a), density, seed ^ 0xA);
        let a_dense = a_sparse.to_dense();
        let b = Tensor::random(&shape_of(&space, &spec.b), seed ^ 0xB);

        let dense = contract_naive(&spec, &space, &a_dense, &b);
        let sparse = tce_tensor::contract_sparse_dense(&spec, &space, &a_sparse, &b);
        assert_close(&sparse, &dense, &format!("seed {seed} sparse vs naive"));

        let gett = contract_gett(&spec, &space, &a_dense, &b, 1 + (seed % 3) as usize);
        assert_close(&gett, &dense, &format!("seed {seed} gett vs naive"));
    }
}

#[test]
fn sparse_dense_conversion_roundtrips_exactly() {
    for seed in 0..20u64 {
        let mut rng = Rng::new(seed);
        let shape: Vec<usize> = (0..rng.usize_in(1..4))
            .map(|_| rng.usize_in(1..6))
            .collect();
        let s = SparseTensor::random(&shape, rng.unit_f64(), seed ^ 0x5);
        let d = s.to_dense();
        let s2 = SparseTensor::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), s2.nnz(), "seed {seed}");
        // Bitwise equality: conversion must not perturb values.
        assert_eq!(d.data(), s2.to_dense().data(), "seed {seed}");
        for (idx, val) in s.iter_entries() {
            assert_eq!(d.get(&idx), val, "seed {seed} at {idx:?}");
        }
    }
}

#[test]
fn sparse_op_estimate_scales_with_density() {
    let (spec, space) = random_case(3);
    let full = sparse_contraction_ops(&spec, &space, 1.0);
    let half = sparse_contraction_ops(&spec, &space, 0.5);
    let none = sparse_contraction_ops(&spec, &space, 0.0);
    assert!(full > 0.0);
    assert!((half * 2.0 - full).abs() < 1e-9);
    assert_eq!(none, 0.0);
}
