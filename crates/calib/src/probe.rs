//! Seeded, budgeted microbenchmark probes.
//!
//! Each probe warms once, then repeats its measured kernel until its
//! slice of the overall time budget is spent, keeping the *fastest*
//! repetition (minimum-of-N is the standard way to strip scheduler noise
//! from short benchmarks).  Every probe runs at least once regardless of
//! budget, so even `--budget-ms 1` yields a complete, valid profile —
//! just a noisier one.

use crate::{GemmRates, Profile, PROFILE_VERSION};
use std::hint::black_box;
use std::time::Instant;
use tce_ir::rng::Rng;
use tce_ir::IndexSpace;
use tce_tensor::kernels::{self, CacheInfo, KernelVariant};
use tce_tensor::{contract_gett_with_variant, BinaryContraction, Tensor};

/// Probe configuration.
#[derive(Debug, Clone)]
pub struct ProbeOptions {
    /// Seed for the random operand data.
    pub seed: u64,
    /// Total wall-clock budget across all probes, in milliseconds.
    pub budget_ms: u64,
    /// Worker threads for the dispatch-overhead probe.
    pub threads: usize,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        Self {
            seed: 0x7CE_CA11B,
            budget_ms: 400,
            threads: tce_par::default_threads(),
        }
    }
}

/// Matmul edge lengths per shape class; chosen so each probe's flop
/// count (2n³) lands inside its own [`crate::ShapeClass`] window.
pub const CLASS_SIZES: [(crate::ShapeClass, usize); 3] = [
    (crate::ShapeClass::Small, 48),
    (crate::ShapeClass::Medium, 160),
    (crate::ShapeClass::Large, 320),
];

/// Shapes actually probed: the real class sizes in release builds,
/// heavily trimmed stand-ins under debug profiles (where an unoptimized
/// 320³ GEMM takes seconds and profile quality is irrelevant — the same
/// release-only discipline the kernel differential suites use).
fn probe_sizes() -> [(crate::ShapeClass, usize); 3] {
    if cfg!(debug_assertions) {
        [
            (crate::ShapeClass::Small, 16),
            (crate::ShapeClass::Medium, 32),
            (crate::ShapeClass::Large, 64),
        ]
    } else {
        CLASS_SIZES
    }
}

/// Repeat `f` until `slice_ns` is spent (minimum one repetition) and
/// return the fastest single elapsed time in nanoseconds.
fn best_of_budget(slice_ns: u128, mut f: impl FnMut()) -> u128 {
    let start = Instant::now();
    let mut best = u128::MAX;
    let mut runs = 0u32;
    while runs < 1 || start.elapsed().as_nanos() < slice_ns {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos().max(1));
        runs += 1;
        if runs >= 10_000 {
            break;
        }
    }
    best
}

fn gemm_gfs(variant: KernelVariant, n: usize, seed: u64, slice_ns: u128) -> f64 {
    let mut space = IndexSpace::new();
    let r = space.add_range("N", n);
    let (i, j, k) = (
        space.add_var("i", r),
        space.add_var("j", r),
        space.add_var("k", r),
    );
    let spec = BinaryContraction {
        a: vec![i, k],
        b: vec![k, j],
        out: vec![i, j],
    };
    let a = Tensor::random(&[n, n], seed ^ 0xA);
    let b = Tensor::random(&[n, n], seed ^ 0xB);
    // Warm: plan construction and pack-buffer allocation.
    black_box(contract_gett_with_variant(
        &spec, &space, &a, &b, 1, variant,
    ));
    let best_ns = best_of_budget(slice_ns, || {
        black_box(contract_gett_with_variant(
            &spec, &space, &a, &b, 1, variant,
        ));
    });
    let flops = 2.0 * (n as f64).powi(3);
    flops / best_ns as f64
}

fn copy_gbs(variant: KernelVariant, seed: u64, slice_ns: u128) -> f64 {
    let len = 1 << 19; // 4 MiB of f64 — larger than L2, pack-buffer scale.
    let mut rng = Rng::new(seed);
    let src: Vec<f64> = (0..len).map(|_| rng.unit_f64()).collect();
    let mut dst = vec![0.0f64; len];
    kernels::copy_f64(variant, &mut dst, &src);
    let best_ns = best_of_budget(slice_ns, || {
        kernels::copy_f64(variant, &mut dst, &src);
        black_box(&dst);
    });
    // Read + write traffic.
    (2 * len * 8) as f64 / best_ns as f64
}

fn permute_gbs(seed: u64, slice_ns: u128) -> f64 {
    let n = 640; // 640² f64 ≈ 3.3 MB
    let t = Tensor::random(&[n, n], seed ^ 0xE);
    black_box(t.permute_with_threads(&[1, 0], 1));
    let best_ns = best_of_budget(slice_ns, || {
        black_box(t.permute_with_threads(&[1, 0], 1));
    });
    (2 * n * n * 8) as f64 / best_ns as f64
}

fn level_gbs(bytes: usize, seed: u64, slice_ns: u128) -> f64 {
    let len = (bytes / 8).max(1024);
    // A cheap deterministic fill — the scan measures bandwidth, so the
    // values only need to defeat constant folding, not look random.
    let base = (seed % 1024) as f64 * 1e-6;
    let buf: Vec<f64> = (0..len).map(|i| base + i as f64 * 1e-9).collect();
    let mut sink = 0.0f64;
    let best_ns = best_of_budget(slice_ns, || {
        let mut acc = 0.0f64;
        for chunk in buf.chunks_exact(8) {
            acc += chunk[0]
                + chunk[1]
                + chunk[2]
                + chunk[3]
                + chunk[4]
                + chunk[5]
                + chunk[6]
                + chunk[7];
        }
        sink += black_box(acc);
    });
    black_box(sink);
    (len * 8) as f64 / best_ns as f64
}

fn dispatch_ns(threads: usize, slice_ns: u128) -> f64 {
    let tasks = 256usize;
    // Warm the pool so thread spawning is not measured.
    tce_par::parallel_for(tasks, threads, |_| {});
    let best_ns = best_of_budget(slice_ns, || {
        tce_par::parallel_for(tasks, threads, |i| {
            black_box(i);
        });
    });
    best_ns as f64 / tasks as f64
}

/// Run all probes within `opts.budget_ms` and assemble a [`Profile`].
///
/// Budget split: 60% GEMM (across every supported variant × three shape
/// classes), 10% pack copy, 10% permute, 15% memory levels, 5% dispatch.
pub fn run_probes(opts: &ProbeOptions) -> Profile {
    let total_ns = (opts.budget_ms as u128) * 1_000_000;
    let cache = kernels::cache_info();
    let variants = kernels::supported_variants();

    let gemm_slice = total_ns * 60 / 100 / (variants.len() as u128 * 3).max(1);
    let mut gemm = Vec::new();
    for &v in &variants {
        let mut rates = [0.0f64; 3];
        for (slot, &(_, n)) in probe_sizes().iter().enumerate() {
            rates[slot] = gemm_gfs(v, n, opts.seed, gemm_slice);
        }
        gemm.push((
            v.name().to_string(),
            GemmRates {
                small: rates[0],
                medium: rates[1],
                large: rates[2],
            },
        ));
    }

    let active = kernels::active();
    let copy = copy_gbs(active, opts.seed, total_ns / 10);
    let permute = permute_gbs(opts.seed, total_ns / 10);

    let mem_slice = total_ns * 15 / 100 / 4;
    // Working sets are capped (64 MiB for in-cache levels, 256 MiB for
    // the beyond-L3 scan) so hosts with huge last-level caches do not
    // spend the whole budget faulting in a multi-GB buffer; on such
    // hosts the `mem` figure degrades to an L3-bandwidth estimate,
    // which is the right effective rate for workloads that fit there.
    let l3_ws = (cache.l3 / 2).min(64 << 20);
    let mem_ws = cache.l3.saturating_mul(2).clamp(32 << 20, 256 << 20);
    let mem = vec![
        (
            "l1".to_string(),
            level_gbs(cache.l1d / 2, opts.seed, mem_slice),
        ),
        (
            "l2".to_string(),
            level_gbs((cache.l2 / 2).min(64 << 20), opts.seed, mem_slice),
        ),
        ("l3".to_string(), level_gbs(l3_ws, opts.seed, mem_slice)),
        ("mem".to_string(), level_gbs(mem_ws, opts.seed, mem_slice)),
    ];

    let disp = dispatch_ns(opts.threads.max(1), total_ns / 20);

    Profile {
        version: PROFILE_VERSION,
        seed: opts.seed,
        budget_ms: opts.budget_ms,
        gemm_gfs: gemm,
        copy_gbs: copy,
        permute_gbs: permute,
        mem_gbs: mem,
        dispatch_ns: disp,
        cache: CacheInfo {
            l1d: cache.l1d,
            l2: cache.l2,
            l3: cache.l3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_budget_still_yields_a_complete_valid_profile() {
        let profile = run_probes(&ProbeOptions {
            seed: 7,
            budget_ms: 1,
            threads: 2,
        });
        // Every rate is positive and finite — the validation the JSON
        // loader applies accepts what the probes produce.
        let round = Profile::from_json(&profile.to_json()).unwrap();
        assert_eq!(round, profile);
        assert!(!profile.gemm_gfs.is_empty());
        for (name, r) in &profile.gemm_gfs {
            for rate in [r.small, r.medium, r.large] {
                assert!(rate.is_finite() && rate > 0.0, "{name}: {rate}");
            }
        }
        assert_eq!(profile.mem_gbs.len(), 4);
        assert!(profile.dispatch_ns > 0.0);
    }

    #[test]
    fn class_sizes_land_in_their_own_classes() {
        for (class, n) in CLASS_SIZES {
            let flops = 2 * (n as u128).pow(3);
            assert_eq!(crate::shape_class(flops), class, "n={n}");
        }
    }
}
