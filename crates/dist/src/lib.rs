//! # tce-dist — data distribution and communication minimization
//!
//! The paper's Data Distribution & Partitioning module (§7): distribution
//! n-tuples over a logical processor grid ([`tuple`]), closed-form
//! communication/computation/reduction cost models ([`cost`]), the
//! `Cost(u, α)` dynamic program with traceback ([`dp`]), a sharded
//! executor that runs a chosen plan rank-parallel with block-transfer
//! redistribution and tree reduction ([`exec`]), and an element-wise
//! simulated machine kept as the small-extent oracle the executor is
//! differentially tested against ([`sim`]).
//!
//! ```
//! use tce_dist::{move_cost, DistEntry, DistTuple};
//! use tce_ir::IndexSpace;
//! use tce_par::ProcessorGrid;
//!
//! let mut sp = IndexSpace::new();
//! let n = sp.add_range("N", 16);
//! let j = sp.add_var("j", n);
//! let t = sp.add_var("t", n);
//! let grid = ProcessorGrid::new(vec![2, 4, 8]);
//! // The paper's example: ⟨j,*,1⟩ → ⟨j,t,1⟩ needs no communication.
//! let from = DistTuple(vec![DistEntry::Idx(j), DistEntry::Replicate, DistEntry::One]);
//! let to = DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(t), DistEntry::One]);
//! assert_eq!(move_cost(&[j, t], &sp, &grid, &from, &to), 0);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod dp;
pub mod error;
pub mod exec;
pub mod sim;
pub mod tuple;

pub use cost::{after_reduction, calc_cost, move_cost, reduce_cost, ReduceMode};
pub use dp::{optimize_distribution, state_count, DistPlan, Machine, DEFAULT_WORD_COST};
pub use error::DistError;
pub use exec::{
    contract_sharded, execute_plan_sharded, execute_plan_sharded_graph, gather, redistribute,
    reduce_partial_sums, scatter, ShardExecReport, ShardedTensor,
};
pub use sim::{
    move_cost_elementwise, simulate_contraction, simulate_plan, PlanSimReport, SimStats,
};
pub use tuple::{enumerate_tuples, DistEntry, DistTuple};
