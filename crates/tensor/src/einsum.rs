//! Reference einsum evaluator.
//!
//! Direct translation of a sum-of-products statement into nested loops —
//! the paper's "ten nested loops" baseline of §2.  It is intentionally the
//! most naive possible implementation: it serves as the *correctness
//! oracle* every optimized evaluation strategy (operator trees, fused loop
//! structures, tiled code) is checked against, and as the measured baseline
//! for experiment E1.

use crate::dense::Tensor;
use tce_ir::{IndexSet, IndexSpace, IndexVar};

/// A single-term einsum specification over declared index variables:
/// `out[output…] (+)= Σ_{sum…} Π inputs`.
#[derive(Debug, Clone)]
pub struct EinsumSpec {
    /// Output index variables, in dimension order.
    pub output: Vec<IndexVar>,
    /// Per-input index variables, in dimension order.
    pub inputs: Vec<Vec<IndexVar>>,
    /// Summation index variables.
    pub sum: IndexSet,
}

impl EinsumSpec {
    /// Construct and validate: output and sum indices disjoint, every input
    /// variable bound, no repeated variable inside one operand.
    pub fn new(
        output: Vec<IndexVar>,
        inputs: Vec<Vec<IndexVar>>,
        sum: IndexSet,
    ) -> Result<Self, String> {
        let out_set = IndexSet::from_vars(output.iter().copied());
        if out_set.len() != output.len() {
            return Err("repeated output index".into());
        }
        if !out_set.is_disjoint(sum) {
            return Err("summation index also appears in output".into());
        }
        let bound = out_set.union(sum);
        for (i, input) in inputs.iter().enumerate() {
            let set = IndexSet::from_vars(input.iter().copied());
            if set.len() != input.len() {
                return Err(format!("repeated index in input {i}"));
            }
            if !set.is_subset(bound) {
                return Err(format!("input {i} uses an unbound index"));
            }
        }
        Ok(Self {
            output,
            inputs,
            sum,
        })
    }

    /// The loop-index set: output ∪ summation variables.
    pub fn all_indices(&self) -> IndexSet {
        IndexSet::from_vars(self.output.iter().copied()).union(self.sum)
    }

    /// Number of scalar multiply/add operations the naive evaluation
    /// performs: `#inputs` per point of the full iteration space.
    pub fn naive_ops(&self, space: &IndexSpace) -> u128 {
        space
            .iteration_points(self.all_indices())
            .saturating_mul(self.inputs.len() as u128)
    }

    /// Evaluate naively with one perfect loop nest over all indices.
    ///
    /// # Panics
    /// Panics if an operand's shape does not match its index extents.
    pub fn eval(&self, space: &IndexSpace, operands: &[&Tensor]) -> Tensor {
        assert_eq!(operands.len(), self.inputs.len(), "operand count mismatch");
        for (op, idxs) in operands.iter().zip(&self.inputs) {
            let expect: Vec<usize> = idxs.iter().map(|&v| space.extent(v)).collect();
            assert_eq!(op.shape(), &expect[..], "operand shape mismatch");
        }

        let loop_vars: Vec<IndexVar> = self.all_indices().iter().collect();
        let loop_shape: Vec<usize> = loop_vars.iter().map(|&v| space.extent(v)).collect();
        // Position of each loop var in `loop_vars`, by raw id.
        let mut pos = [usize::MAX; IndexSet::MAX_VARS];
        for (p, v) in loop_vars.iter().enumerate() {
            pos[v.0 as usize] = p;
        }

        let out_shape: Vec<usize> = self.output.iter().map(|&v| space.extent(v)).collect();
        let mut out = Tensor::zeros(&out_shape);

        // Precompute, for each operand (and the output), the loop-var
        // positions of its dimensions so the inner loop is a gather.
        let gather =
            |idxs: &[IndexVar]| -> Vec<usize> { idxs.iter().map(|&v| pos[v.0 as usize]).collect() };
        let out_pos = gather(&self.output);
        let in_pos: Vec<Vec<usize>> = self.inputs.iter().map(|v| gather(v)).collect();

        let total: usize = loop_shape.iter().product::<usize>().max(1);
        let mut idx = vec![0usize; loop_vars.len()];
        let mut op_idx: Vec<Vec<usize>> =
            self.inputs.iter().map(|v| vec![0usize; v.len()]).collect();
        let mut out_idx = vec![0usize; self.output.len()];
        for _ in 0..total {
            let mut prod = 1.0;
            for (o, (op, posv)) in operands.iter().zip(&in_pos).enumerate() {
                for (d, &p) in posv.iter().enumerate() {
                    op_idx[o][d] = idx[p];
                }
                prod *= op.get(&op_idx[o]);
            }
            for (d, &p) in out_pos.iter().enumerate() {
                out_idx[d] = idx[p];
            }
            out.add_assign_at(&out_idx, prod);
            Tensor::advance(&mut idx, &loop_shape);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2(n: usize, m: usize) -> (IndexSpace, Vec<IndexVar>) {
        let mut sp = IndexSpace::new();
        let rn = sp.add_range("N", n);
        let rm = sp.add_range("M", m);
        let i = sp.add_var("i", rn);
        let j = sp.add_var("j", rm);
        let k = sp.add_var("k", rn);
        (sp, vec![i, j, k])
    }

    #[test]
    fn matmul_matches_manual() {
        let (sp, v) = space2(3, 4);
        let (i, j, k) = (v[0], v[1], v[2]);
        let a = Tensor::random(&[3, 3], 1); // A[i,k]
        let b = Tensor::random(&[3, 4], 2); // B[k,j]
        let spec =
            EinsumSpec::new(vec![i, j], vec![vec![i, k], vec![k, j]], k.singleton()).unwrap();
        let c = spec.eval(&sp, &[&a, &b]);
        for ii in 0..3 {
            for jj in 0..4 {
                let mut acc = 0.0;
                for kk in 0..3 {
                    acc += a.get(&[ii, kk]) * b.get(&[kk, jj]);
                }
                assert!((c.get(&[ii, jj]) - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn full_reduction_to_scalar() {
        let (sp, v) = space2(3, 4);
        let (i, j, _) = (v[0], v[1], v[2]);
        let a = Tensor::random(&[3, 4], 3);
        let spec = EinsumSpec::new(vec![], vec![vec![i, j]], IndexSet::from_vars([i, j])).unwrap();
        let s = spec.eval(&sp, &[&a]);
        assert_eq!(s.rank(), 0);
        assert!((s.get(&[]) - a.sum()).abs() < 1e-12);
    }

    #[test]
    fn outer_product_no_sum() {
        let (sp, v) = space2(2, 3);
        let (i, j, _) = (v[0], v[1], v[2]);
        let a = Tensor::random(&[2], 4);
        let b = Tensor::random(&[3], 5);
        let spec = EinsumSpec::new(vec![i, j], vec![vec![i], vec![j]], IndexSet::EMPTY).unwrap();
        let c = spec.eval(&sp, &[&a, &b]);
        for ii in 0..2 {
            for jj in 0..3 {
                assert_eq!(c.get(&[ii, jj]), a.get(&[ii]) * b.get(&[jj]));
            }
        }
    }

    #[test]
    fn three_operand_contraction() {
        let (sp, v) = space2(3, 2);
        let (i, j, k) = (v[0], v[1], v[2]);
        let a = Tensor::random(&[3, 3], 6); // A[i,k]
        let b = Tensor::random(&[3], 7); // B[k]
        let c = Tensor::random(&[2], 8); // C[j]
        let spec = EinsumSpec::new(
            vec![i, j],
            vec![vec![i, k], vec![k], vec![j]],
            k.singleton(),
        )
        .unwrap();
        let out = spec.eval(&sp, &[&a, &b, &c]);
        for ii in 0..3 {
            for jj in 0..2 {
                let mut acc = 0.0;
                for kk in 0..3 {
                    acc += a.get(&[ii, kk]) * b.get(&[kk]) * c.get(&[jj]);
                }
                assert!((out.get(&[ii, jj]) - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn naive_ops_counts_full_space() {
        let (sp, v) = space2(3, 4);
        let (i, j, k) = (v[0], v[1], v[2]);
        let spec =
            EinsumSpec::new(vec![i, j], vec![vec![i, k], vec![k, j]], k.singleton()).unwrap();
        // 3*4*3 iterations × 2 operands
        assert_eq!(spec.naive_ops(&sp), 3 * 4 * 3 * 2);
    }

    #[test]
    fn spec_validation() {
        let (_, v) = space2(3, 4);
        let (i, j, k) = (v[0], v[1], v[2]);
        // Repeated output index.
        assert!(EinsumSpec::new(vec![i, i], vec![], IndexSet::EMPTY).is_err());
        // Sum index in output.
        assert!(EinsumSpec::new(vec![i], vec![vec![i]], i.singleton()).is_err());
        // Unbound input index.
        assert!(EinsumSpec::new(vec![i], vec![vec![i, k]], j.singleton()).is_err());
        // Repeated index within one input (diagonal) rejected.
        assert!(EinsumSpec::new(vec![i], vec![vec![i, i]], IndexSet::EMPTY).is_err());
    }

    #[test]
    #[should_panic(expected = "operand shape mismatch")]
    fn eval_rejects_wrong_shape() {
        let (sp, v) = space2(3, 4);
        let (i, j, k) = (v[0], v[1], v[2]);
        let a = Tensor::zeros(&[3, 4]); // wrong: should be [3,3]
        let b = Tensor::zeros(&[3, 4]);
        let spec =
            EinsumSpec::new(vec![i, j], vec![vec![i, k], vec![k, j]], k.singleton()).unwrap();
        spec.eval(&sp, &[&a, &b]);
    }
}
