//! E11 — §4/Fig. 5: the synthesis system end to end.
//!
//! Runs the complete pipeline on two specifications (the §2 CCSD-like
//! contraction and an integral-bearing energy expression), printing each
//! stage's report, and verifies the synthesized program numerically.

use std::collections::HashMap;
use tce_bench::tables::fmt_u;
use tce_core::dist::Machine;
use tce_core::locality::MemoryHierarchy;
use tce_core::par::ProcessorGrid;
use tce_core::scenarios::section2_source;
use tce_core::tensor::{IntegralFn, Tensor};
use tce_core::{synthesize, SynthesisConfig};

fn main() {
    println!("E11: the synthesis system end to end (Fig. 5)\n");

    // --- spec 1: the §2 contraction with every stage enabled ---
    let cfg = SynthesisConfig {
        memory_limit: u128::MAX,
        cache_elements: Some(512),
        hierarchy: MemoryHierarchy::cache_and_disk(512, 1 << 24),
        machine: Some(Machine {
            grid: ProcessorGrid::new(vec![2, 2]),
            word_cost: 1,
        }),
        calibration: None,
    };
    let syn = synthesize(&section2_source(6), &cfg).expect("synthesis");
    let plan = &syn.plans[0];
    println!("{}", plan.report(&syn.program.space, &syn.program));

    // Verify execution.
    let shape = [6usize; 4];
    let data: Vec<Tensor> = (0..4).map(|s| Tensor::random(&shape, s as u64)).collect();
    let mut inputs = HashMap::new();
    for (q, nm) in ["A", "B", "C", "D"].iter().enumerate() {
        inputs.insert(syn.program.tensors.by_name(nm).unwrap(), &data[q]);
    }
    let got = plan
        .execute(&syn.program.space, &inputs, &HashMap::new())
        .unwrap();
    let expect =
        tce_core::exec::execute_tree(&plan.tree, &syn.program.space, &inputs, &HashMap::new(), 1)
            .unwrap();
    assert!(got.approx_eq(&expect, 1e-9));
    println!(
        "spec 1 verified (max diff {:.2e})\n",
        got.max_abs_diff(&expect)
    );

    // --- spec 2: integral-bearing statement with a tight memory limit ---
    let src = "
        range V = 6; range O = 3;
        index a, c, e, f, b1 : V; index k : O;
        tensor E();
        function f1(V, V, V, O) cost 500;
        function f2(V, V, V, O) cost 500;
        E = sum[a,c,e,f,b1,k] f1(c,e,b1,k) * f2(a,f,b1,k);
    ";
    let tight = SynthesisConfig {
        memory_limit: 100,
        ..SynthesisConfig::default()
    };
    let syn2 = synthesize(src, &tight).expect("synthesis 2");
    let plan2 = &syn2.plans[0];
    println!("{}", plan2.report(&syn2.program.space, &syn2.program));
    if let Some((st, tiles)) = &plan2.spacetime {
        println!(
            "space-time stage engaged: memory {} ≤ 100 with recomputation over {}",
            fmt_u(tiles.memory),
            syn2.program.space.set_to_string(st.recomputation_indices())
        );
        assert!(tiles.memory <= 100);
    }
    let mut funcs = HashMap::new();
    funcs.insert("f1".to_string(), IntegralFn::new(500, 1));
    funcs.insert("f2".to_string(), IntegralFn::new(500, 2));
    let e = plan2
        .execute(&syn2.program.space, &HashMap::new(), &funcs)
        .unwrap();
    let e_ref =
        tce_core::exec::execute_tree(&plan2.tree, &syn2.program.space, &HashMap::new(), &funcs, 1)
            .unwrap();
    assert!((e.get(&[]) - e_ref.get(&[])).abs() < 1e-9 * e_ref.get(&[]).abs().max(1.0));
    println!("spec 2 verified (E = {:.6})", e.get(&[]));
    println!("E11 OK");
}
