//! The A3A energy component of paper §3: memory/recomputation trade-off.
//!
//! Reproduces the storyline of Figs. 2–4: the unfused operation-minimal
//! form needs astronomically large temporaries; full fusion reduces every
//! temporary to a scalar but recomputes the expensive integrals `f1`/`f2`
//! ~V² times; tiling with block size `B` interpolates — and as `B` grows,
//! performance first improves, then levels off, then deteriorates once
//! the `B⁴` buffers fall out of the fast memory level.
//!
//! ```sh
//! cargo run --release --example a3a_spacetime
//! ```

use std::collections::HashMap;
use tce_core::exec::{CacheSink, Interpreter, LruCache, NoSink};
use tce_core::scenarios::A3AScenario;
use tce_core::spacetime::spacetime_dp;

fn main() {
    // Paper-scale estimate (V = 5000, O = 100): sizes only, no execution.
    let paper = A3AScenario::new(5000, 100, 1000);
    println!("== paper scale (V = 5000, O = 100, C_i = 1000) ==");
    println!("Fig. 2 (unfused, operation-minimal):");
    println!(
        "{:>4} {:>24} {:>28}",
        "arr", "space (elements)", "time (flops)"
    );
    for (name, space, time) in paper.fig2_table() {
        println!("{name:>4} {space:>24} {time:>28}");
    }
    println!(
        "  → T1/T2 are ~{:.1e} bytes, X/Y ~{:.1e} bytes: impractical, as the paper notes.",
        8.0 * paper.fig2_table()[1].1 as f64,
        8.0 * paper.fig2_table()[0].1 as f64
    );

    println!("\nFig. 3 (fully fused, B = 1): all temporaries scalars;");
    let fig3 = paper.fig4_table(1);
    println!(
        "  integral time grows to {:.3e} flops ({}x the unfused form)",
        fig3[1].2 as f64,
        fig3[1].2 / paper.fig2_table()[1].2
    );

    // Small scale: run the space-time DP and execute the tiled programs.
    let sc = A3AScenario::new(8, 3, 500);
    println!("\n== executable scale (V = 8, O = 3, C_i = 500) ==");

    println!("\nspace-time pareto frontier (memory elements, flops):");
    let front = spacetime_dp(&sc.tree, &sc.space, usize::MAX).unwrap();
    for p in front.points() {
        println!("  mem {:>8}  ops {:>12}", p.mem, p.ops);
    }

    // Tile-size sweep on the executable Fig-4 program, with a simulated
    // two-level hierarchy: a "fast memory" of 600 elements (everything
    // beyond pays a 100× miss penalty).
    println!("\ntile sweep (measured by the loop-program interpreter):");
    println!(
        "{:>3} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "B", "temp elems", "func flops", "flops", "slow misses", "weighted cost"
    );
    let amps = sc.amplitudes(7);
    let mut inputs = HashMap::new();
    inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
    let funcs = sc.functions();
    let mut rows = Vec::new();
    for bb in [1usize, 2, 4, 8] {
        let p = sc.fig4_program(bb);
        let mut interp = Interpreter::new(&p, &sc.space, &inputs, &funcs).unwrap();
        interp.run(&mut NoSink);
        let stats = interp.stats;
        // Re-run through the LRU "fast memory" simulator.
        let sizes: Vec<usize> = p
            .arrays
            .iter()
            .map(|a| a.elements(&sc.space) as usize)
            .collect();
        let mut sink = CacheSink::new(LruCache::new(600, 1), &sizes);
        let mut interp2 = Interpreter::new(&p, &sc.space, &inputs, &funcs).unwrap();
        interp2.run(&mut sink);
        let misses = sink.cache.misses;
        // Weighted cost: flops + 100 × slow-level misses.
        let cost = stats.total_flops() as f64 + 100.0 * misses as f64;
        println!(
            "{bb:>3} {:>10} {:>12} {:>12} {:>14} {:>14.0}",
            interp.allocated_temp_elements(),
            stats.func_flops,
            stats.total_flops(),
            misses,
            cost
        );
        rows.push((bb, cost));
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "\noptimal block size under this hierarchy: B = {} — performance improves, \
         levels off, then deteriorates, as §3 predicts",
        best.0
    );
}
