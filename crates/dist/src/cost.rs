//! Communication and computation cost models (paper §7).
//!
//! * [`move_cost`] — `MoveCost(v, β, α)`: elements that must change
//!   processor when redistributing an array from β to α.  Computed
//!   *exactly*: for every processor, the elements it needs under α minus
//!   those it already holds under β (ownership factorizes over array
//!   dimensions, so each processor's count is a product of per-dimension
//!   range intersections).  This reproduces the paper's examples — e.g.
//!   `T1: ⟨1,t,j⟩ → ⟨j,t,1⟩` requires movement while `T2: ⟨j,*,1⟩ →
//!   ⟨j,t,1⟩` does not, "each processor just needs to give up part of the
//!   t-dimension".
//! * [`calc_cost`] — per-processor computation time of a node evaluated
//!   under a loop-space distribution γ (distributed loop dimensions are
//!   divided by the grid extent; replication does not speed anything up).
//! * [`reduce_cost`] — combining partial sums when a summation index was
//!   distributed: local volume × ⌈log₂ p⌉ per summation grid dimension,
//!   doubled when the result is replicated instead of collapsed.

use crate::tuple::{DistEntry, DistTuple};
use tce_ir::{IndexSet, IndexSpace, IndexVar};
use tce_par::ProcessorGrid;

/// Exact redistribution volume (total elements received over all
/// processors) for an array with ordered dims `dims`, moving from
/// distribution `beta` to `alpha`.
pub fn move_cost(
    dims: &[IndexVar],
    space: &IndexSpace,
    grid: &ProcessorGrid,
    beta: &DistTuple,
    alpha: &DistTuple,
) -> u128 {
    let set = IndexSet::from_vars(dims.iter().copied());
    let mut total = 0u128;
    for id in grid.processors() {
        let z = grid.coords(id);
        if !alpha.holds(set, &z) {
            continue;
        }
        let mut need = 1u128;
        for &v in dims {
            need = need.saturating_mul(alpha.owned_range(v, space, grid, &z).len() as u128);
        }
        let have = if beta.holds(set, &z) {
            let mut inter = 1u128;
            for &v in dims {
                let a = alpha.owned_range(v, space, grid, &z);
                let b = beta.owned_range(v, space, grid, &z);
                let lo = a.start.max(b.start);
                let hi = a.end.min(b.end);
                inter = inter.saturating_mul(hi.saturating_sub(lo) as u128);
            }
            inter
        } else {
            0
        };
        total = total.saturating_add(need.saturating_sub(have));
    }
    total
}

/// Per-processor iteration points of a loop space `loops` under the
/// distribution γ: distributed dimensions are block-divided, everything
/// else is traversed in full.
pub fn local_iteration_points(
    loops: IndexSet,
    space: &IndexSpace,
    grid: &ProcessorGrid,
    gamma: &DistTuple,
) -> u128 {
    let mut points = 1u128;
    for v in loops.iter() {
        let n = space.extent(v);
        let mut local = n;
        for (d, e) in gamma.0.iter().enumerate() {
            if *e == DistEntry::Idx(v) {
                local = n.div_ceil(grid.dims()[d]);
                break;
            }
        }
        points = points.saturating_mul(local as u128);
    }
    points
}

/// Per-processor computation time (flops) of a node whose loop space is
/// `loops`, costing `flops_per_point` at each point, under γ.
pub fn calc_cost(
    loops: IndexSet,
    flops_per_point: u128,
    space: &IndexSpace,
    grid: &ProcessorGrid,
    gamma: &DistTuple,
) -> u128 {
    local_iteration_points(loops, space, grid, gamma).saturating_mul(flops_per_point)
}

/// How a distributed summation dimension is resolved after partial sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceMode {
    /// Combine partial sums onto the first processor of each summation
    /// grid dimension (tuple entry becomes `1`).
    Combine,
    /// Replicate the combined sums along each summation grid dimension
    /// (tuple entry becomes `*`).
    Replicate,
}

/// Cost (words) of reducing partial sums: for each grid dimension that
/// carried a summation index, a tree combine of the local result volume —
/// `volume × ⌈log₂ p_d⌉` — doubled for [`ReduceMode::Replicate`]
/// (reduce + broadcast).
pub fn reduce_cost(
    result_indices: IndexSet,
    sum_indices: IndexSet,
    space: &IndexSpace,
    grid: &ProcessorGrid,
    gamma: &DistTuple,
    mode: ReduceMode,
) -> u128 {
    let volume = local_iteration_points(result_indices, space, grid, gamma);
    let mut cost = 0u128;
    for (d, e) in gamma.0.iter().enumerate() {
        if let DistEntry::Idx(v) = *e {
            if sum_indices.contains(v) {
                let p = grid.dims()[d] as u128;
                if p > 1 {
                    let rounds = 128 - (p - 1).leading_zeros() as u128; // ⌈log₂ p⌉
                    cost = cost.saturating_add(volume.saturating_mul(rounds));
                }
            }
        }
    }
    match mode {
        ReduceMode::Combine => cost,
        ReduceMode::Replicate => cost.saturating_mul(2),
    }
}

/// The post-reduction distribution of a contraction's result: summation
/// entries collapse to `1` (Combine) or `*` (Replicate); everything else
/// is kept, normalized to the result's indices.
pub fn after_reduction(
    gamma: &DistTuple,
    result_indices: IndexSet,
    sum_indices: IndexSet,
    mode: ReduceMode,
) -> DistTuple {
    DistTuple(
        gamma
            .0
            .iter()
            .map(|e| match *e {
                DistEntry::Idx(v) if sum_indices.contains(v) => match mode {
                    ReduceMode::Combine => DistEntry::One,
                    ReduceMode::Replicate => DistEntry::Replicate,
                },
                DistEntry::Idx(v) if !result_indices.contains(v) => DistEntry::Replicate,
                other => other,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (IndexSpace, ProcessorGrid, IndexVar, IndexVar) {
        let mut sp = IndexSpace::new();
        let rn = sp.add_range("N", 16);
        let j = sp.add_var("j", rn);
        let t = sp.add_var("t", rn);
        (sp, ProcessorGrid::new(vec![2, 4, 8]), j, t)
    }

    #[test]
    fn paper_redistribution_examples() {
        // §7: T1[j,t] from ⟨1,t,j⟩ to ⟨j,t,1⟩ "would have to be
        // redistributed because the two distributions do not match. But for
        // T2 to go from ⟨j,*,1⟩ to ⟨j,t,1⟩, each processor just needs to
        // give up part of the t-dimension of the array and no
        // inter-processor data movement is required."
        let (sp, grid, j, t) = setup();
        let dims = [j, t];
        let t1_from = DistTuple(vec![DistEntry::One, DistEntry::Idx(t), DistEntry::Idx(j)]);
        let t2_from = DistTuple(vec![
            DistEntry::Idx(j),
            DistEntry::Replicate,
            DistEntry::One,
        ]);
        let to = DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(t), DistEntry::One]);
        assert!(move_cost(&dims, &sp, &grid, &t1_from, &to) > 0);
        assert_eq!(move_cost(&dims, &sp, &grid, &t2_from, &to), 0);
    }

    #[test]
    fn identical_distribution_moves_nothing() {
        let (sp, grid, j, t) = setup();
        let dims = [j, t];
        for tup in [
            DistTuple::all_one(3),
            DistTuple::all_replicate(3),
            DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(t), DistEntry::One]),
        ] {
            assert_eq!(move_cost(&dims, &sp, &grid, &tup, &tup), 0);
        }
    }

    #[test]
    fn replication_from_single_copy_costs_extra_copies() {
        // From everything-on-processor-0 to full replication: 63 of 64
        // processors receive the whole 16×16 array.
        let (sp, grid, j, t) = setup();
        let dims = [j, t];
        let from = DistTuple::all_one(3);
        let to = DistTuple::all_replicate(3);
        assert_eq!(move_cost(&dims, &sp, &grid, &from, &to), 63 * 256);
    }

    #[test]
    fn gather_to_one_from_blocks() {
        // From block-distributed over j (2 ways) to all-on-first: the
        // first processor already holds half.
        let (sp, grid, j, t) = setup();
        let dims = [j, t];
        let from = DistTuple(vec![DistEntry::Idx(j), DistEntry::One, DistEntry::One]);
        let to = DistTuple::all_one(3);
        assert_eq!(move_cost(&dims, &sp, &grid, &from, &to), 128);
    }

    #[test]
    fn calc_cost_divides_distributed_dims_only() {
        let (sp, grid, j, t) = setup();
        let loops = IndexSet::from_vars([j, t]);
        let seq = DistTuple::all_one(3);
        assert_eq!(calc_cost(loops, 2, &sp, &grid, &seq), 2 * 256);
        let dist_j = DistTuple(vec![DistEntry::Idx(j), DistEntry::One, DistEntry::One]);
        assert_eq!(calc_cost(loops, 2, &sp, &grid, &dist_j), 2 * 128);
        // j over p=2 (local 8) and t over p=4 (local 4): 2·8·4.
        let dist_both = DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(t), DistEntry::One]);
        assert_eq!(calc_cost(loops, 2, &sp, &grid, &dist_both), 2 * 8 * 4);
        // Replication does not reduce per-processor time.
        let rep = DistTuple::all_replicate(3);
        assert_eq!(calc_cost(loops, 2, &sp, &grid, &rep), 2 * 256);
    }

    #[test]
    fn reduce_cost_log_rounds() {
        let (sp, grid, j, t) = setup();
        let result = j.singleton();
        let sums = t.singleton();
        // t distributed along dim 1 (p=4): 2 rounds × local volume (j
        // undistributed: 16).
        let gamma = DistTuple(vec![DistEntry::One, DistEntry::Idx(t), DistEntry::One]);
        assert_eq!(
            reduce_cost(result, sums, &sp, &grid, &gamma, ReduceMode::Combine),
            16 * 2
        );
        assert_eq!(
            reduce_cost(result, sums, &sp, &grid, &gamma, ReduceMode::Replicate),
            16 * 4
        );
        // No distributed sum index → free.
        let gamma2 = DistTuple(vec![DistEntry::Idx(j), DistEntry::One, DistEntry::One]);
        assert_eq!(
            reduce_cost(result, sums, &sp, &grid, &gamma2, ReduceMode::Combine),
            0
        );
    }

    #[test]
    fn after_reduction_rewrites_entries() {
        let (_, _, j, t) = setup();
        let gamma = DistTuple(vec![
            DistEntry::Idx(j),
            DistEntry::Idx(t),
            DistEntry::Replicate,
        ]);
        let res = j.singleton();
        let sums = t.singleton();
        let a = after_reduction(&gamma, res, sums, ReduceMode::Combine);
        assert_eq!(
            a.0,
            vec![DistEntry::Idx(j), DistEntry::One, DistEntry::Replicate]
        );
        let b = after_reduction(&gamma, res, sums, ReduceMode::Replicate);
        assert_eq!(b.0[1], DistEntry::Replicate);
    }
}
