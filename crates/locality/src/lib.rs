//! # tce-locality — data locality optimization
//!
//! The paper's Data Locality Optimization module (§6): an analytic
//! cache-miss cost model computed bottom-up over the loop AST ([`model`]),
//! loop blocking of perfect contraction nests, and the doubling tile-size
//! search that minimizes the modeled cost ([`tilesearch`]).  The same
//! model applies per memory-hierarchy level (cache, physical memory,
//! disk) via [`model::MemoryHierarchy`].
//!
//! ```
//! use tce_locality::access_cost;
//! use tce_ir::IndexSpace;
//! use tce_loops::{ARef, ArrayKind, LoopProgram, Stmt, Sub, VarRange};
//!
//! // for i { X[i] += X[i] · X[i] } over N = 100.
//! let mut sp = IndexSpace::new();
//! let n = sp.add_range("N", 100);
//! let i = sp.add_var("i", n);
//! let mut p = LoopProgram::new();
//! let vi = p.add_var("i", VarRange::Full(i));
//! let x = p.add_array("X", vec![VarRange::Full(i)], ArrayKind::Output);
//! let r = ARef { array: x, subs: vec![Sub::Var(vi)] };
//! p.body.push(Stmt::Loop {
//!     var: vi,
//!     body: vec![Stmt::Accum { lhs: r.clone(), rhs: vec![r.clone(), r], coeff: 1.0 }],
//! });
//! // Fits a big cache: cost = distinct elements (100).
//! assert_eq!(access_cost(&p, &sp, 1_000), 100);
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod tilesearch;

pub use model::{access_cost, MemoryHierarchy, MemoryLevel};
pub use tilesearch::{
    nest_is_tileable, perfect_nests, permute_nest, search_loop_order, search_nest_tiles,
    search_nest_tiles_hierarchy, tile_nest, HierarchyTileResult, PerfectNest, TileSearchResult,
};
