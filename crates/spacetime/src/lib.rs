//! # tce-spacetime — space-time trade-off optimization
//!
//! The paper's Space-Time Transformation module (§5): when loop fusion
//! alone cannot fit the temporaries in memory, trade recomputation for
//! space.  A pareto dynamic program over (memory, operations) extends
//! fusion with *redundant loops* ([`dp`]); tile-size search over the
//! recomputation indices then recovers reuse within a memory budget
//! ([`tiling`]) — the progression of paper Figs. 2 → 3 → 4.
//!
//! ```
//! use tce_spacetime::spacetime_dp;
//! use tce_ir::{IndexSet, IndexSpace, OpTree};
//!
//! // E = Σ_{c,e} f1(c,e)·f2(c,e): both integral leaves share all loop
//! // indices, so fusion alone reaches scalar temporaries.
//! let mut sp = IndexSpace::new();
//! let v = sp.add_range("V", 10);
//! let c = sp.add_var("c", v);
//! let e = sp.add_var("e", v);
//! let mut tree = OpTree::new();
//! let f1 = tree.leaf_func("f1", vec![c, e], 100);
//! let f2 = tree.leaf_func("f2", vec![c, e], 100);
//! tree.contract(f1, f2, IndexSet::EMPTY);
//! let front = spacetime_dp(&tree, &sp, usize::MAX).unwrap();
//! assert_eq!(front.min_mem().unwrap().mem, 2); // two scalars
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod dp;
pub mod pareto;
pub mod tiling;

pub use codegen::spacetime_program;
pub use dp::{redundant_candidates, spacetime_dp, SpaceTimeConfig, SpaceTimeFrontier};
pub use pareto::{Pareto, ParetoPoint};
pub use tiling::{
    block_of, doubling_candidates, search_tiles, spacetime_optimize, spacetime_optimize_rated,
    tiled_memory, tiled_ops, Blocks, TilingResult,
};
