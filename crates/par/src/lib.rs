//! # tce-par — parallel substrate
//!
//! Shared-memory data-parallel primitives (block-partitioned
//! parallel-for/reduce on a persistent worker pool, [`pool`]) and logical
//! processor-grid arithmetic with the paper's `myrange` block ownership
//! ([`grid`]).
//! `tce-exec` uses the pool to run synthesized contractions in parallel;
//! `tce-dist` uses the grid both for its communication cost model and for
//! the simulated distributed machine that validates it.
//!
//! ```
//! use tce_par::{myrange, parallel_reduce, ProcessorGrid};
//!
//! let total = parallel_reduce(1000, 4, 0u64, |r| r.map(|i| i as u64).sum(), |a, b| a + b);
//! assert_eq!(total, 999 * 1000 / 2);
//! let grid = ProcessorGrid::new(vec![2, 4, 8]);
//! assert_eq!(grid.num_processors(), 64);
//! assert_eq!(myrange(1, 100, 4), 25..50);
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod grid;
pub mod pool;

pub use graph::{GraphStats, TaskGraph};
pub use grid::{myrange, owner_of, ProcessorGrid};
pub use pool::{
    block_ranges, default_threads, parallel_chunks_mut, parallel_for, parallel_map,
    parallel_reduce, threads_env_requested, Pool, SharedCounter,
};
