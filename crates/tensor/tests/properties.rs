//! Property tests for the tensor substrate: kernel agreement, einsum
//! algebra, and permutation invariances.  Randomized with the workspace's
//! seeded [`Rng`]; every run checks the same cases.

use tce_ir::rng::Rng;
use tce_ir::{IndexSet, IndexSpace, IndexVar};
use tce_tensor::{
    contract_gemm, contract_gett, contract_naive, BinaryContraction, EinsumSpec, Tensor,
};

/// Random binary-contraction instances over up to 4 shared index
/// variables with small extents.
#[derive(Debug, Clone)]
struct Instance {
    space: IndexSpace,
    spec: BinaryContraction,
    a: Tensor,
    b: Tensor,
}

fn arb_instance(rng: &mut Rng) -> Instance {
    let extents: Vec<usize> = (0..4).map(|_| rng.usize_in(2..4)).collect();
    let da: Vec<usize> = (0..rng.usize_in(1..4))
        .map(|_| rng.usize_in(0..4))
        .collect();
    let db: Vec<usize> = (0..rng.usize_in(1..4))
        .map(|_| rng.usize_in(0..4))
        .collect();
    let keep: Vec<bool> = (0..4).map(|_| rng.bool_with(0.5)).collect();
    let seed = rng.u64_in(0..1000);

    let mut space = IndexSpace::new();
    let vars: Vec<IndexVar> = extents
        .iter()
        .enumerate()
        .map(|(q, &e)| {
            let r = space.add_range(&format!("R{q}"), e);
            space.add_var(&format!("x{q}"), r)
        })
        .collect();
    let dedup = |picks: &[usize]| -> Vec<IndexVar> {
        let mut seen = IndexSet::EMPTY;
        let mut out = Vec::new();
        for &q in picks {
            if !seen.contains(vars[q]) {
                seen.insert(vars[q]);
                out.push(vars[q]);
            }
        }
        out
    };
    let a_dims = dedup(&da);
    let b_dims = dedup(&db);
    let union: IndexSet = IndexSet::from_vars(a_dims.iter().copied())
        .union(IndexSet::from_vars(b_dims.iter().copied()));
    let out: Vec<IndexVar> = union
        .iter()
        .enumerate()
        .filter(|(i, _)| keep[*i % keep.len()])
        .map(|(_, v)| v)
        .collect();
    let shape =
        |dims: &[IndexVar]| -> Vec<usize> { dims.iter().map(|&v| space.extent(v)).collect() };
    let a = Tensor::random(&shape(&a_dims), seed);
    let b = Tensor::random(&shape(&b_dims), seed + 1);
    Instance {
        space,
        spec: BinaryContraction {
            a: a_dims,
            b: b_dims,
            out,
        },
        a,
        b,
    }
}

/// The blocked-GEMM path agrees with the naive kernel on arbitrary
/// contractions (including exclusive summation indices and batch dims).
#[test]
fn gemm_equals_naive() {
    let mut rng = Rng::new(0xa001);
    for _ in 0..64 {
        let inst = arb_instance(&mut rng);
        let naive = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let fast = contract_gemm(&inst.spec, &inst.space, &inst.a, &inst.b);
        assert!(
            naive.approx_eq(&fast, 1e-9),
            "diff {:e} on {:?}",
            naive.max_abs_diff(&fast),
            inst.spec
        );
    }
}

/// The packed GETT engine agrees with the naive kernel on arbitrary
/// contractions (batch dims, transposed outputs, exclusive summation
/// indices, scalar results).
#[test]
fn gett_equals_naive() {
    let mut rng = Rng::new(0xa007);
    for _ in 0..64 {
        let inst = arb_instance(&mut rng);
        let threads = rng.usize_in(1..5);
        let naive = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let fast = contract_gett(&inst.spec, &inst.space, &inst.a, &inst.b, threads);
        assert!(
            naive.approx_eq(&fast, 1e-10),
            "diff {:e} on {:?} (threads {threads})",
            naive.max_abs_diff(&fast),
            inst.spec
        );
    }
}

/// GETT at sizes that straddle the micro/macro tile boundaries (matmul
/// with random awkward extents, well past one MC×NC tile).
#[test]
fn gett_equals_naive_at_blocked_sizes() {
    let mut rng = Rng::new(0xa008);
    for _ in 0..6 {
        let (m, n, k) = (
            rng.usize_in(1..150),
            rng.usize_in(1..150),
            rng.usize_in(1..250),
        );
        let mut space = IndexSpace::new();
        let rm = space.add_range("M", m);
        let rn = space.add_range("N", n);
        let rk = space.add_range("K", k);
        let i = space.add_var("i", rm);
        let j = space.add_var("j", rn);
        let kk = space.add_var("k", rk);
        let spec = BinaryContraction {
            a: vec![i, kk],
            b: vec![kk, j],
            out: vec![i, j],
        };
        let a = Tensor::random(&[m, k], rng.u64_in(0..1000));
        let b = Tensor::random(&[k, n], rng.u64_in(0..1000));
        let naive = contract_naive(&spec, &space, &a, &b);
        let fast = contract_gett(&spec, &space, &a, &b, 4);
        assert!(
            naive.approx_eq(&fast, 1e-10),
            "({m},{n},{k}): diff {:e}",
            naive.max_abs_diff(&fast)
        );
    }
}

/// GETT output is bitwise identical regardless of the thread count —
/// the determinism guarantee of the disjoint output-tile partition.
#[test]
fn gett_bitwise_identical_across_threads() {
    let mut rng = Rng::new(0xa009);
    for _ in 0..32 {
        let inst = arb_instance(&mut rng);
        let t1 = contract_gett(&inst.spec, &inst.space, &inst.a, &inst.b, 1);
        for threads in [2, 7] {
            let tn = contract_gett(&inst.spec, &inst.space, &inst.a, &inst.b, threads);
            assert_eq!(t1, tn, "threads={threads} changed bits on {:?}", inst.spec);
        }
    }
}

/// The blocked (possibly parallel) permute is bitwise identical for
/// every thread count and matches elementwise indexing.
#[test]
fn permute_blocked_bitwise_across_threads() {
    let mut rng = Rng::new(0xa00a);
    for _ in 0..16 {
        let shape: Vec<usize> = (0..3).map(|_| rng.usize_in(5..40)).collect();
        let t = Tensor::random(&shape, rng.u64_in(0..1000));
        let rot = rng.usize_in(1..3);
        let perm: Vec<usize> = (0..3).map(|d| (d + rot) % 3).collect();
        let p1 = t.permute_with_threads(&perm, 1);
        for threads in [2, 7] {
            assert_eq!(p1, t.permute_with_threads(&perm, threads));
        }
        let mut idx = vec![0usize; 3];
        for _ in 0..p1.len() {
            // out[idx] = in[src] with src[perm[d]] = idx[d].
            let mut src = vec![0usize; 3];
            for (d, &p) in perm.iter().enumerate() {
                src[p] = idx[d];
            }
            assert_eq!(p1.get(&idx), t.get(&src));
            Tensor::advance(&mut idx, p1.shape());
        }
    }
}

/// Contraction is bilinear: scaling an operand scales the result.
#[test]
fn contraction_is_bilinear() {
    let mut rng = Rng::new(0xa002);
    for _ in 0..64 {
        let inst = arb_instance(&mut rng);
        let alpha = rng.f64_in(-3.0, 3.0);
        let base = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let mut a2 = Tensor::zeros(inst.a.shape());
        a2.axpy(alpha, &inst.a);
        let scaled = contract_naive(&inst.spec, &inst.space, &a2, &inst.b);
        let mut expect = Tensor::zeros(base.shape());
        expect.axpy(alpha, &base);
        assert!(scaled.approx_eq(&expect, 1e-9));
    }
}

/// Swapping the operands (and their index lists) leaves the result
/// unchanged — commutativity of the elementwise product.
#[test]
fn contraction_commutes() {
    let mut rng = Rng::new(0xa003);
    for _ in 0..64 {
        let inst = arb_instance(&mut rng);
        let forward = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let swapped = BinaryContraction {
            a: inst.spec.b.clone(),
            b: inst.spec.a.clone(),
            out: inst.spec.out.clone(),
        };
        let backward = contract_naive(&swapped, &inst.space, &inst.b, &inst.a);
        assert!(forward.approx_eq(&backward, 1e-12));
    }
}

/// Permuting an operand's dimensions together with its index list is a
/// no-op.
#[test]
fn operand_layout_invariance() {
    let mut rng = Rng::new(0xa004);
    for _ in 0..64 {
        let inst = arb_instance(&mut rng);
        let rot = rng.usize_in(0..3);
        if inst.spec.a.len() < 2 {
            continue;
        }
        let k = inst.spec.a.len();
        let perm: Vec<usize> = (0..k).map(|i| (i + rot) % k).collect();
        let a_rot = inst.a.permute(&perm);
        let dims_rot: Vec<IndexVar> = perm.iter().map(|&p| inst.spec.a[p]).collect();
        let spec2 = BinaryContraction {
            a: dims_rot,
            b: inst.spec.b.clone(),
            out: inst.spec.out.clone(),
        };
        let base = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        let rotated = contract_naive(&spec2, &inst.space, &a_rot, &inst.b);
        assert!(base.approx_eq(&rotated, 1e-12));
    }
}

/// The einsum over two operands equals the binary contraction.
#[test]
fn einsum_agrees_with_contraction() {
    let mut rng = Rng::new(0xa005);
    for _ in 0..64 {
        let inst = arb_instance(&mut rng);
        let sa = IndexSet::from_vars(inst.spec.a.iter().copied());
        let sb = IndexSet::from_vars(inst.spec.b.iter().copied());
        let so = IndexSet::from_vars(inst.spec.out.iter().copied());
        let sum = sa.union(sb).minus(so);
        let spec = EinsumSpec::new(
            inst.spec.out.clone(),
            vec![inst.spec.a.clone(), inst.spec.b.clone()],
            sum,
        )
        .unwrap();
        let e = spec.eval(&inst.space, &[&inst.a, &inst.b]);
        let k = contract_naive(&inst.spec, &inst.space, &inst.a, &inst.b);
        assert!(e.approx_eq(&k, 1e-9));
    }
}

/// Tensor permutation round-trips through its inverse.
#[test]
fn permutation_roundtrip() {
    let mut rng = Rng::new(0xa006);
    for _ in 0..64 {
        let seed = rng.u64_in(0..500);
        let rot = rng.usize_in(1..4);
        let t = Tensor::random(&[2, 3, 4, 2], seed);
        let k = 4usize;
        let perm: Vec<usize> = (0..k).map(|i| (i + rot) % k).collect();
        let mut inv = vec![0usize; k];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        let back = t.permute(&perm).permute(&inv);
        assert!(back.approx_eq(&t, 0.0));
    }
}
