//! Seeded generator of well-formed TCE programs.
//!
//! Builds [`tce_ir::Program`]s directly (ranges, index variables, tensor
//! declarations, statements) from a [`Rng`] stream, so the same seed always
//! yields the same program.  The output is constrained to the intersection
//! of what every pipeline stage accepts:
//!
//! * every statement validates ([`Program::validate`]);
//! * the LHS index set is a subset of **every** term's variable union, so
//!   `OpMinProblem::from_term` succeeds for each term (no broadcasting);
//! * index variables are declared grouped by range, matching the order the
//!   unparser regenerates, so `compile(unparse(p))` reproduces the same
//!   interned ids and the round-trip check can compare statements
//!   structurally;
//! * coefficients are exact binary fractions, so unparse→parse is lossless;
//! * a function symbol always reappears with the same argument ranges and
//!   cost (the unparser reconstructs one declaration per name).

use tce_ir::rng::Rng;
use tce_ir::{
    Assignment, Factor, FuncEval, IndexSet, IndexSpace, IndexVar, Product, Program, RangeId,
    TensorDecl, TensorId, TensorRef, TensorTable,
};

/// Tunable shape of the generated programs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of declared ranges (≥ 1).
    pub max_ranges: usize,
    /// Inclusive extent bounds per range.
    pub min_extent: usize,
    /// Inclusive extent bounds per range.
    pub max_extent: usize,
    /// Maximum number of index variables (≥ 2).
    pub max_vars: usize,
    /// Maximum statements per program (≥ 1); later statements may read
    /// earlier results (shared intermediates).
    pub max_stmts: usize,
    /// Maximum product terms per statement (≥ 1).
    pub max_terms: usize,
    /// Maximum factors per term — the operand arity (≥ 1).
    pub max_factors: usize,
    /// Probability a factor is an expensive-function evaluation.
    pub func_prob: f64,
    /// Probability a tensor factor reuses an already-declared tensor
    /// (earlier output or input) instead of declaring a fresh input.
    pub reuse_prob: f64,
    /// Probability a statement accumulates (`+=`) into the previous
    /// statement's target when index structure permits.
    pub accumulate_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            max_ranges: 2,
            min_extent: 2,
            max_extent: 4,
            max_vars: 5,
            max_stmts: 2,
            max_terms: 2,
            max_factors: 3,
            func_prob: 0.25,
            reuse_prob: 0.35,
            accumulate_prob: 0.2,
        }
    }
}

impl GenConfig {
    /// The CI smoke-corpus shape: small extents, everything enabled.
    pub fn smoke() -> Self {
        Self::default()
    }

    /// Wider programs for extended campaigns: more indices, up to
    /// four-operand terms and three-statement sequences.
    pub fn extended() -> Self {
        Self {
            max_ranges: 3,
            max_vars: 6,
            max_stmts: 3,
            max_factors: 4,
            ..Self::default()
        }
    }
}

/// Exact binary fractions survive the `f64 → decimal text → f64` round
/// trip, keeping the unparse check lossless.
const COEFFS: [f64; 6] = [1.0, 1.0, 2.0, -1.0, 0.5, -2.0];

/// Generate one well-formed program from the generator stream.
pub fn gen_program(rng: &mut Rng, cfg: &GenConfig) -> Program {
    let mut space = IndexSpace::new();
    let nr = rng.usize_in(1..cfg.max_ranges + 1);
    let ranges: Vec<RangeId> = (0..nr)
        .map(|q| {
            space.add_range(
                &format!("r{q}"),
                rng.usize_in(cfg.min_extent..cfg.max_extent + 1),
            )
        })
        .collect();
    // Assign each variable a range, then declare grouped by range: the
    // unparser re-emits variables grouped this way, so keeping declaration
    // order identical preserves interned ids across a round trip.
    let nv = rng.usize_in(2..cfg.max_vars + 1);
    let mut var_ranges: Vec<usize> = (0..nv).map(|_| rng.usize_in(0..nr)).collect();
    var_ranges.sort_unstable();
    let vars: Vec<IndexVar> = var_ranges
        .iter()
        .enumerate()
        .map(|(q, &r)| space.add_var(&format!("x{q}"), ranges[r]))
        .collect();

    let mut tensors = TensorTable::new();
    let mut funcs: Vec<FuncEval> = Vec::new();
    let mut stmts: Vec<Assignment> = Vec::new();
    let ns = rng.usize_in(1..cfg.max_stmts + 1);
    for _ in 0..ns {
        let stmt = gen_statement(rng, cfg, &space, &vars, &mut tensors, &mut funcs, &stmts);
        stmts.push(stmt);
    }
    let program = Program {
        space,
        tensors,
        stmts,
    };
    debug_assert!(
        program.validate().is_ok(),
        "generator produced an invalid program: {:?}",
        program.validate()
    );
    program
}

/// Pick `n` distinct variables, order randomized.
fn pick_vars(rng: &mut Rng, vars: &[IndexVar], n: usize) -> Vec<IndexVar> {
    let mut pool: Vec<IndexVar> = vars.to_vec();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n.min(vars.len()) {
        let at = rng.usize_in(0..pool.len());
        out.push(pool.swap_remove(at));
    }
    out
}

fn gen_statement(
    rng: &mut Rng,
    cfg: &GenConfig,
    space: &IndexSpace,
    vars: &[IndexVar],
    tensors: &mut TensorTable,
    funcs: &mut Vec<FuncEval>,
    prior: &[Assignment],
) -> Assignment {
    let nt = rng.usize_in(1..cfg.max_terms + 1);
    let terms: Vec<Product> = (0..nt)
        .map(|ti| {
            let nf = rng.usize_in(1..cfg.max_factors + 1);
            let factors: Vec<Factor> = (0..nf)
                .map(|_| gen_factor(rng, cfg, space, vars, tensors, funcs))
                .collect();
            Product {
                coeff: if ti == 0 {
                    1.0
                } else {
                    COEFFS[rng.usize_in(0..COEFFS.len())]
                },
                factors,
            }
        })
        .collect();

    // LHS ⊆ every term's variable union, so each term's OpMin problem is
    // well-posed (no output index missing from every factor).
    let union_all = terms
        .iter()
        .fold(IndexSet::EMPTY, |s, t| s.union(t.index_set()));
    let inter_all = terms.iter().fold(union_all, |s, t| s.inter(t.index_set()));

    // Accumulate into the previous statement's target when its index set
    // still fits under every term.
    if let Some(prev) = prior.last() {
        if rng.bool_with(cfg.accumulate_prob) && prev.lhs.index_set().is_subset(inter_all) {
            return Assignment {
                lhs: prev.lhs.clone(),
                accumulate: true,
                sum_indices: union_all.minus(prev.lhs.index_set()),
                terms,
            };
        }
    }

    let candidates: Vec<IndexVar> = inter_all.iter().collect();
    let keep = candidates
        .iter()
        .filter(|_| rng.bool_with(0.6))
        .count()
        .min(candidates.len());
    let lhs_vars = pick_vars(rng, &candidates, keep);
    let lhs_set = IndexSet::from_vars(lhs_vars.iter().copied());
    let dims: Vec<RangeId> = lhs_vars.iter().map(|&v| space.range_of(v)).collect();
    let id = tensors.add(TensorDecl::dense(&format!("t{}", tensors.len()), dims));
    Assignment {
        lhs: TensorRef::new(id, lhs_vars),
        accumulate: false,
        sum_indices: union_all.minus(lhs_set),
        terms,
    }
}

fn gen_factor(
    rng: &mut Rng,
    cfg: &GenConfig,
    space: &IndexSpace,
    vars: &[IndexVar],
    tensors: &mut TensorTable,
    funcs: &mut Vec<FuncEval>,
) -> Factor {
    let is_func = rng.bool_with(cfg.func_prob);
    // Ranks 0–3 (0 only for tensors: functions always take ≥ 1 arg).
    let lo = usize::from(is_func);
    let arity = rng.usize_in(lo..4).min(vars.len());
    let idxs = pick_vars(rng, vars, arity);

    if is_func {
        // Reuse a declared function when one matches the argument ranges;
        // same name ⇒ same signature and cost, which the unparser assumes.
        let sig: Vec<RangeId> = idxs.iter().map(|&v| space.range_of(v)).collect();
        let reusable: Vec<&FuncEval> = funcs
            .iter()
            .filter(|f| {
                f.indices
                    .iter()
                    .map(|&v| space.range_of(v))
                    .collect::<Vec<_>>()
                    == sig
            })
            .collect();
        if !reusable.is_empty() && rng.bool_with(0.5) {
            let f = reusable[rng.usize_in(0..reusable.len())];
            return Factor::Func(FuncEval {
                name: f.name.clone(),
                indices: idxs,
                cost_per_eval: f.cost_per_eval,
            });
        }
        let f = FuncEval {
            name: format!("g{}", funcs.len()),
            indices: idxs,
            cost_per_eval: rng.u64_in(1..20),
        };
        funcs.push(f.clone());
        return Factor::Func(f);
    }

    // Reuse an existing tensor (shared intermediate or repeated input) when
    // its dimension ranges can be bound by distinct variables.
    if rng.bool_with(cfg.reuse_prob) && !tensors.is_empty() {
        let ids: Vec<TensorId> = tensors.iter().map(|(id, _)| id).collect();
        let pick = ids[rng.usize_in(0..ids.len())];
        if let Some(bound) = bind_dims(rng, space, vars, &tensors.get(pick).dims) {
            return Factor::Tensor(TensorRef::new(pick, bound));
        }
    }
    let dims: Vec<RangeId> = idxs.iter().map(|&v| space.range_of(v)).collect();
    let id = tensors.add(TensorDecl::dense(&format!("t{}", tensors.len()), dims));
    Factor::Tensor(TensorRef::new(id, idxs))
}

/// Bind each dimension range to a distinct variable of that range, or
/// `None` when the declared shape cannot be covered.
fn bind_dims(
    rng: &mut Rng,
    space: &IndexSpace,
    vars: &[IndexVar],
    dims: &[RangeId],
) -> Option<Vec<IndexVar>> {
    let mut used = IndexSet::EMPTY;
    let mut out = Vec::with_capacity(dims.len());
    for &d in dims {
        let options: Vec<IndexVar> = vars
            .iter()
            .copied()
            .filter(|&v| space.range_of(v) == d && !used.contains(v))
            .collect();
        if options.is_empty() {
            return None;
        }
        let v = options[rng.usize_in(0..options.len())];
        used.insert(v);
        out.push(v);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate() {
        for seed in 0..200u64 {
            let mut rng = Rng::new(seed);
            let p = gen_program(&mut rng, &GenConfig::default());
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!p.stmts.is_empty());
        }
    }

    #[test]
    fn same_seed_same_program() {
        let a = gen_program(&mut Rng::new(99), &GenConfig::extended());
        let b = gen_program(&mut Rng::new(99), &GenConfig::extended());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn lhs_is_subset_of_every_term() {
        for seed in 0..100u64 {
            let mut rng = Rng::new(0x5EED ^ seed);
            let p = gen_program(&mut rng, &GenConfig::extended());
            for stmt in &p.stmts {
                for term in &stmt.terms {
                    assert!(
                        stmt.lhs.index_set().is_subset(term.index_set()),
                        "seed {seed}: LHS not covered by term"
                    );
                }
            }
        }
    }

    #[test]
    fn vars_declared_in_range_order() {
        // The round-trip invariant: variable ids must already be grouped by
        // range in declaration order.
        for seed in 0..100u64 {
            let mut rng = Rng::new(0xAB ^ seed);
            let p = gen_program(&mut rng, &GenConfig::extended());
            let mut last = None;
            for v in p.space.vars() {
                let r = p.space.range_of(v);
                if let Some(prev) = last {
                    assert!(r >= prev, "seed {seed}: vars interleaved across ranges");
                }
                last = Some(r);
            }
        }
    }
}
