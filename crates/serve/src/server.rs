//! The threaded server loop: bounded admission, worker pool, per-request
//! timeout and panic isolation, graceful drain.
//!
//! An acceptor thread polls the listener; each accepted connection either
//! enters the bounded queue or — when the queue is full — is answered
//! `busy` and closed (load shedding).  `workers` threads pop connections
//! and serve their request lines.  Every `run` executes on a detached
//! helper thread under `catch_unwind` with the reply gated by
//! `recv_timeout`, so a request that panics or overruns its wall-clock
//! budget produces a clean one-line reply (`err …` / `timeout`) and the
//! server keeps serving.  A `shutdown` request or SIGTERM stops admission,
//! drains the queue, and lets `ServerHandle::join` return.

use crate::protocol::{escape, parse_request, Request};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// What a `run` request means — injected by the embedding crate so
/// `tce-serve` never depends on the compilation pipeline.
pub trait Handler: Send + Sync + 'static {
    /// Serve one `run` request: compile/execute `program` under `opts`
    /// and return the reply payload, or a one-line diagnostic.
    ///
    /// # Errors
    /// A one-line, user-facing diagnostic (bad option, parse or execution
    /// failure); the server frames it as an `err` reply.
    fn run(&self, program: &str, opts: &[(String, String)]) -> Result<String, String>;

    /// Extra `key=value` pairs appended to `stats` replies (cache hit
    /// rates, shard counters, …).
    fn stats(&self) -> Vec<(String, String)> {
        Vec::new()
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7app0`; port 0 picks a free port.
    pub addr: String,
    /// Worker threads serving connections.  A worker owns one connection
    /// until the client closes it, so this is also the maximum number of
    /// simultaneously *open* connections making progress; up to
    /// `queue_cap` more wait admitted, and beyond that clients get `busy`.
    pub workers: usize,
    /// Admission queue bound; a full queue sheds with a `busy` reply.
    pub queue_cap: usize,
    /// Per-`run` wall-clock budget before a `timeout` reply.
    pub timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            timeout: Duration::from_secs(30),
        }
    }
}

/// A snapshot of the server's counters (the `stats` reply, in struct form).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// `run` requests answered `ok`.
    pub served: u64,
    /// Requests answered `err`.
    pub errors: u64,
    /// Connections refused with `busy` because the queue was full.
    pub shed: u64,
    /// `run` requests that overran the wall-clock budget.
    pub timeouts: u64,
    /// `run` requests whose handler panicked (isolated, answered `err`).
    pub panics: u64,
    /// Connections currently waiting in the admission queue.
    pub queue_depth: u64,
}

/// SIGTERM lands here; the acceptor polls it alongside its own flag.
static TERM: AtomicBool = AtomicBool::new(false);

/// Install a SIGTERM handler that triggers the graceful drain of every
/// server in the process.  Idempotent; a no-op off Unix.
pub fn install_sigterm_drain() {
    #[cfg(unix)]
    {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        extern "C" fn on_term(_sig: i32) {
            TERM.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        ONCE.call_once(|| unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        });
    }
}

struct State {
    handler: Arc<dyn Handler>,
    timeout: Duration,
    queue_cap: usize,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    served: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
}

impl State {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || TERM.load(Ordering::SeqCst)
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            served: self.served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
        }
    }
}

/// A bound-but-not-yet-running server (so tests can learn the port before
/// any thread starts).
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    workers: usize,
}

/// Handle to a running server: inspect counters, request shutdown, join.
pub struct ServerHandle {
    state: Arc<State>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind the listener (port 0 picks a free port).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(config: &ServeConfig, handler: Arc<dyn Handler>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            state: Arc::new(State {
                handler,
                timeout: config.timeout,
                queue_cap: config.queue_cap.max(1),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                served: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
                panics: AtomicU64::new(0),
            }),
            workers: config.workers.max(1),
        })
    }

    /// The bound address (with the OS-chosen port resolved).
    ///
    /// # Panics
    /// Never in practice: a bound listener has a local address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// Start the acceptor and worker threads; returns the control handle.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let mut threads = Vec::with_capacity(self.workers + 1);
        for i in 0..self.workers {
            let state = Arc::clone(&self.state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tce-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker"),
            );
        }
        let state = Arc::clone(&self.state);
        let listener = self.listener;
        threads.push(
            std::thread::Builder::new()
                .name("tce-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &state))
                .expect("spawn acceptor"),
        );
        ServerHandle {
            state: self.state,
            addr,
            threads,
        }
    }
}

impl ServerHandle {
    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot (same numbers as the `stats` request).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// Ask the server to stop admitting, drain the queue, and exit.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue_cv.notify_all();
    }

    /// Wait for the acceptor and all workers to exit; returns the final
    /// counter snapshot (`join` consumes the handle, so this is the only
    /// way to observe post-drain totals).
    ///
    /// # Panics
    /// If a server thread itself panicked (a bug: request panics are
    /// isolated by `catch_unwind`).
    pub fn join(self) -> ServerStats {
        for t in self.threads {
            t.join().expect("server thread panicked");
        }
        self.state.stats()
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    while !state.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Replies are single small writes; without this Nagle +
                // delayed ACK can add ~40 ms to every round trip.
                let _ = stream.set_nodelay(true);
                admit(stream, state);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Stop admitting; wake every worker so they drain the queue and exit.
    state.queue_cv.notify_all();
}

fn admit(mut stream: TcpStream, state: &Arc<State>) {
    let mut queue = state.queue.lock().unwrap_or_else(|e| e.into_inner());
    if queue.len() >= state.queue_cap {
        drop(queue);
        state.shed.fetch_add(1, Ordering::Relaxed);
        tce_trace::counter("serve.shed", 1);
        let _ = stream.write_all(b"busy\n");
        return; // dropping the stream closes the connection
    }
    queue.push_back(stream);
    drop(queue);
    state.queue_cv.notify_one();
}

fn worker_loop(state: &Arc<State>) {
    loop {
        let conn = {
            let mut queue = state.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(c) = queue.pop_front() {
                    break Some(c);
                }
                if state.draining() {
                    break None;
                }
                let (q, _timeout) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        };
        match conn {
            Some(stream) => serve_connection(stream, state),
            None => return,
        }
    }
}

/// How long a drain waits for the rest of a request whose first bytes
/// have already arrived.  An idle connection closes immediately; one with
/// a partial line in flight gets this long to finish the line and receive
/// its reply before the socket closes.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// Serve every request line on one connection until EOF or shutdown.
fn serve_connection(stream: TcpStream, state: &Arc<State>) {
    // A finite read timeout lets the worker notice a drain even when the
    // client holds the connection open without sending anything.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // Retry timed-out reads: `read_line` keeps partial data in `line`,
        // so resuming after a poll tick loses nothing.
        let mut drain_deadline: Option<std::time::Instant> = None;
        let eof = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                Ok(_) => break false,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if state.draining() {
                        // An idle connection closes now, but a request
                        // whose bytes have started arriving was already
                        // admitted — dropping it would lose an in-flight
                        // request, so let it complete within the grace
                        // window and answer it before closing.
                        if line.is_empty() {
                            return;
                        }
                        let deadline = *drain_deadline
                            .get_or_insert_with(|| std::time::Instant::now() + DRAIN_GRACE);
                        if std::time::Instant::now() >= deadline {
                            return;
                        }
                    }
                }
                Err(_) => return,
            }
        };
        if eof {
            return;
        }
        let reply = handle_line(&line, state);
        if writer
            .write_all(format!("{reply}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if state.draining() {
            return;
        }
    }
}

fn handle_line(line: &str, state: &Arc<State>) -> String {
    let _span = tce_trace::span("serve.request");
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            return format!("err {}", escape(&e));
        }
    };
    match request {
        Request::Ping => "ok pong".to_string(),
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue_cv.notify_all();
            "ok bye".to_string()
        }
        Request::Stats => {
            let s = state.stats();
            let mut reply = format!(
                "ok served={} errors={} shed={} timeouts={} panics={} queue_depth={}",
                s.served, s.errors, s.shed, s.timeouts, s.panics, s.queue_depth
            );
            for (k, v) in state.handler.stats() {
                reply.push(' ');
                reply.push_str(&k);
                reply.push('=');
                reply.push_str(&escape(&v));
            }
            reply
        }
        Request::Run { program, opts } => run_with_timeout(program, opts, state),
    }
}

/// Execute one `run` on a helper thread: `catch_unwind` isolates handler
/// panics, `recv_timeout` bounds the wall clock.  On timeout the helper
/// keeps running detached (its result is dropped on send) — the reply
/// slot is gone but the process is unharmed.
fn run_with_timeout(program: String, opts: Vec<(String, String)>, state: &Arc<State>) -> String {
    let _span = tce_trace::span("serve.run");
    let (tx, rx) = mpsc::channel();
    let handler = Arc::clone(&state.handler);
    let spawned = std::thread::Builder::new()
        .name("tce-serve-run".to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| handler.run(&program, &opts)));
            let _ = tx.send(result);
        });
    if spawned.is_err() {
        state.errors.fetch_add(1, Ordering::Relaxed);
        return format!("err {}", escape("cannot spawn request thread"));
    }
    match rx.recv_timeout(state.timeout) {
        Ok(Ok(Ok(payload))) => {
            state.served.fetch_add(1, Ordering::Relaxed);
            format!("ok {}", escape(&payload))
        }
        Ok(Ok(Err(diag))) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            format!("err {}", escape(&diag))
        }
        Ok(Err(panic)) => {
            state.panics.fetch_add(1, Ordering::Relaxed);
            tce_trace::counter("serve.panic", 1);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            format!("err {}", escape(&format!("internal error: {msg}")))
        }
        Err(_) => {
            state.timeouts.fetch_add(1, Ordering::Relaxed);
            tce_trace::counter("serve.timeout", 1);
            "timeout".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::protocol::format_run;

    /// Echoes; sleeps when asked; panics when asked.
    struct TestHandler;
    impl Handler for TestHandler {
        fn run(&self, program: &str, opts: &[(String, String)]) -> Result<String, String> {
            for (k, v) in opts {
                match k.as_str() {
                    "sleep_ms" => {
                        let ms: u64 = v.parse().map_err(|_| "bad sleep_ms".to_string())?;
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    "panic" => panic!("requested panic: {v}"),
                    "fail" => return Err(format!("requested failure: {v}")),
                    _ => {}
                }
            }
            Ok(format!("ran: {program}"))
        }
        fn stats(&self) -> Vec<(String, String)> {
            vec![("custom".to_string(), "42".to_string())]
        }
    }

    fn start(cfg: &ServeConfig) -> (ServerHandle, String) {
        let server = Server::bind(cfg, Arc::new(TestHandler)).unwrap();
        let addr = server.local_addr().to_string();
        (server.spawn(), addr)
    }

    #[test]
    fn serves_run_err_panic_timeout_and_keeps_serving() {
        let cfg = ServeConfig {
            timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        };
        let (handle, addr) = start(&cfg);

        assert_eq!(client::request(&addr, "ping").unwrap(), "ok pong");
        let ok = client::request(&addr, &format_run("two words", &[])).unwrap();
        assert_eq!(ok, format!("ok {}", escape("ran: two words")));
        let err = client::request(&addr, &format_run("x", &[("fail", "why")])).unwrap();
        assert_eq!(err, format!("err {}", escape("requested failure: why")));
        let pan = client::request(&addr, &format_run("x", &[("panic", "boom")])).unwrap();
        assert!(pan.starts_with("err "), "panic reply: {pan}");
        assert!(pan.contains("boom"));
        let to = client::request(&addr, &format_run("x", &[("sleep_ms", "2000")])).unwrap();
        assert_eq!(to, "timeout");
        // Malformed line → clean err, still serving.
        assert!(client::request(&addr, "frobnicate")
            .unwrap()
            .starts_with("err "));
        assert_eq!(client::request(&addr, "ping").unwrap(), "ok pong");

        let stats = client::request(&addr, "stats").unwrap();
        assert!(stats.starts_with("ok "), "{stats}");
        for needle in ["served=1", "timeouts=1", "panics=1", "custom=42"] {
            assert!(stats.contains(needle), "stats missing {needle}: {stats}");
        }
        let s = handle.stats();
        assert_eq!((s.served, s.timeouts, s.panics), (1, 1, 1));
        assert!(s.errors >= 2);

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn shutdown_request_drains_and_joins() {
        let (handle, addr) = start(&ServeConfig::default());
        assert_eq!(client::request(&addr, "shutdown").unwrap(), "ok bye");
        handle.join();
        assert!(
            client::request(&addr, "ping").is_err(),
            "listener still accepting after shutdown"
        );
    }

    #[test]
    fn drain_completes_partially_received_request() {
        use std::io::{Read, Write};
        let (handle, addr) = start(&ServeConfig::default());
        let mut partial = std::net::TcpStream::connect(&addr).unwrap();
        partial.set_nodelay(true).unwrap();
        // First half of a request, no newline: the worker owning this
        // connection is mid-line when the drain starts.
        partial.write_all(b"run program=sl").unwrap();
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(client::request(&addr, "shutdown").unwrap(), "ok bye");
        std::thread::sleep(Duration::from_millis(250));
        // The rest arrives within the grace window: the reply must be
        // complete, not a dropped socket.
        partial.write_all(b"ow\n").unwrap();
        partial
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reply = String::new();
        let mut buf = [0u8; 256];
        loop {
            let n = partial.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            reply.push_str(std::str::from_utf8(&buf[..n]).unwrap());
            if reply.ends_with('\n') {
                break;
            }
        }
        assert_eq!(reply.trim_end(), format!("ok {}", escape("ran: slow")));
        let stats = handle.join();
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn full_queue_sheds_with_busy() {
        // One worker kept busy by a slow request; queue bound 1: the first
        // extra connection queues, the next is shed with `busy`.
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 1,
            timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        };
        let (handle, addr) = start(&cfg);
        let mut slow = client::Client::connect(&addr).unwrap();
        slow.send(&format_run("x", &[("sleep_ms", "800")])).unwrap();
        std::thread::sleep(Duration::from_millis(150)); // worker now busy
        let mut queued = client::Client::connect(&addr).unwrap();
        queued.send("ping").unwrap();
        std::thread::sleep(Duration::from_millis(150)); // fills the queue
                                                        // Probe without sending: a shed connection gets `busy` pushed at
                                                        // accept time, an admitted one would sit silent (short timeout).
        let mut shed_seen = false;
        for _ in 0..50 {
            use std::io::Read;
            let probe = std::net::TcpStream::connect(&addr).unwrap();
            probe
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let mut buf = [0u8; 8];
            let mut probe = probe;
            if matches!(probe.read(&mut buf), Ok(n) if buf[..n].starts_with(b"busy")) {
                shed_seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(shed_seen, "queue never shed");
        assert!(slow.recv().unwrap().starts_with("ok "));
        // A worker owns its connection until the client closes it; free
        // the single worker so it pops the queued connection.
        drop(slow);
        assert_eq!(queued.recv().unwrap(), "ok pong");
        assert!(handle.stats().shed >= 1);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn concurrent_clients_each_get_their_own_answer() {
        let cfg = ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        };
        let (handle, addr) = start(&cfg);
        std::thread::scope(|s| {
            for i in 0..12 {
                let addr = addr.clone();
                s.spawn(move || {
                    let prog = format!("prog-{i}");
                    let reply = client::request(&addr, &format_run(&prog, &[])).unwrap();
                    assert_eq!(reply, format!("ok {}", escape(&format!("ran: {prog}"))));
                });
            }
        });
        assert_eq!(handle.stats().served, 12);
        handle.shutdown();
        handle.join();
    }
}
