//! Direct (array-at-a-time) execution of operator trees.
//!
//! Evaluates a formula sequence bottom-up, materializing every
//! intermediate at full size — the execution model of the *unfused*
//! operation-minimal form.  Every contraction node runs on the packed
//! GETT engine (`tce_tensor::contract_gett`): plans are pulled from the
//! process-wide cache and the macro-loops parallelize over disjoint
//! output tiles on the shared worker pool, so results are bitwise
//! identical at every thread count.  Serves both as a second semantic
//! oracle for the loop-program interpreter and as the default executor
//! for the pipeline and the benchmark harnesses.

use crate::error::ExecError;
use std::collections::HashMap;
use tce_ir::{IndexSpace, IndexVar, Leaf, NodeId, OpKind, OpTree, TensorId};
use tce_par::parallel_chunks_mut;
use tce_tensor::{BinaryContraction, IntegralFn, Tensor};

/// Knobs threaded through every execution entry point.
///
/// The default thread count honours the `TCE_THREADS` environment
/// variable and otherwise uses the machine's available parallelism
/// (see `tce_par::default_threads`).  Thread count never affects
/// results: every parallel kernel partitions output disjointly.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for contraction kernels, permutes and function
    /// materialization.
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            threads: tce_par::default_threads(),
        }
    }
}

impl ExecOptions {
    /// Run everything on the calling thread.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Use exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

/// [`execute_tree`] with an [`ExecOptions`] bundle.
pub fn execute_tree_opts(
    tree: &OpTree,
    space: &IndexSpace,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    opts: &ExecOptions,
) -> Result<Tensor, ExecError> {
    execute_tree(tree, space, inputs, funcs, opts.threads)
}

/// Evaluate `tree` on the sharded distributed machine following a §7
/// distribution plan: tensors live as per-rank shard buffers over
/// `machine`'s grid, contractions run rank-parallel over their γ-local
/// subspaces, layout changes move as block transfers, and distributed
/// partial sums are combined by a reduction tree.  Returns the assembled
/// root value alongside measured-vs-modeled communication volumes (see
/// [`tce_dist::ShardExecReport`]).
///
/// # Errors
/// A plan that does not cover the tree or a missing binding surfaces as an
/// [`ExecError`] (converted from [`tce_dist::DistError`]) instead of a
/// panic.
pub fn execute_tree_distributed(
    tree: &OpTree,
    space: &IndexSpace,
    plan: &tce_dist::DistPlan,
    machine: &tce_dist::Machine,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    opts: &ExecOptions,
) -> Result<tce_dist::ShardExecReport, ExecError> {
    Ok(tce_dist::execute_plan_sharded(
        tree,
        space,
        plan,
        machine,
        inputs,
        funcs,
        opts.threads,
    )?)
}

/// Evaluate `tree` bottom-up; returns the root value.
///
/// `threads = 1` runs sequentially; larger values parallelize function
/// materialization and the contraction kernels' output-tile loops.
/// Missing bindings and shape mismatches return an [`ExecError`].
pub fn execute_tree(
    tree: &OpTree,
    space: &IndexSpace,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    threads: usize,
) -> Result<Tensor, ExecError> {
    let _span = tce_trace::span("exec.tree");
    let traced = tce_trace::enabled();
    let bytes_of = |t: &Tensor| (t.len() * std::mem::size_of::<f64>()) as u64;
    let mut values: Vec<Option<Tensor>> = vec![None; tree.len()];
    for id in tree.postorder() {
        let value = match &tree.node(id).kind {
            OpKind::Leaf(Leaf::Input { tensor, indices }) => {
                let t = inputs.get(tensor).ok_or_else(|| ExecError::MissingInput {
                    name: format!("#{}", tensor.0),
                })?;
                let expect: Vec<usize> = indices.iter().map(|&v| space.extent(v)).collect();
                if t.shape() != &expect[..] {
                    return Err(ExecError::InputShapeMismatch {
                        name: format!("#{}", tensor.0),
                        expect,
                        got: t.shape().to_vec(),
                    });
                }
                (*t).clone()
            }
            OpKind::Leaf(Leaf::One) => Tensor::from_elem(&[], 1.0),
            OpKind::Leaf(Leaf::Func { name, indices, .. }) => {
                let f = funcs
                    .get(name)
                    .ok_or_else(|| ExecError::MissingFunction { name: name.clone() })?;
                materialize_func(f, indices, space, threads)
            }
            OpKind::Contract { left, right } => {
                let lv = values[left.0 as usize].as_ref().expect("postorder");
                let rv = values[right.0 as usize].as_ref().expect("postorder");
                let out = contract_node(tree, space, id, *left, *right, lv, rv, threads);
                // Each node has exactly one parent, so operand values are
                // dead as soon as the contraction finishes; dropping them
                // here keeps the materialized high-water mark at the live
                // set rather than the whole formula sequence.
                for child in [*left, *right] {
                    if let Some(t) = values[child.0 as usize].take() {
                        if traced {
                            tce_trace::mem_free(bytes_of(&t));
                        }
                    }
                }
                out
            }
        };
        if traced {
            tce_trace::mem_alloc(bytes_of(&value));
        }
        values[id.0 as usize] = Some(value);
    }
    let root = values[tree.root.0 as usize].take().expect("root value");
    if traced {
        tce_trace::mem_free(bytes_of(&root));
    }
    Ok(root)
}

/// Materialize a function leaf over its full index space, in parallel over
/// the leading dimension blocks.
fn materialize_func(
    f: &IntegralFn,
    indices: &[IndexVar],
    space: &IndexSpace,
    threads: usize,
) -> Tensor {
    let shape: Vec<usize> = indices.iter().map(|&v| space.extent(v)).collect();
    let mut out = Tensor::zeros(&shape);
    let total = out.len();
    let rank = shape.len();
    let shape_ref = &shape;
    parallel_chunks_mut(out.data_mut(), threads, |start, chunk| {
        let mut idx = vec![0usize; rank];
        // Decode the starting flat offset.
        let mut rem = start;
        for d in (0..rank).rev() {
            idx[d] = rem % shape_ref[d];
            rem /= shape_ref[d];
        }
        for x in chunk.iter_mut() {
            *x = f.eval(&idx);
            Tensor::advance(&mut idx, shape_ref);
        }
        let _ = total;
    });
    out
}

/// Contract two materialized child values into the node's result on the
/// packed GETT kernel (plan-cached, parallel over output tiles).
#[allow(clippy::too_many_arguments)]
fn contract_node(
    tree: &OpTree,
    space: &IndexSpace,
    id: NodeId,
    left: NodeId,
    right: NodeId,
    lv: &Tensor,
    rv: &Tensor,
    threads: usize,
) -> Tensor {
    let dims_of = |n: NodeId| -> Vec<IndexVar> {
        match &tree.node(n).kind {
            OpKind::Leaf(Leaf::Input { indices, .. })
            | OpKind::Leaf(Leaf::Func { indices, .. }) => indices.clone(),
            _ => tree.node(n).indices.iter().collect(),
        }
    };
    let spec = BinaryContraction {
        a: dims_of(left),
        b: dims_of(right),
        out: tree.node(id).indices.iter().collect(),
    };
    tce_tensor::contract_gett(&spec, space, lv, rv, threads)
}

/// Parallel contraction of two tensors (historical name; now a thin
/// wrapper over the GETT engine, which packs operands directly from
/// their strided layouts instead of permuting them into matrix form).
pub fn parallel_contract(
    spec: &BinaryContraction,
    space: &IndexSpace,
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Tensor {
    tce_tensor::contract_gett(spec, space, a, b, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{IndexSet, TensorDecl, TensorTable};

    #[test]
    fn tree_execution_matches_interpreter_path() {
        // Same Fig 1 example as interp tests: execute_tree vs einsum.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 3);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));

        let shape = [3usize; 4];
        let va = Tensor::random(&shape, 11);
        let vb = Tensor::random(&shape, 12);
        let vc = Tensor::random(&shape, 13);
        let vd = Tensor::random(&shape, 14);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        inputs.insert(tb, &vb);
        inputs.insert(tc, &vc);
        inputs.insert(td, &vd);

        let seq = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap();
        let par = execute_tree(&tree, &space, &inputs, &HashMap::new(), 4).unwrap();
        assert!(seq.approx_eq(&par, 1e-9));

        // Reference via einsum.
        let spec = tce_tensor::EinsumSpec::new(
            vec![a, b, i, j],
            vec![
                vec![a, c, i, k],
                vec![b, e, f, l],
                vec![d, f, j, k],
                vec![c, d, e, l],
            ],
            IndexSet::from_vars([c, d, e, f, k, l]),
        )
        .unwrap();
        let expect = spec.eval(&space, &[&va, &vb, &vc, &vd]);
        assert!(seq.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn parallel_contract_matches_sequential() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 9);
        let i = space.add_var("i", r);
        let j = space.add_var("j", r);
        let k = space.add_var("k", r);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let a = Tensor::random(&[9, 9], 21);
        let b = Tensor::random(&[9, 9], 22);
        let seq = tce_tensor::contract_gemm(&spec, &space, &a, &b);
        let par = parallel_contract(&spec, &space, &a, &b, 4);
        assert!(seq.approx_eq(&par, 1e-10));
    }

    #[test]
    fn func_materialization_parallel_matches_sequential() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 7);
        let c = space.add_var("c", r);
        let e = space.add_var("e", r);
        let f = IntegralFn::new(50, 5);
        let seq = materialize_func(&f, &[c, e], &space, 1);
        let par = materialize_func(&f, &[c, e], &space, 4);
        assert!(seq.approx_eq(&par, 0.0));
        assert_eq!(seq.get(&[2, 3]), f.eval(&[2, 3]));
    }

    #[test]
    fn one_leaf_reduction() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 5);
        let i = space.add_var("i", r);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![r]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![i]);
        let one = tree.leaf_one();
        tree.contract(la, one, IndexSet::EMPTY);
        let va = Tensor::random(&[5], 31);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        let out = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap();
        assert!((out.get(&[]) - va.sum()).abs() < 1e-12);
    }

    #[test]
    fn missing_bindings_are_typed_errors() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 4);
        let i = space.add_var("i", r);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![r]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![i]);
        let lf = tree.leaf_func("g", vec![i], 10);
        tree.contract(la, lf, IndexSet::EMPTY);

        // No input binding.
        let err = execute_tree(&tree, &space, &HashMap::new(), &HashMap::new(), 1).unwrap_err();
        assert!(
            matches!(err, crate::ExecError::MissingInput { .. }),
            "{err}"
        );

        // Input bound, function missing.
        let va = Tensor::random(&[4], 1);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        let err = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap_err();
        assert!(
            matches!(err, crate::ExecError::MissingFunction { ref name } if name == "g"),
            "{err}"
        );

        // Wrong input shape.
        let bad = Tensor::random(&[5], 1);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &bad);
        let err = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap_err();
        assert!(
            matches!(err, crate::ExecError::InputShapeMismatch { .. }),
            "{err}"
        );
    }
}
