//! E4 — paper Fig. 3: full fusion via redundant computation.
//!
//! Claims reproduced: with redundant loops added around the integral
//! producers, all temporaries reduce to scalars (space table all 1) and
//! the integral time grows to `C_i·V⁵·O` — "increasing the operation
//! count by three orders of magnitude over the unfused form" at paper
//! scale (factor `V²/ O·…` ≈ `(V/B)²` with `B = 1`).  The space-time DP
//! *discovers* this configuration as the minimum-memory frontier point.

use std::collections::HashMap;
use tce_bench::tables::{fmt_u, Table};
use tce_core::exec::{Interpreter, NoSink};
use tce_core::scenarios::A3AScenario;
use tce_core::spacetime::spacetime_dp;

fn main() {
    println!("E4: Fig. 3 — full fusion with redundant computation\n");

    // Paper scale, analytic: factor over Fig 2 integral time.
    let paper = A3AScenario::new(5000, 100, 1000);
    let fig2 = paper.fig2_table();
    let fig3 = paper.fig4_table(1);
    let factor = fig3[1].2 / fig2[1].2;
    println!(
        "paper scale: integral time C_i·V³·O → C_i·V⁵·O, factor V² = {}",
        fmt_u(factor)
    );
    assert_eq!(factor, (5000u128).pow(2));
    println!("(the paper: \"increasing the operation count by three orders of\n magnitude over the unfused form\" — with their B² reuse ≈ C_i this is\n the ×10⁶-area regime; the structural factor is V².)\n");

    // Reduced scale: the DP finds the all-scalar configuration.
    let sc = A3AScenario::new(6, 3, 200);
    let front = spacetime_dp(&sc.tree, &sc.space, usize::MAX).unwrap();
    let min = front.min_mem().unwrap();
    println!(
        "space-time DP minimum-memory point at V = 6, O = 3: mem = {} elements",
        min.mem
    );
    assert_eq!(min.mem, 4, "X, T1, T2, Y all scalars");
    let cfg = &min.tag;
    assert!(cfg.array_indices(&sc.tree, sc.t1_node).is_empty());
    assert!(cfg.array_indices(&sc.tree, sc.t2_node).is_empty());
    assert!(cfg.array_indices(&sc.tree, sc.y_node).is_empty());
    assert!(cfg.array_indices(&sc.tree, sc.x_node).is_empty());
    println!(
        "redundant (recomputation) indices: {}",
        sc.space.set_to_string(cfg.recomputation_indices())
    );
    assert_eq!(cfg.redundant[sc.t1_node.0 as usize].len(), 2);
    assert_eq!(cfg.redundant[sc.t2_node.0 as usize].len(), 2);

    // Analytic table vs measured execution of the B = 1 program.
    let table = sc.fig4_table(1);
    let mut t = Table::new(&["array", "space", "time"]);
    for (name, space, time) in &table {
        t.row(&[name.to_string(), fmt_u(*space), fmt_u(*time)]);
    }
    println!("\nFig. 3 table at V = 6, O = 3, C_i = 200:\n{}", t.render());

    let p = sc.fig4_program(1);
    let amps = sc.amplitudes(2);
    let mut inputs = HashMap::new();
    inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
    let funcs = sc.functions();
    let mut interp = Interpreter::new(&p, &sc.space, &inputs, &funcs).unwrap();
    interp.run(&mut NoSink);
    println!(
        "measured: temp elements {} (model {}), integral flops {} (model {})",
        fmt_u(interp.allocated_temp_elements()),
        fmt_u(table[..4].iter().map(|r| r.1).sum::<u128>() + 1),
        fmt_u(interp.stats.func_flops),
        fmt_u(table[1].2 + table[2].2),
    );
    assert_eq!(interp.stats.func_flops, table[1].2 + table[2].2);
    let expect = sc.reference_energy(&amps);
    assert!((interp.output().get(&[]) - expect).abs() < 1e-9 * expect.abs().max(1.0));
    println!("values agree with the unfused reference\nE4 OK");
}
