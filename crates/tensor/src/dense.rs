//! Dense multi-dimensional arrays with row-major strides.
//!
//! This is the storage substrate the synthesized programs run on.  It is
//! deliberately simple — contiguous `Vec<f64>` plus a shape/stride header —
//! because the framework's interest is in *which* loops run, not in exotic
//! layouts.  Higher-level kernels ([`crate::contract`], [`crate::einsum`])
//! and the loop-IR interpreter in `tce-exec` build on the indexing methods
//! here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major tensor of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

impl Tensor {
    /// A tensor of zeros. A rank-0 tensor (empty shape) is a scalar with one
    /// element.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product::<usize>().max(1);
        Self {
            strides: row_major_strides(shape),
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// A tensor filled with `value`.
    pub fn from_elem(shape: &[usize], value: f64) -> Self {
        let mut t = Self::zeros(shape);
        t.data.fill(value);
        t
    }

    /// Build from a function of the multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut t = Self::zeros(shape);
        let mut idx = vec![0usize; shape.len()];
        for off in 0..t.data.len() {
            t.data[off] = f(&idx);
            Self::advance(&mut idx, shape);
        }
        t
    }

    /// Deterministic pseudo-random tensor in `[-1, 1)` for tests and
    /// benchmarks.
    pub fn random(shape: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Self::zeros(shape);
        for x in &mut t.data {
            *x = rng.gen_range(-1.0..1.0);
        }
        t
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>().max(1),
            "buffer length does not match shape"
        );
        Self {
            strides: row_major_strides(shape),
            shape: shape.to_vec(),
            data,
        }
    }

    /// Shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Row-major strides.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements (1 for a scalar).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false — tensors hold at least one element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    /// Debug-asserts the index is within bounds; the final slice access is
    /// always bounds-checked.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.shape[d], "index {i} out of bounds in dim {d}");
            off += i * self.strides[d];
        }
        off
    }

    /// Element read.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Element accumulate.
    #[inline]
    pub fn add_assign_at(&mut self, idx: &[usize], v: f64) {
        let off = self.offset(idx);
        self.data[off] += v;
    }

    /// Reset all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Return a copy with dimensions permuted: `out[i…] = self[perm(i…)]`,
    /// where output dimension `d` is input dimension `perm[d]`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation length mismatch");
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            assert!(p < self.rank() && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let mut out = Tensor::zeros(&new_shape);
        let mut idx = vec![0usize; new_shape.len()];
        let mut src = vec![0usize; new_shape.len()];
        for off in 0..out.data.len() {
            for (d, &p) in perm.iter().enumerate() {
                src[p] = idx[d];
            }
            out.data[off] = self.get(&src);
            Self::advance(&mut idx, &new_shape);
        }
        out
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Approximate equality within `tol` (elementwise absolute).
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// `self += alpha · other` (shapes must match).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Advance a row-major odometer; wraps to all-zeros after the last
    /// index. Public so kernels and the interpreter share one implementation.
    #[inline]
    pub fn advance(idx: &mut [usize], shape: &[usize]) {
        for d in (0..shape.len()).rev() {
            idx[d] += 1;
            if idx[d] < shape[d] {
                return;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_scalar() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.strides(), &[3, 1]);
        let s = Tensor::zeros(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[]), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.get(&[1, 2, 3]), 7.5);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
        t.add_assign_at(&[1, 2, 3], 0.5);
        assert_eq!(t.get(&[1, 2, 3]), 8.0);
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f64);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.get(&[1, 2]), 5.0);
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(&[3, 3], 42);
        let b = Tensor::random(&[3, 3], 42);
        let c = Tensor::random(&[3, 3], 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
        assert!(a.data().iter().all(|x| (-1.0..1.0).contains(x)));
    }

    #[test]
    fn permute_transpose() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        let tt = t.permute(&[1, 0]);
        assert_eq!(tt.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get(&[i, j]), tt.get(&[j, i]));
            }
        }
    }

    #[test]
    fn permute_rank3_cycle() {
        let t = Tensor::random(&[2, 3, 4], 7);
        let p = t.permute(&[2, 0, 1]); // out[x,y,z] = in[y,z,x]
        assert_eq!(p.shape(), &[4, 2, 3]);
        for x in 0..4 {
            for y in 0..2 {
                for z in 0..3 {
                    assert_eq!(p.get(&[x, y, z]), t.get(&[y, z, x]));
                }
            }
        }
        // Round-trip through the inverse permutation.
        let back = p.permute(&[1, 2, 0]);
        assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn permute_rejects_duplicates() {
        Tensor::zeros(&[2, 2]).permute(&[0, 0]);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = Tensor::from_elem(&[2, 2], 1.0);
        let mut b = a.clone();
        b.set(&[1, 1], 1.1);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-12);
        assert!(a.approx_eq(&b, 0.2));
        assert!(!a.approx_eq(&b, 0.05));
        assert!(!a.approx_eq(&Tensor::zeros(&[2, 3]), 1.0));
    }

    #[test]
    fn advance_odometer() {
        let shape = [2, 2];
        let mut idx = vec![0, 0];
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(idx.clone());
            Tensor::advance(&mut idx, &shape);
        }
        assert_eq!(seen, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(idx, vec![0, 0]); // wrapped
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_elem(&[2, 2], 1.0);
        let b = Tensor::from_fn(&[2, 2], |i| (i[0] * 2 + i[1]) as f64);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn axpy_rejects_shape_mismatch() {
        let mut a = Tensor::zeros(&[2]);
        a.axpy(1.0, &Tensor::zeros(&[3]));
    }

    #[test]
    fn sum_and_fill() {
        let mut t = Tensor::from_elem(&[3, 3], 2.0);
        assert_eq!(t.sum(), 18.0);
        t.fill_zero();
        assert_eq!(t.sum(), 0.0);
    }
}
