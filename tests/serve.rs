//! End-to-end tests of the compile-and-execute service: concurrent
//! clients must get bitwise-identical answers to the one-shot `tce`
//! binary, the shed/timeout/panic paths must return clean one-line
//! replies and leave the server serving, `stats` must reflect the
//! traffic, and `shutdown` must drain gracefully.

use std::process::Command;
use std::sync::Arc;
use std::time::Duration;
use tce_core::serve::PipelineHandler;
use tce_serve::client;
use tce_serve::protocol::{format_run, unescape};
use tce_serve::{ServeConfig, Server, ServerHandle};

/// These tests are registered from `crates/core`, so the examples live
/// two levels up.
fn spec_path(name: &str) -> String {
    format!("{}/../../examples/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn start(cfg: &ServeConfig) -> (ServerHandle, String) {
    let server = Server::bind(cfg, Arc::new(PipelineHandler::default())).unwrap();
    let addr = server.local_addr().to_string();
    (server.spawn(), addr)
}

/// The result block the one-shot CLI prints for `--execute`: the
/// per-tensor `  NAME: shape …, |sum| = …` lines plus the final `OK` —
/// exactly what a served `run` returns as its payload.
fn cli_result_block(spec: &str, seed: u64, threads: usize) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_tce"))
        .args([
            spec,
            "--execute",
            "--seed",
            &seed.to_string(),
            "--threads",
            &threads.to_string(),
        ])
        .output()
        .expect("spawn tce");
    assert!(out.status.success(), "one-shot tce failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut block: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("  ") && l.contains("|sum|"))
        .collect();
    block.push("OK");
    block.join("\n")
}

#[test]
fn eight_concurrent_clients_match_the_one_shot_cli_bitwise() {
    let spec = spec_path("matrix_chain.tce");
    let program = std::fs::read_to_string(&spec).unwrap();
    let expect = cli_result_block(&spec, 7, 2);
    assert!(expect.contains("|sum|"), "CLI block empty:\n{expect}");

    let cfg = ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    };
    let (handle, addr) = start(&cfg);
    // 8 in-flight clients, same request: every reply must unescape to the
    // identical bytes the cold CLI process printed.
    std::thread::scope(|s| {
        for _ in 0..8 {
            let (addr, program, expect) = (addr.clone(), program.clone(), expect.clone());
            s.spawn(move || {
                let line = format_run(&program, &[("seed", "7"), ("threads", "2")]);
                let reply = client::request(&addr, &line).unwrap();
                let payload = reply.strip_prefix("ok ").expect(&reply).to_string();
                assert_eq!(unescape(&payload).unwrap(), expect);
            });
        }
    });
    let stats = handle.stats();
    assert_eq!(stats.served, 8);
    assert_eq!(stats.panics, 0);

    // The 8 identical requests collapsed onto the response memo (the
    // shard lock is held across the fill, so concurrent same-key misses
    // dedup): one executed, seven got the memoized reply, and the
    // program was compiled exactly once.
    let reply = client::request(&addr, "stats").unwrap();
    assert!(reply.contains("resp_misses=1"), "{reply}");
    assert!(reply.contains("resp_hits=7"), "{reply}");
    assert!(reply.contains("synth_misses=1"), "{reply}");

    handle.shutdown();
    handle.join();
}

#[test]
fn error_paths_reply_cleanly_and_server_keeps_serving() {
    let cfg = ServeConfig {
        workers: 2,
        timeout: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let (handle, addr) = start(&cfg);

    // Malformed request line.
    let reply = client::request(&addr, "run this is not key=value").unwrap();
    assert!(reply.starts_with("err "), "{reply}");
    // Program that does not parse.
    let reply = client::request(&addr, &format_run("range N = ;", &[])).unwrap();
    assert!(reply.starts_with("err "), "{reply}");
    // Bad numeric option.
    let reply = client::request(&addr, &format_run("x", &[("threads", "banana")])).unwrap();
    assert!(reply.starts_with("err "), "{reply}");
    // Oversized work against the 1 ms budget: wall-clock timeout.
    let big = "
        range N = 160;
        index i, j, k, l : N;
        tensor A(N, N); tensor B(N, N); tensor C(N, N); tensor OUT(N, N);
        OUT[i,l] = sum[j,k] A[i,j] * B[j,k] * C[k,l];
    ";
    let reply = client::request(&addr, &format_run(big, &[])).unwrap();
    assert_eq!(reply, "timeout");

    // After all of that the server still answers.
    assert_eq!(client::request(&addr, "ping").unwrap(), "ok pong");
    let stats = handle.stats();
    assert!(stats.errors >= 3, "errors {}", stats.errors);
    assert_eq!(stats.timeouts, 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn full_queue_sheds_and_recovers() {
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let (handle, addr) = start(&cfg);

    // Occupy the single worker with a slow request and fill the queue.
    let slow_src = "
        range N = 128;
        index i, j, k, l : N;
        tensor A(N, N); tensor B(N, N); tensor C(N, N); tensor OUT(N, N);
        OUT[i,l] = sum[j,k] A[i,j] * B[j,k] * C[k,l];
    ";
    let mut slow = client::Client::connect(&addr).unwrap();
    slow.send(&format_run(slow_src, &[])).unwrap();
    // Wait until the acceptor has picked the slow connection up (it polls
    // every few ms) and the worker has popped it, else the next
    // connection is the one that fills (or overflows) the queue.
    std::thread::sleep(Duration::from_millis(300));
    for _ in 0..100 {
        if handle.stats().queue_depth == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut queued = client::Client::connect(&addr).unwrap();
    queued.send("ping").unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Probe without sending: a shed connection gets `busy` at accept time.
    let mut shed_seen = false;
    for _ in 0..50 {
        use std::io::Read;
        let mut probe = std::net::TcpStream::connect(&addr).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut buf = [0u8; 8];
        if matches!(probe.read(&mut buf), Ok(n) if buf[..n].starts_with(b"busy")) {
            shed_seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(shed_seen, "full queue never answered busy");

    // The slow request completes; freeing its connection lets the worker
    // pop the queued one — nothing was lost to the shedding.
    assert!(slow.recv().unwrap().starts_with("ok "));
    drop(slow);
    assert_eq!(queued.recv().unwrap(), "ok pong");
    assert!(handle.stats().shed >= 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_request_drains_and_listener_closes() {
    let (handle, addr) = start(&ServeConfig::default());
    assert_eq!(client::request(&addr, "ping").unwrap(), "ok pong");
    assert_eq!(client::request(&addr, "shutdown").unwrap(), "ok bye");
    handle.join();
    // Give the OS a beat, then the port must refuse (or reset) clients.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        client::request(&addr, "ping").is_err(),
        "listener still accepting after drain"
    );
}

#[test]
fn slow_request_racing_shutdown_gets_a_complete_reply() {
    use std::io::{Read, Write};
    let spec = spec_path("matrix_chain.tce");
    let program = std::fs::read_to_string(&spec).unwrap();
    let expect = cli_result_block(&spec, 11, 1);

    let (handle, addr) = start(&ServeConfig::default());
    // Send only the first half of the request line, so the worker that
    // owns this connection is mid-read when the drain begins.
    let line = format!("{}\n", format_run(&program, &[("seed", "11")]));
    let (head, tail) = line.split_at(line.len() / 2);
    let mut racer = std::net::TcpStream::connect(&addr).unwrap();
    racer.set_nodelay(true).unwrap();
    racer.write_all(head.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(client::request(&addr, "shutdown").unwrap(), "ok bye");
    std::thread::sleep(Duration::from_millis(250));
    // The rest of the request arrives during the drain: it must still be
    // compiled, executed, and answered in full before the socket closes.
    racer.write_all(tail.as_bytes()).unwrap();
    racer
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reply = String::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = racer.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        reply.push_str(std::str::from_utf8(&buf[..n]).unwrap());
        if reply.ends_with('\n') {
            break;
        }
    }
    let payload = reply
        .trim_end()
        .strip_prefix("ok ")
        .unwrap_or_else(|| panic!("drained reply not ok: {reply:?}"))
        .to_string();
    assert_eq!(unescape(&payload).unwrap(), expect);
    let stats = handle.join();
    assert_eq!(stats.served, 1);
}

#[test]
fn serve_cli_flags_are_audited() {
    for args in [
        vec!["serve", "--workers", "0"],
        vec!["serve", "--workers", "banana"],
        vec!["serve", "--queue", "0"],
        vec!["serve", "--timeout-ms", "0"],
        vec!["serve", "--timeout-ms", "soon"],
        vec!["serve", "--bogus"],
        vec!["serve", "--addr"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_tce"))
            .args(&args)
            .output()
            .expect("spawn tce");
        assert!(!out.status.success(), "tce {args:?} should exit nonzero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !stderr.is_empty() && !stderr.contains("panicked"),
            "{args:?}: {stderr}"
        );
    }
}
