//! # tce-loops — imperfectly-nested loop IR and analyses
//!
//! The concrete output representation of the synthesis system: loop nests
//! with init/accumulate/function-evaluation statements ([`ir`]), builders
//! from operator trees ([`build`]), the paper-style pseudocode printer
//! ([`print`]) and the static analyses (memory, operations,
//! distinct-elements-accessed) that power the cost models ([`analysis`]).
//!
//! ```
//! use tce_ir::{IndexSet, IndexSpace, OpTree, TensorDecl, TensorTable};
//! use tce_loops::{op_counts, pretty, unfused_program};
//!
//! let mut sp = IndexSpace::new();
//! let n = sp.add_range("N", 8);
//! let i = sp.add_var("i", n);
//! let j = sp.add_var("j", n);
//! let k = sp.add_var("k", n);
//! let mut tab = TensorTable::new();
//! let a = tab.add(TensorDecl::dense("A", vec![n, n]));
//! let b = tab.add(TensorDecl::dense("B", vec![n, n]));
//! let mut tree = OpTree::new();
//! let la = tree.leaf_input(a, vec![i, k]);
//! let lb = tree.leaf_input(b, vec![k, j]);
//! tree.contract(la, lb, IndexSet::from_vars([i, j]));
//! let built = unfused_program(&tree, &sp, &tab, "C");
//! assert!(pretty(&built.program).contains("C[i,j] += A[i,k] * B[k,j]"));
//! assert_eq!(op_counts(&built.program, &sp).contraction_flops, 2 * 512);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod build;
pub mod ir;
pub mod print;

pub use analysis::{
    distinct_accesses, memory_report, op_counts, total_distinct_accesses, MemoryReport, OpCounts,
};
pub use build::{canonical_dims, nest, unfused_program, BuiltProgram};
pub use ir::{
    ARef, ArrayId, ArrayInfo, ArrayKind, FuncId, FuncInfo, LoopProgram, LoopVarId, LoopVarInfo,
    Stmt, Sub, VarRange,
};
pub use print::pretty;
