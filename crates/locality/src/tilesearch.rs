//! Loop blocking and the doubling tile-size search (paper §6).
//!
//! "Using this cost model, we can compute the total memory access cost for
//! given tile sizes.  The procedure is repeated for different sets of tile
//! sizes … In the end the lowest possible cost is chosen, thus determining
//! the optimal tile sizes.  We define our tile size search space in the
//! following way: if `Nᵢ` is a loop range, we use a tile size starting
//! from `Tᵢ = 1` (no tiling), and successively increasing `Tᵢ` by doubling
//! it until it reaches `Nᵢ`."
//!
//! Blocking is applied to perfectly nested contraction loops: the tiled
//! loops' tile counters move outermost (in original order) and the
//! intra-tile loops replace the originals, with every subscript rewritten
//! to `tile·B + intra`.  The transformation is semantics-preserving
//! (verified against the interpreter in `tce-exec` integration tests).

use crate::model::access_cost;
use std::collections::HashMap;
use tce_ir::IndexSpace;
use tce_loops::{ARef, LoopProgram, LoopVarId, Stmt, Sub, VarRange};

/// A perfect nest found in a program: the position of its top-level
/// statement and the loop variables outermost-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfectNest {
    /// Index into `LoopProgram::body`.
    pub body_index: usize,
    /// Loop variables, outermost first.
    pub vars: Vec<LoopVarId>,
}

/// Find the maximal perfect nests among the program's top-level
/// statements (a chain of single-statement loops ending in non-loop
/// statements).
pub fn perfect_nests(p: &LoopProgram) -> Vec<PerfectNest> {
    let mut out = Vec::new();
    for (i, s) in p.body.iter().enumerate() {
        let mut vars = Vec::new();
        let mut cur = s;
        while let Stmt::Loop { var, body } = cur {
            vars.push(*var);
            if body.len() == 1 {
                cur = &body[0];
            } else {
                break;
            }
        }
        if !vars.is_empty() && !matches!(cur, Stmt::Loop { .. }) {
            out.push(PerfectNest {
                body_index: i,
                vars,
            });
        }
    }
    out
}

/// Block the perfect nest at `nest.body_index` with the given tile sizes
/// (`var → B`; absent or `B = 1` or `B = extent` leaves a loop untiled).
/// Returns the transformed program.
///
/// # Panics
/// Panics if the statement is not a perfect nest over `nest.vars` or a
/// tiled variable's range is not `Full`.
pub fn tile_nest(
    p: &LoopProgram,
    space: &IndexSpace,
    nest: &PerfectNest,
    blocks: &HashMap<LoopVarId, usize>,
) -> LoopProgram {
    let mut out = p.clone();

    // Peel the nest to its innermost body.
    let mut inner: Vec<Stmt> = {
        let mut cur = p.body[nest.body_index].clone();
        let mut depth = 0;
        loop {
            match cur {
                Stmt::Loop { var, mut body } => {
                    assert_eq!(var, nest.vars[depth], "nest shape mismatch");
                    depth += 1;
                    if depth == nest.vars.len() {
                        break body;
                    }
                    assert_eq!(body.len(), 1, "not a perfect nest");
                    cur = body.pop().unwrap();
                }
                _ => panic!("not a loop nest"),
            }
        }
    };

    // Declare tile/intra vars and build the substitution map.
    let mut subst: HashMap<LoopVarId, Sub> = HashMap::new();
    let mut tile_loops: Vec<LoopVarId> = Vec::new();
    let mut inner_loops: Vec<LoopVarId> = Vec::new();
    for &v in &nest.vars {
        let b = blocks.get(&v).copied().unwrap_or(1);
        let src = match out.var(v).range {
            VarRange::Full(iv) => iv,
            _ => panic!("can only tile Full-range loops"),
        };
        let extent = space.extent(src);
        if b <= 1 || b >= extent {
            inner_loops.push(v);
            continue;
        }
        let name = out.var(v).name.clone();
        let vt = out.add_var(
            &format!("{name}_t"),
            VarRange::Tile {
                index: src,
                block: b,
            },
        );
        let vi = out.add_var(
            &format!("{name}_i"),
            VarRange::Intra {
                index: src,
                block: b,
            },
        );
        subst.insert(
            v,
            Sub::Tiled {
                tile: vt,
                intra: vi,
                block: b,
            },
        );
        tile_loops.push(vt);
        inner_loops.push(vi);
    }

    // Rewrite subscripts in the innermost statements.
    fn rewrite_sub(s: &mut Sub, subst: &HashMap<LoopVarId, Sub>) {
        if let Sub::Var(v) = *s {
            if let Some(rep) = subst.get(&v) {
                *s = *rep;
            }
        }
    }
    fn rewrite_ref(r: &mut ARef, subst: &HashMap<LoopVarId, Sub>) {
        for s in &mut r.subs {
            rewrite_sub(s, subst);
        }
    }
    fn rewrite(stmts: &mut [Stmt], subst: &HashMap<LoopVarId, Sub>) {
        for s in stmts {
            match s {
                Stmt::Loop { body, .. } => rewrite(body, subst),
                Stmt::Init { .. } => {}
                Stmt::Accum { lhs, rhs, .. } => {
                    rewrite_ref(lhs, subst);
                    for r in rhs {
                        rewrite_ref(r, subst);
                    }
                }
                Stmt::Eval { lhs, args, .. } => {
                    rewrite_ref(lhs, subst);
                    for a in args {
                        rewrite_sub(a, subst);
                    }
                }
            }
        }
    }
    rewrite(&mut inner, &subst);

    // Rebuild: tile loops outermost (original order), then the
    // intra/untiled loops in original order.
    let all: Vec<LoopVarId> = tile_loops.into_iter().chain(inner_loops).collect();
    out.body[nest.body_index] = tce_loops::nest(all, inner);
    debug_assert!(out.validate().is_ok());
    out
}

/// Whether `nest` can be blocked: the statement at `nest.body_index` is a
/// chain of single-statement loops over exactly `nest.vars`, and every
/// loop variable ranges over a full (untiled) source index.  Already-tiled
/// programs (e.g. space-time codegen output) and degenerate nests —
/// scalar or fully-fused programs whose "nests" carry tile/intra ranges —
/// fail this test; the searches below then return the untiled program
/// instead of panicking inside [`tile_nest`].
pub fn nest_is_tileable(p: &LoopProgram, nest: &PerfectNest) -> bool {
    if nest.vars.is_empty() || nest.body_index >= p.body.len() {
        return false;
    }
    if nest
        .vars
        .iter()
        .any(|&v| !matches!(p.var(v).range, VarRange::Full(_)))
    {
        return false;
    }
    let mut cur = &p.body[nest.body_index];
    for (depth, &v) in nest.vars.iter().enumerate() {
        match cur {
            Stmt::Loop { var, body } if *var == v => {
                if depth + 1 == nest.vars.len() {
                    return true;
                }
                if body.len() != 1 {
                    return false;
                }
                cur = &body[0];
            }
            _ => return false,
        }
    }
    true
}

/// Outcome of the tile-size search for one nest.
#[derive(Debug, Clone)]
pub struct TileSearchResult {
    /// Chosen tile size per loop variable of the nest.
    pub blocks: HashMap<LoopVarId, usize>,
    /// The blocked program.
    pub program: LoopProgram,
    /// Modeled access cost of the blocked program.
    pub cost: u128,
}

/// Doubling candidates for one loop (`1, 2, 4, …, N`), per §6; for small
/// extents this degenerates into the exhaustive search the paper mentions.
fn candidates(extent: usize) -> Vec<usize> {
    let mut out = vec![1usize];
    let mut b = 2usize;
    while b < extent {
        out.push(b);
        b *= 2;
    }
    if extent > 1 {
        out.push(extent);
    }
    out
}

/// Search tile sizes for one perfect nest, minimizing the §6 cost model
/// for a cache of `cache_elements`.  Untileable nests (already tiled, or
/// degenerate — see [`nest_is_tileable`]) are skipped gracefully: the
/// untiled program itself is the search result.
pub fn search_nest_tiles(
    p: &LoopProgram,
    space: &IndexSpace,
    nest: &PerfectNest,
    cache_elements: u128,
) -> TileSearchResult {
    if !nest_is_tileable(p, nest) {
        return TileSearchResult {
            blocks: HashMap::new(),
            program: p.clone(),
            cost: access_cost(p, space, cache_elements),
        };
    }
    let extents: Vec<usize> = nest.vars.iter().map(|&v| p.var(v).extent(space)).collect();
    let mut best: Option<TileSearchResult> = None;
    let mut blocks: HashMap<LoopVarId, usize> = HashMap::new();

    #[allow(clippy::too_many_arguments)]
    fn rec(
        p: &LoopProgram,
        space: &IndexSpace,
        nest: &PerfectNest,
        cache: u128,
        extents: &[usize],
        i: usize,
        blocks: &mut HashMap<LoopVarId, usize>,
        best: &mut Option<TileSearchResult>,
    ) {
        if i == nest.vars.len() {
            tce_trace::counter("locality.tile_candidates", 1);
            let tiled = tile_nest(p, space, nest, blocks);
            let cost = access_cost(&tiled, space, cache);
            let better = best.as_ref().map(|b| cost < b.cost).unwrap_or(true);
            if better {
                *best = Some(TileSearchResult {
                    blocks: blocks.clone(),
                    program: tiled,
                    cost,
                });
            }
            return;
        }
        for b in candidates(extents[i]) {
            blocks.insert(nest.vars[i], b);
            rec(p, space, nest, cache, extents, i + 1, blocks, best);
        }
        blocks.remove(&nest.vars[i]);
    }

    rec(
        p,
        space,
        nest,
        cache_elements,
        &extents,
        0,
        &mut blocks,
        &mut best,
    );
    best.expect("search space is never empty")
}

/// Reorder the loops of a perfect nest (loop interchange).  All loops in
/// the synthesized nests are fully permutable — statements are pure
/// accumulations — so any order is legal; orders differ only in locality.
///
/// # Panics
/// Panics if `order` is not a permutation of the nest's variables.
pub fn permute_nest(p: &LoopProgram, nest: &PerfectNest, order: &[LoopVarId]) -> LoopProgram {
    assert_eq!(order.len(), nest.vars.len(), "order length mismatch");
    for v in order {
        assert!(nest.vars.contains(v), "order must permute the nest's loops");
    }
    let mut sorted = order.to_vec();
    sorted.sort();
    let mut nv = nest.vars.clone();
    nv.sort();
    assert_eq!(sorted, nv, "order must be a permutation");

    let mut out = p.clone();
    // Peel to the innermost statements.
    let inner: Vec<Stmt> = {
        let mut cur = p.body[nest.body_index].clone();
        let mut depth = 0;
        loop {
            match cur {
                Stmt::Loop { mut body, .. } => {
                    depth += 1;
                    if depth == nest.vars.len() {
                        break body;
                    }
                    cur = body.pop().unwrap();
                }
                _ => unreachable!("perfect nest"),
            }
        }
    };
    out.body[nest.body_index] = tce_loops::nest(order.to_vec(), inner);
    debug_assert!(out.validate().is_ok());
    out
}

/// Search all loop orders of a perfect nest (≤ 7 loops) for the one with
/// the lowest §6 access cost.  Returns the reordered program.
pub fn search_loop_order(
    p: &LoopProgram,
    space: &IndexSpace,
    nest: &PerfectNest,
    cache_elements: u128,
) -> (LoopProgram, Vec<LoopVarId>, u128) {
    assert!(nest.vars.len() <= 7, "factorial search limited to 7 loops");
    let mut order = nest.vars.clone();
    let mut best_order = order.clone();
    let mut best_cost = u128::MAX;
    // Heap's algorithm over permutations.
    fn heaps(k: usize, order: &mut Vec<LoopVarId>, visit: &mut dyn FnMut(&[LoopVarId])) {
        if k <= 1 {
            visit(order);
            return;
        }
        for i in 0..k {
            heaps(k - 1, order, visit);
            if k.is_multiple_of(2) {
                order.swap(i, k - 1);
            } else {
                order.swap(0, k - 1);
            }
        }
    }
    let n = order.len();
    let mut visit = |cand: &[LoopVarId]| {
        let prog = permute_nest(p, nest, cand);
        let cost = access_cost(&prog, space, cache_elements);
        if cost < best_cost {
            best_cost = cost;
            best_order = cand.to_vec();
        }
    };
    heaps(n, &mut order, &mut visit);
    let program = permute_nest(p, nest, &best_order);
    (program, best_order, best_cost)
}

/// Outcome of the hierarchy-weighted tile search.
#[derive(Debug, Clone)]
pub struct HierarchyTileResult {
    /// Chosen tile size per loop variable of the nest.
    pub blocks: HashMap<LoopVarId, usize>,
    /// The blocked program.
    pub program: LoopProgram,
    /// Weighted multi-level cost of the blocked program.
    pub cost: f64,
}

/// Tile-size search minimizing the *weighted multi-level* cost — the §6
/// model applied "at different levels of the memory hierarchy" (cache,
/// physical memory, disk) simultaneously, each level's misses weighted by
/// its latency.  A single tiling must serve all levels; the optimum
/// typically blocks for the small level while keeping footprints within
/// the large one.
pub fn search_nest_tiles_hierarchy(
    p: &LoopProgram,
    space: &IndexSpace,
    nest: &PerfectNest,
    hierarchy: &crate::model::MemoryHierarchy,
) -> HierarchyTileResult {
    if !nest_is_tileable(p, nest) {
        return HierarchyTileResult {
            blocks: HashMap::new(),
            program: p.clone(),
            cost: hierarchy.cost(p, space),
        };
    }
    let extents: Vec<usize> = nest.vars.iter().map(|&v| p.var(v).extent(space)).collect();
    let mut best: Option<HierarchyTileResult> = None;
    let mut blocks: HashMap<LoopVarId, usize> = HashMap::new();

    #[allow(clippy::too_many_arguments)]
    fn rec(
        p: &LoopProgram,
        space: &IndexSpace,
        nest: &PerfectNest,
        hierarchy: &crate::model::MemoryHierarchy,
        extents: &[usize],
        i: usize,
        blocks: &mut HashMap<LoopVarId, usize>,
        best: &mut Option<HierarchyTileResult>,
    ) {
        if i == nest.vars.len() {
            tce_trace::counter("locality.tile_candidates", 1);
            let tiled = tile_nest(p, space, nest, blocks);
            let cost = hierarchy.cost(&tiled, space);
            let better = best.as_ref().map(|b| cost < b.cost).unwrap_or(true);
            if better {
                *best = Some(HierarchyTileResult {
                    blocks: blocks.clone(),
                    program: tiled,
                    cost,
                });
            }
            return;
        }
        for b in candidates(extents[i]) {
            blocks.insert(nest.vars[i], b);
            rec(p, space, nest, hierarchy, extents, i + 1, blocks, best);
        }
        blocks.remove(&nest.vars[i]);
    }

    rec(
        p,
        space,
        nest,
        hierarchy,
        &extents,
        0,
        &mut blocks,
        &mut best,
    );
    best.expect("search space is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_loops::ArrayKind;

    fn matmul(n: usize) -> (IndexSpace, LoopProgram, PerfectNest) {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", n);
        let (i, j, k) = (
            space.add_var("i", r),
            space.add_var("j", r),
            space.add_var("k", r),
        );
        let mut p = LoopProgram::new();
        let vi = p.add_var("i", VarRange::Full(i));
        let vj = p.add_var("j", VarRange::Full(j));
        let vk = p.add_var("k", VarRange::Full(k));
        let a = p.add_array(
            "A",
            vec![VarRange::Full(i), VarRange::Full(k)],
            ArrayKind::Intermediate,
        );
        let b = p.add_array(
            "B",
            vec![VarRange::Full(k), VarRange::Full(j)],
            ArrayKind::Intermediate,
        );
        let c = p.add_array(
            "C",
            vec![VarRange::Full(i), VarRange::Full(j)],
            ArrayKind::Output,
        );
        let stmt = Stmt::Accum {
            lhs: ARef {
                array: c,
                subs: vec![Sub::Var(vi), Sub::Var(vj)],
            },
            rhs: vec![
                ARef {
                    array: a,
                    subs: vec![Sub::Var(vi), Sub::Var(vk)],
                },
                ARef {
                    array: b,
                    subs: vec![Sub::Var(vk), Sub::Var(vj)],
                },
            ],
            coeff: 1.0,
        };
        p.body.push(tce_loops::nest(vec![vi, vj, vk], vec![stmt]));
        let nest = PerfectNest {
            body_index: 0,
            vars: vec![vi, vj, vk],
        };
        (space, p, nest)
    }

    #[test]
    fn finds_the_perfect_nest() {
        let (_, p, nest) = matmul(8);
        let found = perfect_nests(&p);
        assert_eq!(found, vec![nest]);
    }

    #[test]
    fn tiling_preserves_structure_and_validates() {
        let (space, p, nest) = matmul(8);
        let mut blocks = HashMap::new();
        blocks.insert(nest.vars[1], 4usize); // tile j
        blocks.insert(nest.vars[2], 4usize); // tile k
        let tiled = tile_nest(&p, &space, &nest, &blocks);
        tiled.validate().unwrap();
        // Two new tile loops outermost, then i, j_i, k_i.
        let text = tce_loops::pretty(&tiled);
        assert!(text.contains("for j_t, k_t, i, j_i, k_i"), "{text}");
        assert!(text.contains("A[i,k_t*4+k_i]"), "{text}");
    }

    #[test]
    fn degenerate_blocks_leave_program_unchanged() {
        let (space, p, nest) = matmul(8);
        let mut blocks = HashMap::new();
        blocks.insert(nest.vars[0], 1usize);
        blocks.insert(nest.vars[1], 8usize); // == extent
        let tiled = tile_nest(&p, &space, &nest, &blocks);
        assert_eq!(tiled, p);
    }

    #[test]
    fn blocking_lowers_modeled_cost_for_small_cache() {
        let (space, p, nest) = matmul(32);
        // Cache far too small for any full row set at N=32 (footprint
        // 3·1024); pick blocks of 8: working set per block step ≈ 3·64.
        let cache = 256u128;
        let untiled = access_cost(&p, &space, cache);
        let r = search_nest_tiles(&p, &space, &nest, cache);
        assert!(r.cost < untiled, "blocked {} vs untiled {untiled}", r.cost);
        // The chosen blocks keep the blocked working set within cache:
        // at least one variable actually tiled.
        assert!(r.blocks.values().any(|&b| b > 1 && b < 32));
    }

    #[test]
    fn search_never_beats_exhaustive_small_case() {
        // For a tiny nest the doubling search IS exhaustive over
        // {1,2,4,…,N}; verify the returned cost equals the brute-force min
        // over that grid.
        let (space, p, nest) = matmul(8);
        let cache = 48u128;
        let r = search_nest_tiles(&p, &space, &nest, cache);
        let grid = [1usize, 2, 4, 8];
        let mut best = u128::MAX;
        for bi in grid {
            for bj in grid {
                for bk in grid {
                    let mut blocks = HashMap::new();
                    blocks.insert(nest.vars[0], bi);
                    blocks.insert(nest.vars[1], bj);
                    blocks.insert(nest.vars[2], bk);
                    let t = tile_nest(&p, &space, &nest, &blocks);
                    best = best.min(access_cost(&t, &space, cache));
                }
            }
        }
        assert_eq!(r.cost, best);
    }

    #[test]
    fn hierarchy_search_weighs_both_levels() {
        use crate::model::MemoryHierarchy;
        let (space, p, nest) = matmul(32);
        // Tiny cache, memory that holds everything: the weighted optimum
        // must do at least as well as optimizing either level alone.
        let hier = MemoryHierarchy::cache_and_disk(64, 100_000);
        let r = search_nest_tiles_hierarchy(&p, &space, &nest, &hier);
        let untiled = hier.cost(&p, &space);
        assert!(r.cost <= untiled);
        // Against the single-level (cache-only) pick, the weighted cost of
        // the hierarchy result is no worse by construction.
        let cache_only = search_nest_tiles(&p, &space, &nest, 64);
        assert!(r.cost <= hier.cost(&cache_only.program, &space) + 1e-9);
        r.program.validate().unwrap();
    }

    #[test]
    fn already_tiled_programs_are_skipped_gracefully() {
        // Tile the matmul once, then run the search over the *tiled*
        // program's nest (whose vars include Tile/Intra ranges) — this
        // used to panic with "can only tile Full-range loops".
        let (space, p, nest) = matmul(8);
        let mut blocks = HashMap::new();
        blocks.insert(nest.vars[1], 4usize);
        blocks.insert(nest.vars[2], 4usize);
        let tiled = tile_nest(&p, &space, &nest, &blocks);
        let found = perfect_nests(&tiled);
        assert_eq!(found.len(), 1);
        assert!(!nest_is_tileable(&tiled, &found[0]));
        let r = search_nest_tiles(&tiled, &space, &found[0], 64);
        assert!(r.blocks.is_empty());
        assert_eq!(r.program, tiled);
        assert_eq!(r.cost, access_cost(&tiled, &space, 64));
        // The hierarchy search skips identically.
        let hier = crate::model::MemoryHierarchy::cache_and_disk(64, 100_000);
        let h = search_nest_tiles_hierarchy(&tiled, &space, &found[0], &hier);
        assert!(h.blocks.is_empty());
        assert_eq!(h.program, tiled);
    }

    #[test]
    fn degenerate_nests_are_skipped_gracefully() {
        // A nest descriptor that does not match the program shape (wrong
        // vars) used to panic with "nest shape mismatch"/"not a loop
        // nest"; it now falls back to the untiled program.
        let (space, p, nest) = matmul(4);
        let bogus = PerfectNest {
            body_index: nest.body_index,
            vars: vec![nest.vars[1], nest.vars[0], nest.vars[2]],
        };
        assert!(!nest_is_tileable(&p, &bogus));
        let r = search_nest_tiles(&p, &space, &bogus, 16);
        assert_eq!(r.program, p);
        // Empty var lists and out-of-range bodies are degenerate too.
        assert!(!nest_is_tileable(
            &p,
            &PerfectNest {
                body_index: 0,
                vars: vec![]
            }
        ));
        assert!(!nest_is_tileable(
            &p,
            &PerfectNest {
                body_index: 9,
                vars: nest.vars.clone()
            }
        ));
    }

    #[test]
    fn permute_nest_reorders_loops() {
        let (space, p, nest) = matmul(8);
        let order = vec![nest.vars[1], nest.vars[2], nest.vars[0]]; // j,k,i
        let q = permute_nest(&p, &nest, &order);
        let text = tce_loops::pretty(&q);
        assert!(text.contains("for j, k, i"), "{text}");
        // Same cost model at whole-program footprint scope when fitting.
        assert_eq!(
            access_cost(&p, &space, 10_000),
            access_cost(&q, &space, 10_000)
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permute_nest_rejects_bad_order() {
        let (space, p, nest) = matmul(4);
        let _ = space;
        permute_nest(&p, &nest, &[nest.vars[0], nest.vars[0], nest.vars[1]]);
    }

    #[test]
    fn order_search_finds_better_order_for_small_cache() {
        let (space, p, nest) = matmul(16);
        // Cache holds a couple of rows but not B: the best orders keep
        // B's row reuse in an inner position.
        let cache = 40u128;
        let base = access_cost(&p, &space, cache);
        let (best_prog, order, cost) = search_loop_order(&p, &space, &nest, cache);
        assert!(cost <= base);
        assert_eq!(order.len(), 3);
        best_prog.validate().unwrap();
        // Exhaustiveness: no permutation beats the returned cost.
        let perms = [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for perm in perms {
            let cand: Vec<_> = perm.iter().map(|&q| nest.vars[q]).collect();
            let prog = permute_nest(&p, &nest, &cand);
            assert!(access_cost(&prog, &space, cache) >= cost);
        }
    }

    #[test]
    fn order_plus_tiling_composes() {
        let (space, p, nest) = matmul(16);
        let cache = 48u128;
        let (ordered, order, _) = search_loop_order(&p, &space, &nest, cache);
        let nest2 = PerfectNest {
            body_index: nest.body_index,
            vars: order,
        };
        let tiled = search_nest_tiles(&ordered, &space, &nest2, cache);
        assert!(tiled.cost <= access_cost(&ordered, &space, cache));
        tiled.program.validate().unwrap();
    }
}
