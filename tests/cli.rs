//! Black-box tests of the `tce` binary: malformed input must produce a
//! diagnostic on stderr and a nonzero exit status (never a panic), the
//! distributed path must report exact measured-vs-modeled agreement, and
//! the fused path must report an exact measured-vs-modeled peak
//! intermediate live-set.

use std::process::Command;

fn tce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tce"))
}

/// These tests are registered from `crates/core`, so the examples live
/// two levels up.
fn spec(name: &str) -> String {
    format!("{}/../../examples/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn malformed_inputs_fail_cleanly() {
    let chain = spec("matrix_chain.tce");
    let cases: Vec<Vec<&str>> = vec![
        vec![],                                                    // no spec file
        vec!["/nonexistent/never.tce"],                            // unreadable file
        vec![&chain, "--cache", "pow"],                            // bad --cache
        vec![&chain, "--grid", "2y4"],                             // bad --grid format
        vec![&chain, "--grid", "0x2"],                             // zero grid dimension
        vec![&chain, "--grid", "x"],                               // empty grid dimension
        vec![&chain, "--threads", "0"],                            // zero threads
        vec![&chain, "--distributed"],                             // missing --grid
        vec![&chain, "--memory-limit", "-3"],                      // negative limit
        vec![&chain, "--bogus-flag"],                              // unknown flag
        vec![&chain, "--fused", "--distributed", "--grid", "2x2"], // conflict
        vec![&chain, "--kernel", "bogus"],                         // unknown kernel
        vec![&chain, "--kernel"],                                  // missing kernel name
        vec![&chain, "--schedule", "bogus"],                       // unknown schedule
        vec![&chain, "--schedule"],                                // missing schedule name
    ];
    for args in &cases {
        let out = tce().args(args).output().expect("spawn tce");
        assert!(
            !out.status.success(),
            "tce {args:?} should exit nonzero, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.is_empty(), "tce {args:?} should print a diagnostic");
        assert!(
            !stderr.contains("panicked"),
            "tce {args:?} panicked:\n{stderr}"
        );
    }
}

#[test]
fn bad_tce_kernel_env_fails_cleanly() {
    let out = tce()
        .arg(spec("matrix_chain.tce"))
        .arg("--execute")
        .env("TCE_KERNEL", "bogus")
        .output()
        .expect("spawn tce");
    assert!(!out.status.success(), "bad TCE_KERNEL must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("TCE_KERNEL") && stderr.contains("bogus"),
        "diagnostic should name the bad variable and value:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "panicked:\n{stderr}");
}

#[test]
fn kernel_flag_runs_and_overrides_env() {
    // --kernel scalar must execute successfully even with a bogus
    // TCE_KERNEL in the environment (the flag wins and is validated
    // first; scalar is supported everywhere).
    let out = tce()
        .args([&spec("matrix_chain.tce"), "--execute", "--kernel", "scalar"])
        .env("TCE_KERNEL", "bogus")
        .output()
        .expect("spawn tce");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "--kernel scalar should succeed:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("OK"),
        "execution summary missing:\n{stdout}"
    );
}

#[test]
fn distributed_execution_reports_exact_comm_volumes() {
    for grid in ["1x1", "2x4"] {
        let out = tce()
            .args([
                &spec("ccsd_section2.tce"),
                "--distributed",
                "--grid",
                grid,
                "--threads",
                "2",
            ])
            .output()
            .expect("spawn tce");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "grid {grid} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("OK"), "grid {grid}:\n{stdout}");
        assert!(
            stdout.contains("redistribution elements")
                && stdout.matches("(exact)").count() >= 2
                && !stdout.contains("MISMATCH"),
            "grid {grid}: measured-vs-modeled not exact:\n{stdout}"
        );
    }
}

#[test]
fn fused_execution_reports_exact_peak_live_set() {
    // Acceptance: on the §2 scenario, `tce --fused --trace` reports a peak
    // intermediate live-set exactly equal to the memmin DP's prediction
    // (Fig. 1(c) at N=6: T1 scalar + T2 N² = 37 elements).
    let trace_path =
        std::env::temp_dir().join(format!("tce_fused_trace_{}.json", std::process::id()));
    for threads in ["1", "2", "4"] {
        let out = tce()
            .args([
                spec("ccsd_section2.tce").as_str(),
                "--fused",
                "--trace",
                trace_path.to_str().unwrap(),
                "--threads",
                threads,
            ])
            .output()
            .expect("spawn tce");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "threads {threads} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("peak intermediate live-set: measured 37 / modeled 37 (exact)"),
            "threads {threads}: peak not exact:\n{stdout}"
        );
        assert!(!stdout.contains("MISMATCH"), "threads {threads}:\n{stdout}");
        // The trace carries the fused live-set counter.
        let trace = std::fs::read_to_string(&trace_path).expect("trace written");
        assert!(trace.contains("fused.live_elements"), "threads {threads}");
    }
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn comm_volume_mismatch_exits_nonzero() {
    // When measured communication diverges from the cost model the CLI
    // must flag the line as a MISMATCH *and* exit nonzero — exact model
    // conformance is part of the contract, not a cosmetic report.  The
    // divergence is injected via the hidden TCE_FAULT_INJECT test hook.
    let out = tce()
        .args([&spec("ccsd_section2.tce"), "--distributed", "--grid", "2x2"])
        .env("TCE_FAULT_INJECT", "comm")
        .output()
        .expect("spawn tce");
    assert!(
        !out.status.success(),
        "comm mismatch must exit nonzero, got {:?}",
        out.status
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stdout.contains("MISMATCH"),
        "mismatch not reported:\n{stdout}"
    );
    assert!(
        stderr.contains("diverged from the cost model"),
        "missing diagnostic:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "panicked:\n{stderr}");
}

#[test]
fn peak_live_set_mismatch_exits_nonzero() {
    let out = tce()
        .args([&spec("ccsd_section2.tce"), "--fused"])
        .env("TCE_FAULT_INJECT", "liveset")
        .output()
        .expect("spawn tce");
    assert!(
        !out.status.success(),
        "live-set mismatch must exit nonzero, got {:?}",
        out.status
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stdout.contains("MISMATCH"),
        "mismatch not reported:\n{stdout}"
    );
    assert!(
        stderr.contains("diverged from the memmin model"),
        "missing diagnostic:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "panicked:\n{stderr}");
}

#[test]
fn fault_hook_does_not_affect_other_modes() {
    // The hook only touches the branch it names: a fused run under
    // `comm` and a distributed run under `liveset` still pass exactly.
    let out = tce()
        .args([&spec("ccsd_section2.tce"), "--fused"])
        .env("TCE_FAULT_INJECT", "comm")
        .output()
        .expect("spawn tce");
    assert!(out.status.success());
    let out = tce()
        .args([&spec("ccsd_section2.tce"), "--distributed", "--grid", "2x2"])
        .env("TCE_FAULT_INJECT", "liveset")
        .output()
        .expect("spawn tce");
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stdout).contains("MISMATCH"));
}

#[test]
fn fused_and_sequential_sums_agree() {
    let run = |extra: &[&str]| {
        let mut args = vec![spec("ccsd_section2.tce"), "--execute".to_string()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = tce().args(&args).output().expect("spawn tce");
        assert!(
            out.status.success(),
            "{args:?}:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.contains("|sum|"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let sequential = run(&[]);
    assert!(!sequential.is_empty());
    for threads in ["1", "3"] {
        assert_eq!(
            sequential,
            run(&["--fused", "--threads", threads]),
            "--fused --threads {threads} changed printed sums"
        );
    }
}

#[test]
fn graph_schedule_cli_matches_sequential_sums() {
    // `--schedule graph` is purely a performance knob: the printed sums
    // must match the default sequential schedule exactly at every thread
    // count, and the execution header must name the active schedule.
    let run = |extra: &[&str]| {
        let mut args = vec![spec("ccsd_section2.tce"), "--execute".to_string()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = tce().args(&args).output().expect("spawn tce");
        assert!(
            out.status.success(),
            "{args:?}:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let sums = |stdout: &str| {
        stdout
            .lines()
            .filter(|l| l.contains("|sum|"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let sequential = run(&[]);
    assert!(
        sequential.contains("seq schedule"),
        "header should name the default schedule:\n{sequential}"
    );
    for threads in ["1", "2", "4"] {
        let graph = run(&["--schedule", "graph", "--threads", threads]);
        assert!(
            graph.contains("graph schedule"),
            "--schedule graph header missing at {threads} threads:\n{graph}"
        );
        assert_eq!(
            sums(&sequential),
            sums(&graph),
            "--schedule graph --threads {threads} changed printed sums"
        );
    }
}

#[test]
fn zero_threads_is_rejected_by_cli_but_clamped_by_library() {
    // Regression for the CLI/library asymmetry: the CLI refuses
    // `--threads 0` with a one-line diagnostic (covered above in
    // `malformed_inputs_fail_cleanly`), while the library builder
    // documents a clamp to 1 — and the two must stay consistent through
    // the fallible constructor the CLI actually uses.
    use tce_core::ExecOptions;
    let err = ExecOptions::try_with_threads(0).unwrap_err();
    assert_eq!(err, "--threads must be at least 1");
    assert_eq!(ExecOptions::with_threads(0).threads, 1, "documented clamp");
    assert_eq!(ExecOptions::try_with_threads(3).unwrap().threads, 3);
}

#[test]
fn missing_binding_inside_pipeline_is_a_clean_diagnostic() {
    // The executors report missing/mismatched bindings as typed errors;
    // the CLI must surface them as one-line diagnostics, never a panic.
    // (The CLI binds everything itself, so drive the library path the same
    // way the CLI does but with an empty binding map.)
    use std::collections::HashMap;
    use tce_core::{synthesize, ExecOptions, SynthesisConfig};
    let src = std::fs::read_to_string(spec("matrix_chain.tce")).unwrap();
    let syn = synthesize(&src, &SynthesisConfig::default()).unwrap();
    let err = syn
        .execute_opts(&HashMap::new(), &HashMap::new(), &ExecOptions::serial())
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("no binding for input tensor"),
        "unexpected diagnostic: {msg}"
    );
    let err = syn
        .execute_fused_opts(&HashMap::new(), &HashMap::new(), &ExecOptions::serial())
        .unwrap_err();
    assert!(err.to_string().contains("no binding for input tensor"));
}

#[test]
fn tight_memory_limit_with_cache_does_not_panic_in_tile_search() {
    // Regression: a tight --memory-limit routes synthesis through the
    // space-time stage, whose emitted programs carry strip-mined loops;
    // the locality search must skip those nests gracefully (it previously
    // panicked on "can only tile Full-range loops").
    let out = tce()
        .args([
            spec("a3a_energy.tce").as_str(),
            "--memory-limit",
            "40",
            "--cache",
            "64",
            "--execute",
            "--threads",
            "2",
        ])
        .output()
        .expect("spawn tce");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked"),
        "tile search panicked:\n{stderr}"
    );
    assert!(out.status.success(), "expected success, stderr:\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK"), "{stdout}");
}

#[test]
fn sequential_and_distributed_sums_agree() {
    let run = |extra: &[&str]| {
        let mut args = vec![spec("matrix_chain.tce"), "--execute".to_string()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = tce().args(&args).output().expect("spawn tce");
        assert!(out.status.success(), "{args:?}");
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.contains("|sum|"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let sequential = run(&[]);
    assert!(!sequential.is_empty());
    for grid in ["1x1", "2x2", "2x4"] {
        assert_eq!(
            sequential,
            run(&["--distributed", "--grid", grid]),
            "grid {grid} changed printed sums"
        );
    }
}

#[test]
fn bad_numeric_env_vars_fail_cleanly() {
    // The numeric-flag audit extends to the environment: a typo'd or
    // degenerate value is a one-line diagnostic naming the variable and
    // a nonzero exit — never a silent clamp, never a panic.
    for (var, value) in [
        ("TCE_THREADS", "0"),
        ("TCE_THREADS", "banana"),
        ("TCE_THREADS", "-2"),
        ("TCE_PLAN_CACHE_CAP", "0"),
        ("TCE_PLAN_CACHE_CAP", "many"),
        ("TCE_PLAN_CACHE_SHARDS", "0"),
        ("TCE_PLAN_CACHE_SHARDS", "wide"),
        ("TCE_BUFPOOL_CAP", "lots"),
        ("TCE_BUFPOOL_CAP", "-1"),
    ] {
        let out = tce()
            .arg(spec("matrix_chain.tce"))
            .arg("--execute")
            .env(var, value)
            .output()
            .expect("spawn tce");
        assert!(
            !out.status.success(),
            "{var}={value} must exit nonzero, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(var),
            "{var}={value}: diagnostic should name the variable:\n{stderr}"
        );
        assert_eq!(
            stderr.trim().lines().count(),
            1,
            "{var}={value}: diagnostic should be one line:\n{stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{var}={value} panicked:\n{stderr}"
        );
        // The same validation guards the serve subcommand.
        let out = tce()
            .args(["serve", "--addr", "127.0.0.1:0"])
            .env(var, value)
            .output()
            .expect("spawn tce serve");
        assert!(
            !out.status.success(),
            "serve with {var}={value} must exit nonzero"
        );
    }
    // Valid values still run.
    let out = tce()
        .arg(spec("matrix_chain.tce"))
        .arg("--execute")
        .env("TCE_THREADS", "2")
        .env("TCE_PLAN_CACHE_CAP", "16")
        .env("TCE_PLAN_CACHE_SHARDS", "4")
        .env("TCE_BUFPOOL_CAP", "0") // 0 is valid: pooling disabled
        .output()
        .expect("spawn tce");
    assert!(
        out.status.success(),
        "valid env rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_calibration_env_and_flag_fail_cleanly() {
    let chain = spec("matrix_chain.tce");
    // A garbage profile: unreadable path, then readable-but-not-a-profile.
    let dir = std::env::temp_dir().join(format!("tce-cli-calib-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "this is not a calibration profile").unwrap();
    let wrong_version = dir.join("version99.json");
    std::fs::write(&wrong_version, "{\"version\": 99}").unwrap();

    for path in [
        "/nonexistent/profile.json",
        garbage.to_str().unwrap(),
        wrong_version.to_str().unwrap(),
    ] {
        // Via the environment: diagnostic names TCE_CALIBRATION, one line.
        let out = tce()
            .arg(&chain)
            .env("TCE_CALIBRATION", path)
            .output()
            .expect("spawn tce");
        assert!(
            !out.status.success(),
            "TCE_CALIBRATION={path} must exit nonzero"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("TCE_CALIBRATION"),
            "diagnostic should name the variable:\n{stderr}"
        );
        assert_eq!(
            stderr.trim().lines().count(),
            1,
            "diagnostic should be one line:\n{stderr}"
        );
        assert!(!stderr.contains("panicked"), "panicked:\n{stderr}");
        // The same validation guards the serve subcommand.
        let out = tce()
            .args(["serve", "--addr", "127.0.0.1:0"])
            .env("TCE_CALIBRATION", path)
            .output()
            .expect("spawn tce serve");
        assert!(
            !out.status.success(),
            "serve with TCE_CALIBRATION={path} must exit nonzero"
        );
        // Via the flag: same failure, flag-shaped diagnostic.
        let out = tce()
            .args([chain.as_str(), "--calibration", path])
            .output()
            .expect("spawn tce");
        assert!(
            !out.status.success(),
            "--calibration {path} must exit nonzero"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--calibration") || stderr.contains("calibration"),
            "diagnostic should mention the flag:\n{stderr}"
        );
        assert!(!stderr.contains("panicked"), "panicked:\n{stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn calibrate_writes_a_loadable_profile_and_audits_failures() {
    let dir = std::env::temp_dir().join(format!("tce-cli-calibrate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("profile.json");

    // A tiny-budget calibrate must produce a complete, loadable profile.
    let out = tce()
        .args([
            "calibrate",
            "--out",
            out_path.to_str().unwrap(),
            "--budget-ms",
            "20",
            "--seed",
            "7",
        ])
        .output()
        .expect("spawn tce calibrate");
    assert!(
        out.status.success(),
        "calibrate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let profile = tce_core::calib::Profile::load(out_path.to_str().unwrap())
        .expect("written profile must load");
    assert_eq!(profile.version, tce_core::calib::PROFILE_VERSION);

    // The profile round-trips through `--calibration` on a real run and
    // surfaces the predicted-vs-measured line.
    let out = tce()
        .args([
            spec("matrix_chain.tce").as_str(),
            "--execute",
            "--calibration",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn tce");
    assert!(
        out.status.success(),
        "calibrated run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("calibration: predicted"),
        "missing prediction line:\n{stdout}"
    );

    // Write failures are a one-line diagnostic and a nonzero exit.
    let out = tce()
        .args([
            "calibrate",
            "--out",
            "/nonexistent-dir/profile.json",
            "--budget-ms",
            "1",
        ])
        .output()
        .expect("spawn tce calibrate");
    assert!(!out.status.success(), "unwritable --out must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot write profile"),
        "diagnostic:\n{stderr}"
    );
    assert_eq!(
        stderr.trim().lines().count(),
        1,
        "diagnostic should be one line:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "panicked:\n{stderr}");

    // Flag audit: missing --out, degenerate budget, unknown flag.
    for args in [
        vec!["calibrate"],
        vec!["calibrate", "--out"],
        vec!["calibrate", "--out", "x.json", "--budget-ms", "0"],
        vec!["calibrate", "--out", "x.json", "--budget-ms", "soon"],
        vec!["calibrate", "--out", "x.json", "--threads", "0"],
        vec!["calibrate", "--bogus"],
    ] {
        let out = tce().args(&args).output().expect("spawn tce calibrate");
        assert!(!out.status.success(), "tce {args:?} should exit nonzero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !stderr.is_empty() && !stderr.contains("panicked"),
            "{args:?}: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
