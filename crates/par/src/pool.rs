//! Data-parallel execution primitives built on crossbeam's scoped threads.
//!
//! The paper assumes a data-parallel model in which "each operation in the
//! operation sequence is distributed across the entire parallel machine"
//! (§7).  This module supplies the shared-memory realization used by the
//! executor: block-partitioned parallel-for and parallel-reduce over
//! slices, with a configurable thread count.  No work stealing — tensor
//! contraction iterations are uniform, so static block partitioning is the
//! right schedule and keeps the substrate small and auditable.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the `TCE_THREADS` environment variable
/// if set, otherwise the machine's available parallelism (at least 1).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TCE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `n` items into `parts` contiguous ranges of near-equal length
/// (the paper's `myrange(z, N, p)` block partitioning, 0-based).
pub fn block_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Run `f(range)` in parallel over a block partition of `0..n` with
/// `threads` workers.  `f` must be `Sync` (it receives disjoint ranges).
pub fn parallel_for<F>(n: usize, threads: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        f(0..n);
        return;
    }
    let ranges = block_ranges(n, threads);
    crossbeam::scope(|s| {
        for r in ranges {
            let f = &f;
            s.spawn(move |_| f(r));
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map-reduce over a block partition of `0..n`: each worker folds
/// its range with `fold`, partial results are combined with `combine`.
pub fn parallel_reduce<T, F, C>(n: usize, threads: usize, identity: T, fold: F, combine: C) -> T
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return combine(identity, fold(0..n));
    }
    let ranges = block_ranges(n, threads);
    let partials: Vec<T> = crossbeam::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let fold = &fold;
                s.spawn(move |_| fold(r))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("scope failed");
    partials.into_iter().fold(identity, combine)
}

/// Apply `f` to disjoint mutable chunks of `data` in parallel — the
/// write-side primitive for partitioned output arrays.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        f(0, data);
        return;
    }
    let ranges = block_ranges(n, threads);
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut offset = 0usize;
        for r in ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let f = &f;
            let start = offset;
            offset += r.len();
            s.spawn(move |_| f(start, head));
        }
    })
    .expect("worker thread panicked");
}

/// A monotone counter shared across workers (used by the executor to count
/// operations without locks on the hot path — each worker batches locally
/// and flushes once).
#[derive(Debug, Default)]
pub struct SharedCounter(AtomicUsize);

impl SharedCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for p in [1usize, 2, 3, 8, 150] {
                let rs = block_ranges(n, p);
                assert_eq!(rs.len(), p);
                assert_eq!(rs.first().unwrap().start, 0);
                assert_eq!(rs.last().unwrap().end, n);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                // Balanced: lengths differ by at most one.
                let lens: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 4, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_reduce_sums() {
        let n = 10_000usize;
        let total = parallel_reduce(n, 8, 0u64, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| a + b);
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        // Single-threaded path agrees.
        let t1 = parallel_reduce(n, 1, 0u64, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| a + b);
        assert_eq!(t1, total);
    }

    #[test]
    fn parallel_chunks_mut_writes_disjointly() {
        let mut data = vec![0usize; 997];
        parallel_chunks_mut(&mut data, 5, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn zero_length_work_is_safe() {
        parallel_for(0, 4, |r| assert!(r.is_empty()));
        let mut empty: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut empty, 4, |_, _| {});
        let s = parallel_reduce(0, 4, 0u32, |_| 1u32, |a, b| a + b);
        // fold runs once over the empty range on the 1-thread path.
        assert!(s <= 1);
    }

    #[test]
    fn shared_counter_accumulates_across_threads() {
        let c = SharedCounter::new();
        parallel_for(100, 4, |r| c.add(r.len()));
        assert_eq!(c.get(), 100);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
