//! A minimal blocking client for the line protocol — used by the tests,
//! the `exp_serve` load generator, and `tce serve --probe`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A persistent connection that can carry many request/response rounds.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7470`).
    ///
    /// # Errors
    /// Connection failure.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        // Requests are single small writes; Nagle + delayed ACK would
        // otherwise add tens of milliseconds per round trip.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Send one request line (the newline is appended here).
    ///
    /// # Errors
    /// Write failure.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        // One write per request: a split payload/newline pair would be
        // two TCP segments and could stall on the peer's delayed ACK.
        self.writer.write_all(format!("{line}\n").as_bytes())?;
        self.writer.flush()
    }

    /// Read one response line (trailing newline stripped).
    ///
    /// # Errors
    /// Read failure, or a connection closed before a full line arrived.
    pub fn recv(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            ));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    /// [`Client::send`] then [`Client::recv`].
    ///
    /// # Errors
    /// Either half failing.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv()
    }
}

/// One-shot convenience: connect, send `line`, return the reply.
///
/// # Errors
/// Connection, write, or read failure.
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    Client::connect(addr)?.round_trip(line)
}
