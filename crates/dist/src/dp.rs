//! The data-distribution dynamic program (paper §7).
//!
//! Bottom-up over the operator tree: for every node `u` and candidate
//! result distribution `α`, `Cost(u, α)` is the cheapest way to produce
//! `u`'s value distributed as `α`:
//!
//! * stored-input leaves start in any non-replicated distribution for
//!   free; replicated targets pay the cheapest broadcast
//!   (`Cost(v,α) = min_{NoReplicate(β)} MoveCost(v, β, α)`);
//! * function-evaluation leaves are computed in place under `α` (replicas
//!   recompute; no communication);
//! * a contraction chooses a loop-space distribution `γ`, pays the
//!   children at their implied operand distributions (`γ` projected onto
//!   each operand's indices), the per-processor computation, the
//!   partial-sum reduction when a summation index is distributed
//!   (combined to one processor or replicated — the paper's `min_{i=1,2}`),
//!   and a final redistribution to `α`.
//!
//! The chosen `γ`/mode per state is saved in `Dist(u, α)` and traced back
//! top-down, exactly as in the paper's step 3.  Complexity `O(q²·|T|)`
//! states×transitions with `q = O(mⁿ)` tuples.

use crate::cost::{after_reduction, calc_cost, move_cost, reduce_cost, ReduceMode};
use crate::tuple::{enumerate_tuples, DistTuple};
use std::collections::HashMap;
use tce_ir::{IndexSet, IndexSpace, IndexVar, Leaf, NodeId, OpKind, OpTree};
use tce_par::ProcessorGrid;

/// The conventional abstract communication price: moving one word costs
/// as much as 100 flops.  A machine still carrying this default adopts a
/// measured rate when a calibration profile is loaded; an explicit
/// non-default `word_cost` always wins.
pub const DEFAULT_WORD_COST: u128 = 100;

/// Machine model: the grid plus the cost (in flop units) of moving one
/// array element between processors.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Logical processor grid.
    pub grid: ProcessorGrid,
    /// Flops-equivalent cost of communicating one element.
    pub word_cost: u128,
}

impl Machine {
    /// Conventional model: communication [`DEFAULT_WORD_COST`]× the cost
    /// of a flop.
    pub fn new(grid: ProcessorGrid) -> Self {
        Self {
            grid,
            word_cost: DEFAULT_WORD_COST,
        }
    }
}

/// The optimized plan.
#[derive(Debug, Clone)]
pub struct DistPlan {
    /// Total cost (per-processor flops + weighted communication).
    pub total_cost: u128,
    /// Distribution of each node's result, indexed by `NodeId.0`.
    pub node_dist: Vec<Option<DistTuple>>,
    /// Loop-space distribution and reduce mode per contraction node.
    pub node_gamma: Vec<Option<(DistTuple, ReduceMode)>>,
    /// For input leaves that must end up replicated: the non-replicated
    /// distribution they are read in before broadcasting.
    pub node_input_source: Vec<Option<DistTuple>>,
}

impl DistPlan {
    /// Root result distribution.
    pub fn root_dist(&self, tree: &OpTree) -> &DistTuple {
        self.node_dist[tree.root.0 as usize]
            .as_ref()
            .expect("root always assigned")
    }
}

/// Canonical dimension order of a node's array.
fn dims_of(tree: &OpTree, u: NodeId) -> Vec<IndexVar> {
    tree.node(u).indices.iter().collect()
}

#[derive(Clone)]
enum Choice {
    InputFrom(DistTuple),
    Compute(DistTuple, ReduceMode),
    None,
}

struct Dp<'a> {
    tree: &'a OpTree,
    space: &'a IndexSpace,
    machine: &'a Machine,
    memo: HashMap<(u32, DistTuple), (u128, Choice)>,
}

impl Dp<'_> {
    fn cost(&mut self, u: NodeId, alpha: &DistTuple) -> u128 {
        let key = (u.0, alpha.clone());
        if let Some(&(c, _)) = self.memo.get(&key) {
            return c;
        }
        let rank = self.machine.grid.rank();
        let indices = self.tree.node(u).indices;
        let result: (u128, Choice) = match &self.tree.node(u).kind {
            OpKind::Leaf(Leaf::One) => (0, Choice::None),
            OpKind::Leaf(Leaf::Input { .. }) => {
                if alpha.no_replicate(indices) {
                    (0, Choice::None)
                } else {
                    let dims = dims_of(self.tree, u);
                    let mut best = (u128::MAX, Choice::None);
                    for beta in enumerate_tuples(indices, rank) {
                        if !beta.no_replicate(indices) {
                            continue;
                        }
                        let c = move_cost(&dims, self.space, &self.machine.grid, &beta, alpha)
                            .saturating_mul(self.machine.word_cost);
                        if c < best.0 {
                            best = (c, Choice::InputFrom(beta));
                        }
                    }
                    best
                }
            }
            OpKind::Leaf(Leaf::Func { cost_per_eval, .. }) => (
                calc_cost(
                    indices,
                    *cost_per_eval as u128,
                    self.space,
                    &self.machine.grid,
                    alpha,
                ),
                Choice::None,
            ),
            OpKind::Contract { left, right } => {
                let (l, r) = (*left, *right);
                let loops = self.tree.loop_indices(u);
                let sums = self.tree.sum_indices(u);
                let dims = dims_of(self.tree, u);
                let mut best = (u128::MAX, Choice::None);
                for gamma in enumerate_tuples(loops, rank) {
                    let child_l = gamma.project(self.tree.node(l).indices);
                    let child_r = gamma.project(self.tree.node(r).indices);
                    let base = self
                        .cost(l, &child_l)
                        .saturating_add(self.cost(r, &child_r))
                        .saturating_add(calc_cost(
                            loops,
                            2,
                            self.space,
                            &self.machine.grid,
                            &gamma,
                        ));
                    let has_dist_sum = gamma.vars().inter(sums) != IndexSet::EMPTY;
                    let modes: &[ReduceMode] = if has_dist_sum {
                        &[ReduceMode::Combine, ReduceMode::Replicate]
                    } else {
                        &[ReduceMode::Combine]
                    };
                    for &mode in modes {
                        let after = after_reduction(&gamma, indices, sums, mode);
                        let c = base
                            .saturating_add(
                                reduce_cost(
                                    indices,
                                    sums,
                                    self.space,
                                    &self.machine.grid,
                                    &gamma,
                                    mode,
                                )
                                .saturating_mul(self.machine.word_cost),
                            )
                            .saturating_add(
                                move_cost(&dims, self.space, &self.machine.grid, &after, alpha)
                                    .saturating_mul(self.machine.word_cost),
                            );
                        if c < best.0 {
                            best = (c, Choice::Compute(gamma.clone(), mode));
                        }
                    }
                }
                best
            }
        };
        self.memo.insert(key, result.clone());
        result.0
    }
}

/// Run the distribution DP and trace back the optimal assignment.
pub fn optimize_distribution(tree: &OpTree, space: &IndexSpace, machine: &Machine) -> DistPlan {
    let mut dp = Dp {
        tree,
        space,
        machine,
        memo: HashMap::new(),
    };
    let rank = machine.grid.rank();
    // Step 3: minimal total over root distributions.
    let mut best: Option<(u128, DistTuple)> = None;
    for alpha in enumerate_tuples(tree.node(tree.root).indices, rank) {
        let c = dp.cost(tree.root, &alpha);
        if best.as_ref().map(|(b, _)| c < *b).unwrap_or(true) {
            best = Some((c, alpha));
        }
    }
    let (total_cost, root_alpha) = best.expect("at least one tuple exists");

    // Top-down traceback of Dist(u, α).
    let mut node_dist: Vec<Option<DistTuple>> = vec![None; tree.len()];
    let mut node_gamma: Vec<Option<(DistTuple, ReduceMode)>> = vec![None; tree.len()];
    let mut node_input_source: Vec<Option<DistTuple>> = vec![None; tree.len()];
    let mut stack = vec![(tree.root, root_alpha)];
    while let Some((u, alpha)) = stack.pop() {
        let (_, choice) = dp.memo[&(u.0, alpha.clone())].clone();
        node_dist[u.0 as usize] = Some(alpha);
        match choice {
            Choice::Compute(gamma, mode) => {
                if let OpKind::Contract { left, right } = tree.node(u).kind {
                    stack.push((left, gamma.project(tree.node(left).indices)));
                    stack.push((right, gamma.project(tree.node(right).indices)));
                }
                node_gamma[u.0 as usize] = Some((gamma, mode));
            }
            Choice::InputFrom(beta) => {
                node_input_source[u.0 as usize] = Some(beta);
            }
            Choice::None => {}
        }
    }
    DistPlan {
        total_cost,
        node_dist,
        node_gamma,
        node_input_source,
    }
}

/// Number of `(node, tuple)` states the DP evaluates — `O(q·|T|)` storage,
/// with `O(q)` transitions each (the paper's `O(q²|T|)` time bound).
pub fn state_count(tree: &OpTree, machine: &Machine) -> usize {
    let rank = machine.grid.rank();
    tree.postorder()
        .into_iter()
        .map(|id| enumerate_tuples(tree.node(id).indices, rank).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{TensorDecl, TensorTable};

    /// C[i,j] = Σ_k A[i,k]·B[k,j].
    fn matmul(n: usize) -> (IndexSpace, OpTree) {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", n);
        let (i, j, k) = (
            space.add_var("i", r),
            space.add_var("j", r),
            space.add_var("k", r),
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![r, r]));
        let tb = tensors.add(TensorDecl::dense("B", vec![r, r]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![i, k]);
        let lb = tree.leaf_input(tb, vec![k, j]);
        tree.contract(la, lb, IndexSet::from_vars([i, j]));
        (space, tree)
    }

    #[test]
    fn single_processor_grid_costs_sequential_flops() {
        let (space, tree) = matmul(8);
        let machine = Machine::new(ProcessorGrid::new(vec![1]));
        let plan = optimize_distribution(&tree, &space, &machine);
        // No communication possible or needed; cost = 2·N³.
        assert_eq!(plan.total_cost, 2 * 512);
    }

    #[test]
    fn distributing_a_parallel_dim_speeds_up_matmul() {
        let (space, tree) = matmul(16);
        let machine = Machine {
            grid: ProcessorGrid::new(vec![4]),
            word_cost: 0, // pure computation view
        };
        let plan = optimize_distribution(&tree, &space, &machine);
        // Best γ distributes i or j (free: operands start blocked), giving
        // 2·N³/4 per processor.
        assert_eq!(plan.total_cost, 2 * 16u128.pow(3) / 4);
        let (gamma, _) = plan.node_gamma[tree.root.0 as usize].as_ref().unwrap();
        // The distributed variable is a result index, not the contraction
        // index (which would force a reduction).
        let sums = tree.sum_indices(tree.root);
        assert!(gamma.vars().inter(sums).is_empty());
    }

    #[test]
    fn communication_cost_discourages_replication() {
        let (space, tree) = matmul(8);
        let cheap_comm = Machine {
            grid: ProcessorGrid::new(vec![8]),
            word_cost: 0,
        };
        let dear_comm = Machine {
            grid: ProcessorGrid::new(vec![8]),
            word_cost: 10_000,
        };
        let p1 = optimize_distribution(&tree, &space, &cheap_comm);
        let p2 = optimize_distribution(&tree, &space, &dear_comm);
        assert!(p1.total_cost <= p2.total_cost);
        // With free communication the full grid is used.
        assert_eq!(p1.total_cost, 2 * 512 / 8);
    }

    #[test]
    fn two_dim_grid_uses_both_dims() {
        let (space, tree) = matmul(16);
        let machine = Machine {
            grid: ProcessorGrid::new(vec![2, 2]),
            word_cost: 0,
        };
        let plan = optimize_distribution(&tree, &space, &machine);
        assert_eq!(plan.total_cost, 2 * 16u128.pow(3) / 4);
    }

    #[test]
    fn distributed_sum_requires_reduction_cost() {
        // Force γ to distribute only k by using a 1-D grid and making the
        // operands' free indices tiny: S = Σ_k a[k]·b[k] (dot product).
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 64);
        let k = space.add_var("k", r);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("a", vec![r]));
        let tb = tensors.add(TensorDecl::dense("b", vec![r]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![k]);
        let lb = tree.leaf_input(tb, vec![k]);
        tree.contract(la, lb, IndexSet::EMPTY);
        let machine = Machine {
            grid: ProcessorGrid::new(vec![4]),
            word_cost: 1,
        };
        let plan = optimize_distribution(&tree, &space, &machine);
        // Distribute k: calc 2·64/4 = 32, reduce scalar over p=4: 2 words.
        assert_eq!(plan.total_cost, 32 + 2);
        let (gamma, mode) = plan.node_gamma[tree.root.0 as usize].as_ref().unwrap();
        assert!(gamma.vars().contains(k));
        assert_eq!(*mode, ReduceMode::Combine);
    }

    #[test]
    fn plan_assigns_every_contract_node() {
        let (space, tree) = matmul(8);
        let machine = Machine::new(ProcessorGrid::new(vec![2, 2]));
        let plan = optimize_distribution(&tree, &space, &machine);
        for id in tree.internal_postorder() {
            assert!(plan.node_gamma[id.0 as usize].is_some());
            assert!(plan.node_dist[id.0 as usize].is_some());
        }
    }

    #[test]
    fn state_count_scales_with_tuple_count() {
        let (_, tree) = matmul(8);
        let m1 = Machine::new(ProcessorGrid::new(vec![2]));
        let m2 = Machine::new(ProcessorGrid::new(vec![2, 2]));
        assert!(state_count(&tree, &m2) > state_count(&tree, &m1));
    }

    #[test]
    fn func_leaves_recompute_instead_of_broadcast() {
        // E = Σ_ce f(c,e)·g(c,e): function leaves are computed in place
        // under any distribution; the DP should finish without input moves.
        let mut space = IndexSpace::new();
        let r = space.add_range("V", 8);
        let c = space.add_var("c", r);
        let e = space.add_var("e", r);
        let mut tree = OpTree::new();
        let f1 = tree.leaf_func("f", vec![c, e], 100);
        let f2 = tree.leaf_func("g", vec![c, e], 100);
        tree.contract(f1, f2, IndexSet::EMPTY);
        let machine = Machine {
            grid: ProcessorGrid::new(vec![4]),
            word_cost: 1,
        };
        let plan = optimize_distribution(&tree, &space, &machine);
        // Distribute c (or e): per-proc evals 2·(8/4·8)·100 = 3200, calc
        // 2·16, reduce 2.
        assert_eq!(plan.total_cost, 2 * 100 * 16 + 2 * 16 + 2);
    }
}
