//! Construction of loop programs from operator trees.
//!
//! [`unfused_program`] produces the *direct* implementation of a formula
//! sequence — one perfect loop nest per contraction (paper Fig. 1(b)) and
//! one per function-evaluation leaf (Fig. 2) — with every intermediate
//! stored at full size.  This is the starting point that the memory
//! minimization (fusion), space-time and locality stages transform.

use crate::ir::{ARef, ArrayId, ArrayKind, LoopProgram, LoopVarId, Stmt, Sub, VarRange};
use std::collections::HashMap;
use tce_ir::{IndexSpace, IndexVar, Leaf, NodeId, OpKind, OpTree, TensorTable};

/// Result of building a program from a tree: the program plus the mapping
/// from tree nodes to the arrays holding their values.
#[derive(Debug, Clone)]
pub struct BuiltProgram {
    /// The loop program.
    pub program: LoopProgram,
    /// Array produced by each tree node (indexed by `NodeId.0`).
    pub node_array: Vec<ArrayId>,
    /// Loop variable for each source index used (by `IndexVar.0`).
    pub index_var: HashMap<u8, LoopVarId>,
}

/// Dimension order used for intermediate arrays: ascending index-variable
/// id (the order `IndexSet::iter` yields).
pub fn canonical_dims(set: tce_ir::IndexSet) -> Vec<IndexVar> {
    set.iter().collect()
}

/// Build the unfused (direct) implementation of `tree`.
///
/// `result_name` names the root array; intermediates are named `T1, T2, …`
/// in evaluation order; input arrays take their declared tensor names.
pub fn unfused_program(
    tree: &OpTree,
    space: &IndexSpace,
    tensors: &TensorTable,
    result_name: &str,
) -> BuiltProgram {
    let mut p = LoopProgram::new();
    let mut index_var: HashMap<u8, LoopVarId> = HashMap::new();
    let mut node_array: Vec<ArrayId> = vec![ArrayId(u32::MAX); tree.len()];
    let mut temp_counter = 0usize;

    // Declare one loop variable per source index in use.
    fn var_of(
        p: &mut LoopProgram,
        index_var: &mut HashMap<u8, LoopVarId>,
        v: IndexVar,
        space: &IndexSpace,
    ) -> LoopVarId {
        if let Some(&lv) = index_var.get(&v.0) {
            return lv;
        }
        let lv = p.add_var(space.var_name(v), VarRange::Full(v));
        index_var.insert(v.0, lv);
        lv
    }

    for id in tree.postorder() {
        match &tree.node(id).kind {
            OpKind::Leaf(Leaf::Input { tensor, indices }) => {
                let dims = indices.iter().map(|&v| VarRange::Full(v)).collect();
                let arr = p.add_array(&tensors.get(*tensor).name, dims, ArrayKind::Input(*tensor));
                node_array[id.0 as usize] = arr;
            }
            OpKind::Leaf(Leaf::One) => {
                let arr = p.add_array("one", Vec::new(), ArrayKind::One);
                node_array[id.0 as usize] = arr;
            }
            OpKind::Leaf(Leaf::Func {
                name,
                indices,
                cost_per_eval,
            }) => {
                // Materialize the function values into a full-size array
                // with one perfect nest (Fig. 2's T1/T2 production loops).
                let func = p.add_func(name, *cost_per_eval);
                let dims: Vec<VarRange> = indices.iter().map(|&v| VarRange::Full(v)).collect();
                temp_counter += 1;
                let arr = p.add_array(&format!("T{temp_counter}"), dims, ArrayKind::Intermediate);
                node_array[id.0 as usize] = arr;
                let loop_vars: Vec<LoopVarId> = indices
                    .iter()
                    .map(|&v| var_of(&mut p, &mut index_var, v, space))
                    .collect();
                let stmt = Stmt::Eval {
                    lhs: ARef {
                        array: arr,
                        subs: loop_vars.iter().map(|&lv| Sub::Var(lv)).collect(),
                    },
                    func,
                    args: loop_vars.iter().map(|&lv| Sub::Var(lv)).collect(),
                };
                p.body.push(nest(loop_vars, vec![stmt]));
            }
            OpKind::Contract { left, right } => {
                let out_dims = canonical_dims(tree.node(id).indices);
                let dims: Vec<VarRange> = out_dims.iter().map(|&v| VarRange::Full(v)).collect();
                let (name, kind) = if id == tree.root {
                    (result_name.to_string(), ArrayKind::Output)
                } else {
                    temp_counter += 1;
                    (format!("T{temp_counter}"), ArrayKind::Intermediate)
                };
                let arr = p.add_array(&name, dims, kind);
                node_array[id.0 as usize] = arr;

                let loop_idx = canonical_dims(tree.loop_indices(id));
                let loop_vars: Vec<LoopVarId> = loop_idx
                    .iter()
                    .map(|&v| var_of(&mut p, &mut index_var, v, space))
                    .collect();
                let ref_for = |node: NodeId, p: &LoopProgram| -> ARef {
                    let arr = node_array[node.0 as usize];
                    let subs = array_subs(p, arr, &index_var);
                    ARef { array: arr, subs }
                };
                let lhs = ref_for(id, &p);
                let rl = ref_for(*left, &p);
                let rr = ref_for(*right, &p);
                p.body.push(Stmt::Init { array: arr });
                p.body.push(nest(
                    loop_vars,
                    vec![Stmt::Accum {
                        lhs,
                        rhs: vec![rl, rr],
                        coeff: 1.0,
                    }],
                ));
            }
        }
    }

    BuiltProgram {
        program: p,
        node_array,
        index_var,
    }
}

/// Subscripts for a full (untiled, unfused) array: one `Sub::Var` per
/// dimension, using the loop variable of that dimension's source index.
fn array_subs(p: &LoopProgram, arr: ArrayId, index_var: &HashMap<u8, LoopVarId>) -> Vec<Sub> {
    p.array(arr)
        .dims
        .iter()
        .map(|d| match *d {
            VarRange::Full(v) => Sub::Var(index_var[&v.0]),
            _ => unreachable!("unfused arrays have full dims"),
        })
        .collect()
}

/// Wrap statements in a loop nest over `vars` (outermost first).
pub fn nest(vars: Vec<LoopVarId>, mut body: Vec<Stmt>) -> Stmt {
    assert!(!vars.is_empty(), "empty loop nest");
    for &v in vars.iter().rev() {
        body = vec![Stmt::Loop { var: v, body }];
    }
    match body.pop() {
        Some(s) => s,
        None => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{IndexSet, TensorDecl};

    /// Fig 1(a) tree: T1 = B·D, T2 = T1·C, S = T2·A.
    fn fig1() -> (IndexSpace, TensorTable, OpTree) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 4);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tensors, tree)
    }

    #[test]
    fn builds_valid_unfused_program() {
        let (space, tensors, tree) = fig1();
        let built = unfused_program(&tree, &space, &tensors, "S");
        built.program.validate().unwrap();
        // 4 inputs + T1 + T2 + S = 7 arrays; 3 nests + 3 inits = 6 stmts.
        assert_eq!(built.program.arrays.len(), 7);
        assert_eq!(built.program.body.len(), 6);
        assert_eq!(built.program.vars.len(), 10);
    }

    #[test]
    fn intermediate_arrays_have_full_dims() {
        let (space, tensors, tree) = fig1();
        let built = unfused_program(&tree, &space, &tensors, "S");
        let t1 = built
            .program
            .arrays
            .iter()
            .find(|a| a.name == "T1")
            .unwrap();
        assert_eq!(t1.dims.len(), 4);
        assert_eq!(t1.elements(&space), 256); // N^4 at N=4
        let s = built.program.arrays.iter().find(|a| a.name == "S").unwrap();
        assert!(matches!(s.kind, ArrayKind::Output));
    }

    #[test]
    fn func_leaves_get_production_nests() {
        // E = Σ_ce f1(c,e)·g(c,e) — two function leaves, each materialized.
        let mut space = IndexSpace::new();
        let n = space.add_range("V", 3);
        let c = space.add_var("c", n);
        let e = space.add_var("e", n);
        let tensors = TensorTable::new();
        let mut tree = OpTree::new();
        let f1 = tree.leaf_func("f1", vec![c, e], 1000);
        let f2 = tree.leaf_func("f2", vec![c, e], 1000);
        tree.contract(f1, f2, IndexSet::EMPTY);
        let built = unfused_program(&tree, &space, &tensors, "E");
        built.program.validate().unwrap();
        assert_eq!(built.program.funcs.len(), 2);
        // Two eval nests + init + contraction nest.
        assert_eq!(built.program.body.len(), 4);
        let t1 = built
            .program
            .arrays
            .iter()
            .find(|a| a.name == "T1")
            .unwrap();
        assert_eq!(t1.elements(&space), 9);
    }

    #[test]
    fn one_leaf_becomes_constant_array() {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 5);
        let i = space.add_var("i", n);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![i]);
        let one = tree.leaf_one();
        tree.contract(la, one, IndexSet::EMPTY);
        let built = unfused_program(&tree, &space, &tensors, "E");
        built.program.validate().unwrap();
        assert!(built
            .program
            .arrays
            .iter()
            .any(|a| matches!(a.kind, ArrayKind::One)));
    }

    #[test]
    fn nest_wraps_outermost_first() {
        let mut p = LoopProgram::new();
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 2);
        let i = space.add_var("i", n);
        let j = space.add_var("j", n);
        let vi = p.add_var("i", VarRange::Full(i));
        let vj = p.add_var("j", VarRange::Full(j));
        let arr = p.add_array("X", vec![], ArrayKind::Intermediate);
        let s = nest(vec![vi, vj], vec![Stmt::Init { array: arr }]);
        match s {
            Stmt::Loop { var, body } => {
                assert_eq!(var, vi);
                match &body[0] {
                    Stmt::Loop { var, .. } => assert_eq!(*var, vj),
                    other => panic!("expected inner loop, got {other:?}"),
                }
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }
}
