//! # tce-calib — hardware calibration for the pipeline's cost models
//!
//! Every DP in the pipeline (operation minimization, locality tiling,
//! space-time trade-off, distribution) optimizes abstract unit costs —
//! flops, element accesses, moved words — even though measured per-variant
//! GEMM throughput on one machine varies by >3×.  This crate closes the
//! gap: short seeded microbenchmark probes ([`probe::run_probes`]) measure
//!
//! * GEMM GF/s per dispatched kernel variant across small/medium/large
//!   shape classes,
//! * pack/permute copy bandwidth,
//! * per-level memory bandwidth for the sysfs cache geometry already read
//!   by `tce_tensor::kernels`, and
//! * pool task-dispatch overhead,
//!
//! and serialize them into a versioned JSON [`Profile`]
//! (`tce calibrate --out profile.json`).  A profile loaded back
//! (`--calibration FILE` or `TCE_CALIBRATION`) is viewed through
//! [`CostRates`] — time-based (nanosecond) rates the planning stages
//! consume in place of unit costs.  When no profile is loaded the
//! pipeline keeps today's unit costs bit for bit; calibration is strictly
//! additive.
//!
//! The profile format is hand-rolled JSON (this workspace is
//! dependency-free by design); [`json`] holds the minimal parser.

#![warn(missing_docs)]

pub mod json;
pub mod probe;

use std::fmt::Write as _;
use tce_tensor::kernels::CacheInfo;

/// Version stamp of the serialized profile schema.  Loading a profile
/// with a different version is an error (re-calibrate instead of
/// misreading fields).
pub const PROFILE_VERSION: u64 = 1;

/// Flops below this ceiling are the "small" GEMM shape class.
pub const SMALL_FLOPS_CEILING: u128 = 2_000_000;
/// Flops below this ceiling (and at least [`SMALL_FLOPS_CEILING`]) are
/// the "medium" class; everything above is "large".
pub const MEDIUM_FLOPS_CEILING: u128 = 30_000_000;

/// GEMM shape class a contraction falls into, by flop count.  The probe
/// shapes are chosen to land one per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// Fits in-cache; dominated by overheads.
    Small,
    /// L2/L3-resident working sets.
    Medium,
    /// Streaming from memory.
    Large,
}

impl ShapeClass {
    /// Stable lower-case name (`small`, `medium`, `large`).
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Small => "small",
            ShapeClass::Medium => "medium",
            ShapeClass::Large => "large",
        }
    }
}

/// Classify a contraction by its multiply-add flop count.
pub fn shape_class(flops: u128) -> ShapeClass {
    if flops < SMALL_FLOPS_CEILING {
        ShapeClass::Small
    } else if flops < MEDIUM_FLOPS_CEILING {
        ShapeClass::Medium
    } else {
        ShapeClass::Large
    }
}

/// Measured GEMM throughput (GF/s) for one kernel variant, per shape
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmRates {
    /// GF/s on the small-class probe.
    pub small: f64,
    /// GF/s on the medium-class probe.
    pub medium: f64,
    /// GF/s on the large-class probe.
    pub large: f64,
}

impl GemmRates {
    /// Rate for a shape class.
    pub fn for_class(&self, class: ShapeClass) -> f64 {
        match class {
            ShapeClass::Small => self.small,
            ShapeClass::Medium => self.medium,
            ShapeClass::Large => self.large,
        }
    }
}

/// A hardware calibration profile: everything the probes measured, plus
/// the cache geometry they measured it against.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Schema version ([`PROFILE_VERSION`]).
    pub version: u64,
    /// Seed the probes ran with.
    pub seed: u64,
    /// Probe time budget in milliseconds.
    pub budget_ms: u64,
    /// GEMM GF/s per kernel variant name (`scalar`, `sse2`, `avx2`),
    /// variants this host supports only.
    pub gemm_gfs: Vec<(String, GemmRates)>,
    /// Pack-copy bandwidth, GB/s.
    pub copy_gbs: f64,
    /// Blocked-permute bandwidth (read+write), GB/s.
    pub permute_gbs: f64,
    /// Per-level read bandwidth, GB/s, keyed `l1`/`l2`/`l3`/`mem`.
    pub mem_gbs: Vec<(String, f64)>,
    /// Pool task-dispatch overhead per task, nanoseconds.
    pub dispatch_ns: f64,
    /// Cache geometry (bytes) the memory probes sized themselves by.
    pub cache: CacheInfo,
}

fn fmt_f64(x: f64) -> String {
    // `{:?}` is the shortest representation that round-trips through
    // `str::parse::<f64>` — valid JSON number syntax for finite values.
    format!("{x:?}")
}

impl Profile {
    /// Serialize to the versioned JSON document `tce calibrate` writes.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"version\": {},", self.version);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"budget_ms\": {},", self.budget_ms);
        let _ = writeln!(s, "  \"gemm_gfs\": {{");
        for (i, (name, r)) in self.gemm_gfs.iter().enumerate() {
            let comma = if i + 1 == self.gemm_gfs.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                s,
                "    \"{name}\": {{\"small\": {}, \"medium\": {}, \"large\": {}}}{comma}",
                fmt_f64(r.small),
                fmt_f64(r.medium),
                fmt_f64(r.large)
            );
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"copy_gbs\": {},", fmt_f64(self.copy_gbs));
        let _ = writeln!(s, "  \"permute_gbs\": {},", fmt_f64(self.permute_gbs));
        let _ = writeln!(s, "  \"mem_gbs\": {{");
        for (i, (name, g)) in self.mem_gbs.iter().enumerate() {
            let comma = if i + 1 == self.mem_gbs.len() { "" } else { "," };
            let _ = writeln!(s, "    \"{name}\": {}{comma}", fmt_f64(*g));
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"dispatch_ns\": {},", fmt_f64(self.dispatch_ns));
        let _ = writeln!(
            s,
            "  \"cache\": {{\"l1d\": {}, \"l2\": {}, \"l3\": {}}}",
            self.cache.l1d, self.cache.l2, self.cache.l3
        );
        let _ = writeln!(s, "}}");
        s
    }

    /// Parse a profile from its JSON serialization.  Rejects unknown
    /// versions and non-finite or non-positive rates with one-line
    /// messages (the CLI surfaces them verbatim).
    pub fn from_json(src: &str) -> Result<Profile, String> {
        let doc = json::Json::parse(src)?;
        let version = doc.get_u64("version")?;
        if version != PROFILE_VERSION {
            return Err(format!(
                "unsupported profile version {version} (expected {PROFILE_VERSION}); re-run `tce calibrate`"
            ));
        }
        let rate = |v: f64, what: &str| -> Result<f64, String> {
            if v.is_finite() && v > 0.0 {
                Ok(v)
            } else {
                Err(format!("{what} must be a positive finite number, got {v}"))
            }
        };
        let mut gemm_gfs = Vec::new();
        for (name, val) in doc.get("gemm_gfs").ok_or("missing `gemm_gfs`")?.entries()? {
            gemm_gfs.push((
                name.clone(),
                GemmRates {
                    small: rate(val.get_f64("small")?, "gemm_gfs.small")?,
                    medium: rate(val.get_f64("medium")?, "gemm_gfs.medium")?,
                    large: rate(val.get_f64("large")?, "gemm_gfs.large")?,
                },
            ));
        }
        if gemm_gfs.is_empty() {
            return Err("`gemm_gfs` must list at least one kernel variant".into());
        }
        let mut mem_gbs = Vec::new();
        for (name, val) in doc.get("mem_gbs").ok_or("missing `mem_gbs`")?.entries()? {
            mem_gbs.push((name.clone(), rate(val.as_f64()?, "mem_gbs level")?));
        }
        let cache = doc.get("cache").ok_or("missing `cache`")?;
        Ok(Profile {
            version,
            seed: doc.get_u64("seed")?,
            budget_ms: doc.get_u64("budget_ms")?,
            gemm_gfs,
            copy_gbs: rate(doc.get_f64("copy_gbs")?, "copy_gbs")?,
            permute_gbs: rate(doc.get_f64("permute_gbs")?, "permute_gbs")?,
            mem_gbs,
            dispatch_ns: rate(doc.get_f64("dispatch_ns")?, "dispatch_ns")?,
            cache: CacheInfo {
                l1d: cache.get_u64("l1d")? as usize,
                l2: cache.get_u64("l2")? as usize,
                l3: cache.get_u64("l3")? as usize,
            },
        })
    }

    /// Load and validate a profile from a file.
    pub fn load(path: &str) -> Result<Profile, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
        Profile::from_json(&src)
    }

    /// Measured GB/s of a memory level, if probed.
    pub fn level_gbs(&self, name: &str) -> Option<f64> {
        self.mem_gbs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, g)| *g)
    }

    /// GEMM rates for a variant name; falls back to the first probed
    /// variant when this host's active variant was not in the profile
    /// (e.g. a profile from a weaker machine).
    pub fn gemm_rates(&self, variant: &str) -> &GemmRates {
        self.gemm_gfs
            .iter()
            .find(|(n, _)| n == variant)
            .map(|(_, r)| r)
            .unwrap_or(&self.gemm_gfs[0].1)
    }

    /// The time-based cost-rate view of this profile for `variant` (the
    /// kernel variant the engine will dispatch to), which the planning
    /// stages consume.
    pub fn rates(&self, variant: &str) -> CostRates {
        let g = self.gemm_rates(variant);
        // GB/s is (very nearly) bytes per nanosecond, so ns per 8-byte
        // element = 8 / GB/s.
        let elem_ns = |gbs: f64| 8.0 / gbs;
        let word = std::mem::size_of::<f64>() as u128;
        let mut levels = Vec::new();
        for (name, cap_bytes) in [
            ("l1", self.cache.l1d),
            ("l2", self.cache.l2),
            ("l3", self.cache.l3),
        ] {
            if let Some(gbs) = self.level_gbs(name) {
                levels.push(LevelRate {
                    name: name.to_string(),
                    capacity_elements: cap_bytes as u128 / word,
                    ns_per_element: elem_ns(gbs),
                });
            }
        }
        let mem_gbs = self.level_gbs("mem").unwrap_or(8.0);
        levels.push(LevelRate {
            name: "mem".to_string(),
            capacity_elements: 1u128 << 40,
            ns_per_element: elem_ns(mem_gbs),
        });
        CostRates {
            flop_ns_small: 1.0 / g.small,
            flop_ns_medium: 1.0 / g.medium,
            flop_ns_large: 1.0 / g.large,
            copy_ns: elem_ns(self.copy_gbs),
            permute_ns: elem_ns(self.permute_gbs),
            levels,
            word_ns: elem_ns(mem_gbs),
            dispatch_ns: self.dispatch_ns,
        }
    }
}

/// Per-element miss pricing for one memory level, derived from a
/// [`Profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRate {
    /// Level name (`l1`, `l2`, `l3`, `mem`).
    pub name: String,
    /// Capacity in 8-byte elements.
    pub capacity_elements: u128,
    /// Nanoseconds to pull one element through this level.
    pub ns_per_element: f64,
}

/// Time-based cost rates: the view of a [`Profile`] the planners consume.
/// All rates are nanoseconds per abstract unit, so stage costs expressed
/// in these rates are directly comparable to (and testable against) wall
/// time.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRates {
    /// ns per multiply-add flop on a small-class contraction.
    pub flop_ns_small: f64,
    /// ns per multiply-add flop on a medium-class contraction.
    pub flop_ns_medium: f64,
    /// ns per multiply-add flop on a large-class contraction.
    pub flop_ns_large: f64,
    /// ns per element of pack copy traffic.
    pub copy_ns: f64,
    /// ns per element of permute traffic.
    pub permute_ns: f64,
    /// Per-level miss pricing, smallest level first (always ends with the
    /// unbounded `mem` level).
    pub levels: Vec<LevelRate>,
    /// ns per 8-byte word moved between ranks (memory-bandwidth proxy;
    /// there is no network in this reproduction).
    pub word_ns: f64,
    /// ns of pool overhead per dispatched task.
    pub dispatch_ns: f64,
}

impl CostRates {
    /// ns per flop for a contraction of `flops` total multiply-adds.
    pub fn flop_ns_for(&self, flops: u128) -> f64 {
        match shape_class(flops) {
            ShapeClass::Small => self.flop_ns_small,
            ShapeClass::Medium => self.flop_ns_medium,
            ShapeClass::Large => self.flop_ns_large,
        }
    }

    /// The distribution DP's `word_cost` equivalent: how many flops one
    /// moved word is worth on this hardware (≥ 1).
    pub fn word_cost_flops(&self) -> u128 {
        (self.word_ns / self.flop_ns_medium).round().max(1.0) as u128
    }

    /// Canonical one-line form, used to key plan caches that must
    /// distinguish configurations compiled under different profiles.
    pub fn canon(&self) -> String {
        let mut s = format!(
            "flop={:?}/{:?}/{:?};copy={:?};perm={:?};word={:?};disp={:?};levels=",
            self.flop_ns_small,
            self.flop_ns_medium,
            self.flop_ns_large,
            self.copy_ns,
            self.permute_ns,
            self.word_ns,
            self.dispatch_ns
        );
        for l in &self.levels {
            let _ = write!(
                s,
                "{}:{}:{:?},",
                l.name, l.capacity_elements, l.ns_per_element
            );
        }
        s
    }
}

/// Parse and load `TCE_CALIBRATION` without applying it: `Ok(None)` when
/// unset, `Err` with a one-line diagnostic when the file is missing,
/// unreadable, or not a valid versioned profile.  CLI entry points call
/// this up front so a garbage value is a clean nonzero exit, the same
/// contract as `TCE_THREADS`.
pub fn calibration_env_requested() -> Result<Option<Profile>, String> {
    match std::env::var("TCE_CALIBRATION") {
        Err(_) => Ok(None),
        Ok(path) => Profile::load(&path)
            .map(Some)
            .map_err(|e| format!("bad TCE_CALIBRATION `{path}`: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but fully-populated profile for round-trip tests.
    pub(crate) fn sample_profile() -> Profile {
        Profile {
            version: PROFILE_VERSION,
            seed: 42,
            budget_ms: 50,
            gemm_gfs: vec![
                (
                    "scalar".into(),
                    GemmRates {
                        small: 2.5,
                        medium: 5.0,
                        large: 4.0,
                    },
                ),
                (
                    "avx2".into(),
                    GemmRates {
                        small: 8.0,
                        medium: 25.0,
                        large: 20.0,
                    },
                ),
            ],
            copy_gbs: 12.0,
            permute_gbs: 6.0,
            mem_gbs: vec![
                ("l1".into(), 200.0),
                ("l2".into(), 80.0),
                ("l3".into(), 40.0),
                ("mem".into(), 16.0),
            ],
            dispatch_ns: 1500.0,
            cache: CacheInfo {
                l1d: 32 << 10,
                l2: 1 << 20,
                l3: 8 << 20,
            },
        }
    }

    #[test]
    fn profile_round_trips_through_json() {
        let p = sample_profile();
        let parsed = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut p = sample_profile();
        p.version = PROFILE_VERSION + 1;
        let err = Profile::from_json(&p.to_json()).unwrap_err();
        assert!(err.contains("unsupported profile version"), "{err}");
    }

    #[test]
    fn garbage_rates_are_rejected() {
        let p = sample_profile();
        let zeroed = p.to_json().replace("\"copy_gbs\": 12.0", "\"copy_gbs\": 0");
        assert!(Profile::from_json(&zeroed)
            .unwrap_err()
            .contains("copy_gbs"));
        assert!(Profile::from_json("not json at all").is_err());
        assert!(Profile::from_json("{}").is_err());
    }

    #[test]
    fn rates_convert_bandwidth_to_ns() {
        let p = sample_profile();
        let r = p.rates("avx2");
        assert!((r.flop_ns_medium - 1.0 / 25.0).abs() < 1e-12);
        // 12 GB/s → 8/12 ns per element.
        assert!((r.copy_ns - 8.0 / 12.0).abs() < 1e-12);
        // Levels end with the unbounded mem level.
        assert_eq!(r.levels.last().unwrap().name, "mem");
        assert_eq!(r.levels[0].name, "l1");
        assert_eq!(r.levels[0].capacity_elements, (32 << 10) / 8);
        // Unknown variant falls back to the first entry (scalar).
        let rs = p.rates("nonsense");
        assert!((rs.flop_ns_medium - 1.0 / 5.0).abs() < 1e-12);
        // word_cost: word_ns = 8/16 = 0.5ns; flop_ns_medium = 0.04ns → 13.
        assert_eq!(r.word_cost_flops(), 13);
    }

    #[test]
    fn shape_classes_split_at_documented_ceilings() {
        assert_eq!(shape_class(0), ShapeClass::Small);
        assert_eq!(shape_class(SMALL_FLOPS_CEILING), ShapeClass::Medium);
        assert_eq!(shape_class(MEDIUM_FLOPS_CEILING), ShapeClass::Large);
        assert_eq!(shape_class(u128::MAX), ShapeClass::Large);
    }

    #[test]
    fn canon_distinguishes_profiles() {
        let p = sample_profile();
        let mut q = sample_profile();
        q.copy_gbs = 13.0;
        assert_ne!(p.rates("avx2").canon(), q.rates("avx2").canon());
        assert_eq!(p.rates("avx2").canon(), p.rates("avx2").canon());
    }
}
