//! Pareto frontiers over (memory, operations) pairs.
//!
//! The space-time trade-off DP (paper §5) "maintains a set of
//! pareto-optimal fusion/recomputation configurations, in which the
//! recomputation cost is used as a third metric".  A point dominates
//! another if it is no worse in both memory and operations.

/// One point of a frontier: memory (elements) and operations (flops),
/// with an opaque tag identifying the choice that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoPoint<T> {
    /// Temporary-array elements.
    pub mem: u128,
    /// Arithmetic operations (including recomputation).
    pub ops: u128,
    /// Provenance of this point.
    pub tag: T,
}

/// A pareto frontier: points sorted by increasing memory, strictly
/// decreasing operations.
#[derive(Debug, Clone, Default)]
pub struct Pareto<T> {
    points: Vec<ParetoPoint<T>>,
}

impl<T: Clone> Pareto<T> {
    /// Empty frontier.
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Insert a candidate, keeping only non-dominated points.
    pub fn insert(&mut self, mem: u128, ops: u128, tag: T) {
        // Dominated by an existing point?
        if self.points.iter().any(|p| p.mem <= mem && p.ops <= ops) {
            return;
        }
        self.points.retain(|p| !(mem <= p.mem && ops <= p.ops));
        let pos = self.points.partition_point(|p| p.mem < mem);
        self.points.insert(pos, ParetoPoint { mem, ops, tag });
    }

    /// The frontier, sorted by increasing memory.
    pub fn points(&self) -> &[ParetoPoint<T>] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Minimal-operations point with memory ≤ `limit`.
    pub fn best_within(&self, limit: u128) -> Option<&ParetoPoint<T>> {
        self.points
            .iter()
            .filter(|p| p.mem <= limit)
            .min_by_key(|p| p.ops)
    }

    /// Minimal-memory point.
    pub fn min_mem(&self) -> Option<&ParetoPoint<T>> {
        self.points.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_nondominated() {
        let mut p = Pareto::new();
        p.insert(10, 100, "a");
        p.insert(20, 50, "b");
        p.insert(15, 120, "c"); // dominated by a
        p.insert(5, 200, "d");
        assert_eq!(p.len(), 3);
        let mems: Vec<u128> = p.points().iter().map(|x| x.mem).collect();
        assert_eq!(mems, vec![5, 10, 20]);
        let opss: Vec<u128> = p.points().iter().map(|x| x.ops).collect();
        assert_eq!(opss, vec![200, 100, 50]);
    }

    #[test]
    fn new_point_evicts_dominated() {
        let mut p = Pareto::new();
        p.insert(10, 100, 0);
        p.insert(20, 90, 1);
        p.insert(5, 80, 2); // dominates both
        assert_eq!(p.len(), 1);
        assert_eq!(p.points()[0].tag, 2);
    }

    #[test]
    fn equal_points_do_not_duplicate() {
        let mut p = Pareto::new();
        p.insert(10, 100, 0);
        p.insert(10, 100, 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn best_within_limit() {
        let mut p = Pareto::new();
        p.insert(10, 100, "low-mem");
        p.insert(100, 10, "low-ops");
        assert_eq!(p.best_within(50).unwrap().tag, "low-mem");
        assert_eq!(p.best_within(1000).unwrap().tag, "low-ops");
        assert!(p.best_within(5).is_none());
        assert_eq!(p.min_mem().unwrap().tag, "low-mem");
    }

    #[test]
    fn frontier_invariant_on_random_input() {
        use tce_ir::rng::Rng;
        let mut rng = Rng::new(3);
        let mut p = Pareto::new();
        let mut all = Vec::new();
        for i in 0..500 {
            let (m, o) = (rng.u128_in(0..1000), rng.u128_in(0..1000));
            all.push((m, o));
            p.insert(m, o, i);
        }
        // Every kept point is non-dominated within `all`; every input is
        // dominated by some kept point.
        for pt in p.points() {
            assert!(!all
                .iter()
                .any(|&(m, o)| (m < pt.mem && o <= pt.ops) || (m <= pt.mem && o < pt.ops)));
        }
        for &(m, o) in &all {
            assert!(p.points().iter().any(|pt| pt.mem <= m && pt.ops <= o));
        }
        // Sorted, strictly decreasing ops.
        for w in p.points().windows(2) {
            assert!(w[0].mem < w[1].mem);
            assert!(w[0].ops > w[1].ops);
        }
    }
}
