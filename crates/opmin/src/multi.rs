//! Multi-term optimization and common-subexpression factorization.
//!
//! A statement may sum several product terms (the paper's `A3A` energy
//! expression sums six `X·Y` contributions).  Each term is optimized
//! independently with the single-term search, then identical intermediates
//! across the resulting trees are identified by canonical hashing
//! (exploiting commutativity: `X·Y` and `Y·X` share a key) so shared
//! contractions and shared expensive function evaluations are only paid
//! once.  This is the distributivity-aware part of the paper's "Algebraic
//! Transformations" module: it searches over term-local parenthesizations
//! and then *factors* the common subexpressions the search exposes.

use crate::single::{optimize_subset_dp, OpMinProblem};
use std::collections::HashMap;
use tce_ir::{Assignment, IndexSpace, Leaf, NodeId, OpKind, OpTree};

/// The optimized form of one statement.
#[derive(Debug, Clone)]
pub struct MultiResult {
    /// Per-term optimal trees with their coefficients, in source order.
    pub terms: Vec<(f64, OpTree)>,
    /// Contraction + function flops if every term is evaluated
    /// independently.
    pub ops_independent: u128,
    /// Flops when common subexpressions across terms are evaluated once.
    pub ops_with_cse: u128,
    /// Number of distinct intermediate values (contraction nodes) across
    /// all terms after sharing.
    pub unique_intermediates: usize,
    /// Total intermediate count before sharing.
    pub total_intermediates: usize,
}

/// Canonical structural key of a subtree, insensitive to operand order.
fn canon_key(tree: &OpTree, id: NodeId, memo: &mut Vec<Option<String>>) -> String {
    if let Some(k) = &memo[id.0 as usize] {
        return k.clone();
    }
    let key = match &tree.node(id).kind {
        OpKind::Leaf(Leaf::Input { tensor, indices }) => {
            let idx: Vec<String> = indices.iter().map(|v| v.0.to_string()).collect();
            format!("I{}[{}]", tensor.0, idx.join(","))
        }
        OpKind::Leaf(Leaf::Func { name, indices, .. }) => {
            let idx: Vec<String> = indices.iter().map(|v| v.0.to_string()).collect();
            format!("F{}[{}]", name, idx.join(","))
        }
        OpKind::Leaf(Leaf::One) => "1".to_string(),
        OpKind::Contract { left, right } => {
            let mut lk = canon_key(tree, *left, memo);
            let mut rk = canon_key(tree, *right, memo);
            if rk < lk {
                std::mem::swap(&mut lk, &mut rk);
            }
            format!("C({lk},{rk})->{:x}", tree.node(id).indices.0)
        }
    };
    memo[id.0 as usize] = Some(key.clone());
    key
}

/// Optimize every term of `stmt` and compute sharing statistics.
///
/// # Errors
/// Returns an error if a term is empty or malformed.
pub fn optimize_assignment(stmt: &Assignment, space: &IndexSpace) -> Result<MultiResult, String> {
    let output = stmt.lhs.index_set();
    let mut terms = Vec::with_capacity(stmt.terms.len());
    for term in &stmt.terms {
        // A term may not use every summation index (e.g. a two-term
        // statement where terms sum over different subsets); restrict the
        // output request to indices the term actually has.
        let p = OpMinProblem::from_term(output, term)?;
        let r = optimize_subset_dp(&p, space);
        terms.push((term.coeff, r.tree));
    }

    let mut ops_independent: u128 = 0;
    let mut ops_with_cse: u128 = 0;
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut unique = 0usize;
    let mut total = 0usize;
    for (_, tree) in &terms {
        let mut memo = vec![None; tree.len()];
        for id in tree.postorder() {
            let node_ops = tree.node_ops(id, space);
            ops_independent = ops_independent.saturating_add(node_ops);
            let is_contract = matches!(tree.node(id).kind, OpKind::Contract { .. });
            if is_contract {
                total += 1;
            }
            let key = canon_key(tree, id, &mut memo);
            if seen.insert(key, ()).is_none() {
                ops_with_cse = ops_with_cse.saturating_add(node_ops);
                if is_contract {
                    unique += 1;
                }
            }
        }
    }
    Ok(MultiResult {
        terms,
        ops_independent,
        ops_with_cse,
        unique_intermediates: unique,
        total_intermediates: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{Factor, Product, TensorDecl, TensorRef, TensorTable};

    fn small_space() -> (IndexSpace, TensorTable) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 6);
        space.add_vars("i j k l", n);
        let mut tensors = TensorTable::new();
        tensors.add(TensorDecl::dense("A", vec![n, n]));
        tensors.add(TensorDecl::dense("B", vec![n, n]));
        tensors.add(TensorDecl::dense("S", vec![n, n]));
        (space, tensors)
    }

    fn v(space: &IndexSpace, n: &str) -> tce_ir::IndexVar {
        space.var_by_name(n).unwrap()
    }

    #[test]
    fn shares_identical_terms() {
        // S[i,j] = Σ_k A[i,k]B[k,j] + A[i,k]B[k,j]: the two terms are
        // identical, so CSE halves the contraction work.
        let (space, tensors) = small_space();
        let (i, j, k) = (v(&space, "i"), v(&space, "j"), v(&space, "k"));
        let a = tensors.by_name("A").unwrap();
        let b = tensors.by_name("B").unwrap();
        let s = tensors.by_name("S").unwrap();
        let term = Product::of(vec![
            Factor::Tensor(TensorRef::new(a, vec![i, k])),
            Factor::Tensor(TensorRef::new(b, vec![k, j])),
        ]);
        let stmt = Assignment {
            lhs: TensorRef::new(s, vec![i, j]),
            accumulate: false,
            sum_indices: k.singleton(),
            terms: vec![term.clone(), term],
        };
        let r = optimize_assignment(&stmt, &space).unwrap();
        assert_eq!(r.terms.len(), 2);
        assert_eq!(r.total_intermediates, 2);
        assert_eq!(r.unique_intermediates, 1);
        assert_eq!(r.ops_with_cse * 2, r.ops_independent);
    }

    #[test]
    fn commuted_operands_share() {
        // A[i,k]·B[k,j] and B[k,j]·A[i,k] must hash identically.
        let (space, tensors) = small_space();
        let (i, j, k) = (v(&space, "i"), v(&space, "j"), v(&space, "k"));
        let a = tensors.by_name("A").unwrap();
        let b = tensors.by_name("B").unwrap();
        let s = tensors.by_name("S").unwrap();
        let t1 = Product::of(vec![
            Factor::Tensor(TensorRef::new(a, vec![i, k])),
            Factor::Tensor(TensorRef::new(b, vec![k, j])),
        ]);
        let t2 = Product::of(vec![
            Factor::Tensor(TensorRef::new(b, vec![k, j])),
            Factor::Tensor(TensorRef::new(a, vec![i, k])),
        ]);
        let stmt = Assignment {
            lhs: TensorRef::new(s, vec![i, j]),
            accumulate: false,
            sum_indices: k.singleton(),
            terms: vec![t1, t2],
        };
        let r = optimize_assignment(&stmt, &space).unwrap();
        assert_eq!(r.unique_intermediates, 1);
    }

    #[test]
    fn distinct_terms_do_not_share() {
        // A·B vs A·A over different index patterns: no sharing beyond leaves.
        let (space, tensors) = small_space();
        let (i, j, k) = (v(&space, "i"), v(&space, "j"), v(&space, "k"));
        let a = tensors.by_name("A").unwrap();
        let b = tensors.by_name("B").unwrap();
        let s = tensors.by_name("S").unwrap();
        let t1 = Product::of(vec![
            Factor::Tensor(TensorRef::new(a, vec![i, k])),
            Factor::Tensor(TensorRef::new(b, vec![k, j])),
        ]);
        let t2 = Product::of(vec![
            Factor::Tensor(TensorRef::new(a, vec![i, k])),
            Factor::Tensor(TensorRef::new(a, vec![k, j])),
        ]);
        let stmt = Assignment {
            lhs: TensorRef::new(s, vec![i, j]),
            accumulate: false,
            sum_indices: k.singleton(),
            terms: vec![t1, t2],
        };
        let r = optimize_assignment(&stmt, &space).unwrap();
        assert_eq!(r.unique_intermediates, 2);
        assert_eq!(r.ops_with_cse, r.ops_independent);
    }

    #[test]
    fn shared_function_leaves_counted_once() {
        // Two terms both evaluating f(i,k): the expensive evaluation is
        // charged once under CSE.
        let (space, tensors) = small_space();
        let (i, j, k) = (v(&space, "i"), v(&space, "j"), v(&space, "k"));
        let s = tensors.by_name("S").unwrap();
        let b = tensors.by_name("B").unwrap();
        let f = |name: &str| {
            Factor::Func(tce_ir::FuncEval {
                name: name.into(),
                indices: vec![i, k],
                cost_per_eval: 500,
            })
        };
        let t1 = Product::of(vec![f("g"), Factor::Tensor(TensorRef::new(b, vec![k, j]))]);
        let t2 = Product::of(vec![f("g"), Factor::Tensor(TensorRef::new(b, vec![k, j]))]);
        let stmt = Assignment {
            lhs: TensorRef::new(s, vec![i, j]),
            accumulate: false,
            sum_indices: k.singleton(),
            terms: vec![t1, t2],
        };
        let r = optimize_assignment(&stmt, &space).unwrap();
        let func_cost = 500u128 * 36;
        // Independent: 2×(func + contraction); CSE: 1×func + 1×contraction.
        assert_eq!(r.ops_independent, 2 * (func_cost + 2 * 216));
        assert_eq!(r.ops_with_cse, func_cost + 2 * 216);
    }
}
