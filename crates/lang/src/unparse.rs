//! Unparser: render a lowered [`tce_ir::Program`] back to specification
//! source.  `compile(unparse(p))` reproduces `p` (round-trip tested),
//! which makes synthesized or machine-built programs serializable in the
//! same notation users write.

use std::fmt::Write;
use tce_ir::{Factor, Program};

/// Render `program` as specification source text.
///
/// Function declarations are reconstructed from the function factors in
/// use (name, argument ranges, cost); symmetry and sparsity annotations
/// are emitted on tensor declarations.
pub fn unparse(program: &Program) -> String {
    let sp = &program.space;
    let mut out = String::new();

    // Ranges.
    for r in 0..sp.num_ranges() {
        let rid = tce_ir::RangeId(r as u16);
        let _ = writeln!(
            out,
            "range {} = {};",
            sp.range_name(rid),
            sp.range_extent(rid)
        );
    }
    // Index variables, grouped by range in declaration order.
    for r in 0..sp.num_ranges() {
        let rid = tce_ir::RangeId(r as u16);
        let names: Vec<&str> = sp
            .vars()
            .filter(|&v| sp.range_of(v) == rid)
            .map(|v| sp.var_name(v))
            .collect();
        if !names.is_empty() {
            let _ = writeln!(out, "index {} : {};", names.join(", "), sp.range_name(rid));
        }
    }
    // Tensors.
    for (_, decl) in program.tensors.iter() {
        let dims: Vec<&str> = decl.dims.iter().map(|&d| sp.range_name(d)).collect();
        let _ = write!(out, "tensor {}({})", decl.name, dims.join(", "));
        for g in &decl.symmetry {
            let pos: Vec<String> = g.positions.iter().map(|p| p.to_string()).collect();
            let kw = if g.antisymmetric {
                "antisymmetric"
            } else {
                "symmetric"
            };
            let _ = write!(out, " {kw}({})", pos.join(","));
        }
        if decl.sparse {
            let _ = write!(out, " sparse");
        }
        let _ = writeln!(out, ";");
    }
    // Functions (deduplicated from use sites).
    let mut seen_funcs: Vec<String> = Vec::new();
    for stmt in &program.stmts {
        for term in &stmt.terms {
            for f in &term.factors {
                if let Factor::Func(func) = f {
                    if !seen_funcs.contains(&func.name) {
                        seen_funcs.push(func.name.clone());
                        let args: Vec<&str> = func
                            .indices
                            .iter()
                            .map(|&v| sp.range_name(sp.range_of(v)))
                            .collect();
                        let _ = writeln!(
                            out,
                            "function {}({}) cost {};",
                            func.name,
                            args.join(", "),
                            func.cost_per_eval
                        );
                    }
                }
            }
        }
    }
    // Statements.
    for stmt in &program.stmts {
        let _ = writeln!(out, "{};", stmt.display(sp, &program.tensors));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn roundtrip(src: &str) {
        let p1 = compile(src).unwrap();
        let text = unparse(&p1);
        let p2 = compile(&text).unwrap_or_else(|e| panic!("unparse output failed: {e}\n{text}"));
        // Structural equality of the essential pieces.
        assert_eq!(p1.stmts, p2.stmts, "statements differ\n{text}");
        assert_eq!(p1.space.num_vars(), p2.space.num_vars());
        assert_eq!(p1.tensors.len(), p2.tensors.len());
        for (id, d1) in p1.tensors.iter() {
            let d2 = p2.tensors.get(id);
            assert_eq!(d1.name, d2.name);
            assert_eq!(d1.dims, d2.dims);
            assert_eq!(d1.symmetry, d2.symmetry);
            assert_eq!(d1.sparse, d2.sparse);
        }
    }

    #[test]
    fn roundtrips_section2() {
        roundtrip(
            "range N = 10;
             index a, b, c, d, e, f, i, j, k, l : N;
             tensor A(N, N, N, N); tensor B(N, N, N, N);
             tensor C(N, N, N, N); tensor D(N, N, N, N);
             tensor S(N, N, N, N);
             S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * C[d,f,j,k] * D[c,d,e,l];",
        );
    }

    #[test]
    fn roundtrips_functions_symmetry_and_multiterm() {
        roundtrip(
            "range V = 8; range O = 4;
             index a, b1, c : V; index i, k : O;
             tensor X(V, V) symmetric(0,1);
             tensor Y(V, V, O, O) antisymmetric(2,3) sparse;
             tensor S(V);
             function f1(V, V, O) cost 750;
             S[a] = sum[b1,c,i,k] 2 * X[a,b1] * Y[b1,c,i,k] * f1(a, c, k)
                  - X[a,c] * Y[c,b1,k,i] * f1(b1, a, i);",
        );
    }

    #[test]
    fn roundtrips_sequence_with_accumulate() {
        roundtrip(
            "range N = 5;
             index i, j, k : N;
             tensor A(N, N); tensor T(N, N); tensor S(N);
             T[i,j] = sum[k] A[i,k] * A[k,j];
             S[i] = sum[j] T[i,j] * A[i,j];
             S[i] += sum[j] A[j,i] * T[j,i];",
        );
    }

    #[test]
    fn roundtrips_scalar_and_coefficients() {
        roundtrip(
            "range N = 3;
             index i, j : N;
             tensor A(N, N); tensor E();
             E = sum[i,j] 0.5 * A[i,j] * A[j,i] - 3 * A[i,j] * A[i,j];",
        );
    }
}
