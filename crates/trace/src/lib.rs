//! # tce-trace — pipeline-wide observability
//!
//! Lightweight spans, counters and memory accounting for the synthesis
//! pipeline and its execution engines.  Every stage of the paper's Fig. 5
//! optimizes against a *predicted* cost (operation counts, intermediate
//! storage, recomputation, memory-hierarchy accesses); this crate records
//! what actually happens at run time so those predictions can be tested as
//! contracts (see `tests/cost_model_conformance.rs` in the workspace root).
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero overhead when off.**  Tracing is disabled by default;
//!    every recording entry point starts with a single `Relaxed` atomic
//!    load and returns immediately when disabled.  Hot loops (the GETT
//!    micro-kernel, the interpreter's statement dispatch) are *not*
//!    instrumented per iteration — engines accumulate locally and flush
//!    one counter per run.
//! 2. **No cross-thread contention when on.**  Events go to a thread-local
//!    buffer; buffers are registered once per thread in a process-wide
//!    registry and merged by [`take`] when a trace is collected.  The
//!    worker threads of `tce-par`'s persistent pool therefore record into
//!    their own buffers for free, which is how per-worker busy/idle time
//!    and per-thread pack/kernel attribution work.
//! 3. **No dependencies.**  Only `std`; the exporter writes
//!    chrome://tracing JSON by hand.
//!
//! ```
//! tce_trace::reset();
//! tce_trace::set_enabled(true);
//! {
//!     let _s = tce_trace::span("stage.opmin");
//!     tce_trace::counter("opmin.nodes_expanded", 42);
//! }
//! tce_trace::set_enabled(false);
//! let trace = tce_trace::take();
//! assert_eq!(trace.counter_total("opmin.nodes_expanded"), 42);
//! assert_eq!(trace.span_count("stage.opmin"), 1);
//! assert!(trace.to_chrome_json().contains("\"stage.opmin\""));
//! ```

#![warn(missing_docs)]

pub mod report;

pub use report::ProfileReport;

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Global enable flag.  All recording entry points check this first with a
/// `Relaxed` load, so a disabled build path costs one predictable branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable or disable recording process-wide.  Events recorded while
/// enabled stay buffered until [`take`] or [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.  Use this to guard *computation*
/// of trace-only values (e.g. a cost-model evaluation done purely for the
/// trace); plain [`counter`]/[`span`] calls guard themselves.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic epoch shared by every thread, fixed at first use.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// What one event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A timed interval (`begin_ns..end_ns` on thread `tid`).
    Span {
        /// Start, ns since the trace epoch.
        begin_ns: u64,
        /// End, ns since the trace epoch.
        end_ns: u64,
    },
    /// A monotone counter increment.
    Counter {
        /// Timestamp of the increment, ns since the trace epoch.
        at_ns: u64,
        /// Amount added.
        delta: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event name (dotted convention: `stage.opmin`, `gett.pack`, …).
    pub name: Cow<'static, str>,
    /// Recording thread's trace id (dense, assigned at first event).
    pub tid: u64,
    /// Payload.
    pub kind: EventKind,
}

/// Thread-local event buffer, shared with the global registry so [`take`]
/// can drain buffers of threads that are still alive (pool workers park
/// forever and never run TLS destructors).
type Buf = Arc<Mutex<Vec<Event>>>;

fn registry() -> &'static Mutex<Vec<Buf>> {
    static REGISTRY: OnceLock<Mutex<Vec<Buf>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: RefCell<Option<(u64, Buf)>> = const { RefCell::new(None) };
}

/// Run `f` with this thread's `(tid, buffer)`, registering on first use.
fn with_local(f: impl FnOnce(u64, &Buf)) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, buf) = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buf: Buf = Arc::new(Mutex::new(Vec::new()));
            // Recover from poisoning: the registry is append-only and the
            // buffers hold only finished events, so a panicked recorder
            // cannot leave either inconsistent — propagating the poison
            // would just turn one worker panic into a process-wide
            // cascade through every later trace call.
            registry()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&buf));
            (tid, buf)
        });
        f(*tid, buf);
    });
}

fn push(ev: Event) {
    with_local(|tid, buf| {
        let mut ev = ev;
        ev.tid = tid;
        buf.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    });
}

/// RAII guard recording a span from construction to drop.  A disabled
/// trace yields an inert guard (no clock read, no allocation).
pub struct Span {
    inner: Option<(Cow<'static, str>, u64)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, begin_ns)) = self.inner.take() {
            push(Event {
                name,
                tid: 0,
                kind: EventKind::Span {
                    begin_ns,
                    end_ns: now_ns(),
                },
            });
        }
    }
}

/// Open a span; it closes when the returned guard drops.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some((name.into(), now_ns())),
    }
}

/// Record an already-measured interval (used where begin/end are taken
/// with raw [`now_ns`] reads inside a kernel loop).
#[inline]
pub fn span_at(name: impl Into<Cow<'static, str>>, begin_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    push(Event {
        name: name.into(),
        tid: 0,
        kind: EventKind::Span { begin_ns, end_ns },
    });
}

/// Record a zero-length marker span — "this stage ran and had nothing to
/// do" (e.g. the space-time stage when fusion alone fits the limit).
#[inline]
pub fn mark(name: impl Into<Cow<'static, str>>) {
    if !enabled() {
        return;
    }
    let t = now_ns();
    span_at(name, t, t);
}

/// Add `delta` to the named counter.
#[inline]
pub fn counter(name: impl Into<Cow<'static, str>>, delta: u64) {
    if !enabled() {
        return;
    }
    push(Event {
        name: name.into(),
        tid: 0,
        kind: EventKind::Counter {
            at_ns: now_ns(),
            delta,
        },
    });
}

/// [`counter`] for `u128` cost-model values (saturating to `u64`).
#[inline]
pub fn counter_u128(name: impl Into<Cow<'static, str>>, delta: u128) {
    counter(name, u64::try_from(delta).unwrap_or(u64::MAX));
}

// ---------------------------------------------------------------------------
// Memory accounting: live bytes of materialized intermediates, with a
// process-wide high-water mark.  Updates are per-tensor (not per-element),
// so plain atomics suffice.

static MEM_CURRENT: AtomicU64 = AtomicU64::new(0);
static MEM_PEAK: AtomicU64 = AtomicU64::new(0);

/// Record `bytes` of intermediate storage coming live.
#[inline]
pub fn mem_alloc(bytes: u64) {
    if !enabled() {
        return;
    }
    let now = MEM_CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    MEM_PEAK.fetch_max(now, Ordering::Relaxed);
}

/// Record `bytes` of intermediate storage released.
#[inline]
pub fn mem_free(bytes: u64) {
    if !enabled() {
        return;
    }
    // Saturating: a free without a matching traced alloc (tracing was
    // enabled mid-flight) must not wrap.
    let mut cur = MEM_CURRENT.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(bytes);
        match MEM_CURRENT.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// Current live traced bytes.
pub fn mem_current_bytes() -> u64 {
    MEM_CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of traced bytes since the last [`reset`].
pub fn mem_peak_bytes() -> u64 {
    MEM_PEAK.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Collection.

/// A merged trace: every event from every thread since the last
/// [`reset`]/[`take`], plus the memory high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, in per-thread recording order (threads interleaved).
    pub events: Vec<Event>,
    /// High-water mark of traced intermediate memory, bytes.
    pub mem_peak_bytes: u64,
}

/// Drain every thread's buffer into a [`Trace`].  Does not change the
/// enabled flag; memory accounting is reset so the next collection starts
/// a fresh high-water mark.
pub fn take() -> Trace {
    let mut events = Vec::new();
    for buf in registry().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        events.append(&mut buf.lock().unwrap_or_else(|e| e.into_inner()));
    }
    let mem_peak = MEM_PEAK.swap(0, Ordering::Relaxed);
    MEM_CURRENT.store(0, Ordering::Relaxed);
    Trace {
        events,
        mem_peak_bytes: mem_peak,
    }
}

/// Discard all buffered events and reset memory accounting.
pub fn reset() {
    let _ = take();
}

impl Trace {
    /// Sum of all increments to the named counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match e.kind {
                EventKind::Counter { delta, .. } => delta,
                EventKind::Span { .. } => 0,
            })
            .sum()
    }

    /// Largest single increment recorded for the named counter (0 when
    /// absent).  Gauge-style counters — block sizes, capacities — report
    /// their value as the delta, so the maximum is the reading.
    pub fn counter_max(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match e.kind {
                EventKind::Counter { delta, .. } => delta,
                EventKind::Span { .. } => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of spans with the given name.
    pub fn span_count(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.name == name && matches!(e.kind, EventKind::Span { .. }))
            .count()
    }

    /// Total duration (ns) over all spans with the given name.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match e.kind {
                EventKind::Span { begin_ns, end_ns } => end_ns.saturating_sub(begin_ns),
                EventKind::Counter { .. } => 0,
            })
            .sum()
    }

    /// Distinct event names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.events.iter().map(|e| e.name.as_ref()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Serialize as chrome://tracing "trace event format" JSON: spans as
    /// complete (`"ph":"X"`) events, counters as `"ph":"C"` events, one
    /// process, `tid` = trace thread id.  Load via `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let name = escape_json(&e.name);
            match e.kind {
                EventKind::Span { begin_ns, end_ns } => {
                    let ts = begin_ns as f64 / 1e3;
                    let dur = end_ns.saturating_sub(begin_ns) as f64 / 1e3;
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"cat\":\"tce\",\"ph\":\"X\",\
                         \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{}}}",
                        e.tid
                    ));
                }
                EventKind::Counter { at_ns, delta } => {
                    let ts = at_ns as f64 / 1e3;
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"cat\":\"tce\",\"ph\":\"C\",\
                         \"ts\":{ts:.3},\"pid\":1,\"tid\":{},\
                         \"args\":{{\"value\":{delta}}}}}",
                        e.tid
                    ));
                }
            }
        }
        out.push_str(&format!(
            "\n],\"otherData\":{{\"mem_peak_bytes\":{}}}}}\n",
            self.mem_peak_bytes
        ));
        out
    }

    /// Aggregate into a human-readable [`ProfileReport`].
    pub fn report(&self) -> ProfileReport {
        ProfileReport::from_trace(self)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Tests in this module share process-global trace state.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        reset();
        set_enabled(false);
        {
            let _s = span("never");
            counter("never.count", 5);
            mem_alloc(100);
        }
        let t = take();
        assert!(t.events.is_empty());
        assert_eq!(t.mem_peak_bytes, 0);
    }

    #[test]
    fn spans_and_counters_round_trip() {
        let _g = locked();
        reset();
        set_enabled(true);
        {
            let _s = span("outer");
            let _t = span("inner");
            counter("c", 3);
            counter("c", 4);
            span_at("pre", 10, 25);
            mark("marker");
        }
        set_enabled(false);
        let t = take();
        assert_eq!(t.span_count("outer"), 1);
        assert_eq!(t.span_count("inner"), 1);
        assert_eq!(t.span_count("pre"), 1);
        assert_eq!(t.span_count("marker"), 1);
        assert_eq!(t.counter_total("c"), 7);
        assert_eq!(t.span_total_ns("pre"), 15);
        assert_eq!(t.span_total_ns("marker"), 0);
        // Inner closes before outer (drop order), so durations nest.
        assert!(t.span_total_ns("outer") >= t.span_total_ns("inner"));
    }

    #[test]
    fn memory_accounting_tracks_high_water() {
        let _g = locked();
        reset();
        set_enabled(true);
        mem_alloc(100);
        mem_alloc(50);
        assert_eq!(mem_current_bytes(), 150);
        mem_free(100);
        mem_alloc(20);
        assert_eq!(mem_current_bytes(), 70);
        assert_eq!(mem_peak_bytes(), 150);
        set_enabled(false);
        let t = take();
        assert_eq!(t.mem_peak_bytes, 150);
        // take() resets accounting.
        assert_eq!(mem_current_bytes(), 0);
        assert_eq!(mem_peak_bytes(), 0);
    }

    #[test]
    fn mem_free_without_alloc_saturates() {
        let _g = locked();
        reset();
        set_enabled(true);
        mem_free(1000);
        assert_eq!(mem_current_bytes(), 0);
        set_enabled(false);
        reset();
    }

    #[test]
    fn threads_merge_with_distinct_tids() {
        let _g = locked();
        reset();
        set_enabled(true);
        counter("main.c", 1);
        let hs: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    counter("thread.c", i + 1);
                    let _s = span("thread.span");
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        set_enabled(false);
        let t = take();
        assert_eq!(t.counter_total("thread.c"), 1 + 2 + 3);
        assert_eq!(t.span_count("thread.span"), 3);
        let mut tids: Vec<u64> = t
            .events
            .iter()
            .filter(|e| e.name == "thread.c")
            .map(|e| e.tid)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread records under its own tid");
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let _g = locked();
        reset();
        set_enabled(true);
        {
            let _s = span("stage.opmin");
            counter("opmin.count", 9);
            span_at("weird\"name\\x", 5, 9);
        }
        set_enabled(false);
        let t = take();
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":9"));
        assert!(json.contains("weird\\\"name\\\\x"));
        // Brace/bracket balance (no string values contain braces here).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn take_drains_and_second_take_is_empty() {
        let _g = locked();
        reset();
        set_enabled(true);
        counter("x", 1);
        set_enabled(false);
        let t1 = take();
        assert_eq!(t1.counter_total("x"), 1);
        let t2 = take();
        assert!(t2.events.is_empty());
    }
}
