//! 256-bit AVX2+FMA kernels — the fast tier on every mainstream x86-64
//! core since Haswell.
//!
//! The GEMM micro-kernel uses an 8×6 register tile vectorized along M:
//! per summation step it loads one packed-A column as two `__m256d`,
//! broadcasts each of the six packed-B elements, and issues twelve FMAs.
//! Twelve accumulators + two A vectors + one broadcast = 15 of the 16
//! ymm registers; an 8×8 tile would need 16 accumulators alone and spill
//! every iteration, which is why the tile is 8×6.
//!
//! FMA contracts each multiply-add to one rounding, so results differ
//! from the scalar oracle in the last ulps (the differential suite
//! bounds the difference at 1e-10) but remain bitwise deterministic
//! across thread counts for a fixed variant.

#![cfg(any(target_arch = "x86", target_arch = "x86_64"))]

#[cfg(target_arch = "x86")]
use std::arch::x86::*;
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// 8×6 AVX2+FMA micro-kernel: `acc[r*6 + c] = Σ_k ap[k*8+r]·bp[k*6+c]`.
///
/// # Safety
/// Caller must ensure the host supports AVX2 and FMA (CPUID-checked by
/// the dispatcher).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn microkernel_8x6(ap: &[f64], bp: &[f64], kb: usize, acc: &mut [f64]) {
    const MR: usize = 8;
    const NR: usize = 6;
    debug_assert!(ap.len() >= kb * MR && bp.len() >= kb * NR && acc.len() >= MR * NR);
    // acc column c, rows [0..4) and [4..8).
    let mut c_lo = [_mm256_setzero_pd(); NR];
    let mut c_hi = [_mm256_setzero_pd(); NR];
    for kk in 0..kb {
        let a = ap.as_ptr().add(kk * MR);
        let a_lo = _mm256_loadu_pd(a);
        let a_hi = _mm256_loadu_pd(a.add(4));
        let b = bp.as_ptr().add(kk * NR);
        for c in 0..NR {
            let bv = _mm256_broadcast_sd(&*b.add(c));
            c_lo[c] = _mm256_fmadd_pd(a_lo, bv, c_lo[c]);
            c_hi[c] = _mm256_fmadd_pd(a_hi, bv, c_hi[c]);
        }
    }
    // Registers hold columns; the engine wants rows (`acc[r*NR + c]`).
    let mut col = [0.0f64; MR];
    for (c, (&lo, &hi)) in c_lo.iter().zip(&c_hi).enumerate() {
        _mm256_storeu_pd(col.as_mut_ptr(), lo);
        _mm256_storeu_pd(col.as_mut_ptr().add(4), hi);
        for r in 0..MR {
            acc[r * NR + c] = col[r];
        }
    }
}

/// Vectorized equal-length copy (`_mm256_loadu/storeu_pd`, 16 elements
/// per step) — the unit-stride pack fast path.
///
/// # Safety
/// Caller must ensure AVX support; `dst.len() == src.len()`.
#[target_feature(enable = "avx")]
pub unsafe fn copy_f64(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0;
    while i + 16 <= n {
        _mm256_storeu_pd(dp.add(i), _mm256_loadu_pd(sp.add(i)));
        _mm256_storeu_pd(dp.add(i + 4), _mm256_loadu_pd(sp.add(i + 4)));
        _mm256_storeu_pd(dp.add(i + 8), _mm256_loadu_pd(sp.add(i + 8)));
        _mm256_storeu_pd(dp.add(i + 12), _mm256_loadu_pd(sp.add(i + 12)));
        i += 16;
    }
    while i + 4 <= n {
        _mm256_storeu_pd(dp.add(i), _mm256_loadu_pd(sp.add(i)));
        i += 4;
    }
    while i < n {
        *dp.add(i) = *sp.add(i);
        i += 1;
    }
}

/// Transpose four source columns of four consecutive `iu` values into
/// four destination rows: the classic unpack + `permute2f128` 4×4 f64
/// in-register transpose.
#[inline(always)]
unsafe fn transpose4x4(sp: *const f64, dp: *mut f64, scs: usize, drs: usize) {
    let r0 = _mm256_loadu_pd(sp);
    let r1 = _mm256_loadu_pd(sp.add(scs));
    let r2 = _mm256_loadu_pd(sp.add(2 * scs));
    let r3 = _mm256_loadu_pd(sp.add(3 * scs));
    let t0 = _mm256_unpacklo_pd(r0, r1);
    let t1 = _mm256_unpackhi_pd(r0, r1);
    let t2 = _mm256_unpacklo_pd(r2, r3);
    let t3 = _mm256_unpackhi_pd(r2, r3);
    _mm256_storeu_pd(dp, _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(dp.add(drs), _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(dp.add(2 * drs), _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(dp.add(3 * drs), _mm256_permute2f128_pd(t1, t3, 0x31));
}

/// Transpose-structured copy (`dst[d0+iu*drs+il] = src[s0+iu+il*scs]`)
/// processed as 8×8 blocks of four 4×4 in-register transpose tiles, with
/// scalar edges.
///
/// # Safety
/// Caller must ensure AVX2 support; index bounds are the caller's
/// contract exactly as in the scalar version.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub unsafe fn transpose_tile(
    src: &[f64],
    dst: &mut [f64],
    s0: usize,
    d0: usize,
    nu: usize,
    nl: usize,
    scs: usize,
    drs: usize,
) {
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let nu4 = nu / 4 * 4;
    let nl4 = nl / 4 * 4;
    // 8×8 macro-blocks keep one source stripe and one destination stripe
    // hot; each is four 4×4 register transposes.
    let mut iu = 0;
    while iu + 8 <= nu4 {
        let mut il = 0;
        while il + 8 <= nl4 {
            for (du, dl) in [(0, 0), (0, 4), (4, 0), (4, 4)] {
                transpose4x4(
                    sp.add(s0 + iu + du + (il + dl) * scs),
                    dp.add(d0 + (iu + du) * drs + il + dl),
                    scs,
                    drs,
                );
            }
            il += 8;
        }
        while il + 4 <= nl4 {
            transpose4x4(
                sp.add(s0 + iu + il * scs),
                dp.add(d0 + iu * drs + il),
                scs,
                drs,
            );
            transpose4x4(
                sp.add(s0 + iu + 4 + il * scs),
                dp.add(d0 + (iu + 4) * drs + il),
                scs,
                drs,
            );
            il += 4;
        }
        for il in il..nl {
            for r in 0..8 {
                *dp.add(d0 + (iu + r) * drs + il) = *sp.add(s0 + iu + r + il * scs);
            }
        }
        iu += 8;
    }
    while iu + 4 <= nu4 {
        let mut il = 0;
        while il + 4 <= nl4 {
            transpose4x4(
                sp.add(s0 + iu + il * scs),
                dp.add(d0 + iu * drs + il),
                scs,
                drs,
            );
            il += 4;
        }
        for il in il..nl {
            for r in 0..4 {
                *dp.add(d0 + (iu + r) * drs + il) = *sp.add(s0 + iu + r + il * scs);
            }
        }
        iu += 4;
    }
    for iu in iu..nu {
        for il in 0..nl {
            *dp.add(d0 + iu * drs + il) = *sp.add(s0 + iu + il * scs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn have_avx2_fma() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    #[test]
    fn microkernel_matches_scalar_reference() {
        if !have_avx2_fma() {
            return;
        }
        let kb = 9;
        let ap: Vec<f64> = (0..kb * 8).map(|x| (x as f64 * 0.13).sin()).collect();
        let bp: Vec<f64> = (0..kb * 6).map(|x| (x as f64 * 0.41).cos()).collect();
        let mut acc = [f64::NAN; 48];
        unsafe { microkernel_8x6(&ap, &bp, kb, &mut acc) };
        for r in 0..8 {
            for c in 0..6 {
                let mut want = 0.0;
                for kk in 0..kb {
                    want += ap[kk * 8 + r] * bp[kk * 6 + c];
                }
                assert!((acc[r * 6 + c] - want).abs() < 1e-12, "r={r} c={c}");
            }
        }
    }

    #[test]
    fn copy_handles_all_remainders() {
        if !is_x86_feature_detected!("avx") {
            return;
        }
        for n in [0usize, 1, 3, 4, 5, 15, 16, 17, 33, 100] {
            let src: Vec<f64> = (0..n).map(|x| x as f64 + 0.5).collect();
            let mut dst = vec![0.0f64; n];
            unsafe { copy_f64(&mut dst, &src) };
            assert_eq!(dst, src, "n={n}");
        }
    }

    #[test]
    fn transpose_matches_scalar_on_odd_tiles() {
        if !have_avx2_fma() {
            return;
        }
        for (nu, nl) in [(1, 1), (4, 4), (8, 8), (9, 13), (17, 5), (23, 29)] {
            let scs = nu + 3; // room between columns
            let drs = nl + 2;
            let len = (nl + 1) * scs + nu + 8;
            let dlen = (nu + 1) * drs + nl + 8;
            let src: Vec<f64> = (0..len).map(|x| (x * x) as f64).collect();
            let mut dst = vec![0.0f64; dlen];
            let mut want = vec![0.0f64; dlen];
            unsafe { transpose_tile(&src, &mut dst, 1, 2, nu, nl, scs, drs) };
            super::super::scalar::transpose_tile(&src, &mut want, 1, 2, nu, nl, scs, drs);
            assert_eq!(dst, want, "nu={nu} nl={nl}");
        }
    }
}
