//! E8 — paper §7: data distribution and communication minimization.
//!
//! Claims reproduced:
//! * the `B[j,k,t]` / `⟨k,*,1⟩` ownership semantics on a 2×4×8 grid,
//!   including `myrange` blocks;
//! * the `T1 ⟨1,t,j⟩ → ⟨j,t,1⟩` vs `T2 ⟨j,*,1⟩ → ⟨j,t,1⟩` redistribution
//!   asymmetry (movement vs none);
//! * the DP's `O(q²·|T|)` complexity scaling (states grow as the tuple
//!   count `q`, runtime roughly as `q²` per node);
//! * the model's exactness against the element-level simulation.

use std::time::Instant;
use tce_bench::tables::{fmt_u, Table};
use tce_core::dist::{
    enumerate_tuples, move_cost, move_cost_elementwise, optimize_distribution, state_count,
    DistEntry, DistTuple, Machine,
};
use tce_core::ir::{IndexSet, IndexSpace, TensorDecl, TensorTable};
use tce_core::par::{myrange, ProcessorGrid};

fn main() {
    println!("E8: §7 — data distribution and communication minimization\n");

    // Ownership example.
    let mut sp = IndexSpace::new();
    let rn = sp.add_range("N", 16);
    let j = sp.add_var("j", rn);
    let k = sp.add_var("k", rn);
    let t = sp.add_var("t", rn);
    let grid = ProcessorGrid::new(vec![2, 4, 8]);
    let alpha = DistTuple(vec![
        DistEntry::Idx(k),
        DistEntry::Replicate,
        DistEntry::One,
    ]);
    println!("B[j,k,t] with {} on 2×4×8:", alpha.display(&sp));
    println!(
        "  myrange(z, 16, 2) blocks: {:?}, {:?}",
        myrange(0, 16, 2),
        myrange(1, 16, 2)
    );
    let held: Vec<u128> = grid
        .processors()
        .map(|id| alpha.local_elements(&[j, k, t], &sp, &grid, &grid.coords(id)))
        .collect();
    let holders = held.iter().filter(|&&h| h > 0).count();
    println!(
        "  {} of 64 processors hold data ({} elements each)",
        holders,
        fmt_u(held.iter().copied().max().unwrap())
    );
    assert_eq!(holders, 8, "z3 = 0 plane only");
    assert_eq!(held.iter().copied().max().unwrap(), 16 * 8 * 16);

    // Redistribution example.
    let t1_from = DistTuple(vec![DistEntry::One, DistEntry::Idx(t), DistEntry::Idx(j)]);
    let t2_from = DistTuple(vec![
        DistEntry::Idx(j),
        DistEntry::Replicate,
        DistEntry::One,
    ]);
    let to = DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(t), DistEntry::One]);
    let c1 = move_cost(&[j, t], &sp, &grid, &t1_from, &to);
    let c2 = move_cost(&[j, t], &sp, &grid, &t2_from, &to);
    println!(
        "\nredistribution of T1[j,t]: {} -> {}: {} elements move",
        t1_from.display(&sp),
        to.display(&sp),
        fmt_u(c1)
    );
    println!(
        "redistribution of T2[j,t]: {} -> {}: {} elements move",
        t2_from.display(&sp),
        to.display(&sp),
        fmt_u(c2)
    );
    assert!(c1 > 0 && c2 == 0, "paper's asymmetry");
    // Exactness vs element-level enumeration.
    assert_eq!(
        c1,
        move_cost_elementwise(&[j, t], &sp, &grid, &t1_from, &to)
    );

    // Complexity scaling: states ∝ q, time ≈ q² per node.
    println!("\nDP complexity scaling (matmul-chain tree, |T| = 2 contractions):");
    let mut space = IndexSpace::new();
    let r = space.add_range("N", 8);
    let (i2, j2, k2, l2) = (
        space.add_var("i", r),
        space.add_var("j", r),
        space.add_var("k", r),
        space.add_var("l", r),
    );
    let mut tensors = TensorTable::new();
    let ta = tensors.add(TensorDecl::dense("A", vec![r, r]));
    let tb = tensors.add(TensorDecl::dense("B", vec![r, r]));
    let tc = tensors.add(TensorDecl::dense("C", vec![r, r]));
    let mut tree = tce_core::ir::OpTree::new();
    let la = tree.leaf_input(ta, vec![i2, j2]);
    let lb = tree.leaf_input(tb, vec![j2, k2]);
    let ab = tree.contract(la, lb, IndexSet::from_vars([i2, k2]));
    let lc = tree.leaf_input(tc, vec![k2, l2]);
    tree.contract(ab, lc, IndexSet::from_vars([i2, l2]));

    let mut tab = Table::new(&["grid", "q (tuples)", "states", "time (ms)", "cost"]);
    let mut prev_time = 0.0f64;
    for dims in [vec![2usize], vec![2, 2], vec![2, 2, 2]] {
        let machine = Machine {
            grid: ProcessorGrid::new(dims.clone()),
            word_cost: 1,
        };
        let q = enumerate_tuples(IndexSet::from_vars([i2, j2, k2, l2]), machine.grid.rank()).len();
        let states = state_count(&tree, &machine);
        let t0 = Instant::now();
        let plan = optimize_distribution(&tree, &space, &machine);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        tab.row(&[
            format!("{dims:?}"),
            q.to_string(),
            states.to_string(),
            format!("{ms:.2}"),
            fmt_u(plan.total_cost),
        ]);
        prev_time = ms;
    }
    let _ = prev_time;
    println!("{}", tab.render());

    // Simulated-machine validation of the whole tuple space at a tiny size.
    let mut sp2 = IndexSpace::new();
    let rn2 = sp2.add_range("M", 4);
    let (x, y) = (sp2.add_var("x", rn2), sp2.add_var("y", rn2));
    let g2 = ProcessorGrid::new(vec![2, 2]);
    let tuples = enumerate_tuples(IndexSet::from_vars([x, y]), 2);
    let mut checked = 0usize;
    for beta in &tuples {
        for alpha in &tuples {
            assert_eq!(
                move_cost(&[x, y], &sp2, &g2, beta, alpha),
                move_cost_elementwise(&[x, y], &sp2, &g2, beta, alpha),
            );
            checked += 1;
        }
    }
    println!("move-cost model verified element-by-element on {checked} (β, α) pairs");
    println!("E8 OK");
}
