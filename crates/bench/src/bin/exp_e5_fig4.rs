//! E5 — paper Fig. 4 + §3 discussion: tiling and partial fusion.
//!
//! Claims reproduced:
//! * the Fig. 4 table — space `{X: B⁴, T1: B², T2: B², Y: B⁴}` and
//!   integral time `C_i·(V/B)²·V³·O` — both analytically and by executing
//!   the tiled program at every `B`;
//! * "as `B` is increased, performance will improve and then level off
//!   and then deteriorate": the weighted cost under a two-level hierarchy
//!   is non-monotone in `B` with an interior optimum;
//! * the space-time tile search picks the largest block that fits the
//!   memory limit.

use std::collections::HashMap;
use tce_bench::tables::{fmt_u, Table};
use tce_core::exec::{CacheSink, Interpreter, LruCache, NoSink};
use tce_core::scenarios::A3AScenario;
use tce_core::spacetime::{search_tiles, spacetime_dp, tiled_memory, tiled_ops, Blocks};

fn main() {
    println!("E5: Fig. 4 — tiling and partial fusion\n");
    let sc = A3AScenario::new(8, 3, 500);
    let amps = sc.amplitudes(3);
    let mut inputs = HashMap::new();
    inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
    let funcs = sc.functions();
    let expect = sc.reference_energy(&amps);

    // Fast-memory level for the sweep: holds the B=4 working set but not
    // the B=8 one.
    let fast_elems = 700usize;
    println!("V = 8, O = 3, C_i = 500; fast memory = {fast_elems} elements, miss cost 100\n");

    let mut t = Table::new(&[
        "B",
        "mem model",
        "mem measured",
        "iflops model",
        "iflops measured",
        "misses",
        "weighted cost",
    ]);
    let mut costs = Vec::new();
    for bb in [1usize, 2, 4, 8] {
        let table = sc.fig4_table(bb);
        let mem_model: u128 = table[..4].iter().map(|r| r.1).sum::<u128>() + 1;
        let iflops_model = table[1].2 + table[2].2;

        let p = sc.fig4_program(bb);
        let mut interp = Interpreter::new(&p, &sc.space, &inputs, &funcs).unwrap();
        interp.run(&mut NoSink);
        assert!((interp.output().get(&[]) - expect).abs() < 1e-9 * expect.abs().max(1.0));
        let mem_meas = interp.allocated_temp_elements();
        let iflops_meas = interp.stats.func_flops;
        assert_eq!(mem_meas, mem_model, "B = {bb}");
        assert_eq!(iflops_meas, iflops_model, "B = {bb}");

        let sizes: Vec<usize> = p
            .arrays
            .iter()
            .map(|a| a.elements(&sc.space) as usize)
            .collect();
        let mut sink = CacheSink::new(LruCache::new(fast_elems, 1), &sizes);
        let mut interp2 = Interpreter::new(&p, &sc.space, &inputs, &funcs).unwrap();
        interp2.run(&mut sink);
        let misses = sink.cache.misses;
        let cost = interp.stats.total_flops() as f64 + 100.0 * misses as f64;
        costs.push((bb, cost));
        t.row(&[
            bb.to_string(),
            fmt_u(mem_model),
            fmt_u(mem_meas),
            fmt_u(iflops_model),
            fmt_u(iflops_meas),
            fmt_u(misses as u128),
            format!("{cost:.3e}"),
        ]);
    }
    println!("{}", t.render());

    // Shape claim: improve → (level off) → deteriorate.
    let best = costs
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0;
    println!("optimal B under the hierarchy: {best}");
    assert!(
        costs.first().unwrap().1 > costs.iter().map(|c| c.1).fold(f64::MAX, f64::min),
        "B = 1 must not be optimal (improvement phase exists)"
    );
    assert!(
        costs.last().unwrap().1 > costs.iter().map(|c| c.1).fold(f64::MAX, f64::min),
        "B = V must not be optimal (deterioration phase exists)"
    );

    // The space-time optimizer's own tile search.
    let front = spacetime_dp(&sc.tree, &sc.space, usize::MAX).unwrap();
    let cfg = &front.min_mem().unwrap().tag;
    for limit in [10u128, 50, 600, 10_000] {
        match search_tiles(&sc.tree, &sc.space, cfg, limit) {
            Some(r) => {
                let bmax = r.blocks.values().copied().max().unwrap_or(1);
                println!(
                    "memory limit {limit:>6}: tile search picks max B = {bmax}, mem {} ops {}",
                    fmt_u(r.memory),
                    fmt_u(r.ops)
                );
                assert!(r.memory <= limit);
                // Cross-check the analytic helpers on the chosen blocks.
                assert_eq!(r.memory, tiled_memory(&sc.tree, &sc.space, cfg, &r.blocks));
                assert_eq!(r.ops, tiled_ops(&sc.tree, &sc.space, cfg, &r.blocks));
            }
            None => println!("memory limit {limit:>6}: infeasible"),
        }
    }
    // Larger limits must never increase the optimal recomputation cost.
    let mut last = u128::MAX;
    for limit in [10u128, 50, 600, 10_000, u128::MAX] {
        if let Some(r) = search_tiles(&sc.tree, &sc.space, cfg, limit) {
            assert!(r.ops <= last);
            last = r.ops;
        }
    }
    let _ = Blocks::new();
    println!("E5 OK");
}
