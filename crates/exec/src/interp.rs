//! Interpreter for loop programs.
//!
//! Executes a [`tce_loops::LoopProgram`] against real dense tensors,
//! counting operations, function evaluations and element accesses.  Every
//! transformation in the framework (operation minimization, fusion,
//! tiling, locality blocking) is verified by running the transformed
//! program here and comparing against the reference einsum — the
//! interpreter is the semantic oracle of the whole reproduction.
//!
//! Tiled subscripts `tile·B + intra` may reconstruct an index beyond its
//! extent when the block does not divide it; such iterations are skipped,
//! matching the `min(N, (t+1)·B)` upper bounds of real tiled code.

use crate::error::ExecError;
use std::collections::HashMap;
use tce_ir::{IndexSpace, TensorId};
use tce_loops::{ARef, ArrayKind, LoopProgram, Stmt, Sub, VarRange};
use tce_tensor::{IntegralFn, Tensor};

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Multiply/add flops performed by `Accum` statements (`k` per
    /// iteration for `k` operands).
    pub contraction_flops: u128,
    /// Primitive-function evaluations performed.
    pub func_evals: u128,
    /// Flops attributed to primitive functions (`Σ evals · C_i`).
    pub func_flops: u128,
    /// Array element reads.
    pub reads: u128,
    /// Array element writes.
    pub writes: u128,
}

impl ExecStats {
    /// Total flops.
    pub fn total_flops(&self) -> u128 {
        self.contraction_flops + self.func_flops
    }
}

/// Observer for element-level accesses (e.g. the cache simulator).
/// Addresses are `(array id, flat element offset)`.
pub trait AccessSink {
    /// Called on each element read or write.
    fn access(&mut self, array: u32, offset: usize);
}

/// A sink that ignores accesses.
pub struct NoSink;

impl AccessSink for NoSink {
    fn access(&mut self, _: u32, _: usize) {}
}

/// The interpreter: owns storage for every non-input array.
pub struct Interpreter<'a> {
    program: &'a LoopProgram,
    space: &'a IndexSpace,
    /// Storage per array (inputs are cloned in at bind time).
    storage: Vec<Tensor>,
    /// Integral functions by `FuncId` index.
    funcs: Vec<IntegralFn>,
    /// Statistics of the last `run`.
    pub stats: ExecStats,
}

impl<'a> Interpreter<'a> {
    /// Create an interpreter; `inputs` binds declared input tensors,
    /// `funcs` binds primitive functions by name.
    ///
    /// Returns an [`ExecError`] if the program fails validation, an input
    /// binding is missing or has the wrong shape, or a function binding
    /// is missing.
    pub fn new(
        program: &'a LoopProgram,
        space: &'a IndexSpace,
        inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
    ) -> Result<Self, ExecError> {
        program
            .validate()
            .map_err(|e| ExecError::InvalidProgram { reason: e })?;
        let mut storage: Vec<Tensor> = Vec::with_capacity(program.arrays.len());
        for a in &program.arrays {
            let shape: Vec<usize> = a
                .dims
                .iter()
                .map(|d| match *d {
                    VarRange::Full(v) => space.extent(v),
                    VarRange::Tile { index, block } => space.extent(index).div_ceil(block),
                    VarRange::Intra { block, .. } => block,
                })
                .collect();
            storage.push(match &a.kind {
                ArrayKind::Input(t) => {
                    let bound = inputs.get(t).ok_or_else(|| ExecError::MissingInput {
                        name: a.name.clone(),
                    })?;
                    if bound.shape() != &shape[..] {
                        return Err(ExecError::InputShapeMismatch {
                            name: a.name.clone(),
                            expect: shape,
                            got: bound.shape().to_vec(),
                        });
                    }
                    (*bound).clone()
                }
                ArrayKind::One => Tensor::from_elem(&shape, 1.0),
                _ => Tensor::zeros(&shape),
            });
        }
        let mut bound_funcs: Vec<IntegralFn> = Vec::with_capacity(program.funcs.len());
        for f in &program.funcs {
            bound_funcs.push(
                funcs
                    .get(&f.name)
                    .ok_or_else(|| ExecError::MissingFunction {
                        name: f.name.clone(),
                    })?
                    .clone(),
            );
        }
        Ok(Self {
            program,
            space,
            storage,
            funcs: bound_funcs,
            stats: ExecStats::default(),
        })
    }

    /// Total elements allocated for intermediates and outputs — the
    /// measured counterpart of the memory-minimization metric.
    pub fn allocated_temp_elements(&self) -> u128 {
        self.program
            .arrays
            .iter()
            .zip(&self.storage)
            .filter(|(a, _)| matches!(a.kind, ArrayKind::Intermediate | ArrayKind::Output))
            .map(|(_, t)| t.len() as u128)
            .sum()
    }

    /// Run the program.  `sink` observes every element access.
    pub fn run(&mut self, sink: &mut dyn AccessSink) {
        let _span = tce_trace::span("interp.run");
        self.stats = ExecStats::default();
        let mut env = vec![0usize; self.program.vars.len()];
        // Split borrows: move body out temporarily is impossible (shared);
        // instead walk via indices.
        let body = &self.program.body;
        let mut ctx = Ctx {
            program: self.program,
            space: self.space,
            storage: &mut self.storage,
            funcs: &self.funcs,
            stats: &mut self.stats,
        };
        exec_stmts(&mut ctx, body, &mut env, sink);
        // Stats accumulate locally during the walk; one counter flush per
        // run keeps the statement dispatch free of trace calls.
        if tce_trace::enabled() {
            tce_trace::counter_u128("exec.interp.flops", self.stats.total_flops());
            tce_trace::counter_u128("exec.interp.reads", self.stats.reads);
            tce_trace::counter_u128("exec.interp.writes", self.stats.writes);
            tce_trace::counter_u128("exec.interp.func_evals", self.stats.func_evals);
        }
    }

    /// Read back an array's value after `run`.
    pub fn array_value(&self, id: tce_loops::ArrayId) -> &Tensor {
        &self.storage[id.0 as usize]
    }

    /// Locate the program's unique output array.
    ///
    /// # Panics
    /// Panics if there is not exactly one output array.
    pub fn output(&self) -> &Tensor {
        let mut found = None;
        for (i, a) in self.program.arrays.iter().enumerate() {
            if matches!(a.kind, ArrayKind::Output) {
                assert!(found.is_none(), "multiple output arrays");
                found = Some(i);
            }
        }
        &self.storage[found.expect("no output array")]
    }
}

struct Ctx<'b, 'a> {
    program: &'a LoopProgram,
    space: &'a IndexSpace,
    storage: &'b mut Vec<Tensor>,
    funcs: &'b [IntegralFn],
    stats: &'b mut ExecStats,
}

/// Evaluate a subscript; `None` when a tiled reconstruction exceeds the
/// source extent (iteration must be skipped).
fn eval_sub(ctx: &Ctx, s: &Sub, env: &[usize]) -> Option<usize> {
    match *s {
        Sub::Var(v) => Some(env[v.0 as usize]),
        Sub::Tiled { tile, intra, block } => {
            let idx = env[tile.0 as usize] * block + env[intra.0 as usize];
            let source = ctx.program.var(tile).source_index();
            if idx < ctx.space.extent(source) {
                Some(idx)
            } else {
                None
            }
        }
    }
}

/// Evaluate all subscripts of a reference into `out`; false → skip.
fn eval_ref(ctx: &Ctx, r: &ARef, env: &[usize], out: &mut Vec<usize>) -> bool {
    out.clear();
    for s in &r.subs {
        match eval_sub(ctx, s, env) {
            Some(i) => out.push(i),
            None => return false,
        }
    }
    true
}

fn exec_stmts(ctx: &mut Ctx, stmts: &[Stmt], env: &mut Vec<usize>, sink: &mut dyn AccessSink) {
    for s in stmts {
        match s {
            Stmt::Loop { var, body } => {
                let extent = ctx.program.var(*var).extent(ctx.space);
                for i in 0..extent {
                    env[var.0 as usize] = i;
                    exec_stmts(ctx, body, env, sink);
                }
            }
            Stmt::Init { array } => {
                ctx.storage[array.0 as usize].fill_zero();
                ctx.stats.writes += ctx.storage[array.0 as usize].len() as u128;
            }
            Stmt::Accum { lhs, rhs, coeff } => {
                let mut idx = Vec::new();
                let mut prod = *coeff;
                let mut ok = true;
                for r in rhs {
                    if !eval_ref(ctx, r, env, &mut idx) {
                        ok = false;
                        break;
                    }
                    let t = &ctx.storage[r.array.0 as usize];
                    let off = t.offset(&idx);
                    sink.access(r.array.0, off);
                    prod *= t.data()[off];
                }
                if !ok {
                    continue;
                }
                if !eval_ref(ctx, lhs, env, &mut idx) {
                    continue;
                }
                let t = &mut ctx.storage[lhs.array.0 as usize];
                let off = t.offset(&idx);
                sink.access(lhs.array.0, off);
                t.data_mut()[off] += prod;
                ctx.stats.reads += rhs.len() as u128;
                ctx.stats.writes += 1;
                ctx.stats.contraction_flops += rhs.len().max(2) as u128;
            }
            Stmt::Eval { lhs, func, args } => {
                let mut argv = Vec::with_capacity(args.len());
                let mut ok = true;
                for a in args {
                    match eval_sub(ctx, a, env) {
                        Some(i) => argv.push(i),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let mut idx = Vec::new();
                if !eval_ref(ctx, lhs, env, &mut idx) {
                    continue;
                }
                let f = &ctx.funcs[func.0 as usize];
                let value = f.eval(&argv);
                let t = &mut ctx.storage[lhs.array.0 as usize];
                let off = t.offset(&idx);
                sink.access(lhs.array.0, off);
                t.data_mut()[off] = value;
                ctx.stats.writes += 1;
                ctx.stats.func_evals += 1;
                ctx.stats.func_flops += f.cost as u128;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{IndexSet, OpTree, TensorDecl, TensorTable};
    use tce_loops::unfused_program;
    use tce_tensor::EinsumSpec;

    fn fig1(n_ext: usize) -> (IndexSpace, TensorTable, OpTree) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", n_ext);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tensors, tree)
    }

    /// Reference result of the §2 expression via the naive einsum.
    fn reference(space: &IndexSpace, tensors: &[&Tensor]) -> Tensor {
        let v = |n: &str, sp: &IndexSpace| sp.var_by_name(n).unwrap();
        let sp = space;
        let (a, b, c, d, e, f, i, j, k, l) = (
            v("a", sp),
            v("b", sp),
            v("c", sp),
            v("d", sp),
            v("e", sp),
            v("f", sp),
            v("i", sp),
            v("j", sp),
            v("k", sp),
            v("l", sp),
        );
        let spec = EinsumSpec::new(
            vec![a, b, i, j],
            vec![
                vec![a, c, i, k],
                vec![b, e, f, l],
                vec![d, f, j, k],
                vec![c, d, e, l],
            ],
            IndexSet::from_vars([c, d, e, f, k, l]),
        )
        .unwrap();
        spec.eval(sp, tensors)
    }

    #[test]
    fn unfused_program_matches_reference_einsum() {
        let (space, tensors, tree) = fig1(3);
        let built = unfused_program(&tree, &space, &tensors, "S");
        let shape = [3usize; 4];
        let ta = Tensor::random(&shape, 1);
        let tb = Tensor::random(&shape, 2);
        let tc = Tensor::random(&shape, 3);
        let td = Tensor::random(&shape, 4);
        let mut inputs = HashMap::new();
        inputs.insert(tensors.by_name("A").unwrap(), &ta);
        inputs.insert(tensors.by_name("B").unwrap(), &tb);
        inputs.insert(tensors.by_name("C").unwrap(), &tc);
        inputs.insert(tensors.by_name("D").unwrap(), &td);
        let mut interp =
            Interpreter::new(&built.program, &space, &inputs, &HashMap::new()).unwrap();
        interp.run(&mut NoSink);
        let expect = reference(&space, &[&ta, &tb, &tc, &td]);
        assert!(interp.output().approx_eq(&expect, 1e-9));
        // Measured flops equal the tree cost model: 6·N^6.
        assert_eq!(interp.stats.contraction_flops, 6 * 3u128.pow(6));
    }

    #[test]
    fn fused_program_matches_reference_einsum() {
        use tce_fusion::{fused_program, memmin_dp};
        let (space, tensors, tree) = fig1(3);
        let r = memmin_dp(&tree, &space);
        let built = fused_program(&tree, &space, &tensors, &r.config, "S");
        let shape = [3usize; 4];
        let ta = Tensor::random(&shape, 5);
        let tb = Tensor::random(&shape, 6);
        let tc = Tensor::random(&shape, 7);
        let td = Tensor::random(&shape, 8);
        let mut inputs = HashMap::new();
        inputs.insert(tensors.by_name("A").unwrap(), &ta);
        inputs.insert(tensors.by_name("B").unwrap(), &tb);
        inputs.insert(tensors.by_name("C").unwrap(), &tc);
        inputs.insert(tensors.by_name("D").unwrap(), &td);
        let mut interp =
            Interpreter::new(&built.program, &space, &inputs, &HashMap::new()).unwrap();
        interp.run(&mut NoSink);
        let expect = reference(&space, &[&ta, &tb, &tc, &td]);
        assert!(interp.output().approx_eq(&expect, 1e-9));
        // Fusion preserves the operation count...
        assert_eq!(interp.stats.contraction_flops, 6 * 3u128.pow(6));
        // ...and shrinks allocated temporaries to S + T2(j,k) + T1 scalar.
        assert_eq!(interp.allocated_temp_elements(), 81 + 9 + 1);
    }

    #[test]
    fn func_evals_counted_and_deterministic() {
        let mut space = IndexSpace::new();
        let n = space.add_range("V", 4);
        let c = space.add_var("c", n);
        let e = space.add_var("e", n);
        let tensors = TensorTable::new();
        let mut tree = OpTree::new();
        let f1 = tree.leaf_func("f1", vec![c, e], 100);
        let f2 = tree.leaf_func("f2", vec![c, e], 100);
        tree.contract(f1, f2, IndexSet::EMPTY);
        let built = unfused_program(&tree, &space, &tensors, "E");
        let mut funcs = HashMap::new();
        funcs.insert("f1".to_string(), IntegralFn::new(100, 1));
        funcs.insert("f2".to_string(), IntegralFn::new(100, 2));
        let mut interp = Interpreter::new(&built.program, &space, &HashMap::new(), &funcs).unwrap();
        interp.run(&mut NoSink);
        let first = interp.output().get(&[]);
        assert_eq!(interp.stats.func_evals, 2 * 16);
        assert_eq!(interp.stats.func_flops, 2 * 16 * 100);
        // Re-running gives the identical value (deterministic integrals).
        interp.run(&mut NoSink);
        assert_eq!(interp.output().get(&[]), first);
    }

    #[test]
    fn tiled_subscripts_skip_out_of_range() {
        use tce_loops::{ARef, ArrayKind, LoopProgram, Stmt, Sub, VarRange};
        // X[i] = f(i) written via tiles of 4 over extent 6: the last tile
        // is ragged; out-of-range iterations must be skipped.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 6);
        let i = space.add_var("i", n);
        let mut p = LoopProgram::new();
        let it = p.add_var("i_t", VarRange::Tile { index: i, block: 4 });
        let ii = p.add_var("i_i", VarRange::Intra { index: i, block: 4 });
        let arr = p.add_array("X", vec![VarRange::Full(i)], ArrayKind::Output);
        let f = p.add_func("g", 10);
        let sub = Sub::Tiled {
            tile: it,
            intra: ii,
            block: 4,
        };
        p.body.push(Stmt::Loop {
            var: it,
            body: vec![Stmt::Loop {
                var: ii,
                body: vec![Stmt::Eval {
                    lhs: ARef {
                        array: arr,
                        subs: vec![sub],
                    },
                    func: f,
                    args: vec![sub],
                }],
            }],
        });
        let mut funcs = HashMap::new();
        funcs.insert("g".to_string(), IntegralFn::new(10, 9));
        let mut interp = Interpreter::new(&p, &space, &HashMap::new(), &funcs).unwrap();
        interp.run(&mut NoSink);
        // 2 tiles × 4 intra = 8 iterations, 2 skipped.
        assert_eq!(interp.stats.func_evals, 6);
        let g = IntegralFn::new(10, 9);
        for idx in 0..6 {
            assert_eq!(interp.output().get(&[idx]), g.eval(&[idx]));
        }
    }

    #[test]
    fn missing_input_binding_is_a_typed_error() {
        let (space, tensors, tree) = fig1(2);
        let built = unfused_program(&tree, &space, &tensors, "S");
        let err = Interpreter::new(&built.program, &space, &HashMap::new(), &HashMap::new())
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, ExecError::MissingInput { ref name } if name == "B"),
            "{err}"
        );
        // Wrong shape is reported too.
        let bad = Tensor::random(&[2; 3], 1);
        let mut inputs = HashMap::new();
        for nm in ["A", "B", "C", "D"] {
            inputs.insert(tensors.by_name(nm).unwrap(), &bad);
        }
        let err = Interpreter::new(&built.program, &space, &inputs, &HashMap::new())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ExecError::InputShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn access_sink_sees_reads_and_writes() {
        struct Count(u64);
        impl AccessSink for Count {
            fn access(&mut self, _: u32, _: usize) {
                self.0 += 1;
            }
        }
        let (space, tensors, tree) = fig1(2);
        let built = unfused_program(&tree, &space, &tensors, "S");
        let shape = [2usize; 4];
        let t = Tensor::random(&shape, 1);
        let mut inputs = HashMap::new();
        for nm in ["A", "B", "C", "D"] {
            inputs.insert(tensors.by_name(nm).unwrap(), &t);
        }
        let mut interp =
            Interpreter::new(&built.program, &space, &inputs, &HashMap::new()).unwrap();
        let mut sink = Count(0);
        interp.run(&mut sink);
        // 3 accesses per Accum iteration × 3 nests of 2^6 iterations.
        assert_eq!(sink.0, 3 * 3 * 64);
    }
}
