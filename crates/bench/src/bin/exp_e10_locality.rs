//! E10 — paper §6: the data-locality cost model and tile-size search.
//!
//! Claims reproduced:
//! * `Cost = Accesses` when the scope's distinct elements fit the cache,
//!   multiplicative otherwise — verified exactly against the LRU cache
//!   simulator in the fits-regime and qualitatively in the spills-regime;
//! * the doubling tile-size search finds the exhaustive-grid optimum;
//! * blocking chosen by the model reduces *simulated* misses on a real
//!   execution;
//! * the same model applied with the physical-memory size ("disk access
//!   minimization") ranks programs identically.

use std::collections::HashMap;
use tce_bench::tables::{fmt_u, Table};
use tce_core::exec::{CacheSink, Interpreter, LruCache};
use tce_core::ir::{IndexSpace, TensorDecl, TensorTable};
use tce_core::locality::{access_cost, perfect_nests, search_nest_tiles, MemoryHierarchy};
use tce_core::loops::{ARef, ArrayKind, LoopProgram, Stmt, Sub, VarRange};
use tce_core::tensor::Tensor;

fn matmul(n: usize) -> (IndexSpace, TensorTable, LoopProgram) {
    let mut space = IndexSpace::new();
    let r = space.add_range("N", n);
    let i = space.add_var("i", r);
    let j = space.add_var("j", r);
    let k = space.add_var("k", r);
    let mut tensors = TensorTable::new();
    let ta = tensors.add(TensorDecl::dense("A", vec![r, r]));
    let tb = tensors.add(TensorDecl::dense("B", vec![r, r]));
    let mut p = LoopProgram::new();
    let vi = p.add_var("i", VarRange::Full(i));
    let vj = p.add_var("j", VarRange::Full(j));
    let vk = p.add_var("k", VarRange::Full(k));
    let a = p.add_array(
        "A",
        vec![VarRange::Full(i), VarRange::Full(k)],
        ArrayKind::Input(ta),
    );
    let b = p.add_array(
        "B",
        vec![VarRange::Full(k), VarRange::Full(j)],
        ArrayKind::Input(tb),
    );
    let c = p.add_array(
        "C",
        vec![VarRange::Full(i), VarRange::Full(j)],
        ArrayKind::Output,
    );
    let stmt = Stmt::Accum {
        lhs: ARef {
            array: c,
            subs: vec![Sub::Var(vi), Sub::Var(vj)],
        },
        rhs: vec![
            ARef {
                array: a,
                subs: vec![Sub::Var(vi), Sub::Var(vk)],
            },
            ARef {
                array: b,
                subs: vec![Sub::Var(vk), Sub::Var(vj)],
            },
        ],
        coeff: 1.0,
    };
    p.body
        .push(tce_core::loops::nest(vec![vi, vj, vk], vec![stmt]));
    (space, tensors, p)
}

fn simulate(
    p: &LoopProgram,
    space: &IndexSpace,
    tensors: &TensorTable,
    n: usize,
    cache: usize,
) -> u64 {
    let a = Tensor::random(&[n, n], 1);
    let b = Tensor::random(&[n, n], 2);
    let mut inputs = HashMap::new();
    inputs.insert(tensors.by_name("A").unwrap(), &a);
    inputs.insert(tensors.by_name("B").unwrap(), &b);
    let sizes: Vec<usize> = p
        .arrays
        .iter()
        .map(|x| x.elements(space) as usize)
        .collect();
    let mut sink = CacheSink::new(LruCache::new(cache, 1), &sizes);
    let mut interp = Interpreter::new(p, space, &inputs, &HashMap::new()).unwrap();
    interp.run(&mut sink);
    sink.cache.misses
}

fn main() {
    println!("E10: §6 — locality cost model and tile-size search\n");
    let n = 24usize;
    let (space, tensors, p) = matmul(n);

    // Regime 1: everything fits — model exact vs simulator.
    let big = (4 * n * n) as u128;
    let modeled = access_cost(&p, &space, big);
    let simulated = simulate(&p, &space, &tensors, n, big as usize) as u128;
    println!("cache {} elements (working set fits):", fmt_u(big));
    println!(
        "  model {} misses; LRU simulator {} misses",
        fmt_u(modeled),
        fmt_u(simulated)
    );
    assert_eq!(modeled, 3 * (n * n) as u128);
    assert_eq!(modeled, simulated);

    // Regime 2: sweep cache sizes; model is monotone and tracks the
    // simulator's growth.
    println!("\ncache sweep (untiled i,j,k matmul at N = {n}):");
    let mut t = Table::new(&["cache", "model misses", "simulated misses"]);
    let mut prev_model = u128::MAX;
    for cache in [8usize, 32, 64, 256, 1024, 4 * n * n] {
        let m = access_cost(&p, &space, cache as u128);
        let s = simulate(&p, &space, &tensors, n, cache);
        assert!(m <= prev_model);
        prev_model = m;
        t.row(&[fmt_u(cache as u128), fmt_u(m), fmt_u(s as u128)]);
    }
    println!("{}", t.render());

    // Tile search: doubling search == exhaustive grid; blocking helps the
    // simulator too.
    let cache = 256usize;
    let nests = perfect_nests(&p);
    let best = search_nest_tiles(&p, &space, &nests[0], cache as u128);
    let untiled_model = access_cost(&p, &space, cache as u128);
    let untiled_sim = simulate(&p, &space, &tensors, n, cache);
    let tiled_sim = simulate(&best.program, &space, &tensors, n, cache);
    println!("tile search at cache = {cache}:");
    let blocks: Vec<String> = nests[0]
        .vars
        .iter()
        .map(|v| {
            format!(
                "{}={}",
                p.var(*v).name,
                best.blocks.get(v).copied().unwrap_or(1)
            )
        })
        .collect();
    println!("  chosen blocks: {}", blocks.join(", "));
    println!(
        "  model: untiled {} → blocked {} misses",
        fmt_u(untiled_model),
        fmt_u(best.cost)
    );
    println!(
        "  LRU simulator: untiled {} → blocked {} misses",
        fmt_u(untiled_sim as u128),
        fmt_u(tiled_sim as u128)
    );
    assert!(best.cost < untiled_model);
    assert!(tiled_sim < untiled_sim);

    // Multi-level hierarchy ("replace the cache size by the physical
    // memory size" for the disk problem).
    let hier = MemoryHierarchy::cache_and_disk(cache as u128, (2 * n * n) as u128);
    let plain_cost = hier.cost(&p, &space);
    let blocked_cost = hier.cost(&best.program, &space);
    println!("\ntwo-level hierarchy cost (cache + memory-over-disk):");
    println!(
        "  untiled {:.3e} vs blocked {:.3e}",
        plain_cost, blocked_cost
    );
    assert!(blocked_cost <= plain_cost);
    println!("E10 OK");
}
