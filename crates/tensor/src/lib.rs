//! # tce-tensor — dense tensor substrate
//!
//! Storage and kernels the synthesized tensor-contraction programs execute
//! on: dense row-major tensors ([`dense`]), a naive reference einsum used
//! as the correctness oracle ([`einsum`]), binary-contraction kernels
//! including a cache-blocked GEMM path ([`contract`]), and the synthetic
//! expensive-integral functions standing in for the paper's `f1`/`f2`
//! two-electron integrals ([`integrals`]).
//!
//! ```
//! use tce_tensor::{contract_gemm, BinaryContraction, Tensor};
//! use tce_ir::IndexSpace;
//!
//! let mut sp = IndexSpace::new();
//! let n = sp.add_range("N", 4);
//! let i = sp.add_var("i", n);
//! let j = sp.add_var("j", n);
//! let k = sp.add_var("k", n);
//! let spec = BinaryContraction { a: vec![i, k], b: vec![k, j], out: vec![i, j] };
//! let a = Tensor::random(&[4, 4], 1);
//! let b = Tensor::random(&[4, 4], 2);
//! let c = contract_gemm(&spec, &sp, &a, &b);
//! assert_eq!(c.shape(), &[4, 4]);
//! ```

#![warn(missing_docs)]

pub mod bufpool;
pub mod contract;
pub mod dense;
pub mod einsum;
pub mod gett;
pub mod integrals;
pub mod kernels;
pub mod packed;
pub mod sparse;

pub use bufpool::{
    bufpool_env_requested, bufpool_len, bufpool_retained_elements, bufpool_shard_stats,
    bufpool_stats, set_bufpool_capacity,
};
pub use contract::{contract_gemm, contract_naive, gemm_blocked, BinaryContraction};
pub use dense::Tensor;
pub use einsum::EinsumSpec;
pub use gett::{
    contract_gett, contract_gett_with_variant, plan_cache_env_requested, plan_cache_len,
    plan_cache_shard_stats, plan_cache_shards, plan_cache_stats, plan_for, plan_for_variant,
    set_plan_cache_capacity, ContractionPlan,
};
pub use integrals::IntegralFn;
pub use kernels::{BlockSizes, CacheInfo, KernelConfig, KernelVariant};
pub use packed::PackedSymmetric;
pub use sparse::{contract_sparse_dense, sparse_contraction_ops, SparseTensor};
