//! # tce-exec — execution substrate
//!
//! Runs synthesized programs on real data: the loop-program interpreter
//! with operation/access counters ([`interp`]) — the semantic oracle every
//! transformation is verified against — the LRU memory-hierarchy simulator
//! validating the §6 locality cost model ([`cache`]), the direct
//! (array-at-a-time, optionally parallel) operator-tree executor
//! ([`treeexec`]), and the fused-slice executor ([`fusedexec`]) that
//! realizes memory-minimization configurations with sliced GETT kernel
//! calls at the model-predicted peak live-set.  Binding and validation
//! failures are reported as typed [`ExecError`]s.
//!
//! ```
//! use std::collections::HashMap;
//! use tce_exec::{Interpreter, NoSink};
//! use tce_ir::{IndexSet, IndexSpace, OpTree, TensorDecl, TensorTable};
//! use tce_loops::unfused_program;
//! use tce_tensor::Tensor;
//!
//! let mut sp = IndexSpace::new();
//! let n = sp.add_range("N", 4);
//! let i = sp.add_var("i", n);
//! let j = sp.add_var("j", n);
//! let mut tab = TensorTable::new();
//! let a = tab.add(TensorDecl::dense("A", vec![n, n]));
//! let mut tree = OpTree::new();
//! let la = tree.leaf_input(a, vec![i, j]);
//! let one = tree.leaf_one();
//! tree.contract(la, one, IndexSet::EMPTY); // Σ_ij A[i,j]
//! let built = unfused_program(&tree, &sp, &tab, "S");
//! let data = Tensor::random(&[4, 4], 7);
//! let mut inputs = HashMap::new();
//! inputs.insert(a, &data);
//! let mut interp = Interpreter::new(&built.program, &sp, &inputs, &HashMap::new()).unwrap();
//! interp.run(&mut NoSink);
//! assert!((interp.output().get(&[]) - data.sum()).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod fusedexec;
pub mod interp;
pub mod treeexec;

pub use cache::{CacheSink, LruCache};
pub use error::ExecError;
pub use fusedexec::{execute_tree_fused, FusedExecReport};
pub use interp::{AccessSink, ExecStats, Interpreter, NoSink};
pub use treeexec::{
    execute_tree, execute_tree_distributed, execute_tree_graph, execute_tree_opts,
    parallel_contract, ExecOptions, Schedule,
};
