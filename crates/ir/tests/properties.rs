//! Property tests for the IR foundations: index-set algebra and the cost
//! polynomial ring.  Randomized with the workspace's seeded [`Rng`], so
//! every run checks the same cases and failures reproduce exactly.

use tce_ir::rng::Rng;
use tce_ir::{CostPoly, IndexSet, IndexSpace, IndexVar, RangeId};

/// A random set over 12 possible variables.
fn arb_set(rng: &mut Rng) -> IndexSet {
    IndexSet(rng.u64_in(0..1 << 12))
}

#[test]
fn set_union_intersection_laws() {
    let mut rng = Rng::new(0x5e7a);
    for _ in 0..512 {
        let (a, b, c) = (arb_set(&mut rng), arb_set(&mut rng), arb_set(&mut rng));
        // Commutativity.
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.inter(b), b.inter(a));
        // Associativity.
        assert_eq!(a.union(b).union(c), a.union(b.union(c)));
        assert_eq!(a.inter(b).inter(c), a.inter(b.inter(c)));
        // Distributivity.
        assert_eq!(a.inter(b.union(c)), a.inter(b).union(a.inter(c)));
        // De Morgan via minus against a universe.
        let u = a.union(b).union(c);
        assert_eq!(u.minus(a.union(b)), u.minus(a).inter(u.minus(b)));
        // Subset laws.
        assert!(a.inter(b).is_subset(a));
        assert!(a.is_subset(a.union(b)));
        assert_eq!(a.minus(b).union(a.inter(b)), a);
    }
}

#[test]
fn set_iteration_roundtrips() {
    let mut rng = Rng::new(0x17e7);
    for _ in 0..512 {
        let a = arb_set(&mut rng);
        let rebuilt: IndexSet = a.iter().collect();
        assert_eq!(rebuilt, a);
        assert_eq!(a.iter().count(), a.len());
        // Iteration is strictly increasing.
        let ids: Vec<u8> = a.iter().map(|v| v.0).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}

#[test]
fn subset_enumeration_is_complete() {
    // All 64 sets over 6 variables — exhaustive beats sampling here.
    for bits in 0u64..(1 << 6) {
        let a = IndexSet(bits);
        let subs: Vec<IndexSet> = a.subsets().collect();
        assert_eq!(subs.len(), 1 << a.len());
        for s in &subs {
            assert!(s.is_subset(a));
        }
        let mut sorted = subs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), subs.len());
    }
}

/// A small polynomial built from random monomial terms.
fn arb_poly(rng: &mut Rng) -> CostPoly {
    let mut p = CostPoly::zero();
    for _ in 0..rng.usize_in(0..4) {
        let e0 = rng.usize_in(0..3) as u16;
        let e1 = rng.usize_in(0..3) as u16;
        let c = rng.usize_in(0..9) as i32 - 4;
        let m = CostPoly::range_pow(RangeId(0), e0)
            .mul(&CostPoly::range_pow(RangeId(1), e1))
            .scale(c as f64);
        p.add_assign(&m);
    }
    p
}

fn eval_space() -> IndexSpace {
    let mut sp = IndexSpace::new();
    sp.add_range("A", 3);
    sp.add_range("B", 5);
    sp
}

#[test]
fn poly_ring_laws() {
    let mut rng = Rng::new(0x9017);
    let sp = eval_space();
    for _ in 0..256 {
        let (p, q, r) = (arb_poly(&mut rng), arb_poly(&mut rng), arb_poly(&mut rng));
        // Commutativity and associativity of + and ·, distribution, via
        // structural equality of the canonical representation.
        assert_eq!(p.add(&q), q.add(&p));
        assert_eq!(p.mul(&q), q.mul(&p));
        assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
        assert_eq!(p.mul(&q).mul(&r), p.mul(&q.mul(&r)));
        assert_eq!(p.mul(&q.add(&r)), p.mul(&q).add(&p.mul(&r)));
        // Evaluation is a ring homomorphism (integer-coefficient inputs
        // keep the arithmetic exact at these sizes).
        assert_eq!(p.add(&q).eval(&sp), p.eval(&sp) + q.eval(&sp));
        assert_eq!(p.mul(&q).eval(&sp), p.eval(&sp) * q.eval(&sp));
    }
}

#[test]
fn poly_identities() {
    let mut rng = Rng::new(0x1de5);
    for _ in 0..256 {
        let p = arb_poly(&mut rng);
        let zero = CostPoly::zero();
        let one = CostPoly::constant(1.0);
        assert_eq!(p.add(&zero), p.clone());
        assert_eq!(p.mul(&one), p.clone());
        assert!(p.mul(&zero).is_zero());
        assert!(p.add(&p.scale(-1.0)).is_zero());
        assert_eq!(p.scale(2.0), p.add(&p));
    }
}

#[test]
fn extent_product_respects_multiplicity() {
    let mut sp = IndexSpace::new();
    let a = sp.add_range("A", 7);
    let b = sp.add_range("B", 2);
    let x = sp.add_var("x", a);
    let y = sp.add_var("y", a);
    let z = sp.add_var("z", b);
    let set = IndexSet::from_vars([x, y, z]);
    let p = CostPoly::extent_product(set, &sp);
    assert_eq!(p.eval(&sp), 7.0 * 7.0 * 2.0);
    assert_eq!(p.eval(&sp) as u128, sp.iteration_points(set));
    let _ = IndexVar(0);
}
