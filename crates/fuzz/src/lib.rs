//! `tce-fuzz` — seeded expression generation and pipeline-wide
//! differential conformance checking.
//!
//! The paper's claim is that all six synthesis stages are
//! semantics-preserving and cost-model-faithful.  This crate checks that
//! claim *continuously* over the whole grammar instead of a handful of
//! hand-picked expressions:
//!
//! 1. [`gen`] — a seeded (splitmix64, no external deps) generator of
//!    well-formed programs: multiple ranges and index variables, shared
//!    intermediates, accumulate statements, expensive-function factors;
//! 2. [`checks`] — the invariant catalog: every executor (interpreter,
//!    GETT tree executor at several thread counts and every SIMD kernel
//!    variant, fused-slice executor, distributed sharded executor on each
//!    configured grid) cross-checked against an independent einsum oracle
//!    to ≤ 1e-10, plus model conformance (traced FLOPs == `Σ tree_ops`,
//!    measured communication == `move_cost`/`reduce_cost`, measured peak
//!    live-set == the memmin DP) and the unparse→parse round trip;
//! 3. [`shrink`] — greedy structural minimization of failing programs
//!    (drop statements/terms/factors, shrink extents, merge indices);
//! 4. [`driver`] — the campaign loop tying it together, with
//!    budget-independent per-case seeding and self-contained repro files.
//!
//! The `tce-fuzz` binary exposes campaigns on the command line;
//! `tests/fuzz_conformance.rs` pins a fixed-seed smoke corpus into
//! `cargo test`.

pub mod checks;
pub mod driver;
pub mod gen;
pub mod shrink;

pub use checks::{
    check_program, check_program_caught, CaseStats, CheckConfig, CheckKind, CheckSet, Failure,
    Fault,
};
pub use driver::{
    case_seed, gen_case, repro_source, run_campaign, run_campaign_with, CampaignReport,
    CaseFailure, FuzzConfig,
};
pub use gen::{gen_program, GenConfig};
pub use shrink::{max_operands, shrink, ShrinkResult};
