//! Black-box tests of the `tce` binary: malformed input must produce a
//! diagnostic on stderr and a nonzero exit status (never a panic), and
//! the distributed path must report exact measured-vs-modeled agreement.

use std::process::Command;

fn tce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tce"))
}

/// These tests are registered from `crates/core`, so the examples live
/// two levels up.
fn spec(name: &str) -> String {
    format!("{}/../../examples/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn malformed_inputs_fail_cleanly() {
    let chain = spec("matrix_chain.tce");
    let cases: Vec<Vec<&str>> = vec![
        vec![],                               // no spec file
        vec!["/nonexistent/never.tce"],       // unreadable file
        vec![&chain, "--cache", "pow"],       // bad --cache
        vec![&chain, "--grid", "2y4"],        // bad --grid format
        vec![&chain, "--grid", "0x2"],        // zero grid dimension
        vec![&chain, "--grid", "x"],          // empty grid dimension
        vec![&chain, "--threads", "0"],       // zero threads
        vec![&chain, "--distributed"],        // missing --grid
        vec![&chain, "--memory-limit", "-3"], // negative limit
        vec![&chain, "--bogus-flag"],         // unknown flag
    ];
    for args in &cases {
        let out = tce().args(args).output().expect("spawn tce");
        assert!(
            !out.status.success(),
            "tce {args:?} should exit nonzero, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.is_empty(), "tce {args:?} should print a diagnostic");
        assert!(
            !stderr.contains("panicked"),
            "tce {args:?} panicked:\n{stderr}"
        );
    }
}

#[test]
fn distributed_execution_reports_exact_comm_volumes() {
    for grid in ["1x1", "2x4"] {
        let out = tce()
            .args([
                &spec("ccsd_section2.tce"),
                "--distributed",
                "--grid",
                grid,
                "--threads",
                "2",
            ])
            .output()
            .expect("spawn tce");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "grid {grid} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("OK"), "grid {grid}:\n{stdout}");
        assert!(
            stdout.contains("redistribution elements")
                && stdout.matches("(exact)").count() >= 2
                && !stdout.contains("MISMATCH"),
            "grid {grid}: measured-vs-modeled not exact:\n{stdout}"
        );
    }
}

#[test]
fn sequential_and_distributed_sums_agree() {
    let run = |extra: &[&str]| {
        let mut args = vec![spec("matrix_chain.tce"), "--execute".to_string()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = tce().args(&args).output().expect("spawn tce");
        assert!(out.status.success(), "{args:?}");
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.contains("|sum|"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let sequential = run(&[]);
    assert!(!sequential.is_empty());
    for grid in ["1x1", "2x2", "2x4"] {
        assert_eq!(
            sequential,
            run(&["--distributed", "--grid", grid]),
            "grid {grid} changed printed sums"
        );
    }
}
