//! Differential validation of the sharded distributed executor
//! (`tce_dist::exec`) against the sequential GETT kernel, the closed-form
//! §7 cost model, and the element-wise simulator oracle.

use std::collections::HashMap;
use tce_core::dist::{
    execute_plan_sharded, gather, move_cost, optimize_distribution, redistribute, scatter,
    simulate_plan, DistEntry, DistPlan, DistTuple, Machine, ReduceMode,
};
use tce_core::exec::execute_tree;
use tce_core::ir::{IndexSpace, IndexVar, OpKind, OpTree, TensorId};
use tce_core::par::ProcessorGrid;
use tce_core::scenarios::{section2_source, A3AScenario};
use tce_core::tensor::{IntegralFn, Tensor};
use tce_core::{synthesize, ExecOptions, SynthesisConfig};

/// Hand-build an *output-partitioned* plan: every contraction's γ
/// distributes only that node's result indices (grid dim `d` carries the
/// `d`-th output variable, surplus dims are `1`).  No summation index is
/// ever distributed, so every rank accumulates its disjoint output block
/// in exactly the sequential kernel's order — the sharded result must be
/// **bit-identical** to the sequential one.
fn output_partitioned_plan(tree: &OpTree, grid_rank: usize) -> DistPlan {
    let out_tuple = |u| {
        let outs: Vec<IndexVar> = tree.node(u).indices.iter().collect();
        DistTuple(
            (0..grid_rank)
                .map(|d| {
                    outs.get(d)
                        .map(|&v| DistEntry::Idx(v))
                        .unwrap_or(DistEntry::One)
                })
                .collect(),
        )
    };
    let mut node_dist = vec![None; tree.nodes.len()];
    let mut node_gamma = vec![None; tree.nodes.len()];
    let node_input_source = vec![None; tree.nodes.len()];
    node_dist[tree.root.0 as usize] = Some(out_tuple(tree.root));
    for (i, node) in tree.nodes.iter().enumerate() {
        if matches!(node.kind, OpKind::Contract { .. }) {
            let u = tce_core::ir::NodeId(i as u32);
            node_gamma[i] = Some((out_tuple(u), ReduceMode::Combine));
        }
    }
    DistPlan {
        total_cost: 0,
        node_dist,
        node_gamma,
        node_input_source,
    }
}

const GRIDS: &[&[usize]] = &[&[1], &[1, 1], &[2, 2], &[2, 4], &[4, 2, 2]];

type Fixture = (
    OpTree,
    IndexSpace,
    Vec<(TensorId, Tensor)>,
    HashMap<String, IntegralFn>,
);

fn section2_fixture() -> Fixture {
    let syn = synthesize(&section2_source(4), &SynthesisConfig::default()).unwrap();
    let tree = syn.plans[0].tree.clone();
    let space = syn.program.space.clone();
    let shape = [4usize; 4];
    let owned: Vec<(TensorId, Tensor)> = ["A", "B", "C", "D"]
        .iter()
        .enumerate()
        .map(|(i, nm)| {
            (
                syn.program.tensors.by_name(nm).unwrap(),
                Tensor::random(&shape, 100 + i as u64),
            )
        })
        .collect();
    (tree, space, owned, HashMap::new())
}

fn a3a_fixture() -> Fixture {
    let sc = A3AScenario::new(4, 3, 50);
    let amps = sc.amplitudes(7);
    let owned = vec![(sc.tensors.by_name("T").unwrap(), amps)];
    (sc.tree.clone(), sc.space.clone(), owned, sc.functions())
}

#[test]
fn output_partitioned_sharding_is_bitwise_identical() {
    // Acceptance: sharded output bit-identical to the sequential kernel
    // on the §2 and A3A scenarios for every tested grid shape.
    for (name, (tree, space, owned, funcs)) in
        [("section2", section2_fixture()), ("a3a", a3a_fixture())]
    {
        let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
        let expect = execute_tree(&tree, &space, &inputs, &funcs, 1).unwrap();
        for dims in GRIDS {
            let machine = Machine::new(ProcessorGrid::new(dims.to_vec()));
            let plan = output_partitioned_plan(&tree, machine.grid.rank());
            let report = execute_plan_sharded(&tree, &space, &plan, &machine, &inputs, &funcs, 4)
                .expect("plan covers tree");
            assert_eq!(
                report.result, expect,
                "{name} on grid {dims:?}: sharded result changed bits"
            );
            // No summation index is distributed → no reduction traffic,
            // and block moves always match the model.
            assert_eq!(report.reduce_words, 0, "{name} on grid {dims:?}");
            assert_eq!(
                report.moved_elements, report.predicted_move_elements,
                "{name} on grid {dims:?}: redistribution diverged from move_cost"
            );
        }
    }
}

#[test]
fn dp_plans_agree_with_simulator_and_cost_model() {
    // The DP's own plans (which may distribute summation indices and thus
    // regroup floating-point sums) must agree with the element-wise
    // simulator oracle numerically and with the closed-form model exactly.
    for (name, (tree, space, owned, funcs)) in
        [("section2", section2_fixture()), ("a3a", a3a_fixture())]
    {
        let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
        let expect = execute_tree(&tree, &space, &inputs, &funcs, 1).unwrap();
        for dims in [&[2usize, 2][..], &[2, 4]] {
            let machine = Machine::new(ProcessorGrid::new(dims.to_vec()));
            let plan = optimize_distribution(&tree, &space, &machine);
            let report = execute_plan_sharded(&tree, &space, &plan, &machine, &inputs, &funcs, 4)
                .expect("plan covers tree");
            assert_eq!(
                report.moved_elements, report.predicted_move_elements,
                "{name} on grid {dims:?}"
            );
            assert_eq!(
                report.reduce_words, report.predicted_reduce_words,
                "{name} on grid {dims:?}"
            );
            assert!(
                report.result.approx_eq(&expect, 1e-9),
                "{name} on grid {dims:?}: diff {:e}",
                report.result.max_abs_diff(&expect)
            );
            let sim = simulate_plan(&tree, &space, &plan, &machine, &inputs, &funcs)
                .expect("plan covers tree");
            assert_eq!(
                report.moved_elements, sim.measured_move_elements,
                "{name} on grid {dims:?}: block transfers vs element enumeration"
            );
            assert_eq!(report.predicted_reduce_words, sim.predicted_reduce_words);
            assert!(report.result.approx_eq(&sim.result, 1e-9));
        }
    }
}

#[test]
fn graph_schedule_matches_sequential_walk_bitwise_with_exact_counters() {
    // Task-graph scheduling only changes *when* independent subtrees run,
    // never what each node computes: results must be bit-identical to the
    // recursive walk and every measured/predicted counter must agree, for
    // every worker count.
    use tce_core::dist::execute_plan_sharded_graph;

    for (name, (tree, space, owned, funcs)) in
        [("section2", section2_fixture()), ("a3a", a3a_fixture())]
    {
        let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
        for dims in [&[2usize, 2][..], &[2, 4]] {
            let machine = Machine::new(ProcessorGrid::new(dims.to_vec()));
            for plan in [
                output_partitioned_plan(&tree, machine.grid.rank()),
                optimize_distribution(&tree, &space, &machine),
            ] {
                let seq = execute_plan_sharded(&tree, &space, &plan, &machine, &inputs, &funcs, 1)
                    .expect("plan covers tree");
                for threads in [1, 2, 4, 8] {
                    let g = execute_plan_sharded_graph(
                        &tree, &space, &plan, &machine, &inputs, &funcs, threads,
                    )
                    .expect("plan covers tree");
                    assert_eq!(
                        g.result, seq.result,
                        "{name} grid {dims:?} threads {threads}: graph result changed bits"
                    );
                    assert_eq!(g.moved_elements, seq.moved_elements, "{name} {dims:?}");
                    assert_eq!(
                        g.predicted_move_elements, seq.predicted_move_elements,
                        "{name} {dims:?}"
                    );
                    assert_eq!(g.reduce_words, seq.reduce_words, "{name} {dims:?}");
                    assert_eq!(
                        g.predicted_reduce_words, seq.predicted_reduce_words,
                        "{name} {dims:?}"
                    );
                    assert_eq!(g.redistributions, seq.redistributions, "{name} {dims:?}");
                    assert_eq!(g.per_rank_flops, seq.per_rank_flops, "{name} {dims:?}");
                }
            }
        }
    }
}

#[test]
fn paper_redistribution_cases_measure_exactly() {
    // Paper §7 on the 2×4×8 grid: T2 ⟨j,*,1⟩ → ⟨j,t,1⟩ moves nothing
    // (every destination block is already replicated locally), while
    // T1 ⟨1,t,j⟩ → ⟨j,t,1⟩ moves data; both measure exactly `move_cost`.
    let mut sp = IndexSpace::new();
    let rn = sp.add_range("N", 16);
    let j = sp.add_var("j", rn);
    let t = sp.add_var("t", rn);
    let grid = ProcessorGrid::new(vec![2, 4, 8]);
    let dims = [j, t];
    let value = Tensor::random(&[16, 16], 3);
    let target = DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(t), DistEntry::One]);

    let t2_from = DistTuple(vec![
        DistEntry::Idx(j),
        DistEntry::Replicate,
        DistEntry::One,
    ]);
    let sharded = scatter(&value, &dims, &t2_from, &sp, &grid);
    let (re, moved) = redistribute(&sharded, &target, &sp, &grid);
    assert_eq!(move_cost(&dims, &sp, &grid, &t2_from, &target), 0);
    assert_eq!(moved, 0, "⟨j,*,1⟩ → ⟨j,t,1⟩ must move nothing");
    assert_eq!(gather(&re, &sp, &grid), value);

    let t1_from = DistTuple(vec![DistEntry::One, DistEntry::Idx(t), DistEntry::Idx(j)]);
    let sharded = scatter(&value, &dims, &t1_from, &sp, &grid);
    let (re, moved) = redistribute(&sharded, &target, &sp, &grid);
    let predicted = move_cost(&dims, &sp, &grid, &t1_from, &target);
    assert!(predicted > 0, "the T1 case does move data");
    assert_eq!(moved, predicted, "⟨1,t,j⟩ → ⟨j,t,1⟩ must measure move_cost");
    assert_eq!(gather(&re, &sp, &grid), value);
}

#[test]
fn pipeline_distributed_execution_matches_sequential() {
    // End-to-end: synthesize with a machine, execute the statement
    // sequence on the sharded machine, compare against the sequential
    // path and check the aggregate accounting is exact.
    let src = "
        range N = 8;
        index i, j, k, l : N;
        tensor A(N, N); tensor B(N, N); tensor C(N, N);
        tensor T(N, N); tensor S(N, N);
        T[i,k] = sum[j] A[i,j] * B[j,k];
        S[i,l] = sum[k] T[i,k] * C[k,l];
    ";
    for dims in [&[1usize, 1][..], &[2, 2], &[2, 4]] {
        let cfg = SynthesisConfig {
            machine: Some(Machine::new(ProcessorGrid::new(dims.to_vec()))),
            ..SynthesisConfig::default()
        };
        let syn = synthesize(src, &cfg).unwrap();
        let a = Tensor::random(&[8, 8], 1);
        let b = Tensor::random(&[8, 8], 2);
        let c = Tensor::random(&[8, 8], 3);
        let mut ext = HashMap::new();
        for (nm, t) in [("A", &a), ("B", &b), ("C", &c)] {
            ext.insert(syn.program.tensors.by_name(nm).unwrap(), t);
        }
        let opts = ExecOptions::with_threads(4);
        let sequential = syn.execute_opts(&ext, &HashMap::new(), &opts).unwrap();
        let summary = syn
            .execute_distributed_opts(&ext, &HashMap::new(), &opts)
            .unwrap();
        assert_eq!(summary.moved_elements, summary.predicted_move_elements);
        assert_eq!(summary.reduce_words, summary.predicted_reduce_words);
        assert_eq!(summary.per_rank_flops.len(), dims.iter().product::<usize>());
        assert!(summary.max_rank_flops() > 0);
        for (id, t) in &sequential {
            assert!(
                summary.outputs[id].approx_eq(t, 1e-9),
                "grid {dims:?}: outputs diverged"
            );
        }
    }
}

#[test]
fn malformed_plans_surface_typed_errors_not_panics() {
    // Bugfix acceptance: a plan that does not cover the tree, or a missing
    // binding, must come back as a `DistError` (and through tce-exec as an
    // `ExecError`) instead of panicking mid-walk.
    use tce_core::dist::DistError;

    let (tree, space, owned, funcs) = section2_fixture();
    let inputs: HashMap<TensorId, &Tensor> = owned.iter().map(|(id, t)| (*id, t)).collect();
    let machine = Machine::new(ProcessorGrid::new(vec![2, 2]));
    let good = output_partitioned_plan(&tree, machine.grid.rank());

    // Root left unassigned.
    let mut no_root = good.clone();
    no_root.node_dist[tree.root.0 as usize] = None;
    for (label, err) in [
        (
            "exec",
            execute_plan_sharded(&tree, &space, &no_root, &machine, &inputs, &funcs, 2)
                .expect_err("unassigned root must error"),
        ),
        (
            "sim",
            simulate_plan(&tree, &space, &no_root, &machine, &inputs, &funcs)
                .expect_err("unassigned root must error"),
        ),
    ] {
        assert_eq!(err, DistError::UnassignedRoot, "{label}");
    }

    // A contraction node left unassigned.
    let mut no_gamma = good.clone();
    let cnode = tree
        .nodes
        .iter()
        .position(|n| matches!(n.kind, OpKind::Contract { .. }))
        .expect("fixture has a contraction") as u32;
    no_gamma.node_gamma[cnode as usize] = None;
    let err = execute_plan_sharded(&tree, &space, &no_gamma, &machine, &inputs, &funcs, 2)
        .expect_err("unassigned contraction must error");
    assert_eq!(err, DistError::UnassignedContraction { node: cnode });

    // An input binding withheld.
    let (missing_id, _) = owned[0];
    let partial: HashMap<TensorId, &Tensor> = owned[1..].iter().map(|(id, t)| (*id, t)).collect();
    let err = execute_plan_sharded(&tree, &space, &good, &machine, &partial, &funcs, 2)
        .expect_err("missing input must error");
    assert_eq!(err, DistError::MissingInput { tensor: missing_id });
    // Display strings are the CLI-facing diagnostics; keep them one-line.
    assert!(!err.to_string().contains('\n'));
}
