//! Typed errors for the distributed executors.
//!
//! The sharded executor ([`crate::exec`]) and the element-wise simulator
//! ([`crate::sim`]) walk an operator tree against a [`crate::dp::DistPlan`];
//! a malformed pairing — a plan that does not assign every contraction, a
//! missing input or function binding — used to be an `unwrap()` panic deep
//! in the walk.  It now surfaces as a [`DistError`], which `tce-exec`
//! converts into its `ExecError` so the pipeline and CLI report it as a
//! one-line diagnostic (the panic-to-error convention from the fused-slice
//! executor).

use std::fmt;
use tce_ir::TensorId;

/// A failure while executing or simulating a distribution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// No tensor was bound for an input leaf.
    MissingInput {
        /// Id of the unbound input tensor (tce-dist has no name table).
        tensor: TensorId,
    },
    /// No implementation was bound for a function leaf.
    MissingFunction {
        /// Name of the unbound function.
        name: String,
    },
    /// The plan does not assign a (γ, reduce-mode) pair to a contraction
    /// node of the tree.
    UnassignedContraction {
        /// Flat node id within the operator tree.
        node: u32,
    },
    /// The plan does not assign a result distribution to the tree root.
    UnassignedRoot,
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::MissingInput { tensor } => {
                write!(f, "no binding for input tensor id {}", tensor.0)
            }
            DistError::MissingFunction { name } => {
                write!(f, "no binding for function `{name}`")
            }
            DistError::UnassignedContraction { node } => write!(
                f,
                "distribution plan assigns no (γ, mode) to contraction node {node}"
            ),
            DistError::UnassignedRoot => {
                write!(f, "distribution plan assigns no distribution to the root")
            }
        }
    }
}

impl std::error::Error for DistError {}
