//! E9 — §2/Fig. 1 memory-minimization claims, plus DP-vs-oracle
//! validation and scaling.
//!
//! Claims reproduced: the memory-minimization DP on the Fig. 1 tree
//! returns `T1` as a scalar and `T2` as a 2-D array; the DP optimum
//! matches exhaustive enumeration of all legal configurations; the number
//! of legal configurations grows quickly while the DP stays fast
//! ("the pruning is effective in keeping the size of the solution set
//! small").

use std::time::Instant;
use tce_bench::tables::{fmt_u, Table};
use tce_core::fusion::{enumerate_legal_configs, memmin_bruteforce, memmin_dp};
use tce_core::opmin::{optimize_subset_dp, OpMinProblem};
use tce_core::scenarios::{section2_source, A3AScenario};

fn main() {
    println!("E9: memory minimization — DP vs exhaustive enumeration\n");

    // Fig. 1 example.
    let prog = tce_core::lang::compile(&section2_source(10)).unwrap();
    let stmt = &prog.stmts[0];
    let problem = OpMinProblem::from_term(stmt.lhs.index_set(), &stmt.terms[0]).unwrap();
    let tree = optimize_subset_dp(&problem, &prog.space).tree;

    let t0 = Instant::now();
    let dp = memmin_dp(&tree, &prog.space);
    let dp_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let bf = memmin_bruteforce(&tree, &prog.space);
    let bf_ms = t1.elapsed().as_secs_f64() * 1e3;
    let legal = enumerate_legal_configs(&tree, &prog.space).len();

    println!("Fig. 1 tree at N = 10:");
    println!("  legal fusion configurations: {legal}");
    println!(
        "  DP minimum: {} elements in {dp_ms:.2} ms; exhaustive: {} in {bf_ms:.2} ms",
        fmt_u(dp.memory),
        fmt_u(bf.memory)
    );
    assert_eq!(dp.memory, bf.memory);
    assert_eq!(dp.memory, 1 + 100, "T1 scalar + T2 = N² (paper claim)");

    // Per-array outcome.
    let internals = tree.internal_postorder();
    let mut t = Table::new(&["intermediate", "unfused dims", "fused dims", "elements"]);
    for &id in internals.iter().filter(|&&id| id != tree.root) {
        let full = tree.node(id).indices;
        let left = dp.config.array_indices(&tree, id);
        t.row(&[
            format!("node {}", id.0),
            prog.space.set_to_string(full),
            if left.is_empty() {
                "(scalar)".into()
            } else {
                prog.space.set_to_string(left)
            },
            fmt_u(prog.space.iteration_points(left)),
        ]);
    }
    println!("\n{}", t.render());

    // Scaling on the A3A tree (6 producers, deeper index sets).
    println!("A3A tree (X = T·T, Y = f1·f2, E = X·Y):");
    let sc = A3AScenario::new(6, 3, 100);
    let t2 = Instant::now();
    let dp2 = memmin_dp(&sc.tree, &sc.space);
    let dp2_ms = t2.elapsed().as_secs_f64() * 1e3;
    let t3 = Instant::now();
    let bf2 = memmin_bruteforce(&sc.tree, &sc.space);
    let bf2_ms = t3.elapsed().as_secs_f64() * 1e3;
    let legal2 = enumerate_legal_configs(&sc.tree, &sc.space).len();
    println!(
        "  legal configurations: {legal2}; DP {} in {dp2_ms:.2} ms; exhaustive {} in {bf2_ms:.2} ms",
        fmt_u(dp2.memory),
        fmt_u(bf2.memory)
    );
    assert_eq!(dp2.memory, bf2.memory);
    // Without recomputation, the integral arrays cannot shrink (their
    // consumers' extra indices block full fusion): pure-fusion memory
    // stays above the Fig-3 scalar level.
    assert!(dp2.memory > 4);
    println!(
        "  (pure fusion cannot reach the Fig-3 all-scalar level: {} > 4 —",
        fmt_u(dp2.memory)
    );
    println!("   that requires the space-time stage's redundant computation, see E4)");
    println!("E9 OK");
}
