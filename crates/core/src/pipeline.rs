//! The synthesis pipeline (paper §4, Fig. 5).
//!
//! Wires the stages together exactly as the paper's block diagram:
//!
//! ```text
//! high-level language → algebraic transformations (operation minimization)
//!   → memory minimization (loop fusion)
//!   → space-time trade-off (redundant loops + tiling)   [if over limit]
//!   → data locality optimization (blocking + tile search)
//!   → data distribution & partitioning                  [if a grid given]
//!   → loop program (+ interpreter execution / verification)
//! ```
//!
//! The feedback edge of Fig. 5 (space-time failing back to memory
//! minimization) is realized by the pareto frontier: the space-time DP
//! explores every fusion alternative jointly with recomputation, so
//! "seeking a different solution" is a frontier lookup rather than an
//! iterative loop.

use std::collections::HashMap;
use tce_calib::CostRates;
use tce_dist::{optimize_distribution, DistPlan, Machine};
use tce_exec::{ExecError, ExecOptions, Schedule};
use tce_fusion::{fused_program, memmin_dp, MemMinResult};
use tce_ir::{Assignment, CostPoly, IndexSpace, OpTree, Product, Program, TensorId};
use tce_lang::LangError;
use tce_locality::{
    perfect_nests, search_nest_tiles, search_nest_tiles_hierarchy, MemoryHierarchy,
    TileSearchResult,
};
use tce_loops::{memory_report, op_counts, pretty, BuiltProgram};
use tce_opmin::{optimize_assignment, optimize_pareto, OpMinProblem};
use tce_spacetime::{spacetime_optimize, spacetime_optimize_rated, SpaceTimeConfig, TilingResult};
use tce_tensor::{IntegralFn, Tensor};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Memory limit for temporaries, in elements (the paper's disk
    /// capacity bound that triggers the space-time stage).
    pub memory_limit: u128,
    /// Cache size in elements for the locality stage (`None` disables
    /// blocking).
    pub cache_elements: Option<u128>,
    /// Memory hierarchy for reporting multi-level access costs.
    pub hierarchy: MemoryHierarchy,
    /// Target parallel machine (`None` = sequential).
    pub machine: Option<Machine>,
    /// Measured hardware cost rates from a calibration profile
    /// (`tce calibrate`).  `None` keeps every stage on the paper's
    /// abstract unit costs — plan choices and outputs are then
    /// bit-identical to the uncalibrated pipeline.  `Some(rates)`
    /// switches the space-time frontier selection, the locality tile
    /// search, and (for a machine left at the default word cost) the
    /// distribution DP onto time-based costs.
    pub calibration: Option<CostRates>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            memory_limit: u128::MAX,
            cache_elements: None,
            hierarchy: MemoryHierarchy::cache_and_disk(64 * 1024, 1 << 30),
            machine: None,
            calibration: None,
        }
    }
}

/// The multi-level [`MemoryHierarchy`] a calibration profile induces:
/// level capacities from the measured cache geometry, per-element miss
/// costs in nanoseconds from the measured per-level bandwidth.  The
/// locality stage searches tiles against this hierarchy when calibrated.
pub fn hierarchy_from_rates(rates: &CostRates) -> MemoryHierarchy {
    MemoryHierarchy {
        levels: rates
            .levels
            .iter()
            .map(|l| tce_locality::MemoryLevel {
                name: l.name.clone(),
                capacity_elements: l.capacity_elements,
                miss_cost: l.ns_per_element,
            })
            .collect(),
    }
}

/// The synthesized plan for one product term of one statement.
#[derive(Debug, Clone)]
pub struct TermPlan {
    /// Which statement (source order).
    pub stmt_index: usize,
    /// Which term within the statement.
    pub term_index: usize,
    /// Term coefficient.
    pub coeff: f64,
    /// Operation count of the direct (unoptimized) translation.
    pub direct_ops: u128,
    /// The chosen contraction tree.
    pub tree: OpTree,
    /// Position of the chosen tree on the (ops, intermediate-size) pareto
    /// frontier: 0 = operation-minimal; larger = the Fig. 5 feedback loop
    /// fell back to a costlier association with smaller intermediates to
    /// satisfy the memory limit.
    pub tree_rank: usize,
    /// Operation count of the tree (leaf + contraction flops).
    pub tree_ops: u128,
    /// Symbolic operation count.
    pub tree_ops_poly: CostPoly,
    /// Memory-minimization outcome (pure fusion).
    pub memmin: MemMinResult,
    /// Space-time outcome, engaged when fusion alone exceeds the limit.
    pub spacetime: Option<(SpaceTimeConfig, TilingResult)>,
    /// The executable fused loop program (memory-minimal fusion).
    pub built: BuiltProgram,
    /// Locality stage outcome per perfect nest of the fused program.
    pub locality: Vec<TileSearchResult>,
    /// Distribution plan (when a machine was configured).
    pub distribution: Option<DistPlan>,
}

/// Result of synthesizing a whole program.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The validated input program.
    pub program: Program,
    /// One plan per (statement, term).
    pub plans: Vec<TermPlan>,
    /// Common-subexpression statistics per multi-term statement.
    pub cse: Vec<CseSummary>,
    /// The target machine the distribution stage planned for (`None` =
    /// sequential synthesis; [`Synthesis::execute_distributed_opts`]
    /// requires it).
    pub machine: Option<Machine>,
}

/// Aggregate communication/computation accounting from a distributed
/// execution of a whole statement sequence (summed over every term's
/// [`tce_dist::ShardExecReport`]).
#[derive(Debug, Clone)]
pub struct DistExecSummary {
    /// Value of every assigned tensor (same as [`Synthesis::execute`]).
    pub outputs: HashMap<TensorId, Tensor>,
    /// Elements that changed rank during redistribution.
    pub moved_elements: u128,
    /// Closed-form `move_cost` prediction summed over the same plans.
    pub predicted_move_elements: u128,
    /// Reduction-tree traffic measured round by round.
    pub reduce_words: u128,
    /// Closed-form `reduce_cost` prediction summed over the same plans.
    pub predicted_reduce_words: u128,
    /// Redistribution events that actually changed layout.
    pub redistributions: u64,
    /// Per-rank multiply-add flops, summed over all terms.
    pub per_rank_flops: Vec<u128>,
}

impl DistExecSummary {
    /// The busiest rank's flop count (computational makespan).
    pub fn max_rank_flops(&self) -> u128 {
        self.per_rank_flops.iter().copied().max().unwrap_or(0)
    }
}

/// Per-term peak-live-set accounting from a fused execution.
#[derive(Debug, Clone)]
pub struct FusedTermReport {
    /// Statement index (source order).
    pub stmt_index: usize,
    /// Term index within the statement.
    pub term_index: usize,
    /// Measured peak intermediate storage, in elements.
    pub peak_live_elements: u128,
    /// The memmin DP's predicted element count for this term.
    pub modeled_elements: u128,
}

/// Result of executing a whole statement sequence through the fused-slice
/// executor ([`tce_exec::execute_tree_fused`]): outputs plus the
/// measured-vs-modeled peak intermediate storage — the §5 discipline of
/// checking the memory-minimization model against reality.
#[derive(Debug, Clone)]
pub struct FusedExecSummary {
    /// Value of every assigned tensor (same as [`Synthesis::execute`]).
    pub outputs: HashMap<TensorId, Tensor>,
    /// Largest measured peak intermediate live-set over all terms (terms
    /// run one at a time, freeing their temporaries in between, so the
    /// whole-run peak is the per-term maximum).
    pub peak_live_elements: u128,
    /// The memmin model's prediction for the same maximum.
    pub modeled_elements: u128,
    /// Sliced GETT contraction calls issued.
    pub sliced_contractions: u64,
    /// Integral-function element evaluations.
    pub func_evals: u64,
    /// Per-term measured/modeled accounting.
    pub per_term: Vec<FusedTermReport>,
}

impl FusedExecSummary {
    /// True when every term's measured peak equals the memmin model.
    pub fn peak_matches_model(&self) -> bool {
        self.per_term
            .iter()
            .all(|t| t.peak_live_elements == t.modeled_elements)
    }
}

/// Sharing statistics for one statement's terms (the distributivity-aware
/// part of the paper's Algebraic Transformations module: identical
/// intermediates across terms are evaluated once).
#[derive(Debug, Clone)]
pub struct CseSummary {
    /// Statement index.
    pub stmt_index: usize,
    /// Flops when terms are evaluated independently.
    pub ops_independent: u128,
    /// Flops when common subexpressions are shared.
    pub ops_with_cse: u128,
    /// Distinct intermediates after sharing.
    pub unique_intermediates: usize,
    /// Intermediates before sharing.
    pub total_intermediates: usize,
}

impl Synthesis {
    /// Execute the whole statement sequence in source order: each
    /// statement's terms run through their synthesized loop programs, are
    /// scaled by their coefficients and summed; `=` overwrites the target
    /// tensor, `+=` accumulates into it.  Earlier results feed later
    /// statements — the paper's "sequence of tensor contraction
    /// expressions".  Returns the value of every assigned tensor.
    ///
    /// # Errors
    /// [`ExecError`] if an external input binding is missing or mis-shaped.
    pub fn execute(
        &self,
        external_inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
    ) -> Result<HashMap<TensorId, Tensor>, ExecError> {
        self.execute_opts(external_inputs, funcs, &ExecOptions::default())
    }

    /// [`execute`](Self::execute) with explicit [`ExecOptions`] (thread
    /// count etc.) forwarded to every term's contraction kernels.
    ///
    /// # Errors
    /// [`ExecError`] if an external input binding is missing or mis-shaped.
    pub fn execute_opts(
        &self,
        external_inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
        opts: &ExecOptions,
    ) -> Result<HashMap<TensorId, Tensor>, ExecError> {
        match opts.schedule {
            Schedule::Seq => self.execute_stmts_seq(external_inputs, funcs, opts),
            Schedule::Graph => self.execute_stmts_graph(external_inputs, funcs, opts),
        }
    }

    fn execute_stmts_seq(
        &self,
        external_inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
        opts: &ExecOptions,
    ) -> Result<HashMap<TensorId, Tensor>, ExecError> {
        let _span = tce_trace::span("stage.exec");
        let space = &self.program.space;
        let mut computed: HashMap<TensorId, Tensor> = HashMap::new();
        for (si, stmt) in self.program.stmts.iter().enumerate() {
            let target = stmt.lhs.tensor;
            let shape: Vec<usize> = stmt.lhs.indices.iter().map(|&v| space.extent(v)).collect();
            let mut acc = if stmt.accumulate {
                computed
                    .get(&target)
                    .cloned()
                    .unwrap_or_else(|| Tensor::zeros(&shape))
            } else {
                Tensor::zeros(&shape)
            };
            for plan in self.plans.iter().filter(|p| p.stmt_index == si) {
                // Bind inputs: computed values shadow external bindings.
                let mut inputs: HashMap<TensorId, &Tensor> = external_inputs.clone();
                for (id, t) in &computed {
                    inputs.insert(*id, t);
                }
                let term_value = plan.execute_opts(space, &inputs, funcs, opts)?;
                // The plan's output dims are the LHS indices in canonical
                // (ascending-id) order; permute to the declared order.
                let reordered = term_value.permute(&lhs_perm(stmt));
                acc.axpy(plan.coeff, &reordered);
            }
            computed.insert(target, acc);
        }
        Ok(computed)
    }

    /// Statement-level task-graph execution: one task per statement,
    /// dependencies following the RAW dataflow (each statement depends on
    /// the last prior writer of every tensor it reads, including its own
    /// target under `+=`), so independent statements contract concurrently
    /// on the shared pool.  Admission is bounded by the source-order
    /// walk's peak live-set, so graph scheduling never holds more
    /// statement results live *concurrently* than source order would.
    /// Results are bitwise identical to [`execute_stmts_seq`]
    /// (Self::execute_stmts_seq): each statement's value is a function of
    /// its dataflow predecessors only, and every kernel is deterministic
    /// in isolation.
    fn execute_stmts_graph(
        &self,
        external_inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
        opts: &ExecOptions,
    ) -> Result<HashMap<TensorId, Tensor>, ExecError> {
        use std::cell::UnsafeCell;
        use std::sync::Mutex;
        let _span = tce_trace::span("stage.exec.graph");
        let space = &self.program.space;
        let nstmts = self.program.stmts.len();

        // RAW dataflow: statement → (deps, per-read binding source).
        let mut last_writer: HashMap<TensorId, usize> = HashMap::new();
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(nstmts);
        let mut bindings: Vec<Vec<(TensorId, usize)>> = Vec::with_capacity(nstmts);
        for (si, stmt) in self.program.stmts.iter().enumerate() {
            let mut reads: Vec<TensorId> = Vec::new();
            for plan in self.plans.iter().filter(|p| p.stmt_index == si) {
                for node in &plan.tree.nodes {
                    if let tce_ir::OpKind::Leaf(tce_ir::Leaf::Input { tensor, .. }) = &node.kind {
                        if !reads.contains(tensor) {
                            reads.push(*tensor);
                        }
                    }
                }
            }
            if stmt.accumulate && !reads.contains(&stmt.lhs.tensor) {
                reads.push(stmt.lhs.tensor);
            }
            let mut d = Vec::new();
            let mut b = Vec::new();
            for r in reads {
                if let Some(&w) = last_writer.get(&r) {
                    if !d.contains(&w) {
                        d.push(w);
                    }
                    b.push((r, w));
                }
            }
            deps.push(d);
            bindings.push(b);
            last_writer.insert(stmt.lhs.tensor, si);
        }

        let mut graph = tce_par::TaskGraph::new();
        for (si, stmt) in self.program.stmts.iter().enumerate() {
            let weight = stmt
                .lhs
                .indices
                .iter()
                .map(|&v| space.extent(v) as u64)
                .product::<u64>()
                .max(1);
            graph.add_task(&deps[si], weight);
        }
        let cap = graph.sequential_peak();

        // One result cell per statement; RAW edges serialize every access
        // (a reader's task only starts after its writer completed).
        struct Slots(Vec<UnsafeCell<Option<Tensor>>>);
        unsafe impl Sync for Slots {}
        let slots = Slots((0..nstmts).map(|_| UnsafeCell::new(None)).collect());
        let errors: Vec<Mutex<Option<ExecError>>> = (0..nstmts).map(|_| Mutex::new(None)).collect();

        // Capture the `Sync` wrapper itself (precise closure captures
        // would otherwise grab the inner `Vec<UnsafeCell<..>>` field).
        let slots = &slots;
        graph.run(opts.threads, Some(cap), &|si| {
            let stmt = &self.program.stmts[si];
            let mut inputs: HashMap<TensorId, &Tensor> = external_inputs.clone();
            for &(tensor, w) in &bindings[si] {
                // SAFETY: the RAW edge on `w` orders its write (and the
                // scheduler's lock publishes it) before this task starts;
                // nothing writes slot `w` afterwards.
                match unsafe { &*slots.0[w].get() } {
                    Some(v) => {
                        inputs.insert(tensor, v);
                    }
                    // The dependency failed; its error is already recorded
                    // and will be surfaced after the run.
                    None => return,
                }
            }
            let shape: Vec<usize> = stmt.lhs.indices.iter().map(|&v| space.extent(v)).collect();
            let mut acc = if stmt.accumulate {
                inputs
                    .get(&stmt.lhs.tensor)
                    .map(|t| (*t).clone())
                    .unwrap_or_else(|| Tensor::zeros(&shape))
            } else {
                Tensor::zeros(&shape)
            };
            for plan in self.plans.iter().filter(|p| p.stmt_index == si) {
                match plan.execute_opts(space, &inputs, funcs, opts) {
                    Ok(term_value) => {
                        let reordered = term_value.permute(&lhs_perm(stmt));
                        acc.axpy(plan.coeff, &reordered);
                    }
                    Err(e) => {
                        *errors[si].lock().unwrap_or_else(|p| p.into_inner()) = Some(e);
                        return;
                    }
                }
            }
            // SAFETY: each task writes only its own slot; dependents read
            // it strictly after completion via their RAW edges.
            unsafe { *slots.0[si].get() = Some(acc) };
        });

        // Surface the lowest-index failure — the same statement the
        // source-order walk would have stopped at.
        for e in &errors {
            if let Some(err) = e.lock().unwrap_or_else(|p| p.into_inner()).take() {
                return Err(err);
            }
        }
        let mut computed = HashMap::new();
        for (si, stmt) in self.program.stmts.iter().enumerate() {
            if let Some(v) = unsafe { &mut *slots.0[si].get() }.take() {
                computed.insert(stmt.lhs.tensor, v);
            }
        }
        Ok(computed)
    }

    /// Execute the statement sequence through the **fused-slice
    /// executor**: every term realizes its memory-minimization
    /// [`tce_fusion::FusionConfig`] by allocating each fused intermediate
    /// at its reduced shape and streaming sliced GETT contractions through
    /// it.  Returns the outputs plus measured-vs-modeled peak-live-set
    /// accounting; [`FusedExecSummary::peak_matches_model`] asserts the
    /// memmin DP's `elements` prediction is met exactly.
    ///
    /// # Errors
    /// [`ExecError`] if a binding is missing/mis-shaped or a term's fusion
    /// configuration is rejected.
    pub fn execute_fused_opts(
        &self,
        external_inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
        opts: &ExecOptions,
    ) -> Result<FusedExecSummary, ExecError> {
        let _span = tce_trace::span("stage.exec.fused");
        let space = &self.program.space;
        let mut computed: HashMap<TensorId, Tensor> = HashMap::new();
        let mut summary = FusedExecSummary {
            outputs: HashMap::new(),
            peak_live_elements: 0,
            modeled_elements: 0,
            sliced_contractions: 0,
            func_evals: 0,
            per_term: Vec::new(),
        };
        for (si, stmt) in self.program.stmts.iter().enumerate() {
            let target = stmt.lhs.tensor;
            let shape: Vec<usize> = stmt.lhs.indices.iter().map(|&v| space.extent(v)).collect();
            let mut acc = if stmt.accumulate {
                computed
                    .get(&target)
                    .cloned()
                    .unwrap_or_else(|| Tensor::zeros(&shape))
            } else {
                Tensor::zeros(&shape)
            };
            for plan in self.plans.iter().filter(|p| p.stmt_index == si) {
                let mut inputs: HashMap<TensorId, &Tensor> = external_inputs.clone();
                for (id, t) in &computed {
                    inputs.insert(*id, t);
                }
                let report = tce_exec::execute_tree_fused(
                    &plan.tree,
                    space,
                    &plan.memmin.config,
                    &inputs,
                    funcs,
                    opts,
                )?;
                summary.peak_live_elements =
                    summary.peak_live_elements.max(report.peak_live_elements);
                summary.modeled_elements = summary.modeled_elements.max(report.modeled_elements);
                summary.sliced_contractions += report.sliced_contractions;
                summary.func_evals += report.func_evals;
                summary.per_term.push(FusedTermReport {
                    stmt_index: si,
                    term_index: plan.term_index,
                    peak_live_elements: report.peak_live_elements,
                    modeled_elements: report.modeled_elements,
                });
                let reordered = report.result.permute(&lhs_perm(stmt));
                acc.axpy(plan.coeff, &reordered);
            }
            computed.insert(target, acc);
        }
        summary.outputs = computed;
        Ok(summary)
    }

    /// Execute the statement sequence on the **sharded distributed
    /// machine**: every term that carries a [`DistPlan`] runs through
    /// `tce_exec::execute_tree_distributed` (per-rank shard buffers,
    /// block-transfer redistribution, tree reduction); terms without a
    /// plan fall back to the sequential GETT path.  Returns the outputs
    /// plus aggregate measured-vs-modeled communication accounting.
    ///
    /// # Errors
    /// [`ExecError`] if an external input binding is missing or mis-shaped.
    ///
    /// # Panics
    /// Panics if the synthesis was not configured with a machine.
    pub fn execute_distributed_opts(
        &self,
        external_inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
        opts: &ExecOptions,
    ) -> Result<DistExecSummary, ExecError> {
        let machine = self
            .machine
            .as_ref()
            .expect("distributed execution requires a machine-configured synthesis");
        let _span = tce_trace::span("stage.exec.distributed");
        let space = &self.program.space;
        let mut computed: HashMap<TensorId, Tensor> = HashMap::new();
        let mut summary = DistExecSummary {
            outputs: HashMap::new(),
            moved_elements: 0,
            predicted_move_elements: 0,
            reduce_words: 0,
            predicted_reduce_words: 0,
            redistributions: 0,
            per_rank_flops: vec![0; machine.grid.num_processors()],
        };
        for (si, stmt) in self.program.stmts.iter().enumerate() {
            let target = stmt.lhs.tensor;
            let shape: Vec<usize> = stmt.lhs.indices.iter().map(|&v| space.extent(v)).collect();
            let mut acc = if stmt.accumulate {
                computed
                    .get(&target)
                    .cloned()
                    .unwrap_or_else(|| Tensor::zeros(&shape))
            } else {
                Tensor::zeros(&shape)
            };
            for plan in self.plans.iter().filter(|p| p.stmt_index == si) {
                let mut inputs: HashMap<TensorId, &Tensor> = external_inputs.clone();
                for (id, t) in &computed {
                    inputs.insert(*id, t);
                }
                let term_value = match &plan.distribution {
                    Some(dist) => {
                        let report = tce_exec::execute_tree_distributed(
                            &plan.tree, space, dist, machine, &inputs, funcs, opts,
                        )?;
                        summary.moved_elements += report.moved_elements;
                        summary.predicted_move_elements += report.predicted_move_elements;
                        summary.reduce_words += report.reduce_words;
                        summary.predicted_reduce_words += report.predicted_reduce_words;
                        summary.redistributions += report.redistributions;
                        for (slot, f) in summary
                            .per_rank_flops
                            .iter_mut()
                            .zip(&report.per_rank_flops)
                        {
                            *slot = slot.saturating_add(*f);
                        }
                        report.result
                    }
                    None => plan.execute_opts(space, &inputs, funcs, opts)?,
                };
                let reordered = term_value.permute(&lhs_perm(stmt));
                acc.axpy(plan.coeff, &reordered);
            }
            computed.insert(target, acc);
        }
        summary.outputs = computed;
        Ok(summary)
    }

    /// Predicted wall-clock nanoseconds for executing this synthesis on
    /// the GETT tree path under measured `rates`: each term's flops
    /// priced at the shape-class GEMM rate, per-contraction operand and
    /// output elements priced as one pass of pack/permute traffic, and
    /// one pool dispatch per contraction node.  This is a first-order
    /// model — it ignores pack reuse factors and cache effects — and is
    /// held to the generous tolerance band `tests/calib_conformance.rs`
    /// documents, not to benchmark accuracy.
    pub fn predicted_exec_ns(&self, rates: &CostRates) -> f64 {
        let space = &self.program.space;
        let mut total = 0.0f64;
        for plan in &self.plans {
            total += plan.tree_ops as f64 * rates.flop_ns_for(plan.tree_ops);
            for node in &plan.tree.nodes {
                if let tce_ir::OpKind::Contract { left, right } = node.kind {
                    let elems = space
                        .iteration_points(plan.tree.node(left).indices)
                        .saturating_add(space.iteration_points(plan.tree.node(right).indices))
                        .saturating_add(space.iteration_points(node.indices));
                    total += elems as f64 * rates.copy_ns;
                    total += rates.dispatch_ns;
                }
            }
        }
        total
    }
}

/// Record a predicted-vs-measured execution-time pair as trace counters:
/// `calib.predicted_ns`, `calib.measured_ns`, and `calib.ratio_milli`
/// (1000 × predicted/measured, rounded).  `ProfileReport` surfaces the
/// triple as its calibration-conformance line.
pub fn record_prediction(predicted_ns: f64, measured_ns: f64) {
    tce_trace::counter("calib.predicted_ns", predicted_ns.round().max(0.0) as u64);
    tce_trace::counter("calib.measured_ns", measured_ns.round().max(0.0) as u64);
    if measured_ns > 0.0 {
        let ratio = (predicted_ns / measured_ns * 1000.0).round().max(0.0) as u64;
        tce_trace::counter("calib.ratio_milli", ratio);
    }
}

/// Permutation taking a term plan's output (LHS indices in canonical
/// ascending-id order) to the statement's declared index order.
fn lhs_perm(stmt: &Assignment) -> Vec<usize> {
    let canon: Vec<tce_ir::IndexVar> = stmt.lhs.index_set().iter().collect();
    stmt.lhs
        .indices
        .iter()
        .map(|v| canon.iter().position(|c| c == v).unwrap())
        .collect()
}

/// Errors from the pipeline.
#[derive(Debug, Clone)]
pub enum SynthesisError {
    /// Front-end failure.
    Lang(LangError),
    /// Semantic failure in a later stage.
    Stage(String),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Lang(e) => write!(f, "language error: {e}"),
            SynthesisError::Stage(s) => write!(f, "synthesis error: {s}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<LangError> for SynthesisError {
    fn from(e: LangError) -> Self {
        SynthesisError::Lang(e)
    }
}

/// Compile source text and run the full pipeline.
pub fn synthesize(src: &str, cfg: &SynthesisConfig) -> Result<Synthesis, SynthesisError> {
    let program = tce_lang::compile(src)?;
    synthesize_program(program, cfg)
}

/// Run the pipeline on an already-lowered program.
pub fn synthesize_program(
    program: Program,
    cfg: &SynthesisConfig,
) -> Result<Synthesis, SynthesisError> {
    program.validate().map_err(SynthesisError::Stage)?;
    let mut plans = Vec::new();
    let mut cse = Vec::new();
    for (si, stmt) in program.stmts.iter().enumerate() {
        for (ti, term) in stmt.terms.iter().enumerate() {
            plans.push(plan_term(&program, cfg, si, ti, stmt, term)?);
        }
        if stmt.terms.len() > 1 {
            let m = optimize_assignment(stmt, &program.space).map_err(SynthesisError::Stage)?;
            cse.push(CseSummary {
                stmt_index: si,
                ops_independent: m.ops_independent,
                ops_with_cse: m.ops_with_cse,
                unique_intermediates: m.unique_intermediates,
                total_intermediates: m.total_intermediates,
            });
        }
    }
    Ok(Synthesis {
        program,
        plans,
        cse,
        machine: cfg.machine.clone(),
    })
}

fn plan_term(
    program: &Program,
    cfg: &SynthesisConfig,
    stmt_index: usize,
    term_index: usize,
    stmt: &Assignment,
    term: &Product,
) -> Result<TermPlan, SynthesisError> {
    let space = &program.space;
    // Stage 1: algebraic transformation — the pareto frontier of tree
    // shapes over (operations, largest intermediate).  The first point is
    // operation-minimal; later points realize the Fig. 5 feedback edge
    // ("causing it to seek a different solution") when the memory stages
    // cannot satisfy the limit on the cheaper trees.
    let problem =
        OpMinProblem::from_term(stmt.lhs.index_set(), term).map_err(SynthesisError::Stage)?;
    let frontier = {
        let _s = tce_trace::span("stage.opmin");
        optimize_pareto(&problem, space)
    };

    type Chosen = (
        usize,
        OpTree,
        MemMinResult,
        Option<(SpaceTimeConfig, TilingResult)>,
    );
    let mut chosen: Option<Chosen> = None;
    for (rank, pt) in frontier.iter().enumerate() {
        let mut tree = pt.tree.clone();
        // A single-factor identity term (e.g. `+ F[a,i]`) optimizes to a
        // bare leaf; wrap it as `leaf · 1` so there is a producer nest to
        // emit (a copy).
        if matches!(tree.node(tree.root).kind, tce_ir::OpKind::Leaf(_)) {
            let leaf = tree.root;
            let keep = tree.node(leaf).indices;
            let one = tree.leaf_one();
            tree.contract(leaf, one, keep);
        }
        let tree = tree;
        tree.validate().map_err(SynthesisError::Stage)?;
        // Stage 2: memory minimization (fusion).
        let memmin = {
            let _s = tce_trace::span("stage.fusion");
            memmin_dp(&tree, space)
        };
        if memmin.memory <= cfg.memory_limit {
            chosen = Some((rank, tree, memmin, None));
            break;
        }
        // Stage 3: space-time trade-off.  Calibrated rates price the
        // frontier in predicted nanoseconds (compute at the measured GEMM
        // rate, temporaries at the measured memory bandwidth); without a
        // profile the unit-cost selection is untouched.
        let st = {
            let _s = tce_trace::span("stage.spacetime");
            match &cfg.calibration {
                Some(rates) => spacetime_optimize_rated(
                    &tree,
                    space,
                    cfg.memory_limit,
                    rates.flop_ns_for(tree.total_ops(space)),
                    rates.word_ns,
                )
                .map_err(SynthesisError::Stage)?,
                None => spacetime_optimize(&tree, space, cfg.memory_limit)
                    .map_err(SynthesisError::Stage)?,
            }
        };
        if let Some(r) = st {
            chosen = Some((rank, tree, memmin, Some(r)));
            break;
        }
    }
    let Some((tree_rank, tree, memmin, spacetime)) = chosen else {
        return Err(SynthesisError::Stage(format!(
            "statement {stmt_index} term {term_index}: no tree shape admits a \
             fusion/recomputation configuration within {} elements",
            cfg.memory_limit
        )));
    };

    // Executable code: the memory-minimal pure-fusion program when it
    // fits; otherwise the chosen fusion/recomputation configuration,
    // emitted untiled (its memory is ≤ the tiled plan's, so it always
    // fits the limit; the tiled plan's analytics accompany the report).
    let result_name = program.tensors.get(stmt.lhs.tensor).name.clone();
    let built = match &spacetime {
        Some((st_cfg, _)) => {
            tce_spacetime::spacetime_program(&tree, space, &program.tensors, st_cfg, &result_name)
                .map_err(SynthesisError::Stage)?
        }
        None => fused_program(&tree, space, &program.tensors, &memmin.config, &result_name),
    };

    // The space-time stage is bypassed whenever pure fusion already fits;
    // record a zero-length marker so traces always show all six stages.
    if spacetime.is_none() {
        tce_trace::mark("stage.spacetime");
    }

    // Stage 4: data locality (blocking of perfect nests).  With a
    // calibration profile the tile search minimizes the measured-latency
    // weighted multi-level cost (nanoseconds) over the profile's cache
    // geometry instead of unit misses in a single abstract cache.
    let locality = {
        let _s = tce_trace::span("stage.locality");
        let locality: Vec<TileSearchResult> = match (cfg.cache_elements, &cfg.calibration) {
            (Some(_), Some(rates)) => {
                let hier = hierarchy_from_rates(rates);
                perfect_nests(&built.program)
                    .iter()
                    .map(|nest| {
                        let h = search_nest_tiles_hierarchy(&built.program, space, nest, &hier);
                        TileSearchResult {
                            blocks: h.blocks,
                            program: h.program,
                            cost: h.cost.round().max(0.0) as u128,
                        }
                    })
                    .collect()
            }
            (Some(cache), None) => perfect_nests(&built.program)
                .iter()
                .map(|nest| search_nest_tiles(&built.program, space, nest, cache))
                .collect(),
            (None, _) => Vec::new(),
        };
        // With tracing on, also evaluate the hierarchy model on the emitted
        // program so per-level `locality.accesses.*` counters appear.
        if tce_trace::enabled() {
            cfg.hierarchy.cost(&built.program, space);
        }
        locality
    };

    // Stage 5: data distribution.  A machine left at the abstract
    // default word cost adopts the measured flops-per-word rate when a
    // profile is loaded; an explicit non-default word cost always wins.
    let distribution = {
        let _s = tce_trace::span("stage.distribution");
        cfg.machine.as_ref().map(|m| match &cfg.calibration {
            Some(rates) if m.word_cost == tce_dist::DEFAULT_WORD_COST => {
                let calibrated = Machine {
                    grid: m.grid.clone(),
                    word_cost: rates.word_cost_flops(),
                };
                optimize_distribution(&tree, space, &calibrated)
            }
            _ => optimize_distribution(&tree, space, m),
        })
    };

    Ok(TermPlan {
        stmt_index,
        term_index,
        coeff: term.coeff,
        direct_ops: stmt.direct_op_count(space),
        tree_ops: tree.total_ops(space),
        tree_ops_poly: tree.total_ops_poly(space),
        tree,
        tree_rank,
        memmin,
        spacetime,
        built,
        locality,
        distribution,
    })
}

impl TermPlan {
    /// Human-readable stage-by-stage report.
    pub fn report(&self, space: &IndexSpace, program: &Program) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== statement {} term {} (coeff {}) ==",
            self.stmt_index, self.term_index, self.coeff
        );
        let _ = writeln!(out, "direct translation ops : {}", self.direct_ops);
        let _ = writeln!(
            out,
            "operation-minimal ops  : {}  ({})",
            self.tree_ops,
            self.tree_ops_poly.display(space)
        );
        let _ = writeln!(
            out,
            "formula sequence:\n{}",
            self.tree
                .formula_sequence(space, "OUT", &|t: TensorId| program
                    .tensors
                    .get(t)
                    .name
                    .clone())
        );
        if self.tree_rank > 0 {
            let _ = writeln!(
                out,
                "NOTE: fell back to pareto tree #{} (costlier association with \
                 smaller intermediates) to satisfy the memory limit",
                self.tree_rank
            );
        }
        let _ = writeln!(
            out,
            "memory-minimal temporaries: {} elements",
            self.memmin.memory
        );
        if let Some((st, tiles)) = &self.spacetime {
            let _ = writeln!(
                out,
                "space-time: memory {} elements, ops {} (recomputation indices: {})",
                tiles.memory,
                tiles.ops,
                space.set_to_string(st.recomputation_indices())
            );
        }
        // Symmetry-aware input storage (the high-level language's symmetry
        // declarations reduce what must be stored/read).
        for node in &self.tree.nodes {
            if let tce_ir::OpKind::Leaf(tce_ir::Leaf::Input { tensor, .. }) = &node.kind {
                let decl = program.tensors.get(*tensor);
                if !decl.symmetry.is_empty() {
                    let _ = writeln!(
                        out,
                        "input `{}`: {} dense elements, {} unique under its declared symmetry",
                        decl.name,
                        decl.dense_elements(space),
                        decl.unique_elements(space)
                    );
                }
            }
        }
        let mem = memory_report(&self.built.program, space);
        let ops = op_counts(&self.built.program, space);
        let _ = writeln!(
            out,
            "fused program: {} temp elements, {} flops",
            mem.temp_elements,
            ops.total()
        );
        for (i, loc) in self.locality.iter().enumerate() {
            let _ = writeln!(out, "locality nest {i}: modeled misses {}", loc.cost);
        }
        if let Some(plan) = &self.distribution {
            let _ = writeln!(out, "distribution cost: {}", plan.total_cost);
        }
        let _ = writeln!(out, "pseudocode:\n{}", pretty(&self.built.program));
        out
    }

    /// Execute this term with default options (all available threads,
    /// `TCE_THREADS` honoured) — see [`execute_opts`](Self::execute_opts).
    pub fn execute(
        &self,
        space: &IndexSpace,
        inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
    ) -> Result<Tensor, ExecError> {
        self.execute_opts(space, inputs, funcs, &ExecOptions::default())
    }

    /// Execute this term's contraction tree on the packed GETT engine
    /// (plan-cached, thread-parallel over output tiles).  The result is
    /// bitwise identical for every thread count and agrees with the
    /// interpreted fused program ([`execute_interpreted`]
    /// (Self::execute_interpreted)) to rounding.
    pub fn execute_opts(
        &self,
        space: &IndexSpace,
        inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
        opts: &ExecOptions,
    ) -> Result<Tensor, ExecError> {
        tce_exec::execute_tree_opts(&self.tree, space, inputs, funcs, opts)
    }

    /// Run the synthesized fused loop program through the scalar
    /// interpreter — the instrumented verification path (memory-access
    /// sinks, exact op counts), not the fast one.
    pub fn execute_interpreted(
        &self,
        space: &IndexSpace,
        inputs: &HashMap<TensorId, &Tensor>,
        funcs: &HashMap<String, IntegralFn>,
    ) -> Result<Tensor, ExecError> {
        let mut interp = tce_exec::Interpreter::new(&self.built.program, space, inputs, funcs)?;
        interp.run(&mut tce_exec::NoSink);
        Ok(interp.output().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECTION2: &str = "
        range N = 6;
        index a, b, c, d, e, f, i, j, k, l : N;
        tensor A(N, N, N, N);
        tensor B(N, N, N, N);
        tensor C(N, N, N, N);
        tensor D(N, N, N, N);
        tensor S(N, N, N, N);
        S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * C[d,f,j,k] * D[c,d,e,l];
    ";

    #[test]
    fn pipeline_reproduces_section2_numbers() {
        let syn = synthesize(SECTION2, &SynthesisConfig::default()).unwrap();
        assert_eq!(syn.plans.len(), 1);
        let plan = &syn.plans[0];
        assert_eq!(plan.direct_ops, 4 * 6u128.pow(10));
        assert_eq!(plan.tree_ops, 6 * 6u128.pow(6));
        // Fusion: T1 scalar + T2 2-D.
        assert_eq!(plan.memmin.memory, 1 + 36);
        assert!(plan.spacetime.is_none());
        let report = plan.report(&syn.program.space, &syn.program);
        assert!(report.contains("6·N^6"));
    }

    #[test]
    fn pipeline_executes_correctly() {
        // N = 4 keeps the 10-deep reference einsum (N^10 points) fast.
        let syn = synthesize(
            &SECTION2.replace("N = 6", "N = 4"),
            &SynthesisConfig::default(),
        )
        .unwrap();
        let plan = &syn.plans[0];
        let space = &syn.program.space;
        let shape = [4usize; 4];
        let ta = Tensor::random(&shape, 1);
        let tb = Tensor::random(&shape, 2);
        let tc = Tensor::random(&shape, 3);
        let td = Tensor::random(&shape, 4);
        let mut inputs = HashMap::new();
        for (nm, t) in [("A", &ta), ("B", &tb), ("C", &tc), ("D", &td)] {
            inputs.insert(syn.program.tensors.by_name(nm).unwrap(), t);
        }
        let got = plan.execute(space, &inputs, &HashMap::new()).unwrap();
        // Reference through the direct einsum.
        let v = |n: &str| space.var_by_name(n).unwrap();
        let spec = tce_tensor::EinsumSpec::new(
            vec![v("a"), v("b"), v("i"), v("j")],
            vec![
                vec![v("a"), v("c"), v("i"), v("k")],
                vec![v("b"), v("e"), v("f"), v("l")],
                vec![v("d"), v("f"), v("j"), v("k")],
                vec![v("c"), v("d"), v("e"), v("l")],
            ],
            space.parse_set("c,d,e,f,k,l").unwrap(),
        )
        .unwrap();
        let expect = spec.eval(space, &[&ta, &tb, &tc, &td]);
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn gett_path_agrees_with_interpreted_fused_program() {
        let syn = synthesize(
            &SECTION2.replace("N = 6", "N = 4"),
            &SynthesisConfig::default(),
        )
        .unwrap();
        let plan = &syn.plans[0];
        let space = &syn.program.space;
        let shape = [4usize; 4];
        let ta = Tensor::random(&shape, 21);
        let tb = Tensor::random(&shape, 22);
        let tc = Tensor::random(&shape, 23);
        let td = Tensor::random(&shape, 24);
        let mut inputs = HashMap::new();
        for (nm, t) in [("A", &ta), ("B", &tb), ("C", &tc), ("D", &td)] {
            inputs.insert(syn.program.tensors.by_name(nm).unwrap(), t);
        }
        let interpreted = plan
            .execute_interpreted(space, &inputs, &HashMap::new())
            .unwrap();
        let fast1 = plan
            .execute_opts(space, &inputs, &HashMap::new(), &ExecOptions::serial())
            .unwrap();
        assert!(interpreted.approx_eq(&fast1, 1e-9));
        // Thread count never changes bits.
        for threads in [2, 3, 7] {
            let fastn = plan
                .execute_opts(
                    space,
                    &inputs,
                    &HashMap::new(),
                    &ExecOptions::with_threads(threads),
                )
                .unwrap();
            assert_eq!(fast1, fastn, "threads={threads} changed bits");
        }
    }

    #[test]
    fn fused_execution_matches_gett_and_model_peak() {
        let syn = synthesize(
            &SECTION2.replace("N = 6", "N = 4"),
            &SynthesisConfig::default(),
        )
        .unwrap();
        let shape = [4usize; 4];
        let ta = Tensor::random(&shape, 31);
        let tb = Tensor::random(&shape, 32);
        let tc = Tensor::random(&shape, 33);
        let td = Tensor::random(&shape, 34);
        let mut ext = HashMap::new();
        for (nm, t) in [("A", &ta), ("B", &tb), ("C", &tc), ("D", &td)] {
            ext.insert(syn.program.tensors.by_name(nm).unwrap(), t);
        }
        let expect = syn.execute(&ext, &HashMap::new()).unwrap();
        let fused = syn
            .execute_fused_opts(&ext, &HashMap::new(), &ExecOptions::serial())
            .unwrap();
        // Measured peak intermediate storage equals the memmin DP model.
        assert!(fused.peak_matches_model());
        assert_eq!(fused.modeled_elements, syn.plans[0].memmin.memory);
        let s_id = syn.program.tensors.by_name("S").unwrap();
        assert!(
            fused.outputs[&s_id].approx_eq(&expect[&s_id], 1e-10),
            "diff {:e}",
            fused.outputs[&s_id].max_abs_diff(&expect[&s_id])
        );
        // Thread count never changes bits.
        let f2 = syn
            .execute_fused_opts(&ext, &HashMap::new(), &ExecOptions::with_threads(4))
            .unwrap();
        assert_eq!(f2.outputs[&s_id], fused.outputs[&s_id]);
        assert_eq!(f2.peak_live_elements, fused.peak_live_elements);
    }

    #[test]
    fn spacetime_engages_when_memory_tight() {
        // Limit below the memory-minimal footprint forces stage 3.
        let src = "
            range V = 4; range O = 2;
            index a, c, e, f, b1 : V; index k : O;
            tensor E();
            function f1(V, V, V, O) cost 100;
            function f2(V, V, V, O) cost 100;
            function fx(V, V, V, V) cost 1;
            E = sum[a,c,e,f,b1,k] f1(c,e,b1,k) * f2(a,f,b1,k) * fx(a,e,c,f);
        ";
        let cfg = SynthesisConfig {
            memory_limit: 50,
            ..SynthesisConfig::default()
        };
        let syn = synthesize(src, &cfg).unwrap();
        let plan = &syn.plans[0];
        if plan.memmin.memory > 50 {
            let (_, tiles) = plan.spacetime.as_ref().expect("space-time engaged");
            assert!(tiles.memory <= 50);
        }
    }

    #[test]
    fn infeasible_limit_reports_error() {
        let src = "
            range N = 8;
            index i, j, k : N;
            tensor A(N, N); tensor B(N, N); tensor C(N, N); tensor S(N, N);
            S[i,j] = sum[k] A[i,k] * B[k,j];
        ";
        let cfg = SynthesisConfig {
            memory_limit: 0,
            ..SynthesisConfig::default()
        };
        // Single contraction has no temporaries at all — always fits.
        assert!(synthesize(src, &cfg).is_ok());
    }

    #[test]
    fn locality_and_distribution_stages_populate() {
        let src = "
            range N = 16;
            index i, j, k : N;
            tensor A(N, N); tensor B(N, N); tensor S(N, N);
            S[i,j] = sum[k] A[i,k] * B[k,j];
        ";
        let cfg = SynthesisConfig {
            cache_elements: Some(128),
            machine: Some(Machine::new(tce_par::ProcessorGrid::new(vec![2, 2]))),
            ..SynthesisConfig::default()
        };
        let syn = synthesize(src, &cfg).unwrap();
        let plan = &syn.plans[0];
        assert!(!plan.locality.is_empty());
        assert!(plan.distribution.is_some());
        let report = plan.report(&syn.program.space, &syn.program);
        assert!(report.contains("locality nest 0"));
        assert!(report.contains("distribution cost"));
    }

    #[test]
    fn multi_term_statements_get_one_plan_each() {
        let src = "
            range N = 4;
            index i, j, k : N;
            tensor A(N, N); tensor B(N, N); tensor S(N, N);
            S[i,j] = sum[k] A[i,k] * B[k,j] - 2 * B[i,k] * A[k,j];
        ";
        let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
        assert_eq!(syn.plans.len(), 2);
        assert_eq!(syn.plans[1].coeff, -2.0);
    }

    #[test]
    fn statement_sequence_executes_with_dataflow() {
        // Two statements: T = A·B, then S = T·A + 2·T, exercising
        // intermediate dataflow, multi-term summation and coefficients.
        let src = "
            range N = 5;
            index i, j, k : N;
            tensor A(N, N); tensor B(N, N); tensor T(N, N); tensor S(N, N);
            T[i,j] = sum[k] A[i,k] * B[k,j];
            S[i,j] = sum[k] T[i,k] * A[k,j] + 2 * T[i,j] * B[i,j];
        ";
        let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
        assert_eq!(syn.plans.len(), 3);
        let a = Tensor::random(&[5, 5], 1);
        let b = Tensor::random(&[5, 5], 2);
        let mut ext = HashMap::new();
        ext.insert(syn.program.tensors.by_name("A").unwrap(), &a);
        ext.insert(syn.program.tensors.by_name("B").unwrap(), &b);
        let out = syn.execute(&ext, &HashMap::new()).unwrap();
        let s_id = syn.program.tensors.by_name("S").unwrap();
        let got = &out[&s_id];
        // Reference by hand.
        let mut t = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    t.add_assign_at(&[i, j], a.get(&[i, k]) * b.get(&[k, j]));
                }
            }
        }
        let mut expect = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    expect.add_assign_at(&[i, j], t.get(&[i, k]) * a.get(&[k, j]));
                }
                expect.add_assign_at(&[i, j], 2.0 * t.get(&[i, j]) * b.get(&[i, j]));
            }
        }
        assert!(
            got.approx_eq(&expect, 1e-9),
            "diff {:e}",
            got.max_abs_diff(&expect)
        );
        // T is also reported.
        let t_id = syn.program.tensors.by_name("T").unwrap();
        assert!(out[&t_id].approx_eq(&t, 1e-9));
    }

    #[test]
    fn statement_graph_schedule_matches_source_order_bitwise() {
        // Mixed dataflow: two independent statements, a join, and an
        // accumulate — the graph path must reproduce source-order results
        // bit for bit at every worker count.
        let src = "
            range N = 5;
            index i, j, k : N;
            tensor A(N, N); tensor B(N, N);
            tensor T(N, N); tensor U(N, N); tensor S(N, N);
            T[i,j] = sum[k] A[i,k] * B[k,j];
            U[i,j] = sum[k] B[i,k] * B[k,j];
            S[i,j] = sum[k] T[i,k] * U[k,j];
            S[i,j] += sum[k] U[i,k] * T[k,j];
        ";
        let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
        let a = Tensor::random(&[5, 5], 51);
        let b = Tensor::random(&[5, 5], 52);
        let mut ext = HashMap::new();
        ext.insert(syn.program.tensors.by_name("A").unwrap(), &a);
        ext.insert(syn.program.tensors.by_name("B").unwrap(), &b);
        let seq = syn
            .execute_opts(&ext, &HashMap::new(), &ExecOptions::serial())
            .unwrap();
        for threads in [1, 2, 4, 8] {
            let opts = ExecOptions::with_threads(threads).with_schedule(tce_exec::Schedule::Graph);
            let graph = syn.execute_opts(&ext, &HashMap::new(), &opts).unwrap();
            assert_eq!(graph.len(), seq.len());
            for (id, t) in &seq {
                assert_eq!(&graph[id], t, "threads={threads} changed bits");
            }
        }
        // A missing binding errors identically under both schedules.
        let partial: HashMap<_, _> = ext
            .iter()
            .filter(|(id, _)| **id != syn.program.tensors.by_name("A").unwrap())
            .map(|(id, t)| (*id, *t))
            .collect();
        let se = syn
            .execute_opts(&partial, &HashMap::new(), &ExecOptions::serial())
            .unwrap_err();
        let ge = syn
            .execute_opts(
                &partial,
                &HashMap::new(),
                &ExecOptions::with_threads(4).with_schedule(tce_exec::Schedule::Graph),
            )
            .unwrap_err();
        assert_eq!(se.to_string(), ge.to_string());
    }

    #[test]
    fn accumulate_statement_adds_to_previous_value() {
        let src = "
            range N = 4;
            index i, k : N;
            tensor A(N, N); tensor S(N);
            S[i] = sum[k] A[i,k] * A[i,k];
            S[i] += sum[k] A[k,i] * A[k,i];
        ";
        let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
        let a = Tensor::random(&[4, 4], 9);
        let mut ext = HashMap::new();
        ext.insert(syn.program.tensors.by_name("A").unwrap(), &a);
        let out = syn.execute(&ext, &HashMap::new()).unwrap();
        let s = &out[&syn.program.tensors.by_name("S").unwrap()];
        for i in 0..4 {
            let mut expect = 0.0;
            for k in 0..4 {
                expect += a.get(&[i, k]).powi(2) + a.get(&[k, i]).powi(2);
            }
            assert!((s.get(&[i]) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn per_term_summation_convention() {
        // The second term does not mention k; it must NOT be scaled by
        // extent(k) (per-term Σ convention).
        let src = "
            range N = 4;
            index i, k : N;
            tensor A(N, N); tensor B(N); tensor S(N);
            S[i] = sum[k] A[i,k] * A[i,k] + B[i] * B[i];
        ";
        let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
        let a = Tensor::random(&[4, 4], 1);
        let b = Tensor::random(&[4], 2);
        let mut ext = HashMap::new();
        ext.insert(syn.program.tensors.by_name("A").unwrap(), &a);
        ext.insert(syn.program.tensors.by_name("B").unwrap(), &b);
        let out = syn.execute(&ext, &HashMap::new()).unwrap();
        let s = &out[&syn.program.tensors.by_name("S").unwrap()];
        for i in 0..4 {
            let mut expect = b.get(&[i]).powi(2); // NOT ×4
            for k in 0..4 {
                expect += a.get(&[i, k]).powi(2);
            }
            assert!((s.get(&[i]) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn single_factor_copy_term_executes() {
        // `+ F[a,i]` — a bare copy term (wrapped as leaf·1 internally).
        let src = "
            range N = 4;
            index i, k : N;
            tensor A(N, N); tensor F(N); tensor S(N);
            S[i] = sum[k] A[i,k] * A[k,i] + F[i];
        ";
        let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
        let a = Tensor::random(&[4, 4], 3);
        let f = Tensor::random(&[4], 4);
        let mut ext = HashMap::new();
        ext.insert(syn.program.tensors.by_name("A").unwrap(), &a);
        ext.insert(syn.program.tensors.by_name("F").unwrap(), &f);
        let out = syn.execute(&ext, &HashMap::new()).unwrap();
        let s = &out[&syn.program.tensors.by_name("S").unwrap()];
        for i in 0..4 {
            let mut expect = f.get(&[i]);
            for k in 0..4 {
                expect += a.get(&[i, k]) * a.get(&[k, i]);
            }
            assert!((s.get(&[i]) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn permuted_lhs_order_is_respected() {
        // LHS declared [j, i] while canonical order is [i, j]: execute()
        // must permute the plan output.
        let src = "
            range N = 3; range M = 4;
            index i : N; index j : M; index k : N;
            tensor A(N, N); tensor B(N, M); tensor S(M, N);
            S[j,i] = sum[k] A[i,k] * B[k,j];
        ";
        let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
        let a = Tensor::random(&[3, 3], 3);
        let b = Tensor::random(&[3, 4], 4);
        let mut ext = HashMap::new();
        ext.insert(syn.program.tensors.by_name("A").unwrap(), &a);
        ext.insert(syn.program.tensors.by_name("B").unwrap(), &b);
        let out = syn.execute(&ext, &HashMap::new()).unwrap();
        let s = &out[&syn.program.tensors.by_name("S").unwrap()];
        assert_eq!(s.shape(), &[4, 3]);
        for j in 0..4 {
            for i in 0..3 {
                let mut expect = 0.0;
                for k in 0..3 {
                    expect += a.get(&[i, k]) * b.get(&[k, j]);
                }
                assert!((s.get(&[j, i]) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn feedback_falls_back_to_smaller_intermediate_tree() {
        // Four skewed factors where the op-minimal association needs a
        // large intermediate; under a tight limit the pipeline must pick a
        // later pareto tree (or recompute) and still fit.
        let src = "
            range B = 30; range S = 2;
            index i : B; index j, k : S; index l : B;
            tensor A(B, S); tensor P(S, S); tensor Q(S, B); tensor OUT(B, B);
            OUT[i,l] = sum[j,k] A[i,j] * P[j,k] * Q[k,l];
        ";
        let roomy = synthesize(src, &SynthesisConfig::default()).unwrap();
        assert_eq!(roomy.plans[0].tree_rank, 0);
        let tight = SynthesisConfig {
            memory_limit: 8,
            ..SynthesisConfig::default()
        };
        let constrained = synthesize(src, &tight).unwrap();
        let plan = &constrained.plans[0];
        // Whatever route it took, the executable program fits the limit.
        let mem = memory_report(&plan.built.program, &constrained.program.space);
        let out_elems = 30u128 * 30;
        assert!(mem.temp_elements - out_elems <= 8);
        // And still computes the right thing.
        let a = Tensor::random(&[30, 2], 1);
        let p = Tensor::random(&[2, 2], 2);
        let q = Tensor::random(&[2, 30], 3);
        let mut inputs = HashMap::new();
        inputs.insert(constrained.program.tensors.by_name("A").unwrap(), &a);
        inputs.insert(constrained.program.tensors.by_name("P").unwrap(), &p);
        inputs.insert(constrained.program.tensors.by_name("Q").unwrap(), &q);
        let got = plan
            .execute(&constrained.program.space, &inputs, &HashMap::new())
            .unwrap();
        let expect = roomy.plans[0]
            .execute(&roomy.program.space, &inputs, &HashMap::new())
            .unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn cse_summary_reports_sharing() {
        let src = "
            range N = 5; index i, j, k : N;
            tensor A(N, N); tensor B(N, N); tensor S(N, N);
            S[i,j] = sum[k] A[i,k] * B[k,j] + A[i,k] * B[k,j];
        ";
        let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
        assert_eq!(syn.cse.len(), 1);
        let c = &syn.cse[0];
        assert_eq!(c.total_intermediates, 2);
        assert_eq!(c.unique_intermediates, 1);
        assert_eq!(c.ops_with_cse * 2, c.ops_independent);
        // Single-term statements produce no summary.
        let syn2 = synthesize(
            "range N = 4; index i, k : N; tensor A(N, N); tensor S(N);
             S[i] = sum[k] A[i,k] * A[i,k];",
            &SynthesisConfig::default(),
        )
        .unwrap();
        assert!(syn2.cse.is_empty());
    }

    #[test]
    fn language_errors_propagate() {
        assert!(matches!(
            synthesize("range ;", &SynthesisConfig::default()),
            Err(SynthesisError::Lang(_))
        ));
    }
}
