//! Locality-stage validation: blocking is semantics-preserving, and the
//! §6 analytic cost model tracks the LRU cache simulator where it claims
//! to (working set fits → cold misses only; working set spills → miss
//! volume grows with the modeled multiplicative cost).

use std::collections::HashMap;
use tce_core::exec::{CacheSink, Interpreter, LruCache, NoSink};
use tce_core::ir::rng::Rng;
use tce_core::ir::{IndexSpace, TensorDecl, TensorTable};
use tce_core::locality::{access_cost, perfect_nests, search_nest_tiles, tile_nest};
use tce_core::loops::{ARef, ArrayKind, LoopProgram, Stmt, Sub, VarRange};
use tce_core::tensor::Tensor;

/// Build `C[i,j] += A[i,k]·B[k,j]` with the given loop order (a
/// permutation of [i, j, k] positions).
fn matmul_program(n: usize, order: [usize; 3]) -> (IndexSpace, TensorTable, LoopProgram) {
    let mut space = IndexSpace::new();
    let r = space.add_range("N", n);
    let i = space.add_var("i", r);
    let j = space.add_var("j", r);
    let k = space.add_var("k", r);
    let mut tensors = TensorTable::new();
    let ta = tensors.add(TensorDecl::dense("A", vec![r, r]));
    let tb = tensors.add(TensorDecl::dense("B", vec![r, r]));
    let mut p = LoopProgram::new();
    let vi = p.add_var("i", VarRange::Full(i));
    let vj = p.add_var("j", VarRange::Full(j));
    let vk = p.add_var("k", VarRange::Full(k));
    let a = p.add_array(
        "A",
        vec![VarRange::Full(i), VarRange::Full(k)],
        ArrayKind::Input(ta),
    );
    let b = p.add_array(
        "B",
        vec![VarRange::Full(k), VarRange::Full(j)],
        ArrayKind::Input(tb),
    );
    let c = p.add_array(
        "C",
        vec![VarRange::Full(i), VarRange::Full(j)],
        ArrayKind::Output,
    );
    let stmt = Stmt::Accum {
        lhs: ARef {
            array: c,
            subs: vec![Sub::Var(vi), Sub::Var(vj)],
        },
        rhs: vec![
            ARef {
                array: a,
                subs: vec![Sub::Var(vi), Sub::Var(vk)],
            },
            ARef {
                array: b,
                subs: vec![Sub::Var(vk), Sub::Var(vj)],
            },
        ],
        coeff: 1.0,
    };
    let vars = [vi, vj, vk];
    let loop_order: Vec<_> = order.iter().map(|&q| vars[q]).collect();
    p.body.push(tce_core::loops::nest(loop_order, vec![stmt]));
    p.validate().unwrap();
    (space, tensors, p)
}

fn run_with_cache(
    p: &LoopProgram,
    space: &IndexSpace,
    tensors: &TensorTable,
    n: usize,
    cache_elems: usize,
) -> (Tensor, u64) {
    let a = Tensor::random(&[n, n], 1);
    let b = Tensor::random(&[n, n], 2);
    let mut inputs = HashMap::new();
    inputs.insert(tensors.by_name("A").unwrap(), &a);
    inputs.insert(tensors.by_name("B").unwrap(), &b);
    let sizes: Vec<usize> = p
        .arrays
        .iter()
        .map(|x| x.elements(space) as usize)
        .collect();
    let mut sink = CacheSink::new(LruCache::new(cache_elems, 1), &sizes);
    let mut interp = Interpreter::new(p, space, &inputs, &HashMap::new()).unwrap();
    interp.run(&mut sink);
    (interp.output().clone(), sink.cache.misses)
}

#[test]
fn model_exact_when_working_set_fits() {
    let n = 8;
    let (space, tensors, p) = matmul_program(n, [0, 1, 2]);
    // Cache big enough for all three arrays: the model predicts exactly
    // the footprint (3·n²) and the simulator sees exactly the cold misses.
    let cache = 4 * n * n;
    let modeled = access_cost(&p, &space, cache as u128);
    let (_, misses) = run_with_cache(&p, &space, &tensors, n, cache);
    assert_eq!(modeled, 3 * (n * n) as u128);
    assert_eq!(misses, 3 * (n * n) as u64);
}

#[test]
fn simulated_misses_grow_when_cache_shrinks() {
    let n = 16;
    let (space, tensors, p) = matmul_program(n, [0, 1, 2]);
    let (_, big) = run_with_cache(&p, &space, &tensors, n, 4 * n * n);
    let (_, small) = run_with_cache(&p, &space, &tensors, n, n);
    assert!(small > 4 * big, "small-cache misses {small} vs {big}");
    // The model agrees qualitatively.
    let m_big = access_cost(&p, &space, (4 * n * n) as u128);
    let m_small = access_cost(&p, &space, n as u128);
    assert!(m_small > 4 * m_big);
}

#[test]
fn blocking_reduces_simulated_misses() {
    let n = 32;
    let (space, tensors, p) = matmul_program(n, [0, 1, 2]);
    let cache = 384; // fits ~3 blocks of 8×8 plus change, not rows of B
    let nests = perfect_nests(&p);
    let best = search_nest_tiles(&p, &space, &nests[0], cache as u128);
    let (out_plain, misses_plain) = run_with_cache(&p, &space, &tensors, n, cache);
    let (out_tiled, misses_tiled) = run_with_cache(&best.program, &space, &tensors, n, cache);
    assert!(
        out_tiled.approx_eq(&out_plain, 1e-9),
        "tiling changed results"
    );
    assert!(
        misses_tiled < misses_plain,
        "tiled {misses_tiled} vs untiled {misses_plain}"
    );
}

/// Tiling any subset of the loops with any block sizes never changes the
/// computed values.
#[test]
fn tiling_preserves_semantics() {
    let orders = [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]];
    let bis = [1usize, 2, 3, 4, 8, 16];
    let bjs = [1usize, 2, 5, 8, 16];
    let bks = [1usize, 3, 4, 16];
    let mut rng = Rng::new(0xc001);
    for _ in 0..24 {
        let order = orders[rng.usize_in(0..orders.len())];
        let bi = bis[rng.usize_in(0..bis.len())];
        let bj = bjs[rng.usize_in(0..bjs.len())];
        let bk = bks[rng.usize_in(0..bks.len())];
        let n = 16;
        let (space, tensors, p) = matmul_program(n, order);
        let nests = perfect_nests(&p);
        let mut blocks = HashMap::new();
        blocks.insert(nests[0].vars[0], bi);
        blocks.insert(nests[0].vars[1], bj);
        blocks.insert(nests[0].vars[2], bk);
        let tiled = tile_nest(&p, &space, &nests[0], &blocks);
        tiled.validate().unwrap();

        let a = Tensor::random(&[n, n], 5);
        let b = Tensor::random(&[n, n], 6);
        let mut inputs = HashMap::new();
        inputs.insert(tensors.by_name("A").unwrap(), &a);
        inputs.insert(tensors.by_name("B").unwrap(), &b);
        let mut i1 = Interpreter::new(&p, &space, &inputs, &HashMap::new()).unwrap();
        i1.run(&mut NoSink);
        let mut i2 = Interpreter::new(&tiled, &space, &inputs, &HashMap::new()).unwrap();
        i2.run(&mut NoSink);
        assert!(i2.output().approx_eq(i1.output(), 1e-9));
        // Tiling never changes the flop count (ragged iterations skip).
        assert_eq!(i1.stats.contraction_flops, i2.stats.contraction_flops);
    }
}

/// The analytic cost model is monotone non-increasing in cache size.
#[test]
fn model_monotone_in_cache() {
    for order in [[0usize, 1, 2], [2, 0, 1]] {
        let (space, _, p) = matmul_program(12, order);
        let mut last = u128::MAX;
        for c in [2u128, 8, 32, 128, 512, 4096] {
            let cost = access_cost(&p, &space, c);
            assert!(cost <= last);
            last = cost;
        }
    }
}
