//! exp_sched — task-graph schedule vs. sequential statement walk.
//!
//! Runs a multi-statement program of independent contraction chains (the
//! shape where inter-statement parallelism pays: each chain is too small
//! for intra-kernel threading to saturate the machine) through both
//! schedules at a sweep of thread counts, verifying bitwise identity and
//! reporting throughput.  Also measures the buffer pool's effect on
//! allocator traffic: a warm pass must allocate strictly less than the
//! cold pass (hits replace misses).  Writes `BENCH_sched.json`.
//!
//! ```text
//! exp_sched [--out BENCH_sched.json] [--chains K] [--extent N] [--repeats R]
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;
use tce_bench::tables::Table;
use tce_core::tensor::bufpool::DEFAULT_BUFPOOL_CAP;
use tce_core::tensor::{bufpool_stats, set_bufpool_capacity, Tensor};
use tce_core::{synthesize, ExecOptions, Schedule, SynthesisConfig};

/// `chains` independent two-matmul chains whose results all feed one
/// cheap join statement.  The fan-in keeps every chain output live until
/// the join in the *sequential* accounting too, so the memmin-preserving
/// live-set cap admits the chains concurrently — the shape where
/// inter-statement parallelism pays (each matmul is too small for
/// intra-kernel threading to saturate the machine).
fn source(chains: usize, extent: usize) -> String {
    let mut src = format!("range N = {extent};\nindex i, j, k : N;\n");
    for c in 0..chains {
        let _ = writeln!(
            src,
            "tensor A{c}(N, N); tensor B{c}(N, N); tensor T{c}(N, N); tensor U{c}(N, N);"
        );
    }
    let _ = writeln!(src, "tensor E(N, N);");
    for c in 0..chains {
        let _ = writeln!(src, "T{c}[i,k] = sum[j] A{c}[i,j] * B{c}[j,k];");
        let _ = writeln!(src, "U{c}[i,k] = sum[j] T{c}[i,j] * A{c}[j,k];");
    }
    let join = (0..chains)
        .map(|c| format!("U{c}[i,k]"))
        .collect::<Vec<_>>()
        .join(" + ");
    let _ = writeln!(src, "E[i,k] = {join};");
    src
}

fn main() {
    let mut out_path = "BENCH_sched.json".to_string();
    let mut chains = 12usize;
    let mut extent = 96usize;
    let mut repeats = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--chains" => {
                chains = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--chains needs a positive integer");
            }
            "--extent" => {
                extent = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--extent needs a positive integer");
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats needs a positive integer");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    println!("exp_sched: task-graph vs sequential schedule ({chains} chains, N={extent})\n");

    let syn = synthesize(&source(chains, extent), &SynthesisConfig::default()).expect("synthesize");
    let tensors: Vec<(String, Tensor)> = (0..chains)
        .flat_map(|c| {
            [
                (
                    format!("A{c}"),
                    Tensor::random(&[extent, extent], 2 * c as u64 + 1),
                ),
                (
                    format!("B{c}"),
                    Tensor::random(&[extent, extent], 2 * c as u64 + 2),
                ),
            ]
        })
        .collect();
    let mut ext = HashMap::new();
    for (name, t) in &tensors {
        ext.insert(syn.program.tensors.by_name(name).unwrap(), t);
    }
    let funcs = HashMap::new();

    // ---- Allocator traffic: cold pass vs warm pass --------------------
    // The pool starts empty (cold): every intermediate is a miss.  The
    // second pass re-acquires the same size classes, so it must hit.
    set_bufpool_capacity(DEFAULT_BUFPOOL_CAP);
    let serial = ExecOptions::serial();
    let before = bufpool_stats();
    let baseline = syn.execute_opts(&ext, &funcs, &serial).expect("cold run");
    let mid = bufpool_stats();
    let warm_result = syn.execute_opts(&ext, &funcs, &serial).expect("warm run");
    let after = bufpool_stats();
    assert_eq!(baseline.len(), warm_result.len());
    let (cold_hits, cold_misses) = (mid.0 - before.0, mid.1 - before.1);
    let (warm_hits, warm_misses) = (after.0 - mid.0, after.1 - mid.1);
    println!(
        "allocations: cold {cold_misses} misses / {cold_hits} hits, \
         warm {warm_misses} misses / {warm_hits} hits"
    );
    assert!(
        warm_misses < cold_misses,
        "warm pass must allocate less than cold: {warm_misses} >= {cold_misses}"
    );

    // ---- Schedule sweep ----------------------------------------------
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut table = Table::new(&["threads", "seq (s)", "graph (s)", "graph/seq speedup"]);
    let mut sweep_json = Vec::new();
    let mut best_speedup = 0.0f64;
    let mut seq1_s = f64::NAN;
    let mut graph1_s = f64::NAN;
    let time_best = |opts: &ExecOptions| {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let r = syn.execute_opts(&ext, &funcs, opts).expect("execute");
            best = best.min(start.elapsed().as_secs_f64());
            result = Some(r);
        }
        (best, result.unwrap())
    };
    for threads in [1usize, 2, 4, 8] {
        let (seq_s, seq_r) = time_best(&ExecOptions::with_threads(threads));
        let (graph_s, graph_r) =
            time_best(&ExecOptions::with_threads(threads).with_schedule(Schedule::Graph));
        for (id, t) in &seq_r {
            assert_eq!(
                t, &graph_r[id],
                "graph schedule changed bits at {threads} threads"
            );
        }
        let speedup = seq_s / graph_s;
        best_speedup = best_speedup.max(speedup);
        if threads == 1 {
            seq1_s = seq_s;
            graph1_s = graph_s;
        }
        table.row(&[
            threads.to_string(),
            format!("{seq_s:.4}"),
            format!("{graph_s:.4}"),
            format!("{speedup:.2}x"),
        ]);
        sweep_json.push(format!(
            "    {{ \"threads\": {threads}, \"seq_s\": {seq_s:.6}, \"graph_s\": {graph_s:.6}, \
             \"speedup\": {speedup:.3} }}"
        ));
    }
    println!("{}", table.render());
    println!("cpus: {cpus}, best graph/seq speedup: {best_speedup:.2}x");

    // At one worker the graph schedule degenerates to the sequential
    // walk; anything beyond a modest constant factor is pure scheduler
    // overhead and a regression regardless of the machine.
    assert!(
        graph1_s <= 2.0 * seq1_s,
        "single-worker graph overhead out of bounds: {graph1_s:.4}s vs seq {seq1_s:.4}s"
    );
    // Inter-statement parallelism needs real cores to pay off; on a
    // single-CPU machine the sweep degenerates to time-slicing, so the
    // win condition only binds where winning is physically possible.
    if cpus > 1 {
        assert!(
            best_speedup >= 1.0,
            "graph schedule never matched seq on a {cpus}-cpu machine"
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sched\",");
    let _ = writeln!(json, "  \"chains\": {chains},");
    let _ = writeln!(json, "  \"extent\": {extent},");
    let _ = writeln!(json, "  \"statements\": {},", syn.program.stmts.len());
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"best_speedup\": {best_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"alloc\": {{ \"cold_misses\": {cold_misses}, \"cold_hits\": {cold_hits}, \
         \"warm_misses\": {warm_misses}, \"warm_hits\": {warm_hits} }},"
    );
    let _ = writeln!(json, "  \"sweep\": [");
    let _ = writeln!(json, "{}", sweep_json.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
