//! Synthetic "expensive integral" functions.
//!
//! The paper's motivating A3A example (§3) recomputes two-electron
//! integrals `f1(c,e,b,k)` and `f2(a,f,b,k)` whose evaluation costs `C_i`
//! ≈ 1000 arithmetic operations each; the whole space-time trade-off of
//! Figs. 2–4 revolves around how often these get recomputed.  Real integral
//! evaluation needs a Gaussian basis set we do not have, so this module
//! substitutes a *deterministic* function with a tunable arithmetic cost:
//! it produces the same value for the same arguments (so recomputation is
//! semantically transparent, exactly like the real integrals) and performs
//! `cost` floating-point operations per call (so measured time scales the
//! way the paper's `C_i` terms predict).  See DESIGN.md "Substitutions".

/// A deterministic synthetic integral generator.
#[derive(Debug, Clone)]
pub struct IntegralFn {
    /// Arithmetic work per evaluation (the paper's `C_i`).
    pub cost: u64,
    /// Distinguishes `f1` from `f2` etc. — different seeds give different
    /// (but individually reproducible) value streams.
    pub seed: u64,
}

impl IntegralFn {
    /// Create a generator with the given per-evaluation cost and seed.
    pub fn new(cost: u64, seed: u64) -> Self {
        Self { cost, seed }
    }

    /// Evaluate at an integer multi-index.  Performs `self.cost` iterations
    /// of a floating-point recurrence seeded by a hash of the arguments, so
    /// (a) equal arguments always give equal results, (b) the work is not
    /// optimized away, and (c) results land in roughly `[-1, 1]`.
    pub fn eval(&self, args: &[usize]) -> f64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for &a in args {
            h ^= (a as u64)
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(h << 6)
                .wrapping_add(h >> 2);
        }
        // splitmix64 finalizer: spreads low-bit argument differences over
        // the whole word before the high bits are taken below.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        // Map hash into (0,1) and run a cheap chaotic recurrence `cost`
        // times. The logistic map keeps values bounded while defeating
        // constant-folding.
        let mut x = ((h >> 11) as f64) / ((1u64 << 53) as f64);
        x = 0.1 + 0.8 * x;
        for _ in 0..self.cost {
            x = 3.75 * x * (1.0 - x);
        }
        2.0 * x - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_arguments() {
        let f = IntegralFn::new(100, 1);
        let a = f.eval(&[1, 2, 3, 4]);
        let b = f.eval(&[1, 2, 3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_arguments_and_seeds() {
        let f1 = IntegralFn::new(100, 1);
        let f2 = IntegralFn::new(100, 2);
        assert_ne!(f1.eval(&[0, 0, 0, 0]), f1.eval(&[0, 0, 0, 1]));
        assert_ne!(f1.eval(&[3, 1, 4, 1]), f2.eval(&[3, 1, 4, 1]));
    }

    #[test]
    fn values_bounded() {
        let f = IntegralFn::new(1000, 7);
        for i in 0..50 {
            let v = f.eval(&[i, i * 2, i + 5]);
            assert!((-1.0..=1.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn zero_cost_still_deterministic() {
        let f = IntegralFn::new(0, 3);
        assert_eq!(f.eval(&[5]), f.eval(&[5]));
    }

    #[test]
    fn cost_scales_work() {
        // Not a timing assertion (too flaky); just check that different
        // costs produce different values (the recurrence actually ran).
        let cheap = IntegralFn::new(10, 1);
        let dear = IntegralFn::new(1000, 1);
        assert_ne!(cheap.eval(&[1, 2]), dear.eval(&[1, 2]));
    }
}
