//! Symmetry and sparsity declarations (paper §4: the high-level language
//! carries "declarations of index ranges and symmetry and sparsity of
//! matrices").
//!
//! * symmetric declarations → packed-triangle storage at ~half the dense
//!   size, verified by round-trip;
//! * sparse declarations → density-proportional contraction work on the
//!   sparse substrate, verified against the dense kernel;
//! * both annotations flow through the language into the synthesis report.
//!
//! ```sh
//! cargo run --release --example symmetry_sparsity
//! ```

use tce_core::ir::IndexSet;
use tce_core::tensor::{
    contract_sparse_dense, sparse_contraction_ops, BinaryContraction, PackedSymmetric,
    SparseTensor, Tensor,
};
use tce_core::{synthesize, SynthesisConfig};

fn main() {
    // --- declarations flow through the language ---
    let src = "
        range V = 24; range O = 8;
        index a, b, c : V; index i : O;
        tensor X(V, V) symmetric(0, 1);
        tensor W(V, V, O, O) antisymmetric(0, 1);
        tensor H(V, V) sparse;
        tensor S(V, V);
        S[a,b] = sum[c] X[a,c] * H[c,b];
    ";
    let syn = synthesize(src, &SynthesisConfig::default()).expect("synthesis");
    let space = &syn.program.space;
    println!("== declared storage (from the language) ==");
    for (_, decl) in syn.program.tensors.iter() {
        let dense = decl.dense_elements(space);
        let unique = decl.unique_elements(space);
        let marks = format!(
            "{}{}",
            if !decl.symmetry.is_empty() {
                " [symmetric]"
            } else {
                ""
            },
            if decl.sparse { " [sparse]" } else { "" }
        );
        println!(
            "  {:>2}: {dense:>8} dense, {unique:>8} unique{marks}",
            decl.name
        );
    }
    println!("\n{}", syn.plans[0].report(space, &syn.program));

    // --- packed symmetric storage, executable ---
    let n = 24usize;
    let raw = Tensor::random(&[n, n], 1);
    let sym = Tensor::from_fn(&[n, n], |idx| raw.get(idx) + raw.get(&[idx[1], idx[0]]));
    let packed = PackedSymmetric::pack(&sym, (0, 1), false, 1e-12);
    println!("== packed symmetric storage ==");
    println!(
        "  dense {} elements → packed {} ({:.0}% of dense)",
        packed.dense_elements(),
        packed.stored_elements(),
        100.0 * packed.stored_elements() as f64 / packed.dense_elements() as f64
    );
    assert!(packed.unpack().approx_eq(&sym, 0.0));
    println!("  round-trip exact: OK");

    // --- sparse contraction ---
    println!("\n== sparse × dense contraction ==");
    let mut sp2 = tce_core::ir::IndexSpace::new();
    let r = sp2.add_range("N", 64);
    let i = sp2.add_var("i", r);
    let j = sp2.add_var("j", r);
    let k = sp2.add_var("k", r);
    let spec = BinaryContraction {
        a: vec![i, k],
        b: vec![k, j],
        out: vec![i, j],
    };
    let dense_b = Tensor::random(&[64, 64], 2);
    for density in [0.01f64, 0.1, 0.5] {
        let a = SparseTensor::random(&[64, 64], density, 3);
        let got = contract_sparse_dense(&spec, &sp2, &a, &dense_b);
        let expect = tce_core::tensor::contract_naive(&spec, &sp2, &a.to_dense(), &dense_b);
        assert!(got.approx_eq(&expect, 1e-9));
        let dense_ops = spec.flops(&sp2) as f64;
        let sparse_ops = sparse_contraction_ops(&spec, &sp2, a.density());
        println!(
            "  density {density:>4}: nnz {:>5}, modeled work {:>9.0} flops ({:.1}% of dense {:.0})",
            a.nnz(),
            sparse_ops,
            100.0 * sparse_ops / dense_ops,
            dense_ops
        );
    }
    let _ = IndexSet::EMPTY;
    println!("OK");
}
