//! The line-delimited wire protocol.
//!
//! Every request and every response is exactly one `\n`-terminated line of
//! UTF-8.  Tokens on the line are space-separated; values that contain
//! spaces, newlines, or backslashes (program text does) are escaped with
//! [`escape`] so they stay single tokens.
//!
//! Requests:
//!
//! ```text
//! run program=<escaped source> [seed=S] [threads=T] [memory-limit=N] [cache=N]
//! stats
//! ping
//! shutdown
//! ```
//!
//! Responses (framed by the server, not this module):
//!
//! ```text
//! ok <escaped payload>      request served; payload unescapes to the
//!                           same text the one-shot CLI prints
//! err <escaped diagnostic>  request failed cleanly (parse error, bad
//!                           option, execution error, handler panic)
//! busy                      admission queue full — retry later
//! timeout                   wall-clock budget exceeded
//! ```

/// Escape `s` into a single whitespace-free token: `\` → `\\`,
/// newline → `\n`, carriage return → `\r`, tab → `\t`, space → `\s`.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ' ' => out.push_str("\\s"),
            other => out.push(other),
        }
    }
    out
}

/// Invert [`escape`].
///
/// # Errors
/// A trailing lone backslash or an unknown escape sequence.
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('s') => out.push(' '),
            Some(other) => return Err(format!("unknown escape `\\{other}`")),
            None => return Err("trailing backslash".to_string()),
        }
    }
    Ok(out)
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile (or fetch from the synthesis cache) and execute a program.
    Run {
        /// The tensor-contraction specification source text.
        program: String,
        /// Remaining `key=value` options, unescaped, in wire order.
        opts: Vec<(String, String)>,
    },
    /// Report server counters and cache statistics.
    Stats,
    /// Liveness probe; the server answers `ok pong`.
    Ping,
    /// Ask the server to drain its queue and exit.
    Shutdown,
}

/// Parse one request line.
///
/// # Errors
/// Unknown command, malformed `key=value` token, bad escape, or a `run`
/// without a `program`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let mut tokens = line.split(' ').filter(|t| !t.is_empty());
    let cmd = tokens.next().ok_or("empty request")?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "run" => {
            let mut program = None;
            let mut opts = Vec::new();
            for tok in tokens {
                let (key, value) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("malformed option `{tok}` (expected key=value)"))?;
                let value = unescape(value).map_err(|e| format!("bad value for `{key}`: {e}"))?;
                if key == "program" {
                    program = Some(value);
                } else {
                    opts.push((key.to_string(), value));
                }
            }
            let program = program.ok_or("run request without program=...")?;
            Ok(Request::Run { program, opts })
        }
        other => Err(format!(
            "unknown command `{other}` (expected run|stats|ping|shutdown)"
        )),
    }
}

/// Encode a `run` request line (client side of [`parse_request`]).
#[must_use]
pub fn format_run(program: &str, opts: &[(&str, &str)]) -> String {
    let mut line = format!("run program={}", escape(program));
    for (k, v) in opts {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(&escape(v));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips() {
        for s in [
            "",
            "plain",
            "two words",
            "line\nbreak\r\n tab\t end",
            "back\\slash \\n literal",
            "α β γ unicode",
        ] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
            assert!(!escape(s).contains([' ', '\n', '\r', '\t']));
        }
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert!(unescape("trailing\\").is_err());
        assert!(unescape("bad\\q").is_err());
    }

    #[test]
    fn parse_run_roundtrips() {
        let src = "range N = 4;\nindex i : N;\ntensor A(N);\nA[i] = A[i];";
        let line = format_run(src, &[("seed", "7"), ("threads", "2")]);
        let req = parse_request(&line).unwrap();
        assert_eq!(
            req,
            Request::Run {
                program: src.to_string(),
                opts: vec![("seed".into(), "7".into()), ("threads".into(), "2".into())],
            }
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_request("").is_err());
        assert!(parse_request("frobnicate").is_err());
        assert!(parse_request("run").is_err());
        assert!(parse_request("run seed=1").is_err());
        assert!(parse_request("run program=x notakv").is_err());
        assert!(parse_request("run program=bad\\q").is_err());
    }

    #[test]
    fn parse_simple_commands() {
        assert_eq!(parse_request("ping\n").unwrap(), Request::Ping);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("shutdown\r\n").unwrap(), Request::Shutdown);
    }
}
