//! Direct (array-at-a-time) execution of operator trees.
//!
//! Evaluates a formula sequence bottom-up, materializing every
//! intermediate at full size — the execution model of the *unfused*
//! operation-minimal form.  Every contraction node runs on the packed
//! GETT engine (`tce_tensor::contract_gett`): plans are pulled from the
//! process-wide cache and the macro-loops parallelize over disjoint
//! output tiles on the shared worker pool, so results are bitwise
//! identical at every thread count.  Serves both as a second semantic
//! oracle for the loop-program interpreter and as the default executor
//! for the pipeline and the benchmark harnesses.

use crate::error::ExecError;
use std::collections::HashMap;
use std::sync::Mutex;
use tce_ir::{IndexSpace, IndexVar, Leaf, NodeId, OpKind, OpTree, TensorId};
use tce_par::{parallel_chunks_mut, TaskGraph};
use tce_tensor::{BinaryContraction, IntegralFn, Tensor};

/// How operation trees are walked by the executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Fixed postorder, one node at a time (parallelism lives inside each
    /// kernel call).
    #[default]
    Seq,
    /// Dependency-aware task graph: independent subtrees contract
    /// concurrently on [`tce_par::TaskGraph`], bounded by the sequential
    /// walk's live-set peak.  Bitwise identical to [`Schedule::Seq`] for
    /// every worker count.
    Graph,
}

impl std::str::FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "seq" => Ok(Schedule::Seq),
            "graph" => Ok(Schedule::Graph),
            other => Err(format!("bad schedule `{other}`: expected seq|graph")),
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Schedule::Seq => "seq",
            Schedule::Graph => "graph",
        })
    }
}

/// Knobs threaded through every execution entry point.
///
/// The default thread count honours the `TCE_THREADS` environment
/// variable and otherwise uses the machine's available parallelism
/// (see `tce_par::default_threads`).  Neither thread count nor schedule
/// ever affects results: every parallel kernel partitions output
/// disjointly, and graph scheduling only reorders *when* independent
/// nodes run.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for contraction kernels, permutes and function
    /// materialization.
    pub threads: usize,
    /// Tree-walk order (see [`Schedule`]).
    pub schedule: Schedule,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            threads: tce_par::default_threads(),
            schedule: Schedule::default(),
        }
    }
}

impl ExecOptions {
    /// Run everything on the calling thread.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            schedule: Schedule::default(),
        }
    }

    /// Use exactly `threads` workers.  **Clamps 0 to 1** — an infallible
    /// convenience for callers that already validated their count; front
    /// ends that must reject 0 with a diagnostic (as the CLI's
    /// `--threads` does) should use [`ExecOptions::try_with_threads`].
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            schedule: Schedule::default(),
        }
    }

    /// Use exactly `threads` workers, rejecting 0 with the same one-line
    /// diagnostic the CLI prints for `--threads 0`.
    pub fn try_with_threads(threads: usize) -> Result<Self, String> {
        if threads == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        Ok(Self::with_threads(threads))
    }

    /// This options bundle with the given schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }
}

/// [`execute_tree`] with an [`ExecOptions`] bundle; `opts.schedule`
/// selects the sequential postorder walk or the task-graph scheduler.
pub fn execute_tree_opts(
    tree: &OpTree,
    space: &IndexSpace,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    opts: &ExecOptions,
) -> Result<Tensor, ExecError> {
    match opts.schedule {
        Schedule::Seq => execute_tree(tree, space, inputs, funcs, opts.threads),
        Schedule::Graph => execute_tree_graph(tree, space, inputs, funcs, opts.threads),
    }
}

/// Evaluate `tree` on the sharded distributed machine following a §7
/// distribution plan: tensors live as per-rank shard buffers over
/// `machine`'s grid, contractions run rank-parallel over their γ-local
/// subspaces, layout changes move as block transfers, and distributed
/// partial sums are combined by a reduction tree.  Returns the assembled
/// root value alongside measured-vs-modeled communication volumes (see
/// [`tce_dist::ShardExecReport`]).
///
/// # Errors
/// A plan that does not cover the tree or a missing binding surfaces as an
/// [`ExecError`] (converted from [`tce_dist::DistError`]) instead of a
/// panic.
pub fn execute_tree_distributed(
    tree: &OpTree,
    space: &IndexSpace,
    plan: &tce_dist::DistPlan,
    machine: &tce_dist::Machine,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    opts: &ExecOptions,
) -> Result<tce_dist::ShardExecReport, ExecError> {
    Ok(match opts.schedule {
        Schedule::Seq => {
            tce_dist::execute_plan_sharded(tree, space, plan, machine, inputs, funcs, opts.threads)?
        }
        Schedule::Graph => tce_dist::execute_plan_sharded_graph(
            tree,
            space,
            plan,
            machine,
            inputs,
            funcs,
            opts.threads,
        )?,
    })
}

/// Evaluate `tree` bottom-up; returns the root value.
///
/// `threads = 1` runs sequentially; larger values parallelize function
/// materialization and the contraction kernels' output-tile loops.
/// Missing bindings and shape mismatches return an [`ExecError`].
pub fn execute_tree(
    tree: &OpTree,
    space: &IndexSpace,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    threads: usize,
) -> Result<Tensor, ExecError> {
    let _span = tce_trace::span("exec.tree");
    let traced = tce_trace::enabled();
    let bytes_of = |t: &Tensor| (t.len() * std::mem::size_of::<f64>()) as u64;
    let mut values: Vec<Option<Tensor>> = vec![None; tree.len()];
    for id in tree.postorder() {
        let value = match &tree.node(id).kind {
            OpKind::Leaf(Leaf::Input { tensor, indices }) => {
                let t = inputs.get(tensor).ok_or_else(|| ExecError::MissingInput {
                    name: format!("#{}", tensor.0),
                })?;
                let expect: Vec<usize> = indices.iter().map(|&v| space.extent(v)).collect();
                if t.shape() != &expect[..] {
                    return Err(ExecError::InputShapeMismatch {
                        name: format!("#{}", tensor.0),
                        expect,
                        got: t.shape().to_vec(),
                    });
                }
                (*t).clone()
            }
            OpKind::Leaf(Leaf::One) => Tensor::from_elem(&[], 1.0),
            OpKind::Leaf(Leaf::Func { name, indices, .. }) => {
                let f = funcs
                    .get(name)
                    .ok_or_else(|| ExecError::MissingFunction { name: name.clone() })?;
                materialize_func(f, indices, space, threads)
            }
            OpKind::Contract { left, right } => {
                let lv = values[left.0 as usize].as_ref().expect("postorder");
                let rv = values[right.0 as usize].as_ref().expect("postorder");
                let out = contract_node(tree, space, id, *left, *right, lv, rv, threads);
                // Each node has exactly one parent, so operand values are
                // dead as soon as the contraction finishes; recycling them
                // here keeps the materialized high-water mark at the live
                // set rather than the whole formula sequence, and feeds
                // the buffer pool instead of the allocator.
                for child in [*left, *right] {
                    if let Some(t) = values[child.0 as usize].take() {
                        if traced {
                            tce_trace::mem_free(bytes_of(&t));
                        }
                        t.recycle();
                    }
                }
                out
            }
        };
        if traced {
            tce_trace::mem_alloc(bytes_of(&value));
        }
        values[id.0 as usize] = Some(value);
    }
    let root = values[tree.root.0 as usize].take().expect("root value");
    if traced {
        tce_trace::mem_free(bytes_of(&root));
    }
    Ok(root)
}

/// Evaluate `tree` with the dependency-aware task-graph scheduler:
/// independent subtrees contract concurrently on up to `threads`
/// scheduler slots, with admissions bounded by the sequential postorder
/// walk's live-set peak (so graph scheduling never holds more
/// intermediate storage than [`execute_tree`] would have).
///
/// Bitwise identical to [`execute_tree`] at every thread count: the
/// scheduler only reorders *when* nodes run, each node's kernel is
/// deterministic in isolation, and dependency completion happens-before a
/// dependent starts.
pub fn execute_tree_graph(
    tree: &OpTree,
    space: &IndexSpace,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    threads: usize,
) -> Result<Tensor, ExecError> {
    let _span = tce_trace::span("exec.tree_graph");

    // Validate every binding up front so task bodies are infallible.
    for id in tree.postorder() {
        match &tree.node(id).kind {
            OpKind::Leaf(Leaf::Input { tensor, indices }) => {
                let t = inputs.get(tensor).ok_or_else(|| ExecError::MissingInput {
                    name: format!("#{}", tensor.0),
                })?;
                let expect: Vec<usize> = indices.iter().map(|&v| space.extent(v)).collect();
                if t.shape() != &expect[..] {
                    return Err(ExecError::InputShapeMismatch {
                        name: format!("#{}", tensor.0),
                        expect,
                        got: t.shape().to_vec(),
                    });
                }
            }
            OpKind::Leaf(Leaf::Func { name, .. }) if !funcs.contains_key(name) => {
                return Err(ExecError::MissingFunction { name: name.clone() });
            }
            _ => {}
        }
    }

    // One task per node, in postorder (so dependencies precede
    // dependents), weighted by output element count — the same accounting
    // the sequential walk's live set follows.
    let order: Vec<NodeId> = tree.postorder();
    let mut task_of = vec![usize::MAX; tree.len()];
    let mut graph = TaskGraph::new();
    for (t, &id) in order.iter().enumerate() {
        let deps: Vec<usize> = match &tree.node(id).kind {
            OpKind::Contract { left, right } => {
                vec![task_of[left.0 as usize], task_of[right.0 as usize]]
            }
            _ => Vec::new(),
        };
        let elements: u64 = tree
            .node(id)
            .indices
            .iter()
            .map(|v| space.extent(v) as u64)
            .product::<u64>()
            .max(1);
        let added = graph.add_task(&deps, elements);
        debug_assert_eq!(added, t);
        task_of[id.0 as usize] = t;
    }
    let cap = graph.sequential_peak();

    let slots: Vec<Mutex<Option<Tensor>>> = order.iter().map(|_| Mutex::new(None)).collect();
    graph.run(threads.max(1), Some(cap), &|t| {
        let id = order[t];
        let value = match &tree.node(id).kind {
            OpKind::Leaf(Leaf::Input { tensor, .. }) => {
                (*inputs.get(tensor).expect("validated above")).clone()
            }
            OpKind::Leaf(Leaf::One) => Tensor::from_elem(&[], 1.0),
            OpKind::Leaf(Leaf::Func { name, indices, .. }) => {
                materialize_func(&funcs[name], indices, space, threads)
            }
            OpKind::Contract { left, right } => {
                // Each node has exactly one parent, so taking the operand
                // values here is safe — and recycling them keeps the live
                // set at the cap's accounting.
                let lv = slots[task_of[left.0 as usize]]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("dependency completed");
                let rv = slots[task_of[right.0 as usize]]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("dependency completed");
                let out = contract_node(tree, space, id, *left, *right, &lv, &rv, threads);
                lv.recycle();
                rv.recycle();
                out
            }
        };
        *slots[t].lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
    });

    let root = slots[task_of[tree.root.0 as usize]]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("root value");
    Ok(root)
}

/// Materialize a function leaf over its full index space, in parallel over
/// the leading dimension blocks.
fn materialize_func(
    f: &IntegralFn,
    indices: &[IndexVar],
    space: &IndexSpace,
    threads: usize,
) -> Tensor {
    let shape: Vec<usize> = indices.iter().map(|&v| space.extent(v)).collect();
    let mut out = Tensor::zeros(&shape);
    let total = out.len();
    let rank = shape.len();
    let shape_ref = &shape;
    parallel_chunks_mut(out.data_mut(), threads, |start, chunk| {
        let mut idx = vec![0usize; rank];
        // Decode the starting flat offset.
        let mut rem = start;
        for d in (0..rank).rev() {
            idx[d] = rem % shape_ref[d];
            rem /= shape_ref[d];
        }
        for x in chunk.iter_mut() {
            *x = f.eval(&idx);
            Tensor::advance(&mut idx, shape_ref);
        }
        let _ = total;
    });
    out
}

/// Contract two materialized child values into the node's result on the
/// packed GETT kernel (plan-cached, parallel over output tiles).
#[allow(clippy::too_many_arguments)]
fn contract_node(
    tree: &OpTree,
    space: &IndexSpace,
    id: NodeId,
    left: NodeId,
    right: NodeId,
    lv: &Tensor,
    rv: &Tensor,
    threads: usize,
) -> Tensor {
    let dims_of = |n: NodeId| -> Vec<IndexVar> {
        match &tree.node(n).kind {
            OpKind::Leaf(Leaf::Input { indices, .. })
            | OpKind::Leaf(Leaf::Func { indices, .. }) => indices.clone(),
            _ => tree.node(n).indices.iter().collect(),
        }
    };
    let spec = BinaryContraction {
        a: dims_of(left),
        b: dims_of(right),
        out: tree.node(id).indices.iter().collect(),
    };
    tce_tensor::contract_gett(&spec, space, lv, rv, threads)
}

/// Parallel contraction of two tensors (historical name; now a thin
/// wrapper over the GETT engine, which packs operands directly from
/// their strided layouts instead of permuting them into matrix form).
pub fn parallel_contract(
    spec: &BinaryContraction,
    space: &IndexSpace,
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Tensor {
    tce_tensor::contract_gett(spec, space, a, b, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{IndexSet, TensorDecl, TensorTable};

    #[test]
    fn tree_execution_matches_interpreter_path() {
        // Same Fig 1 example as interp tests: execute_tree vs einsum.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 3);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));

        let shape = [3usize; 4];
        let va = Tensor::random(&shape, 11);
        let vb = Tensor::random(&shape, 12);
        let vc = Tensor::random(&shape, 13);
        let vd = Tensor::random(&shape, 14);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        inputs.insert(tb, &vb);
        inputs.insert(tc, &vc);
        inputs.insert(td, &vd);

        let seq = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap();
        let par = execute_tree(&tree, &space, &inputs, &HashMap::new(), 4).unwrap();
        assert!(seq.approx_eq(&par, 1e-9));

        // Reference via einsum.
        let spec = tce_tensor::EinsumSpec::new(
            vec![a, b, i, j],
            vec![
                vec![a, c, i, k],
                vec![b, e, f, l],
                vec![d, f, j, k],
                vec![c, d, e, l],
            ],
            IndexSet::from_vars([c, d, e, f, k, l]),
        )
        .unwrap();
        let expect = spec.eval(&space, &[&va, &vb, &vc, &vd]);
        assert!(seq.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn parallel_contract_matches_sequential() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 9);
        let i = space.add_var("i", r);
        let j = space.add_var("j", r);
        let k = space.add_var("k", r);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let a = Tensor::random(&[9, 9], 21);
        let b = Tensor::random(&[9, 9], 22);
        let seq = tce_tensor::contract_gemm(&spec, &space, &a, &b);
        let par = parallel_contract(&spec, &space, &a, &b, 4);
        assert!(seq.approx_eq(&par, 1e-10));
    }

    #[test]
    fn func_materialization_parallel_matches_sequential() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 7);
        let c = space.add_var("c", r);
        let e = space.add_var("e", r);
        let f = IntegralFn::new(50, 5);
        let seq = materialize_func(&f, &[c, e], &space, 1);
        let par = materialize_func(&f, &[c, e], &space, 4);
        assert!(seq.approx_eq(&par, 0.0));
        assert_eq!(seq.get(&[2, 3]), f.eval(&[2, 3]));
    }

    #[test]
    fn one_leaf_reduction() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 5);
        let i = space.add_var("i", r);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![r]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![i]);
        let one = tree.leaf_one();
        tree.contract(la, one, IndexSet::EMPTY);
        let va = Tensor::random(&[5], 31);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        let out = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap();
        assert!((out.get(&[]) - va.sum()).abs() < 1e-12);
    }

    #[test]
    fn graph_schedule_is_bitwise_identical_to_seq() {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 3);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        // Two independent subtrees meeting at the root: the graph
        // scheduler can overlap them.
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        let t2 = tree.contract(lc, la, IndexSet::from_vars([a, c, f, i, j]));
        tree.contract(t1, t2, IndexSet::from_vars([a, b, i, j]));

        let shape = [3usize; 4];
        let va = Tensor::random(&shape, 61);
        let vb = Tensor::random(&shape, 62);
        let vc = Tensor::random(&shape, 63);
        let vd = Tensor::random(&shape, 64);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        inputs.insert(tb, &vb);
        inputs.insert(tc, &vc);
        inputs.insert(td, &vd);

        let seq = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap();
        for threads in [1, 2, 4, 8] {
            let graph =
                execute_tree_graph(&tree, &space, &inputs, &HashMap::new(), threads).unwrap();
            assert_eq!(seq, graph, "graph schedule diverged at {threads} threads");
        }
    }

    #[test]
    fn try_with_threads_rejects_zero_like_the_cli() {
        let err = ExecOptions::try_with_threads(0).unwrap_err();
        assert_eq!(err, "--threads must be at least 1");
        assert_eq!(ExecOptions::try_with_threads(3).unwrap().threads, 3);
        // The infallible constructor documents (and keeps) the clamp.
        assert_eq!(ExecOptions::with_threads(0).threads, 1);
    }

    #[test]
    fn schedule_parses_and_rejects_garbage() {
        assert_eq!("seq".parse::<Schedule>().unwrap(), Schedule::Seq);
        assert_eq!("graph".parse::<Schedule>().unwrap(), Schedule::Graph);
        let err = "bogus".parse::<Schedule>().unwrap_err();
        assert!(err.contains("expected seq|graph"), "{err}");
        assert_eq!(Schedule::Graph.to_string(), "graph");
    }

    #[test]
    fn missing_bindings_are_typed_errors() {
        let mut space = IndexSpace::new();
        let r = space.add_range("N", 4);
        let i = space.add_var("i", r);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![r]));
        let mut tree = OpTree::new();
        let la = tree.leaf_input(ta, vec![i]);
        let lf = tree.leaf_func("g", vec![i], 10);
        tree.contract(la, lf, IndexSet::EMPTY);

        // No input binding.
        let err = execute_tree(&tree, &space, &HashMap::new(), &HashMap::new(), 1).unwrap_err();
        assert!(
            matches!(err, crate::ExecError::MissingInput { .. }),
            "{err}"
        );

        // Input bound, function missing.
        let va = Tensor::random(&[4], 1);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &va);
        let err = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap_err();
        assert!(
            matches!(err, crate::ExecError::MissingFunction { ref name } if name == "g"),
            "{err}"
        );

        // Wrong input shape.
        let bad = Tensor::random(&[5], 1);
        let mut inputs = HashMap::new();
        inputs.insert(ta, &bad);
        let err = execute_tree(&tree, &space, &inputs, &HashMap::new(), 1).unwrap_err();
        assert!(
            matches!(err, crate::ExecError::InputShapeMismatch { .. }),
            "{err}"
        );
    }
}
