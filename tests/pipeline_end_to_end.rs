//! End-to-end integration tests: language → full pipeline → execution.

use std::collections::HashMap;
use tce_core::tensor::{EinsumSpec, IntegralFn, Tensor};
use tce_core::{synthesize, SynthesisConfig};

/// Helper: run the synthesized plan and an einsum reference for a
/// single-statement single-term program, comparing results.
fn verify_single_term(src: &str, seed: u64) {
    let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
    assert_eq!(syn.plans.len(), 1);
    let plan = &syn.plans[0];
    let space = &syn.program.space;
    let stmt = &syn.program.stmts[0];

    // Bind random tensors for every input referenced by the term.
    let mut owned: Vec<(tce_core::ir::TensorId, Tensor)> = Vec::new();
    let mut spec_inputs: Vec<Vec<tce_core::ir::IndexVar>> = Vec::new();
    for factor in &stmt.terms[0].factors {
        match factor {
            tce_core::ir::Factor::Tensor(r) => {
                let shape: Vec<usize> = r.indices.iter().map(|&v| space.extent(v)).collect();
                if !owned.iter().any(|(id, _)| *id == r.tensor) {
                    owned.push((r.tensor, Tensor::random(&shape, seed ^ (r.tensor.0 as u64))));
                }
                spec_inputs.push(r.indices.clone());
            }
            tce_core::ir::Factor::Func(_) => unreachable!("use verify_funcs instead"),
        }
    }
    let inputs: HashMap<_, _> = owned.iter().map(|(id, t)| (*id, t)).collect();
    let got = plan.execute(space, &inputs, &HashMap::new()).unwrap();

    // Reference einsum in factor order.
    let operands: Vec<&Tensor> = stmt.terms[0]
        .factors
        .iter()
        .map(|f| match f {
            tce_core::ir::Factor::Tensor(r) => owned
                .iter()
                .find(|(id, _)| *id == r.tensor)
                .map(|(_, t)| t)
                .unwrap(),
            _ => unreachable!(),
        })
        .collect();
    let spec = EinsumSpec::new(stmt.lhs.indices.clone(), spec_inputs, stmt.sum_indices).unwrap();
    let expect = spec.eval(space, &operands);
    assert!(
        got.approx_eq(&expect, 1e-8),
        "synthesized result diverges: {:e}",
        got.max_abs_diff(&expect)
    );
}

#[test]
fn matmul_roundtrip() {
    verify_single_term(
        "range N = 12; index i, j, k : N;
         tensor A(N, N); tensor B(N, N); tensor S(N, N);
         S[i,j] = sum[k] A[i,k] * B[k,j];",
        1,
    );
}

#[test]
fn four_tensor_section2() {
    verify_single_term(
        "range N = 4;
         index a, b, c, d, e, f, i, j, k, l : N;
         tensor A(N, N, N, N); tensor B(N, N, N, N);
         tensor C(N, N, N, N); tensor D(N, N, N, N);
         tensor S(N, N, N, N);
         S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * C[d,f,j,k] * D[c,d,e,l];",
        2,
    );
}

#[test]
fn mixed_ranges_and_vectors() {
    verify_single_term(
        "range V = 9; range O = 3;
         index a, b : V; index i : O;
         tensor A(V, O); tensor B(O, V); tensor S(V, V);
         S[a,b] = sum[i] A[a,i] * B[i,b];",
        3,
    );
}

#[test]
fn scalar_result_full_contraction() {
    verify_single_term(
        "range N = 7; index i, j : N;
         tensor A(N, N); tensor B(N, N); tensor E();
         E = sum[i,j] A[i,j] * B[j,i];",
        4,
    );
}

#[test]
fn five_factor_chain() {
    verify_single_term(
        "range N = 5; index i, j, k, l, m, q : N;
         tensor A(N, N); tensor B(N, N); tensor C(N, N); tensor D(N, N);
         tensor F(N, N); tensor S(N, N);
         S[i,q] = sum[j,k,l,m] A[i,j] * B[j,k] * C[k,l] * D[l,m] * F[m,q];",
        5,
    );
}

#[test]
fn function_statement_executes() {
    let src = "
        range V = 5; range O = 2;
        index c, e, b1 : V; index k : O;
        tensor E();
        function f1(V, V, V, O) cost 200;
        function f2(V, V, V, O) cost 200;
        E = sum[c,e,b1,k] f1(c,e,b1,k) * f2(c,e,b1,k);
    ";
    let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let space = &syn.program.space;
    let mut funcs = HashMap::new();
    funcs.insert("f1".to_string(), IntegralFn::new(200, 11));
    funcs.insert("f2".to_string(), IntegralFn::new(200, 22));
    let got = plan.execute(space, &HashMap::new(), &funcs).unwrap();

    // Reference: direct double loop.
    let (f1, f2) = (IntegralFn::new(200, 11), IntegralFn::new(200, 22));
    let mut expect = 0.0;
    for c in 0..5 {
        for e in 0..5 {
            for b in 0..5 {
                for k in 0..2 {
                    expect += f1.eval(&[c, e, b, k]) * f2.eval(&[c, e, b, k]);
                }
            }
        }
    }
    assert!((got.get(&[]) - expect).abs() < 1e-9);
}

#[test]
fn multi_term_plans_execute_independently() {
    let src = "
        range N = 6; index i, j, k : N;
        tensor A(N, N); tensor B(N, N); tensor S(N, N);
        S[i,j] = sum[k] A[i,k] * B[k,j] + B[i,k] * A[k,j];
    ";
    let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
    assert_eq!(syn.plans.len(), 2);
    let space = &syn.program.space;
    let a = Tensor::random(&[6, 6], 10);
    let b = Tensor::random(&[6, 6], 11);
    let mut inputs = HashMap::new();
    inputs.insert(syn.program.tensors.by_name("A").unwrap(), &a);
    inputs.insert(syn.program.tensors.by_name("B").unwrap(), &b);
    let r0 = syn.plans[0]
        .execute(space, &inputs, &HashMap::new())
        .unwrap();
    let r1 = syn.plans[1]
        .execute(space, &inputs, &HashMap::new())
        .unwrap();
    // Sum of the two term results equals the direct two-term evaluation.
    for i in 0..6 {
        for j in 0..6 {
            let mut expect = 0.0;
            for k in 0..6 {
                expect += a.get(&[i, k]) * b.get(&[k, j]) + b.get(&[i, k]) * a.get(&[k, j]);
            }
            let got = r0.get(&[i, j]) + r1.get(&[i, j]);
            assert!((got - expect).abs() < 1e-9);
        }
    }
}

#[test]
fn memory_minimization_beats_unfused_on_chain() {
    let src = "
        range N = 10; index i, j, k, l : N;
        tensor A(N, N); tensor B(N, N); tensor C(N, N); tensor S(N, N);
        S[i,l] = sum[j,k] A[i,j] * B[j,k] * C[k,l];
    ";
    let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    // The single intermediate (A·B or B·C) shrinks below its full N² size.
    assert!(plan.memmin.memory < 100);
}

#[test]
fn full_pipeline_with_all_stages_enabled() {
    let src = "
        range N = 16; index i, j, k : N;
        tensor A(N, N); tensor B(N, N); tensor S(N, N);
        S[i,j] = sum[k] A[i,k] * B[k,j];
    ";
    let cfg = SynthesisConfig {
        memory_limit: u128::MAX,
        cache_elements: Some(96),
        hierarchy: tce_core::locality::MemoryHierarchy::cache_and_disk(96, 1 << 20),
        machine: Some(tce_core::dist::Machine {
            grid: tce_core::par::ProcessorGrid::new(vec![2, 2]),
            word_cost: 1,
        }),
        calibration: None,
    };
    let syn = synthesize(src, &cfg).unwrap();
    let plan = &syn.plans[0];
    assert!(!plan.locality.is_empty());
    assert!(plan.distribution.is_some());
    // Locality stage found a blocking no worse than untiled.
    let untiled = tce_core::locality::access_cost(&plan.built.program, &syn.program.space, 96);
    assert!(plan.locality[0].cost <= untiled);
    // Blocked program still computes the right answer.
    let a = Tensor::random(&[16, 16], 20);
    let b = Tensor::random(&[16, 16], 21);
    let mut inputs = HashMap::new();
    inputs.insert(syn.program.tensors.by_name("A").unwrap(), &a);
    inputs.insert(syn.program.tensors.by_name("B").unwrap(), &b);
    let mut interp = tce_core::exec::Interpreter::new(
        &plan.locality[0].program,
        &syn.program.space,
        &inputs,
        &HashMap::new(),
    )
    .unwrap();
    interp.run(&mut tce_core::exec::NoSink);
    let expect = plan
        .execute(&syn.program.space, &inputs, &HashMap::new())
        .unwrap();
    assert!(interp.output().approx_eq(&expect, 1e-9));
}
