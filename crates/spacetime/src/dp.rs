//! Fusion + recomputation pareto dynamic program (paper §5, first step).
//!
//! Extends the memory-minimization DP with *redundant loops*: an edge's
//! label now has a fused part `c ⊆ I(child) ∩ loops(parent)` (eliminating
//! array dimensions, as in `tce-fusion`) and a redundant part
//! `r ⊆ loops(parent) ∖ loops(child)` — extra parent loops placed around
//! the child's nest, re-executing the child's whole subtree once per
//! iteration (the "redundant vertices" of paper Figs. 3 and 7).  The DP
//! keeps a pareto frontier of (memory, operations) per (node, label)
//! state; recomputation multiplies a child subtree's operations by the
//! redundant extents.
//!
//! Legality is the pattern-comparability rule of `tce-fusion`, applied to
//! the *structural* labels `c ∪ r` — with the parent's redundant part
//! excluded, because a loop that is redundant for this node wraps its whole
//! emission transparently and constrains nothing below it.

#![allow(clippy::type_complexity, clippy::too_many_arguments)]

use crate::pareto::Pareto;
use std::collections::HashMap;
use tce_fusion::config::{fusable_set, is_fusable_producer};
use tce_fusion::nest::{derive_child_state_options, encode_state, NestState};
use tce_ir::{IndexSet, IndexSpace, NodeId, OpKind, OpTree};

/// A fusion/recomputation configuration: per node, the fused and redundant
/// parts of its parent-edge label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceTimeConfig {
    /// Fused sets per node (parent edge), indexed by `NodeId.0`.
    pub fused: Vec<IndexSet>,
    /// Redundant sets per node (parent edge), indexed by `NodeId.0`.
    pub redundant: Vec<IndexSet>,
}

impl SpaceTimeConfig {
    /// The all-unfused, no-recomputation configuration.
    pub fn unfused(tree: &OpTree) -> Self {
        Self {
            fused: vec![IndexSet::EMPTY; tree.len()],
            redundant: vec![IndexSet::EMPTY; tree.len()],
        }
    }

    /// Union of all redundant indices (the candidates for tiling).
    pub fn recomputation_indices(&self) -> IndexSet {
        self.redundant
            .iter()
            .fold(IndexSet::EMPTY, |s, &r| s.union(r))
    }

    /// Remaining array dimensions of node `id` (fused dims eliminated).
    pub fn array_indices(&self, tree: &OpTree, id: NodeId) -> IndexSet {
        tree.node(id).indices.minus(self.fused[id.0 as usize])
    }

    /// Total temporary memory without tiling (every fused dim fully
    /// eliminated) — the `B = 1` point of the tiling model.
    pub fn temp_memory(&self, tree: &OpTree, space: &IndexSpace) -> u128 {
        let mut total = 0u128;
        for id in tree.postorder() {
            if id == tree.root || !is_fusable_producer(tree, id) {
                continue;
            }
            total = total.saturating_add(space.iteration_points(self.array_indices(tree, id)));
        }
        total
    }

    /// Total operations including recomputation, without tiling
    /// (each redundant index contributes its full extent).
    pub fn total_ops(&self, tree: &OpTree, space: &IndexSpace) -> u128 {
        self.total_ops_with(tree, space, &|r| space.iteration_points(r))
    }

    /// Total operations with a custom redundancy factor per edge (used by
    /// the tiling model, where a tiled redundant index contributes its
    /// tile count rather than its extent).
    pub fn total_ops_with(
        &self,
        tree: &OpTree,
        space: &IndexSpace,
        factor_of: &dyn Fn(IndexSet) -> u128,
    ) -> u128 {
        fn go(
            cfg: &SpaceTimeConfig,
            tree: &OpTree,
            space: &IndexSpace,
            factor_of: &dyn Fn(IndexSet) -> u128,
            u: NodeId,
            mult: u128,
        ) -> u128 {
            let own = mult.saturating_mul(tree.node_ops(u, space));
            let mut total = own;
            for child in tree.children(u) {
                let f = factor_of(cfg.redundant[child.0 as usize]).max(1);
                total = total.saturating_add(go(
                    cfg,
                    tree,
                    space,
                    factor_of,
                    child,
                    mult.saturating_mul(f),
                ));
            }
            total
        }
        go(self, tree, space, factor_of, tree.root, 1)
    }
}

/// Result of the space-time DP: the root pareto frontier, each point
/// tagged with its configuration.
pub type SpaceTimeFrontier = Pareto<SpaceTimeConfig>;

/// Candidate redundant set for an edge: parent loops the child does not
/// have (only meaningful for producers).
pub fn redundant_candidates(tree: &OpTree, child: NodeId, parent: NodeId) -> IndexSet {
    if !is_fusable_producer(tree, child) {
        return IndexSet::EMPTY;
    }
    tree.loop_indices(parent).minus(tree.loop_indices(child))
}

/// Run the fusion/recomputation pareto DP.  `max_points` bounds each
/// state's frontier (the paper notes pruning keeps solution sets small);
/// pass `usize::MAX` for exact frontiers on small trees.
///
/// Returns an error (instead of panicking) if the traceback cannot
/// reconstruct a configuration for a frontier point — e.g. when frontier
/// pruning drops the child points a root point was built from.
pub fn spacetime_dp(
    tree: &OpTree,
    space: &IndexSpace,
    max_points: usize,
) -> Result<SpaceTimeFrontier, String> {
    // State = (node, nesting state over the *fused* part of the parent
    // label).  The parent's redundant part is transparent (it wraps the
    // whole subtree emission) and enters only through the ops factor the
    // parent applies; the nesting state threads chain-scope legality (see
    // tce-fusion::nest).
    type Tag = (IndexSet, IndexSet, IndexSet, IndexSet);
    type Key = (u32, Vec<u64>);
    let mut memo: HashMap<Key, Pareto<Tag>> = HashMap::new();

    fn solve(
        tree: &OpTree,
        space: &IndexSpace,
        memo: &mut HashMap<(u32, Vec<u64>), Pareto<(IndexSet, IndexSet, IndexSet, IndexSet)>>,
        u: NodeId,
        state: &NestState,
        max_points: usize,
    ) -> Pareto<(IndexSet, IndexSet, IndexSet, IndexSet)> {
        let key = (u.0, encode_state(state));
        if let Some(p) = memo.get(&key) {
            return p.clone();
        }
        let fused = state.iter().fold(IndexSet::EMPTY, |s, &c| s.union(c));
        let own_mem = if u == tree.root || !is_fusable_producer(tree, u) {
            0
        } else {
            space.iteration_points(tree.node(u).indices.minus(fused))
        };
        let own_ops = tree.node_ops(u, space);
        let mut out: Pareto<(IndexSet, IndexSet, IndexSet, IndexSet)> = Pareto::new();
        match &tree.node(u).kind {
            OpKind::Leaf(_) => {
                out.insert(own_mem, own_ops, Default::default());
            }
            OpKind::Contract { left, right } => {
                let (l, r) = (*left, *right);
                for (c1, r1) in edge_labels(tree, l, u) {
                    for (c2, r2) in edge_labels(tree, r, u) {
                        // Legality over the structural labels c ∪ r; a
                        // label pair can admit several nesting refinements
                        // (shared classes ordered at this node), each a
                        // separate DP branch.
                        for (s1, s2) in
                            derive_child_state_options(state, c1.union(r1), c2.union(r2))
                        {
                            // Children see only the fused part of their
                            // label; redundant loops are transparent below.
                            let s1 = strip_transparent(&s1, c1);
                            let s2 = strip_transparent(&s2, c2);
                            let f1 = space.iteration_points(r1).max(1);
                            let f2 = space.iteration_points(r2).max(1);
                            let p1 = solve(tree, space, memo, l, &s1, max_points);
                            let p2 = solve(tree, space, memo, r, &s2, max_points);
                            for a in p1.points() {
                                for b in p2.points() {
                                    let mem = own_mem.saturating_add(a.mem).saturating_add(b.mem);
                                    let ops = own_ops
                                        .saturating_add(f1.saturating_mul(a.ops))
                                        .saturating_add(f2.saturating_mul(b.ops));
                                    out.insert(mem, ops, (c1, r1, c2, r2));
                                }
                            }
                        }
                    }
                }
            }
        }
        // Optional width bound: keep the lowest-memory and lowest-ops ends.
        let out = if out.len() > max_points {
            let pts = out.points().to_vec();
            let mut trimmed = Pareto::new();
            let stride = pts.len().div_ceil(max_points);
            for (i, p) in pts.iter().enumerate() {
                if i % stride == 0 || i == pts.len() - 1 {
                    trimmed.insert(p.mem, p.ops, p.tag);
                }
            }
            trimmed
        } else {
            out
        };
        memo.insert(key, out.clone());
        out
    }

    /// Drop transparent (redundant) indices from a derived state, keeping
    /// only the fused part `c`; empty classes vanish.
    fn strip_transparent(state: &NestState, c: IndexSet) -> NestState {
        state
            .iter()
            .map(|cl| cl.inter(c))
            .filter(|cl| !cl.is_empty())
            .collect()
    }

    /// All (fused, redundant) label pairs for an edge.
    fn edge_labels(tree: &OpTree, child: NodeId, parent: NodeId) -> Vec<(IndexSet, IndexSet)> {
        if !is_fusable_producer(tree, child) {
            return vec![(IndexSet::EMPTY, IndexSet::EMPTY)];
        }
        let fs = fusable_set(tree, child, parent);
        let rs = redundant_candidates(tree, child, parent);
        let mut out = Vec::new();
        for c in fs.subsets() {
            for r in rs.subsets() {
                // Redundant loops only pay off when they enable fusion —
                // but enumerate all; pareto pruning discards useless ones.
                out.push((c, r));
            }
        }
        out
    }

    let root_state: NestState = Vec::new();
    let root_front = solve(tree, space, &mut memo, tree.root, &root_state, max_points);

    // Reconstruct a full configuration for each root point by replaying
    // the DP choices.  (Frontiers are small; replay is cheap.)
    let mut result: SpaceTimeFrontier = Pareto::new();
    for point in root_front.points() {
        let mut cfg = SpaceTimeConfig::unfused(tree);
        trace(
            tree,
            space,
            &memo,
            tree.root,
            &root_state,
            IndexSet::EMPTY,
            point.mem,
            point.ops,
            &mut cfg,
        )?;
        // Validate the reconstruction reproduces the point.
        debug_assert_eq!(cfg.temp_memory(tree, space), point.mem);
        debug_assert_eq!(cfg.total_ops(tree, space), point.ops);
        result.insert(point.mem, point.ops, cfg);
    }
    Ok(result)
}

/// Drop transparent (redundant) indices from a derived state (duplicate of
/// the inner helper, for the traceback path).
fn strip(state: &NestState, c: IndexSet) -> NestState {
    state
        .iter()
        .map(|cl| cl.inter(c))
        .filter(|cl| !cl.is_empty())
        .collect()
}

/// Replay the DP to find the child labels that realize `(mem, ops)` at
/// state `(u, state, redundant)`, filling `cfg`.  Errors (naming the
/// offending node) instead of panicking when no consistent replay exists.
#[allow(clippy::too_many_arguments)]
fn trace(
    tree: &OpTree,
    space: &IndexSpace,
    memo: &HashMap<(u32, Vec<u64>), Pareto<(IndexSet, IndexSet, IndexSet, IndexSet)>>,
    u: NodeId,
    state: &NestState,
    redundant: IndexSet,
    mem: u128,
    ops: u128,
    cfg: &mut SpaceTimeConfig,
) -> Result<(), String> {
    let fused = state.iter().fold(IndexSet::EMPTY, |s, &c| s.union(c));
    cfg.fused[u.0 as usize] = fused;
    cfg.redundant[u.0 as usize] = redundant;
    if let OpKind::Contract { left, right } = tree.node(u).kind {
        let front = memo
            .get(&(u.0, encode_state(state)))
            .ok_or_else(|| format!("spacetime traceback: no memoized frontier at node #{}", u.0))?;
        let point = front
            .points()
            .iter()
            .find(|p| p.mem == mem && p.ops == ops)
            .ok_or_else(|| {
                format!(
                    "spacetime traceback: no frontier point (mem={mem}, ops={ops}) at node #{}",
                    u.0
                )
            })?;
        let (c1, r1, c2, r2) = point.tag;
        let own_mem = if u == tree.root || !is_fusable_producer(tree, u) {
            0
        } else {
            space.iteration_points(tree.node(u).indices.minus(fused))
        };
        let own_ops = tree.node_ops(u, space);
        let f1 = space.iteration_points(r1).max(1);
        let f2 = space.iteration_points(r2).max(1);
        let candidates = derive_child_state_options(state, c1.union(r1), c2.union(r2));
        if candidates.is_empty() {
            return Err(format!(
                "spacetime traceback: chosen labels not derivable at node #{}",
                u.0
            ));
        }
        // The tag records the labels but not which nesting refinement the
        // point came from; try each candidate against the memo.
        for (s1, s2) in candidates {
            let (s1, s2) = (strip(&s1, c1), strip(&s2, c2));
            let (Some(p1), Some(p2)) = (
                memo.get(&(left.0, encode_state(&s1))),
                memo.get(&(right.0, encode_state(&s2))),
            ) else {
                continue;
            };
            // Find the child points consistent with this total.
            for a in p1.points() {
                for b in p2.points() {
                    if own_mem.saturating_add(a.mem).saturating_add(b.mem) == mem
                        && own_ops
                            .saturating_add(f1.saturating_mul(a.ops))
                            .saturating_add(f2.saturating_mul(b.ops))
                            == ops
                    {
                        trace(tree, space, memo, left, &s1, r1, a.mem, a.ops, cfg)?;
                        trace(tree, space, memo, right, &s2, r2, b.mem, b.ops, cfg)?;
                        return Ok(());
                    }
                }
            }
        }
        return Err(format!(
            "spacetime traceback: no consistent child points for (mem={mem}, ops={ops}) \
             at contraction node #{} (children #{}, #{}) — frontier pruning may have \
             dropped the realizing points; retry with a larger max_points",
            u.0, left.0, right.0
        ));
    }
    // Leaves: nothing further.
    let _ = space;
    Ok(())
}

/// Brute-force oracle: enumerate every `(fused, redundant)` label
/// assignment, check legality with the global chain-scope condition on the
/// structural labels, and collect the exact pareto frontier.  Exponential —
/// tiny trees only.
pub fn spacetime_bruteforce(tree: &OpTree, space: &IndexSpace) -> Pareto<SpaceTimeConfig> {
    use tce_fusion::chains::check_scopes;
    use tce_fusion::FusionConfig;
    let parents = tree.parents();
    let edges: Vec<(NodeId, IndexSet, IndexSet)> = tree
        .postorder()
        .into_iter()
        .filter(|&id| id != tree.root && is_fusable_producer(tree, id))
        .map(|id| {
            let u = parents[id.0 as usize].unwrap();
            (
                id,
                fusable_set(tree, id, u),
                redundant_candidates(tree, id, u),
            )
        })
        .collect();
    let mut front: Pareto<SpaceTimeConfig> = Pareto::new();
    let mut cfg = SpaceTimeConfig::unfused(tree);

    fn rec(
        tree: &OpTree,
        space: &IndexSpace,
        edges: &[(NodeId, IndexSet, IndexSet)],
        i: usize,
        cfg: &mut SpaceTimeConfig,
        front: &mut Pareto<SpaceTimeConfig>,
    ) {
        if i == edges.len() {
            // Legality: chain scopes on the structural labels c ∪ r.
            let mut labels = tce_fusion::FusionConfig::unfused(tree);
            for id in tree.postorder() {
                let q = id.0 as usize;
                labels.set(id, cfg.fused[q].union(cfg.redundant[q]));
            }
            if tce_fusion::chains::check_scopes(tree, &labels).is_ok() {
                front.insert(
                    cfg.temp_memory(tree, space),
                    cfg.total_ops(tree, space),
                    cfg.clone(),
                );
            }
            return;
        }
        let (node, fs, rs) = edges[i];
        for c in fs.subsets() {
            for r in rs.subsets() {
                cfg.fused[node.0 as usize] = c;
                cfg.redundant[node.0 as usize] = r;
                rec(tree, space, edges, i + 1, cfg, front);
            }
        }
        cfg.fused[node.0 as usize] = IndexSet::EMPTY;
        cfg.redundant[node.0 as usize] = IndexSet::EMPTY;
    }
    rec(tree, space, &edges, 0, &mut cfg, &mut front);
    let _ = (check_scopes as fn(&OpTree, &FusionConfig) -> Result<(), String>,);
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The A3A-style pair: E = Σ_ce f1(c,e,b,k)-ish toy at small scale —
    /// build E = Σ_{c,e,a,f} X[c,e,a,f]·Y[c,e,a,f] with Y = Σ_{b,k}
    /// T1(c,e,b,k)·T2(a,f,b,k), T1/T2 function leaves.
    fn a3a_like(
        v_ext: usize,
        o_ext: usize,
        ci: u64,
    ) -> (IndexSpace, OpTree, NodeId, NodeId, NodeId) {
        let mut space = IndexSpace::new();
        let v = space.add_range("V", v_ext);
        let o = space.add_range("O", o_ext);
        let (a, c, e, f, b) = (
            space.add_var("a", v),
            space.add_var("c", v),
            space.add_var("e", v),
            space.add_var("f", v),
            space.add_var("b", v),
        );
        let k = space.add_var("k", o);
        let mut tree = OpTree::new();
        let t1 = tree.leaf_func("f1", vec![c, e, b, k], ci);
        let t2 = tree.leaf_func("f2", vec![a, f, b, k], ci);
        let y = tree.contract(t1, t2, IndexSet::from_vars([c, e, a, f]));
        let x = tree.leaf_func("fx", vec![a, e, c, f], 1);
        let root = tree.contract(y, x, IndexSet::EMPTY);
        let _ = root;
        (space, tree, t1, t2, y)
    }

    #[test]
    fn frontier_contains_unfused_and_fully_fused_extremes() {
        let (space, tree, t1, t2, y) = a3a_like(4, 2, 100);
        let front = spacetime_dp(&tree, &space, usize::MAX).unwrap();
        assert!(!front.is_empty());
        // Max-memory end: everything unfused — memory = T1 + T2 + Y + X.
        let unfused_mem = SpaceTimeConfig::unfused(&tree).temp_memory(&tree, &space);
        let unfused_ops = SpaceTimeConfig::unfused(&tree).total_ops(&tree, &space);
        // The frontier's cheapest-ops point must cost exactly the
        // no-recomputation total and use at most the unfused memory
        // (fusion alone may already shrink some arrays for free).
        let best_ops = front.points().iter().map(|p| p.ops).min().unwrap();
        assert_eq!(best_ops, unfused_ops);
        // Min-memory end: full fusion with redundancy — all temporaries
        // scalars (memory = 4: T1, T2, Y, X).
        let min = front.min_mem().unwrap();
        assert_eq!(min.mem, 4);
        assert!(min.ops > unfused_ops, "full fusion must pay recomputation");
        assert!(min.mem < unfused_mem);
        let _ = (t1, t2, y);
    }

    #[test]
    fn fig3_full_fusion_costs_match_paper_formulas() {
        // Paper Fig 3: with everything reduced to scalars, T1/T2 cost
        // C_i·V^5·O (factor V² of redundant recomputation over the paper's
        // C_i·V^3·O baseline).
        let (v_ext, o_ext, ci) = (4usize, 2usize, 100u64);
        let (space, tree, t1, t2, _) = a3a_like(v_ext, o_ext, ci);
        let front = spacetime_dp(&tree, &space, usize::MAX).unwrap();
        let min = front.min_mem().unwrap();
        let cfg = &min.tag;
        // T1 and T2 fully fused (scalar) with 2 redundant indices each.
        assert_eq!(cfg.array_indices(&tree, t1), IndexSet::EMPTY);
        assert_eq!(cfg.array_indices(&tree, t2), IndexSet::EMPTY);
        assert_eq!(cfg.redundant[t1.0 as usize].len(), 2);
        assert_eq!(cfg.redundant[t2.0 as usize].len(), 2);
        let (vv, oo, c) = (v_ext as u128, o_ext as u128, ci as u128);
        // Expected ops: T1 = T2 = C_i·V^5·O; Y contraction = 2·V^5·O... (V
        // here indexes a,c,e,f,b all extent V, k extent O):
        // T1 evals: V^3·O points × C_i, ×V² redundancy = C·V^5·O.
        let t1_ops = c * vv.pow(5) * oo;
        // Y: iteration space {c,e,a,f,b,k} = V^5·O, 2 flops each.
        let y_ops = 2 * vv.pow(5) * oo;
        // X evals: V^4 × cost 1; E: V^4 × 2.
        let expect = 2 * t1_ops + y_ops + vv.pow(4) + 2 * vv.pow(4);
        assert_eq!(min.ops, expect);
    }

    #[test]
    fn recomputation_indices_collected() {
        let (space, tree, _, _, _) = a3a_like(4, 2, 50);
        let front = spacetime_dp(&tree, &space, usize::MAX).unwrap();
        let min = front.min_mem().unwrap();
        // a,f redundant for T1; c,e for T2 → four tiling candidates.
        assert_eq!(min.tag.recomputation_indices().len(), 4);
    }

    #[test]
    fn frontier_is_monotone() {
        let (space, tree, _, _, _) = a3a_like(3, 2, 10);
        let front = spacetime_dp(&tree, &space, usize::MAX).unwrap();
        for w in front.points().windows(2) {
            assert!(w[0].mem < w[1].mem && w[0].ops > w[1].ops);
        }
        // Every tagged config reproduces its point.
        for p in front.points() {
            assert_eq!(p.tag.temp_memory(&tree, &space), p.mem);
            assert_eq!(p.tag.total_ops(&tree, &space), p.ops);
        }
    }

    #[test]
    fn width_bound_trims_but_keeps_extremes() {
        let (space, tree, _, _, _) = a3a_like(4, 2, 100);
        let exact = spacetime_dp(&tree, &space, usize::MAX).unwrap();
        let trimmed = spacetime_dp(&tree, &space, 2).unwrap();
        assert!(trimmed.len() <= exact.len());
        assert_eq!(trimmed.min_mem().unwrap().mem, exact.min_mem().unwrap().mem);
    }

    #[test]
    fn traceback_survives_pareto_point_ties() {
        // Symmetric tree: E = Σ_ij f(i,j)·g(i,j).  Fusing either leaf (or
        // both) yields coinciding (mem, ops) points, so the frontier holds
        // tied entries whose tags must still replay consistently — this
        // shape previously tripped the traceback panic under pruning.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 6);
        let i = space.add_var("i", n);
        let j = space.add_var("j", n);
        let mut tree = OpTree::new();
        let lf = tree.leaf_func("f", vec![i, j], 3);
        let lg = tree.leaf_func("g", vec![i, j], 3);
        tree.contract(lf, lg, IndexSet::EMPTY);
        let front = spacetime_dp(&tree, &space, usize::MAX).expect("tied points must trace back");
        assert!(!front.is_empty());
        for p in front.points() {
            assert_eq!(p.tag.temp_memory(&tree, &space), p.mem);
            assert_eq!(p.tag.total_ops(&tree, &space), p.ops);
        }
        // Aggressive pruning must degrade to a typed error or a consistent
        // frontier — never a panic.
        for width in 1..4 {
            match spacetime_dp(&tree, &space, width) {
                Ok(f) => {
                    for p in f.points() {
                        assert_eq!(p.tag.temp_memory(&tree, &space), p.mem);
                    }
                }
                Err(e) => assert!(e.contains("traceback"), "unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn dp_frontier_matches_bruteforce_on_random_trees() {
        use tce_ir::rng::Rng;
        let mut rng = Rng::new(99_2002);
        for trial in 0..16 {
            let mut space = IndexSpace::new();
            let r1 = space.add_range("P", rng.usize_in(2..4));
            let r2 = space.add_range("Q", rng.usize_in(2..5));
            let vars: Vec<_> = (0..4)
                .map(|q| space.add_var(&format!("x{q}"), if q % 2 == 0 { r1 } else { r2 }))
                .collect();
            let mut tree = OpTree::new();
            let nleaves = 3;
            let mut nodes: Vec<NodeId> = (0..nleaves)
                .map(|li| {
                    let arity = rng.usize_in(1..3);
                    let mut set = IndexSet::EMPTY;
                    let mut idxs = Vec::new();
                    for _ in 0..arity {
                        let v = vars[rng.usize_in(0..vars.len())];
                        if !set.contains(v) {
                            set.insert(v);
                            idxs.push(v);
                        }
                    }
                    tree.leaf_func(&format!("f{trial}_{li}"), idxs, 7)
                })
                .collect();
            while nodes.len() > 1 {
                let a = nodes.swap_remove(rng.usize_in(0..nodes.len()));
                let b = nodes.swap_remove(rng.usize_in(0..nodes.len()));
                let combined = tree.node(a).indices.union(tree.node(b).indices);
                let mut keep = IndexSet::EMPTY;
                for v in combined.iter() {
                    if rng.bool_with(0.5) {
                        keep.insert(v);
                    }
                }
                nodes.push(tree.contract(a, b, keep));
            }
            let dp = spacetime_dp(&tree, &space, usize::MAX).unwrap();
            let bf = spacetime_bruteforce(&tree, &space);
            let dpp: Vec<(u128, u128)> = dp.points().iter().map(|p| (p.mem, p.ops)).collect();
            let bfp: Vec<(u128, u128)> = bf.points().iter().map(|p| (p.mem, p.ops)).collect();
            assert_eq!(dpp, bfp, "trial {trial}");
        }
    }
}
