//! Logical multi-dimensional processor grids.
//!
//! §7 of the paper views the parallel machine as an n-dimensional grid of
//! `p₁ × p₂ × … × pₙ` processors; arrays are distributed or replicated
//! along grid dimensions and each processor owns the block
//! `myrange(z, N, p) = (z−1)·N/p + 1 … z·N/p` of a distributed dimension.
//! This module provides the grid arithmetic (0-based) shared by the
//! distribution cost models and the simulated distributed machine.

/// A logical n-dimensional processor grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorGrid {
    dims: Vec<usize>,
}

impl ProcessorGrid {
    /// Create a grid; every dimension must be ≥ 1.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "grid needs at least one dimension");
        assert!(dims.iter().all(|&d| d >= 1), "grid dims must be ≥ 1");
        Self { dims }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of grid dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total processor count.
    pub fn num_processors(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of a linear processor id (row-major).
    pub fn coords(&self, mut id: usize) -> Vec<usize> {
        assert!(id < self.num_processors(), "processor id out of range");
        let mut c = vec![0usize; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            c[d] = id % self.dims[d];
            id /= self.dims[d];
        }
        c
    }

    /// Linear id of coordinates (row-major).
    pub fn id_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut id = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.dims[d], "coordinate out of range");
            id = id * self.dims[d] + c;
        }
        id
    }

    /// Iterate over all processor ids.
    pub fn processors(&self) -> impl Iterator<Item = usize> {
        0..self.num_processors()
    }
}

/// The paper's `myrange(z, N, p)` block ownership, 0-based: processor `z`
/// of `p` along a dimension of extent `n` owns this half-open range.
/// Extents that do not divide evenly give the first `n mod p` processors
/// one extra element (so every element is owned exactly once).
pub fn myrange(z: usize, n: usize, p: usize) -> std::ops::Range<usize> {
    assert!(z < p, "processor index out of range");
    let base = n / p;
    let extra = n % p;
    let start = z * base + z.min(extra);
    let len = base + usize::from(z < extra);
    start..start + len
}

/// Inverse of [`myrange`]: which processor (of `p`) owns element `i` of a
/// dimension with extent `n`.
pub fn owner_of(i: usize, n: usize, p: usize) -> usize {
    assert!(i < n, "element out of range");
    let base = n / p;
    let extra = n % p;
    let boundary = extra * (base + 1);
    if i < boundary {
        i / (base + 1)
    } else {
        extra + (i - boundary) / base.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_2x4x8() {
        // "suppose 64 processors form a 2×4×8 array" (§7).
        let g = ProcessorGrid::new(vec![2, 4, 8]);
        assert_eq!(g.num_processors(), 64);
        assert_eq!(g.rank(), 3);
        assert_eq!(g.coords(0), vec![0, 0, 0]);
        assert_eq!(g.coords(63), vec![1, 3, 7]);
        for id in g.processors() {
            assert_eq!(g.id_of(&g.coords(id)), id);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_rejects_bad_id() {
        ProcessorGrid::new(vec![2, 2]).coords(4);
    }

    #[test]
    fn myrange_partitions_exactly() {
        for n in [0usize, 1, 10, 17, 64] {
            for p in [1usize, 2, 3, 5, 8] {
                let mut covered = vec![false; n];
                for z in 0..p {
                    for i in myrange(z, n, p) {
                        assert!(!covered[i], "element {i} owned twice");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn myrange_even_division_matches_paper_formula() {
        // With p | N the paper's (z−1)·N/p+1 … z·N/p (1-based) becomes
        // z·N/p .. (z+1)·N/p.
        let (n, p) = (100, 4);
        for z in 0..p {
            assert_eq!(myrange(z, n, p), (z * n / p)..((z + 1) * n / p));
        }
    }

    #[test]
    fn owner_of_inverts_myrange() {
        for n in [1usize, 7, 16, 33] {
            for p in [1usize, 2, 4, 5] {
                for i in 0..n {
                    let z = owner_of(i, n, p);
                    assert!(myrange(z, n, p).contains(&i), "n={n} p={p} i={i}");
                }
            }
        }
    }
}
