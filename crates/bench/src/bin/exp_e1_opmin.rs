//! E1 — §2 operation minimization: `4·N¹⁰` direct vs `6·N⁶` optimized.
//!
//! Paper claim: the direct translation of
//! `S_abij = Σ_cdefkl A_acik·B_befl·C_dfjk·D_cdel` costs `4·N¹⁰`
//! operations; the algebraic transformation finds a sequence costing
//! `6·N⁶`.  This harness verifies both formulas at several extents,
//! confirms all three search procedures agree, and *measures* the flops of
//! executing both forms at a small extent.

use std::collections::HashMap;
use tce_bench::tables::{fmt_u, Table};
use tce_core::opmin::{
    optimize_branch_bound, optimize_exhaustive, optimize_subset_dp, OpMinProblem,
};
use tce_core::scenarios::section2_source;
use tce_core::tensor::{EinsumSpec, Tensor};
use tce_core::{synthesize, SynthesisConfig};

fn main() {
    println!("E1: operation minimization on the §2 example\n");
    let mut t = Table::new(&[
        "N",
        "direct 4N^10",
        "optimal (DP)",
        "branch&bound",
        "exhaustive",
        "ratio",
    ]);
    for n in [4usize, 6, 8, 10, 16, 30] {
        let prog = tce_core::lang::compile(&section2_source(n)).unwrap();
        let stmt = &prog.stmts[0];
        let direct = stmt.direct_op_count(&prog.space);
        let problem = OpMinProblem::from_term(stmt.lhs.index_set(), &stmt.terms[0]).unwrap();
        let dp = optimize_subset_dp(&problem, &prog.space);
        let bb = optimize_branch_bound(&problem, &prog.space);
        let ex = optimize_exhaustive(&problem, &prog.space);
        assert_eq!(dp.contraction_ops, bb.contraction_ops);
        assert_eq!(dp.contraction_ops, ex.contraction_ops);
        assert_eq!(direct, 4 * (n as u128).pow(10), "paper formula 4N^10");
        assert_eq!(
            dp.contraction_ops,
            6 * (n as u128).pow(6),
            "paper formula 6N^6"
        );
        t.row(&[
            n.to_string(),
            fmt_u(direct),
            fmt_u(dp.contraction_ops),
            fmt_u(bb.contraction_ops),
            fmt_u(ex.contraction_ops),
            format!("{:.0}x", direct as f64 / dp.contraction_ops as f64),
        ]);
    }
    println!("{}", t.render());

    // Measured execution at N = 4: interpreter flop counters for the
    // synthesized form; the direct form's naive einsum op count.
    let n = 4usize;
    let syn = synthesize(&section2_source(n), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let space = &syn.program.space;
    let shape = [n; 4];
    let data: Vec<Tensor> = (0..4).map(|s| Tensor::random(&shape, s as u64)).collect();
    let mut inputs = HashMap::new();
    for (q, nm) in ["A", "B", "C", "D"].iter().enumerate() {
        inputs.insert(syn.program.tensors.by_name(nm).unwrap(), &data[q]);
    }
    let mut interp =
        tce_core::exec::Interpreter::new(&plan.built.program, space, &inputs, &HashMap::new())
            .unwrap();
    interp.run(&mut tce_core::exec::NoSink);
    let v = |nm: &str| space.var_by_name(nm).unwrap();
    let spec = EinsumSpec::new(
        vec![v("a"), v("b"), v("i"), v("j")],
        vec![
            vec![v("a"), v("c"), v("i"), v("k")],
            vec![v("b"), v("e"), v("f"), v("l")],
            vec![v("d"), v("f"), v("j"), v("k")],
            vec![v("c"), v("d"), v("e"), v("l")],
        ],
        space.parse_set("c,d,e,f,k,l").unwrap(),
    )
    .unwrap();
    println!("measured at N = {n}:");
    println!(
        "  direct loop nest executes {} multiply/adds",
        fmt_u(spec.naive_ops(space))
    );
    println!(
        "  synthesized program executes {} flops (model: {})",
        fmt_u(interp.stats.contraction_flops),
        fmt_u(plan.tree_ops)
    );
    assert_eq!(interp.stats.contraction_flops, plan.tree_ops);
    // Values agree between the two forms.
    let reference = spec.eval(space, &[&data[0], &data[1], &data[2], &data[3]]);
    assert!(interp.output().approx_eq(&reference, 1e-9));
    println!("  results identical (max diff < 1e-9)\nE1 OK");
}
