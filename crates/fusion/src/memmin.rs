//! Memory-minimization dynamic program.
//!
//! Finds the fusion configuration minimizing the total size of temporary
//! intermediate arrays (paper §5) without changing the operation count.
//! The paper describes a bottom-up DP over pareto-optimal
//! (memory, constraint) pairs; here the "constraint" metric is made
//! explicit as the DP state: `M(u, σ)` is the minimal temporary memory of
//! the subtree rooted at `u` given that `u`'s parent edge fuses the
//! indices of the *nesting state* `σ` (an ordered partition — see
//! [`crate::nest`] for why the ordering is part of the state).  At each
//! contraction node the children's fused sets `(c₁, c₂)` are enumerated
//! subject to the chain-nesting legality captured by
//! [`crate::nest::derive_child_states`].
//!
//! [`memmin_bruteforce`] enumerates every legal configuration outright
//! (checked with the paper's global chain-scope condition) and is used as
//! the oracle in tests.

use crate::config::{fusable_set, is_fusable_producer, FusionConfig};
use crate::nest::{derive_child_state_options, encode_state, NestState};
use std::collections::HashMap;
use tce_ir::{IndexSet, IndexSpace, Leaf, NodeId, OpKind, OpTree};

/// Result of memory minimization.
#[derive(Debug, Clone)]
pub struct MemMinResult {
    /// The chosen configuration.
    pub config: FusionConfig,
    /// Total temporary-array elements under the configuration.
    pub memory: u128,
}

/// Pattern-comparability test for one node (parent set `p`, children sets
/// `c1`, `c2`) — the order-insensitive *necessary* condition; the DPs use
/// [`derive_child_states`] which additionally threads nesting order.
pub fn patterns_comparable(p: IndexSet, c1: IndexSet, c2: IndexSet) -> bool {
    let all = p.union(c1).union(c2);
    let mut pats: Vec<u8> = Vec::with_capacity(all.len());
    for x in all.iter() {
        pats.push(
            (p.contains(x) as u8) | ((c1.contains(x) as u8) << 1) | ((c2.contains(x) as u8) << 2),
        );
    }
    for (i, &a) in pats.iter().enumerate() {
        for &b in &pats[i + 1..] {
            if a & b != a && a & b != b {
                return false;
            }
        }
    }
    true
}

/// Exact memory minimization by dynamic programming over nesting states.
///
/// Complexity is exponential in the per-node index counts (subsets ×
/// ordered partitions), which the paper notes "is small enough" in
/// practical applications.
pub fn memmin_dp(tree: &OpTree, space: &IndexSpace) -> MemMinResult {
    // memo: (node, encoded state) → (memory, chosen child states).  The
    // child states are stored directly (not just the chosen `(c1, c2)`)
    // because one `(c1, c2)` pair can admit several nesting refinements —
    // see `derive_child_state_options` — and the traceback must replay the
    // exact one the minimum was computed with.
    type Key = (u32, Vec<u64>);
    let mut memo: HashMap<Key, (u128, NestState, NestState)> = HashMap::new();

    fn solve(
        tree: &OpTree,
        space: &IndexSpace,
        memo: &mut HashMap<(u32, Vec<u64>), (u128, NestState, NestState)>,
        u: NodeId,
        state: &NestState,
    ) -> u128 {
        let key = (u.0, encode_state(state));
        if let Some((m, _, _)) = memo.get(&key) {
            return *m;
        }
        let p = state.iter().fold(IndexSet::EMPTY, |s, &c| s.union(c));
        let own = |p: IndexSet| -> u128 {
            if u == tree.root {
                0
            } else {
                space.iteration_points(tree.node(u).indices.minus(p))
            }
        };
        let result = match &tree.node(u).kind {
            OpKind::Leaf(Leaf::Input { .. }) | OpKind::Leaf(Leaf::One) => {
                (0u128, NestState::new(), NestState::new())
            }
            OpKind::Leaf(Leaf::Func { .. }) => (own(p), NestState::new(), NestState::new()),
            OpKind::Contract { left, right } => {
                let (l, r) = (*left, *right);
                let f1 = fusable_set(tree, l, u);
                let f2 = fusable_set(tree, r, u);
                let mut best = (u128::MAX, NestState::new(), NestState::new());
                for c1 in f1.subsets() {
                    for c2 in f2.subsets() {
                        for (s1, s2) in derive_child_state_options(state, c1, c2) {
                            let m = solve(tree, space, memo, l, &s1)
                                .saturating_add(solve(tree, space, memo, r, &s2));
                            if m < best.0 {
                                best = (m, s1, s2);
                            }
                        }
                    }
                }
                (own(p).saturating_add(best.0), best.1, best.2)
            }
        };
        let m = result.0;
        memo.insert(key, result);
        m
    }

    let root_state: NestState = Vec::new();
    let memory = solve(tree, space, &mut memo, tree.root, &root_state);

    // Trace back the chosen child states.
    let mut config = FusionConfig::unfused(tree);
    let mut stack: Vec<(NodeId, NestState)> = vec![(tree.root, root_state)];
    while let Some((u, state)) = stack.pop() {
        let p = state.iter().fold(IndexSet::EMPTY, |s, &c| s.union(c));
        config.set(u, p);
        if let OpKind::Contract { left, right } = tree.node(u).kind {
            let (_, s1, s2) = memo
                .get(&(u.0, encode_state(&state)))
                .expect("traceback state must have been solved")
                .clone();
            stack.push((left, s1));
            stack.push((right, s2));
        }
    }
    debug_assert!(config.check(tree).is_ok());
    debug_assert_eq!(config.temp_memory(tree, space), memory);
    if tce_trace::enabled() {
        tce_trace::counter("fusion.memmin_states", memo.len() as u64);
        tce_trace::counter_u128("fusion.memmin_elements", memory);
    }
    MemMinResult { config, memory }
}

/// Enumerate every legal fusion configuration (oracle; exponential).
pub fn enumerate_legal_configs(tree: &OpTree, space: &IndexSpace) -> Vec<(FusionConfig, u128)> {
    let parents = tree.parents();
    let edges: Vec<(NodeId, IndexSet)> = tree
        .postorder()
        .into_iter()
        .filter(|&id| id != tree.root && is_fusable_producer(tree, id))
        .map(|id| (id, fusable_set(tree, id, parents[id.0 as usize].unwrap())))
        .collect();
    let mut out = Vec::new();
    let mut config = FusionConfig::unfused(tree);
    fn rec(
        tree: &OpTree,
        space: &IndexSpace,
        edges: &[(NodeId, IndexSet)],
        i: usize,
        config: &mut FusionConfig,
        out: &mut Vec<(FusionConfig, u128)>,
    ) {
        if i == edges.len() {
            if config.check(tree).is_ok() {
                out.push((config.clone(), config.temp_memory(tree, space)));
            }
            return;
        }
        let (node, fs) = edges[i];
        for c in fs.subsets() {
            config.set(node, c);
            rec(tree, space, edges, i + 1, config, out);
        }
        config.set(node, IndexSet::EMPTY);
    }
    rec(tree, space, &edges, 0, &mut config, &mut out);
    out
}

/// Oracle: minimum temporary memory over all legal configurations.
pub fn memmin_bruteforce(tree: &OpTree, space: &IndexSpace) -> MemMinResult {
    let all = enumerate_legal_configs(tree, space);
    let (config, memory) = all
        .into_iter()
        .min_by_key(|&(_, m)| m)
        .expect("the unfused configuration is always legal");
    MemMinResult { config, memory }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{TensorDecl, TensorTable};

    fn fig1(n_ext: usize) -> (IndexSpace, OpTree, NodeId, NodeId) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", n_ext);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tree, t1, t2)
    }

    #[test]
    fn fig1_memmin_reduces_t1_to_scalar_t2_to_2d() {
        // Paper §2: "T1 can be reduced to a scalar and T2 to a
        // 2-dimensional array, without changing the number of operations."
        let (space, tree, t1, t2) = fig1(10);
        let r = memmin_dp(&tree, &space);
        assert_eq!(r.memory, 1 + 100);
        assert_eq!(r.config.array_indices(&tree, t1).len(), 0);
        assert_eq!(r.config.array_indices(&tree, t2).len(), 2);
        assert_eq!(
            r.config.array_indices(&tree, t2),
            space.parse_set("j,k").unwrap()
        );
        // Operation count is untouched by fusion (same tree).
        assert_eq!(tree.total_ops(&space), 6 * 10u128.pow(6));
    }

    #[test]
    fn fig1_dp_matches_bruteforce() {
        let (space, tree, _, _) = fig1(5);
        let dp = memmin_dp(&tree, &space);
        let bf = memmin_bruteforce(&tree, &space);
        assert_eq!(dp.memory, bf.memory);
    }

    #[test]
    fn func_leaf_pair_fuses_to_scalars() {
        let mut space = IndexSpace::new();
        let n = space.add_range("V", 7);
        let c = space.add_var("c", n);
        let e = space.add_var("e", n);
        let mut tree = OpTree::new();
        let f1 = tree.leaf_func("f1", vec![c, e], 1000);
        let f2 = tree.leaf_func("f2", vec![c, e], 1000);
        tree.contract(f1, f2, IndexSet::EMPTY);
        let r = memmin_dp(&tree, &space);
        assert_eq!(r.memory, 2);
        assert_eq!(r.config.get(f1), IndexSet::from_vars([c, e]));
        assert_eq!(r.config.get(f2), IndexSet::from_vars([c, e]));
    }

    #[test]
    fn randomized_dp_matches_bruteforce() {
        use tce_ir::rng::Rng;
        let mut rng = Rng::new(55_2002);
        for trial in 0..40 {
            let mut space = IndexSpace::new();
            let r1 = space.add_range("P", rng.usize_in(2..5));
            let r2 = space.add_range("Q", rng.usize_in(2..9));
            let vars: Vec<_> = (0..5)
                .map(|q| space.add_var(&format!("x{q}"), if q % 2 == 0 { r1 } else { r2 }))
                .collect();
            let mut tensors = TensorTable::new();
            let mut tree = OpTree::new();
            let nleaves = rng.usize_in(3..5);
            let mut nodes: Vec<NodeId> = (0..nleaves)
                .map(|li| {
                    let arity = rng.usize_in(1..4);
                    let mut set = IndexSet::EMPTY;
                    let mut idxs = Vec::new();
                    for _ in 0..arity {
                        let v = vars[rng.usize_in(0..vars.len())];
                        if !set.contains(v) {
                            set.insert(v);
                            idxs.push(v);
                        }
                    }
                    if rng.bool_with(0.3) {
                        tree.leaf_func(&format!("f{trial}_{li}"), idxs, 100)
                    } else {
                        let dims = idxs.iter().map(|&v| space.range_of(v)).collect();
                        let t = tensors.add(TensorDecl::dense(&format!("T{trial}_{li}"), dims));
                        tree.leaf_input(t, idxs)
                    }
                })
                .collect();
            while nodes.len() > 1 {
                let a = nodes.swap_remove(rng.usize_in(0..nodes.len()));
                let b = nodes.swap_remove(rng.usize_in(0..nodes.len()));
                let combined = tree.node(a).indices.union(tree.node(b).indices);
                let mut keep = IndexSet::EMPTY;
                for v in combined.iter() {
                    if rng.bool_with(0.6) {
                        keep.insert(v);
                    }
                }
                nodes.push(tree.contract(a, b, keep));
            }
            let dp = memmin_dp(&tree, &space);
            let bf = memmin_bruteforce(&tree, &space);
            assert_eq!(dp.memory, bf.memory, "trial {trial}");
            dp.config.check(&tree).unwrap();
            assert_eq!(dp.config.temp_memory(&tree, &space), dp.memory);
        }
    }

    #[test]
    fn regression_shared_class_refined_inconsistently() {
        // tce-fuzz found a tree where the DP returned a configuration that
        // failed its own legality check: a nesting class flowing into both
        // children of the root was refined in opposite orders by the two
        // subtrees, composing into partially overlapping chain scopes.
        // Minimized repro (all extents 2).
        let mut space = IndexSpace::new();
        let r0 = space.add_range("r0", 2);
        let vs = space.add_vars("x0 x1 x2 x3", r0);
        let (x0, x1, x2, x3) = (vs[0], vs[1], vs[2], vs[3]);
        let mut tensors = TensorTable::new();
        let t0 = tensors.add(TensorDecl::dense("t0", vec![r0; 3]));
        let mut tree = OpTree::new();
        let g0 = tree.leaf_func("g0", vec![x3, x2, x0], 2);
        let one = tree.leaf_one();
        let n2 = tree.contract(g0, one, IndexSet::from_vars([x0, x2]));
        let l0 = tree.leaf_input(t0, vec![x0, x2, x1]);
        let n4 = tree.contract(n2, l0, IndexSet::from_vars([x0, x1, x2]));
        let g1 = tree.leaf_func("g1", vec![x0, x1], 3);
        let g2 = tree.leaf_func("g2", vec![x1], 14);
        let n7 = tree.contract(g1, g2, IndexSet::from_vars([x0, x1]));
        tree.contract(n4, n7, IndexSet::from_vars([x0, x1, x2]));
        let dp = memmin_dp(&tree, &space);
        dp.config.check(&tree).unwrap();
        let bf = memmin_bruteforce(&tree, &space);
        assert_eq!(dp.memory, bf.memory);
        assert_eq!(dp.config.temp_memory(&tree, &space), dp.memory);
    }

    #[test]
    fn memmin_never_worse_than_unfused() {
        let (space, tree, _, _) = fig1(6);
        let unfused = FusionConfig::unfused(&tree).temp_memory(&tree, &space);
        let r = memmin_dp(&tree, &space);
        assert!(r.memory <= unfused);
    }
}
