//! Micro-benchmark: the distribution DP's `O(q²·|T|)` scaling in grid
//! rank and tree size (supports experiment E8).

use tce_bench::harness::{black_box, BenchmarkId, Criterion};
use tce_bench::{criterion_group, criterion_main};
use tce_core::dist::{optimize_distribution, Machine};
use tce_core::ir::{IndexSet, IndexSpace, OpTree, TensorDecl, TensorTable};
use tce_core::par::ProcessorGrid;

/// Chain of `n` matrix products (n+1 index vars, n internal nodes).
fn chain_tree(n: usize) -> (IndexSpace, OpTree) {
    let mut space = IndexSpace::new();
    let r = space.add_range("N", 16);
    let vars: Vec<_> = (0..=n)
        .map(|q| space.add_var(&format!("x{q}"), r))
        .collect();
    let mut tensors = TensorTable::new();
    let mut tree = OpTree::new();
    let mut acc = None;
    for q in 0..n {
        let t = tensors.add(TensorDecl::dense(&format!("M{q}"), vec![r, r]));
        let leaf = tree.leaf_input(t, vec![vars[q], vars[q + 1]]);
        acc = Some(match acc {
            None => leaf,
            Some(prev) => tree.contract(prev, leaf, IndexSet::from_vars([vars[0], vars[q + 1]])),
        });
    }
    (space, tree)
}

fn bench(c: &mut Criterion) {
    // q-scaling: grid rank 1 → 2 (tuple count explodes with rank).
    let (space, tree) = chain_tree(2);
    let mut g = c.benchmark_group("dist_dp_grid_rank");
    for dims in [vec![4usize], vec![2, 2], vec![2, 2, 2]] {
        let machine = Machine {
            grid: ProcessorGrid::new(dims.clone()),
            word_cost: 1,
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{dims:?}")),
            &machine,
            |b, m| b.iter(|| optimize_distribution(black_box(&tree), &space, m)),
        );
    }
    g.finish();

    // |T|-scaling: chain length at fixed 1-D grid.
    let mut g2 = c.benchmark_group("dist_dp_tree_size");
    for n in [2usize, 3, 4] {
        let (space, tree) = chain_tree(n);
        let machine = Machine {
            grid: ProcessorGrid::new(vec![4]),
            word_cost: 1,
        };
        g2.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, t| {
            b.iter(|| optimize_distribution(black_box(t), &space, &machine))
        });
    }
    g2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
