//! exp_dist_shard — the sharded distributed executor over a grid sweep.
//!
//! Runs the §2 CCSD term and a matmul chain through the full pipeline
//! with a distribution plan for each grid shape, executes the plan on the
//! sharded machine, and reports wall time, measured vs. modeled
//! communication volume (which must agree **exactly**), redistribution
//! events, and the busiest rank's flop share.  Writes the measurements to
//! `BENCH_dist_shard.json`.
//!
//! ```text
//! exp_dist_shard [--out BENCH_dist_shard.json] [--threads T]
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;
use tce_bench::tables::{fmt_u, Table};
use tce_core::dist::Machine;
use tce_core::par::ProcessorGrid;
use tce_core::scenarios::section2_source;
use tce_core::tensor::Tensor;
use tce_core::{synthesize, ExecOptions, SynthesisConfig};

struct Case {
    name: &'static str,
    src: String,
    extent: usize,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "ccsd_section2",
            src: section2_source(10),
            extent: 10,
        },
        Case {
            name: "matmul_chain",
            src: "
                range N = 96;
                index i, j, k, l : N;
                tensor A(N, N); tensor B(N, N); tensor C(N, N); tensor OUT(N, N);
                OUT[i,l] = sum[j,k] A[i,j] * B[j,k] * C[k,l];
            "
            .to_string(),
            extent: 96,
        },
    ]
}

fn main() {
    let mut out_path = "BENCH_dist_shard.json".to_string();
    let mut threads = tce_core::par::default_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    let grids: Vec<Vec<usize>> = vec![vec![1], vec![2, 2], vec![2, 4], vec![4, 4]];

    println!("exp_dist_shard: sharded execution of distribution plans\n");
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"dist_shard\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cases\": [");

    let n_entries = cases().len() * grids.len();
    let mut entry = 0usize;
    for case in cases() {
        let mut table = Table::new(&[
            "grid",
            "wall (s)",
            "moved",
            "modeled",
            "reduce",
            "modeled",
            "busiest rank flops",
        ]);
        for dims in &grids {
            // word_cost 1 (vs the default 100) so larger grids stay
            // attractive to the DP and the sweep shows compute scaling.
            let cfg = SynthesisConfig {
                machine: Some(Machine {
                    grid: ProcessorGrid::new(dims.clone()),
                    word_cost: 1,
                }),
                ..SynthesisConfig::default()
            };
            let syn = synthesize(&case.src, &cfg).expect("synthesis");
            // Bind every external input deterministically.
            let mut written: Vec<bool> = vec![false; syn.program.tensors.len()];
            let mut owned: Vec<(tce_core::ir::TensorId, Tensor)> = Vec::new();
            for stmt in &syn.program.stmts {
                for term in &stmt.terms {
                    for f in &term.factors {
                        if let tce_core::ir::Factor::Tensor(r) = f {
                            if !written[r.tensor.0 as usize]
                                && !owned.iter().any(|(id, _)| *id == r.tensor)
                            {
                                let decl = syn.program.tensors.get(r.tensor);
                                let shape: Vec<usize> = decl
                                    .dims
                                    .iter()
                                    .map(|&rr| syn.program.space.range_extent(rr))
                                    .collect();
                                owned.push((
                                    r.tensor,
                                    Tensor::random(&shape, 7 ^ r.tensor.0 as u64),
                                ));
                            }
                        }
                    }
                }
                written[stmt.lhs.tensor.0 as usize] = true;
            }
            let inputs: HashMap<_, _> = owned.iter().map(|(id, t)| (*id, t)).collect();
            let opts = ExecOptions::with_threads(threads);
            let start = Instant::now();
            let summary = syn
                .execute_distributed_opts(&inputs, &HashMap::new(), &opts)
                .unwrap();
            let wall = start.elapsed().as_secs_f64();
            assert_eq!(
                summary.moved_elements, summary.predicted_move_elements,
                "{} on {:?}: redistribution diverged from move_cost",
                case.name, dims
            );
            assert_eq!(
                summary.reduce_words, summary.predicted_reduce_words,
                "{} on {:?}: reduction diverged from reduce_cost",
                case.name, dims
            );
            let gridname = dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x");
            table.row(&[
                gridname.clone(),
                format!("{wall:.4}"),
                fmt_u(summary.moved_elements),
                fmt_u(summary.predicted_move_elements),
                fmt_u(summary.reduce_words),
                fmt_u(summary.predicted_reduce_words),
                fmt_u(summary.max_rank_flops()),
            ]);
            entry += 1;
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"case\": \"{}\",", case.name);
            let _ = writeln!(json, "      \"extent\": {},", case.extent);
            let _ = writeln!(json, "      \"grid\": \"{gridname}\",");
            let _ = writeln!(json, "      \"wall_secs\": {wall:.6},");
            let _ = writeln!(
                json,
                "      \"moved_elements\": {},",
                summary.moved_elements
            );
            let _ = writeln!(
                json,
                "      \"predicted_move_elements\": {},",
                summary.predicted_move_elements
            );
            let _ = writeln!(json, "      \"reduce_words\": {},", summary.reduce_words);
            let _ = writeln!(
                json,
                "      \"predicted_reduce_words\": {},",
                summary.predicted_reduce_words
            );
            let _ = writeln!(
                json,
                "      \"redistributions\": {},",
                summary.redistributions
            );
            let _ = writeln!(
                json,
                "      \"max_rank_flops\": {}",
                summary.max_rank_flops()
            );
            let _ = writeln!(json, "    }}{}", if entry < n_entries { "," } else { "" });
        }
        println!("{}: measured == modeled on every grid", case.name);
        println!("{}", table.render());
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
