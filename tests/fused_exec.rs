//! Differential suite for the fused-slice executor (`tce_exec::fusedexec`).
//!
//! Every fusion configuration — the memmin optimum, the unfused baseline,
//! and partially-fused variants — must execute to the same value as the
//! operator-tree GETT executor and the scalar loop interpreter, at every
//! thread count, while the measured peak intermediate live-set equals the
//! memory-minimization model's `temp_memory` prediction **exactly**.
//! Exercised on the paper's §2 CCSD term and the A3A scenario behind
//! Figs. 2–4.

use std::collections::HashMap;
use tce_core::exec::{execute_tree_fused, execute_tree_opts, ExecOptions};
use tce_core::fusion::{memmin_dp, FusionConfig};
use tce_core::ir::{IndexSet, OpTree, TensorId};
use tce_core::scenarios::{section2_source, A3AScenario};
use tce_core::tensor::{IntegralFn, Tensor};
use tce_core::{synthesize, SynthesisConfig};

const THREADS: [usize; 3] = [1, 2, 4];

/// Relative agreement within `tol` (scale = max |expect|, at least 1).
fn rel_close(got: &Tensor, expect: &Tensor, tol: f64) -> bool {
    let scale = expect.data().iter().fold(1.0f64, |m, x| m.max(x.abs()));
    got.max_abs_diff(expect) <= tol * scale
}

/// The memmin optimum, the unfused baseline, and every legal variant
/// obtained by clearing one producer's fused set from the optimum —
/// a spread of configurations from scalar temporaries to full arrays.
fn config_spread(tree: &OpTree, space: &tce_core::ir::IndexSpace) -> Vec<FusionConfig> {
    let memmin = memmin_dp(tree, space);
    let mut configs = vec![FusionConfig::unfused(tree), memmin.config.clone()];
    for id in tree.postorder() {
        if memmin.config.get(id).is_empty() {
            continue;
        }
        let mut partial = memmin.config.clone();
        partial.set(id, IndexSet::EMPTY);
        if partial.check(tree).is_ok() && configs.iter().all(|c| *c != partial) {
            configs.push(partial);
        }
    }
    assert!(
        configs.len() >= 3,
        "need at least three distinct fusion configurations, got {}",
        configs.len()
    );
    configs
}

#[test]
fn section2_fused_matches_oracles_across_configs_and_threads() {
    let syn = synthesize(&section2_source(4), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let space = &syn.program.space;
    let shape = [4usize; 4];
    let ta = Tensor::random(&shape, 41);
    let tb = Tensor::random(&shape, 42);
    let tc = Tensor::random(&shape, 43);
    let td = Tensor::random(&shape, 44);
    let mut inputs: HashMap<TensorId, &Tensor> = HashMap::new();
    for (nm, t) in [("A", &ta), ("B", &tb), ("C", &tc), ("D", &td)] {
        inputs.insert(syn.program.tensors.by_name(nm).unwrap(), t);
    }
    let funcs = HashMap::new();
    // Oracle 1: the operator-tree GETT executor.
    let gett =
        execute_tree_opts(&plan.tree, space, &inputs, &funcs, &ExecOptions::serial()).unwrap();
    // Oracle 2: the scalar interpreter over the synthesized fused program.
    let interpreted = plan.execute_interpreted(space, &inputs, &funcs).unwrap();
    assert!(rel_close(&interpreted, &gett, 1e-10));

    for config in config_spread(&plan.tree, space) {
        let modeled = config.temp_memory(&plan.tree, space);
        let mut per_thread = Vec::new();
        for threads in THREADS {
            let report = execute_tree_fused(
                &plan.tree,
                space,
                &config,
                &inputs,
                &funcs,
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            assert!(
                rel_close(&report.result, &gett, 1e-10),
                "threads {threads}: diff {:e}",
                report.result.max_abs_diff(&gett)
            );
            // Measured peak live-set equals the model for EVERY config.
            assert_eq!(report.peak_live_elements, modeled, "threads {threads}");
            assert!(report.peak_matches_model());
            per_thread.push(report.result);
        }
        // Bitwise deterministic across thread counts.
        for r in &per_thread[1..] {
            assert_eq!(*r, per_thread[0]);
        }
    }
}

#[test]
fn section2_memmin_peak_equals_dp_prediction() {
    // Paper Fig. 1(c): at extent N, fused memory = 1 (T1 scalar) + N²
    // (T2 reduced to {j,k}).
    let n = 4usize;
    let syn = synthesize(&section2_source(n), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let space = &syn.program.space;
    assert_eq!(plan.memmin.memory, 1 + (n as u128).pow(2));
    let shape = [n; 4];
    let tensors: Vec<(&str, Tensor)> = ["A", "B", "C", "D"]
        .iter()
        .enumerate()
        .map(|(q, nm)| (*nm, Tensor::random(&shape, 50 + q as u64)))
        .collect();
    let mut inputs: HashMap<TensorId, &Tensor> = HashMap::new();
    for (nm, t) in &tensors {
        inputs.insert(syn.program.tensors.by_name(nm).unwrap(), t);
    }
    let report = execute_tree_fused(
        &plan.tree,
        space,
        &plan.memmin.config,
        &inputs,
        &HashMap::new(),
        &ExecOptions::serial(),
    )
    .unwrap();
    assert_eq!(report.peak_live_elements, plan.memmin.memory);
    assert_eq!(report.modeled_elements, plan.memmin.memory);
}

#[test]
fn a3a_fused_matches_reference_across_configs_and_threads() {
    // The scenario behind paper Figs. 2–4: E = (Σ T·T)·(Σ f1·f2).
    let sc = A3AScenario::new(4, 2, 50);
    let amps = sc.amplitudes(7);
    let funcs = sc.functions();
    let mut inputs: HashMap<TensorId, &Tensor> = HashMap::new();
    inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
    let expect = sc.reference_energy(&amps);

    let memmin = memmin_dp(&sc.tree, &sc.space);
    for config in config_spread(&sc.tree, &sc.space) {
        let modeled = config.temp_memory(&sc.tree, &sc.space);
        let mut per_thread = Vec::new();
        for threads in THREADS {
            let report = execute_tree_fused(
                &sc.tree,
                &sc.space,
                &config,
                &inputs,
                &funcs,
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            let got = report.result.get(&[]);
            assert!(
                (got - expect).abs() <= 1e-10 * expect.abs().max(1.0),
                "threads {threads}: {got} vs {expect}"
            );
            assert_eq!(report.peak_live_elements, modeled, "threads {threads}");
            per_thread.push(got);
        }
        for g in &per_thread[1..] {
            assert_eq!(g.to_bits(), per_thread[0].to_bits());
        }
    }
    // The memmin optimum's peak is the DP's predicted element count.
    let report = execute_tree_fused(
        &sc.tree,
        &sc.space,
        &memmin.config,
        &inputs,
        &funcs,
        &ExecOptions::serial(),
    )
    .unwrap();
    assert_eq!(report.peak_live_elements, memmin.memory);
}

#[test]
fn pipeline_fused_execution_agrees_with_direct_on_sequences() {
    // Statement sequences with dataflow, coefficients and accumulation run
    // identically through the fused and direct whole-program executors.
    let src = "
        range N = 5;
        index i, j, k : N;
        tensor A(N, N); tensor B(N, N); tensor T(N, N); tensor S(N, N);
        T[i,j] = sum[k] A[i,k] * B[k,j];
        S[i,j] = sum[k] T[i,k] * A[k,j] + 2 * T[i,j] * B[i,j];
        S[i,j] += sum[k] B[i,k] * B[k,j];
    ";
    let syn = synthesize(src, &SynthesisConfig::default()).unwrap();
    let a = Tensor::random(&[5, 5], 61);
    let b = Tensor::random(&[5, 5], 62);
    let mut ext: HashMap<TensorId, &Tensor> = HashMap::new();
    ext.insert(syn.program.tensors.by_name("A").unwrap(), &a);
    ext.insert(syn.program.tensors.by_name("B").unwrap(), &b);
    let funcs: HashMap<String, IntegralFn> = HashMap::new();
    let direct = syn.execute(&ext, &funcs).unwrap();
    for threads in THREADS {
        let fused = syn
            .execute_fused_opts(&ext, &funcs, &ExecOptions::with_threads(threads))
            .unwrap();
        assert!(fused.peak_matches_model(), "threads {threads}");
        for (id, t) in &direct {
            assert!(
                rel_close(&fused.outputs[id], t, 1e-10),
                "threads {threads}, tensor #{}",
                id.0
            );
        }
        for term in &fused.per_term {
            assert_eq!(
                term.peak_live_elements, term.modeled_elements,
                "stmt {} term {}",
                term.stmt_index, term.term_index
            );
        }
    }
}
