//! Minimal benchmark harness with a criterion-compatible surface.
//!
//! The workspace builds hermetically (no external crates), so the bench
//! binaries link against this instead of `criterion`.  It supports the
//! subset of the API the benches use — `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-measure protocol and a one-line median report per
//! benchmark.  Timings are indicative, not statistically rigorous; the
//! `exp_*` binaries own the machine-readable measurements.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark, mirroring criterion's.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Measured per-iteration times, one entry per sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, warming up first, then collecting `sample_size` samples
    /// of adaptively-batched iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + batch sizing: grow the batch until it runs ≥ ~2 ms.
        let mut batch = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(2) || batch >= 1 << 20 {
                break el / batch as u32;
            }
            batch *= 2;
        };
        let _ = per_iter;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!("{label:<48} median {:>12?}  [{:?} .. {:?}]", median, lo, hi);
}

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(id, 10, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group; benchmark labels are prefixed with the group name.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner, as criterion's macro does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
