//! Lexer for the tensor-contraction specification language.
//!
//! The input notation (paper §4, "High-level language") is a sequence of
//! declarations and sum-of-products assignment statements:
//!
//! ```text
//! range V = 3000;
//! range O = 100;
//! index a, b, c : V;
//! index i, j : O;
//! tensor A(V, O);
//! function f1(V, O) cost 1000;
//! S[a,i] = sum[b,j] A[a,b] * f1(b, j) * A[b, i];
//! ```

use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords resolved by the parser).
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// Floating-point literal.
    Float(f64),
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(n) => write!(f, "`{n}`"),
            TokenKind::Float(x) => write!(f, "`{x}`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::PlusAssign => write!(f, "`+=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing/parsing/lowering error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based line (0 if unknown).
    pub line: u32,
    /// 1-based column (0 if unknown).
    pub col: u32,
}

impl LangError {
    /// Error at a token position.
    pub fn at(line: u32, col: u32, msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.line, self.col, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for LangError {}

/// Tokenize `src`. Comments run from `#` or `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let push = |kind: TokenKind, line: u32, col: u32, out: &mut Vec<Token>| {
        out.push(Token { kind, line, col });
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tline, tcol) = (line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '+' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(TokenKind::PlusAssign, tline, tcol, &mut out);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Plus, tline, tcol, &mut out);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                push(TokenKind::Assign, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            '-' => {
                push(TokenKind::Minus, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            '*' => {
                push(TokenKind::Star, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            '(' => {
                push(TokenKind::LParen, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            ')' => {
                push(TokenKind::RParen, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            '[' => {
                push(TokenKind::LBracket, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            ']' => {
                push(TokenKind::RBracket, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            ',' => {
                push(TokenKind::Comma, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            ':' => {
                push(TokenKind::Colon, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            ';' => {
                push(TokenKind::Semi, tline, tcol, &mut out);
                i += 1;
                col += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                if is_float {
                    let x: f64 = text
                        .parse()
                        .map_err(|_| LangError::at(tline, tcol, "invalid float literal"))?;
                    push(TokenKind::Float(x), tline, tcol, &mut out);
                } else {
                    let n: u64 = text
                        .parse()
                        .map_err(|_| LangError::at(tline, tcol, "integer literal too large"))?;
                    push(TokenKind::Int(n), tline, tcol, &mut out);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                push(TokenKind::Ident(text.to_string()), tline, tcol, &mut out);
            }
            other => {
                return Err(LangError::at(
                    tline,
                    tcol,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        let k = kinds("range V = 3000;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("range".into()),
                TokenKind::Ident("V".into()),
                TokenKind::Assign,
                TokenKind::Int(3000),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_statement_symbols() {
        let k = kinds("S[a,b] += 2.5 * A[a,b] + -1 * B[a,b];");
        assert!(k.contains(&TokenKind::PlusAssign));
        assert!(k.contains(&TokenKind::Float(2.5)));
        assert!(k.contains(&TokenKind::Minus));
        assert!(k.contains(&TokenKind::Star));
    }

    #[test]
    fn skips_comments() {
        let k = kinds("# a comment\nrange V = 10; // trailing\n");
        assert_eq!(k.len(), 6); // range V = 10 ; EOF
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("range V = 1;\nindex a : V;").unwrap();
        let idx = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("index".into()))
            .unwrap();
        assert_eq!(idx.line, 2);
        assert_eq!(idx.col, 1);
    }

    #[test]
    fn rejects_bad_char() {
        let err = lex("range V = 1 @;").unwrap_err();
        assert!(err.msg.contains("unexpected character"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn int_vs_float() {
        assert_eq!(kinds("3")[0], TokenKind::Int(3));
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
    }

    #[test]
    fn rejects_trailing_dot_as_unknown() {
        let err = lex("3.").unwrap_err();
        assert!(err.msg.contains("unexpected character"));
    }
}
