//! Executable code generation for fusion/recomputation configurations.
//!
//! Produces the loop program realizing a [`SpaceTimeConfig`] *without
//! tiling* (every redundant index at full extent — the paper's Fig. 3
//! regime, which is also the `B = 1` point of the Fig. 4 family and the
//! minimum-memory way to run the plan).  Redundant indices become chain
//! loops that wrap the producer's nest and re-execute it; genuinely fused
//! indices additionally eliminate array dimensions.
//!
//! Tiled variants interleave block-local buffers with the chain structure
//! and are built per scenario (see `tce_core::scenarios::A3AScenario::
//! fig4_program`); generalizing tiled emission is future work — the
//! *optimization* of tile sizes is fully general (see [`crate::tiling`]).

use crate::dp::SpaceTimeConfig;
use tce_fusion::chains::check_scopes;
use tce_fusion::codegen::fused_program_with_labels;
use tce_fusion::FusionConfig;
use tce_ir::{IndexSpace, OpTree, TensorTable};
use tce_loops::BuiltProgram;

/// Emit the executable (untiled) program for `cfg`.
///
/// # Errors
/// Returns an error when the configuration's chain scopes are not nested
/// (an illegal configuration — the DPs never produce one).
pub fn spacetime_program(
    tree: &OpTree,
    space: &IndexSpace,
    tensors: &TensorTable,
    cfg: &SpaceTimeConfig,
    result_name: &str,
) -> Result<BuiltProgram, String> {
    let mut chain_labels = FusionConfig::unfused(tree);
    let mut array_config = FusionConfig::unfused(tree);
    for id in tree.postorder() {
        let i = id.0 as usize;
        chain_labels.set(id, cfg.fused[i].union(cfg.redundant[i]));
        array_config.set(id, cfg.fused[i]);
    }
    check_scopes(tree, &chain_labels)?;
    let built = fused_program_with_labels(
        tree,
        space,
        tensors,
        &chain_labels,
        &array_config,
        result_name,
    );
    built.program.validate()?;
    Ok(built)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::spacetime_dp;
    use std::collections::HashMap;
    use tce_ir::{IndexSet, TensorDecl};

    /// A3A-like: X = T·T, Y = f1·f2, E = X·Y.
    fn a3a(v: usize, o: usize, ci: u64) -> (IndexSpace, TensorTable, OpTree) {
        let mut space = IndexSpace::new();
        let rv = space.add_range("V", v);
        let ro = space.add_range("O", o);
        let (a, c, e, f, b) = (
            space.add_var("a", rv),
            space.add_var("c", rv),
            space.add_var("e", rv),
            space.add_var("f", rv),
            space.add_var("b", rv),
        );
        let (i, j, k) = (
            space.add_var("i", ro),
            space.add_var("j", ro),
            space.add_var("k", ro),
        );
        let mut tensors = TensorTable::new();
        let t_amp = tensors.add(TensorDecl::dense("T", vec![ro, ro, rv, rv]));
        let mut tree = OpTree::new();
        let l1 = tree.leaf_input(t_amp, vec![i, j, a, e]);
        let l2 = tree.leaf_input(t_amp, vec![i, j, c, f]);
        let x = tree.contract(l1, l2, IndexSet::from_vars([a, e, c, f]));
        let t1 = tree.leaf_func("f1", vec![c, e, b, k], ci);
        let t2 = tree.leaf_func("f2", vec![a, f, b, k], ci);
        let y = tree.contract(t1, t2, IndexSet::from_vars([c, e, a, f]));
        tree.contract(x, y, IndexSet::EMPTY);
        let _ = (x, y, t1, t2);
        (space, tensors, tree)
    }

    fn reference(
        space: &IndexSpace,
        tensors: &TensorTable,
        tree: &OpTree,
        amps: &tce_tensor::Tensor,
        funcs: &HashMap<String, tce_tensor::IntegralFn>,
    ) -> f64 {
        let mut inputs = HashMap::new();
        inputs.insert(tensors.by_name("T").unwrap(), amps);
        tce_exec::execute_tree(tree, space, &inputs, funcs, 1)
            .unwrap()
            .get(&[])
    }

    #[test]
    fn every_frontier_point_is_executable_and_correct() {
        let (space, tensors, tree) = a3a(3, 2, 20);
        let front = spacetime_dp(&tree, &space, usize::MAX).unwrap();
        let amps = tce_tensor::Tensor::random(&[2, 2, 3, 3], 1);
        let mut funcs = HashMap::new();
        funcs.insert("f1".to_string(), tce_tensor::IntegralFn::new(20, 1));
        funcs.insert("f2".to_string(), tce_tensor::IntegralFn::new(20, 2));
        let expect = reference(&space, &tensors, &tree, &amps, &funcs);
        let mut inputs = HashMap::new();
        inputs.insert(tensors.by_name("T").unwrap(), &amps);
        assert!(front.len() >= 3, "need several regimes to exercise");
        for point in front.points() {
            let built = spacetime_program(&tree, &space, &tensors, &point.tag, "E").unwrap();
            let mut interp =
                tce_exec::Interpreter::new(&built.program, &space, &inputs, &funcs).unwrap();
            interp.run(&mut tce_exec::NoSink);
            let got = interp.output().get(&[]);
            assert!(
                (got - expect).abs() < 1e-9 * expect.abs().max(1.0),
                "mem {} ops {}: {got} vs {expect}",
                point.mem,
                point.ops
            );
            // Memory matches the model (+1 for the scalar output).
            assert_eq!(interp.allocated_temp_elements(), point.mem + 1);
            // Recomputation matches the model: measured flops = predicted.
            assert_eq!(
                interp.stats.total_flops(),
                point.ops,
                "mem {} ops {}",
                point.mem,
                point.ops
            );
        }
    }

    #[test]
    fn min_memory_point_recomputes_integrals() {
        let (space, tensors, tree) = a3a(3, 2, 20);
        let front = spacetime_dp(&tree, &space, usize::MAX).unwrap();
        let min = front.min_mem().unwrap();
        let built = spacetime_program(&tree, &space, &tensors, &min.tag, "E").unwrap();
        let amps = tce_tensor::Tensor::random(&[2, 2, 3, 3], 2);
        let mut funcs = HashMap::new();
        funcs.insert("f1".to_string(), tce_tensor::IntegralFn::new(20, 1));
        funcs.insert("f2".to_string(), tce_tensor::IntegralFn::new(20, 2));
        let mut inputs = HashMap::new();
        inputs.insert(tensors.by_name("T").unwrap(), &amps);
        let mut interp =
            tce_exec::Interpreter::new(&built.program, &space, &inputs, &funcs).unwrap();
        interp.run(&mut tce_exec::NoSink);
        // The integrals are recomputed: strictly more evaluations than the
        // reuse-everything count (2·V²·V·O), at most the Fig-3 worst case
        // (full V² redundancy per leaf).  The DP may beat Fig 3's naive
        // structure by recomputing along fewer indices via split emission
        // — it does here — while keeping all temporaries scalar.
        let no_recompute = 2 * 3u128.pow(3) * 2;
        let fig3_worst = 2 * 3u128.pow(5) * 2;
        assert!(interp.stats.func_evals > no_recompute);
        assert!(interp.stats.func_evals <= fig3_worst);
        assert_eq!(interp.allocated_temp_elements(), min.mem + 1);
    }

    #[test]
    fn illegal_config_rejected() {
        let (space, tensors, tree) = a3a(3, 2, 20);
        // Hand-build a partially-overlapping configuration: fuse Y's edge
        // on (c,e,a,f) while T1 fuses only (b,k) — b,k chains stop inside
        // while the outer chains pass through.
        let mut cfg = SpaceTimeConfig::unfused(&tree);
        // node ids: X=2, t1=3, t2=4, y=5, root=6 by construction order.
        cfg.fused[5] = space.parse_set("c,e,a,f").unwrap();
        cfg.fused[3] = space.parse_set("b,k").unwrap();
        assert!(spacetime_program(&tree, &space, &tensors, &cfg, "E").is_err());
        let _ = tensors;
    }
}
