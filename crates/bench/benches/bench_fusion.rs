//! Micro-benchmark: the memory-minimization DP against exhaustive
//! enumeration (supports experiments E2/E9 — "the pruning is effective in
//! keeping the size of the solution set at each node small").

use tce_bench::harness::{black_box, Criterion};
use tce_bench::{criterion_group, criterion_main};
use tce_core::fusion::{enumerate_legal_configs, memmin_bruteforce, memmin_dp};
use tce_core::opmin::{optimize_subset_dp, OpMinProblem};
use tce_core::scenarios::{section2_source, A3AScenario};

fn bench(c: &mut Criterion) {
    // Fig. 1 tree.
    let prog = tce_core::lang::compile(&section2_source(10)).unwrap();
    let stmt = &prog.stmts[0];
    let p = OpMinProblem::from_term(stmt.lhs.index_set(), &stmt.terms[0]).unwrap();
    let tree = optimize_subset_dp(&p, &prog.space).tree;

    let mut g = c.benchmark_group("memmin_fig1");
    g.bench_function("dp", |b| {
        b.iter(|| memmin_dp(black_box(&tree), &prog.space))
    });
    g.bench_function("bruteforce", |b| {
        b.iter(|| memmin_bruteforce(black_box(&tree), &prog.space))
    });
    g.bench_function("enumerate_legal", |b| {
        b.iter(|| enumerate_legal_configs(black_box(&tree), &prog.space).len())
    });
    g.finish();

    // A3A tree (larger per-node index sets).
    let sc = A3AScenario::new(6, 3, 100);
    let mut g2 = c.benchmark_group("memmin_a3a");
    g2.bench_function("dp", |b| {
        b.iter(|| memmin_dp(black_box(&sc.tree), &sc.space))
    });
    g2.bench_function("bruteforce", |b| {
        b.iter(|| memmin_bruteforce(black_box(&sc.tree), &sc.space))
    });
    g2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
