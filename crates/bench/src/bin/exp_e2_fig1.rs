//! E2 — paper Fig. 1: loop fusion for memory reduction.
//!
//! Claims reproduced:
//! * the formula sequence of Fig. 1(a) is exactly the optimizer's output;
//! * fusion reduces `T1` to a scalar and `T2` to a 2-D array "without
//!   changing the number of operations";
//! * the fused code (Fig. 1(c)) computes the same values as the unfused
//!   code (Fig. 1(b)).

use std::collections::HashMap;
use tce_bench::tables::{fmt_u, Table};
use tce_core::loops::{memory_report, op_counts, pretty, unfused_program};
use tce_core::scenarios::section2_source;
use tce_core::tensor::Tensor;
use tce_core::{synthesize, SynthesisConfig};

fn main() {
    println!("E2: Fig. 1 — fusion for memory reduction\n");
    let n = 6usize;
    let syn = synthesize(&section2_source(n), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let space = &syn.program.space;

    println!("Fig. 1(a) formula sequence:");
    print!(
        "{}",
        plan.tree
            .formula_sequence(space, "S", &|t| syn.program.tensors.get(t).name.clone())
    );

    let direct = unfused_program(&plan.tree, space, &syn.program.tensors, "S");
    println!("\nFig. 1(b) unfused implementation:");
    print!("{}", pretty(&direct.program));
    println!("\nFig. 1(c) fused implementation:");
    print!("{}", pretty(&plan.built.program));

    let mem_unfused = memory_report(&direct.program, space);
    let mem_fused = memory_report(&plan.built.program, space);
    let ops_unfused = op_counts(&direct.program, space);
    let ops_fused = op_counts(&plan.built.program, space);

    let mut t = Table::new(&["variant", "T1 elems", "T2 elems", "temp total", "flops"]);
    let find = |m: &tce_core::loops::MemoryReport, nm: &str| {
        m.arrays
            .iter()
            .find(|(n, _, _)| n == nm)
            .map(|(_, e, _)| *e)
            .unwrap()
    };
    t.row(&[
        "unfused (Fig 1b)".into(),
        fmt_u(find(&mem_unfused, "T1")),
        fmt_u(find(&mem_unfused, "T2")),
        fmt_u(mem_unfused.temp_elements),
        fmt_u(ops_unfused.total()),
    ]);
    t.row(&[
        "fused (Fig 1c)".into(),
        fmt_u(find(&mem_fused, "T1")),
        fmt_u(find(&mem_fused, "T2")),
        fmt_u(mem_fused.temp_elements),
        fmt_u(ops_fused.total()),
    ]);
    println!("\n{}", t.render());

    // Paper claims.
    assert_eq!(find(&mem_fused, "T1"), 1, "T1 reduced to a scalar");
    assert_eq!(
        find(&mem_fused, "T2"),
        (n as u128).pow(2),
        "T2 reduced to 2-D"
    );
    assert_eq!(ops_fused.total(), ops_unfused.total(), "op count unchanged");

    // Execute both and compare.
    let shape = [n; 4];
    let data: Vec<Tensor> = (0..4)
        .map(|s| Tensor::random(&shape, 100 + s as u64))
        .collect();
    let mut inputs = HashMap::new();
    for (q, nm) in ["A", "B", "C", "D"].iter().enumerate() {
        inputs.insert(syn.program.tensors.by_name(nm).unwrap(), &data[q]);
    }
    let run = |p: &tce_core::loops::LoopProgram| {
        let mut i = tce_core::exec::Interpreter::new(p, space, &inputs, &HashMap::new()).unwrap();
        i.run(&mut tce_core::exec::NoSink);
        i.output().clone()
    };
    let a = run(&direct.program);
    let b = run(&plan.built.program);
    println!("fused vs unfused max diff: {:.3e}", a.max_abs_diff(&b));
    assert!(a.approx_eq(&b, 1e-9));
    println!("E2 OK");
}
